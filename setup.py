"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs fail; this file lets ``pip install -e . --no-build-isolation``
fall back to ``setup.py develop``.
"""

from setuptools import setup

setup()
