"""Table 4: congestion control under incast.

Many clients converge on a server whose switch port is shaped to a
fraction of line rate with WRED tail-drop — the paper shapes to 10 Gbps
and transfers 64 KB RPCs with 32 B responses, comparing the control
plane's DCTCP on vs off.

Paper: with CC on, throughput holds the shaped rate, the 99.99p stays
low and JFI >= 0.96; disabling CC inflates tail latency up to 4.9x and
halves fairness at 128 connections.

Scaled: shaped to 2.5 Gbps, {8, 24} connections, 8 KB RPCs.
"""

from common import EchoBench
from conftest import run_once
from repro.harness.report import Table
from repro.net.switch import SwitchPortConfig
from repro.stats import LatencyHistogram, jains_fairness_index

CONN_COUNTS = (8, 24)
SHAPED_BPS = 2_500_000_000


def measure(n_connections, cc_enabled):
    bench = EchoBench(
        "flextoe",
        n_connections=n_connections,
        request_size=32,
        response_size=8 * 1024,
        pipeline=2,
        server_cores=2,
        client_hosts=4,
        cp_kwargs={"cc_enabled": cc_enabled},
    )
    # Shape the server's switch egress (server -> clients is the bulk
    # direction) ... the clients receive, so shape each client port.
    shaped = SwitchPortConfig(
        rate_bps=SHAPED_BPS,
        queue_capacity_bytes=64 * 1024,
        ecn_threshold_bytes=16 * 1024,
        red_min_bytes=40 * 1024,
        red_max_bytes=64 * 1024,
    )
    for client in bench.clients:
        bench.bed.switch.set_port_config(client.station.switch_port, shaped)
    # Per-RPC latency: wrap each client's meter with a histogram by
    # sampling completion times through the closed pipeline meter.
    result = bench.run(warmup_ns=3_000_000, window_ns=9_000_000)
    per_conn = result["per_conn_ops"]
    jfi = jains_fairness_index(per_conn)
    # Tail latency proxy: spread of queue occupancy -> use switch stats.
    drops = sum(
        bench.bed.switch.egress_stats(c.station.switch_port).dropped_tail
        + bench.bed.switch.egress_stats(c.station.switch_port).dropped_red
        for c in bench.clients
    )
    peak_queue = max(
        bench.bed.switch.egress_stats(c.station.switch_port).peak_bytes for c in bench.clients
    )
    return {
        "goodput": result["goodput_bps"],
        "jfi": jfi,
        "drops": drops,
        "peak_queue": peak_queue,
    }


def sweep():
    return {
        (n, cc): measure(n, cc) for n in CONN_COUNTS for cc in (True, False)
    }


def test_table4_incast(benchmark):
    results = run_once(benchmark, sweep)

    table = Table(
        "Table 4: incast, congestion control on/off",
        ["conns", "cc", "goodput (Gbps)", "JFI", "switch drops", "peak queue (KB)"],
    )
    for (n, cc), row in sorted(results.items(), key=lambda kv: (kv[0][0], not kv[0][1])):
        table.add_row(
            n,
            "on" if cc else "off",
            "%.2f" % (row["goodput"] / 1e9),
            "%.3f" % row["jfi"],
            row["drops"],
            "%.0f" % (row["peak_queue"] / 1024),
        )
    table.show()

    for n in CONN_COUNTS:
        on = results[(n, True)]
        off = results[(n, False)]
        # CC achieves comparable goodput while never dropping more.
        assert on["goodput"] > 0.5 * off["goodput"]
        assert on["drops"] <= off["drops"]
        # Fairness: CC keeps JFI high; disabling it skews sharing.
        assert on["jfi"] > 0.85
        assert on["jfi"] >= off["jfi"] - 0.10
    # At real incast scale CC is what prevents the collapse: far fewer
    # drops, better goodput, and restored fairness (paper: tail x4.9
    # and JFI x2 worse with CC off at 128 connections).
    big_on = results[(CONN_COUNTS[-1], True)]
    big_off = results[(CONN_COUNTS[-1], False)]
    assert big_on["drops"] < 0.25 * max(1, big_off["drops"])
    assert big_on["goodput"] > 1.5 * big_off["goodput"]
    assert big_on["jfi"] > big_off["jfi"] + 0.2
