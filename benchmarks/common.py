"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark builds a testbed with one server host (any stack) and
one or more client hosts (FlexTOE clients by default, so the stack under
test is always the *server* side, as in the paper), drives a workload
for a fixed window of simulated time, and reports paper-style rows.

Simulated windows are milliseconds rather than the paper's seconds —
the simulator is cycle-accurate-ish but not fast — so absolute numbers
are far below a 40 Gbps testbed. Shapes (orderings, ratios, knees) are
what the assertions check; EXPERIMENTS.md records both.
"""

from repro.apps import EchoServer, MemcachedServer, MemtierClient
from repro.apps.rpc import ClosedLoopClient, OpenLoopClient
from repro.baselines import add_chelsio_host, add_linux_host, add_tas_host
from repro.harness import Testbed

STACKS = ("flextoe", "linux", "tas", "chelsio")

#: TAS reserves this many machine cores for its fast path; apps must
#: not be pinned there.
TAS_FASTPATH_CORES = 2


def add_server(bed, stack, name="server", n_cores=20, pipeline_config=None, cp_kwargs=None):
    if stack == "flextoe":
        return bed.add_flextoe_host(
            name, n_cores=n_cores, pipeline_config=pipeline_config, cp_kwargs=cp_kwargs
        )
    if stack == "linux":
        return add_linux_host(bed, name, n_cores=n_cores)
    if stack == "tas":
        return add_tas_host(bed, name, n_cores=n_cores, fast_path_cores=TAS_FASTPATH_CORES)
    if stack == "chelsio":
        return add_chelsio_host(bed, name, n_cores=n_cores)
    raise ValueError(stack)


def add_client(bed, name="client", stack="flextoe", n_cores=20):
    return add_server(bed, stack, name=name, n_cores=n_cores)


def client_context(host, index):
    """A context on a core the stack allows apps to use."""
    stack = "tas" if getattr(getattr(host, "personality", None), "name", "") == "tas" else ""
    cores = usable_cores(host, stack or "any")
    return host.new_context(cores[index % len(cores)])


def usable_cores(host, stack):
    """Core indices an application may use on this host."""
    total = len(host.machine.cores)
    if stack == "tas":
        return list(range(total - TAS_FASTPATH_CORES))
    return list(range(total))


class EchoBench:
    """Echo/RPC saturation: N connections against one echo server."""

    def __init__(
        self,
        server_stack,
        n_connections=8,
        request_size=64,
        response_size=None,
        pipeline=8,
        server_cores=1,
        app_delay_cycles=0,
        client_hosts=2,
        client_stack="flextoe",
        seed=1,
        pipeline_config=None,
        cp_kwargs=None,
        switch_kwargs=None,
        loss=None,
    ):
        self.bed = Testbed(seed=seed, **(switch_kwargs or {}))
        if loss is not None:
            self.bed.switch.loss = loss(self.bed.rng.stream("loss"))
        self.server_stack = server_stack
        self.server = add_server(
            self.bed, server_stack, n_cores=20, pipeline_config=pipeline_config, cp_kwargs=cp_kwargs
        )
        self.clients = [
            add_client(self.bed, "client%d" % i, stack=client_stack) for i in range(client_hosts)
        ]
        self.bed.seed_all_arp()
        self.request_size = request_size
        self.response_size = response_size if response_size is not None else request_size
        self.servers = []
        cores = usable_cores(self.server, server_stack)
        for i in range(server_cores):
            ctx = self.server.new_context(cores[i % len(cores)])
            echo = EchoServer(
                ctx,
                7000 + i,
                request_size=request_size,
                response_size=response_size,
                app_delay_cycles=app_delay_cycles,
            )
            self.bed.sim.process(echo.run(), name="echo%d" % i)
            self.servers.append(echo)
        self.rpc_clients = []
        for i in range(n_connections):
            client_host = self.clients[i % len(self.clients)]
            ctx = client_context(client_host, (i // len(self.clients)) % 16)
            port = 7000 + (i % server_cores)
            rpc = OpenLoopClient(
                ctx,
                self.server.ip,
                port,
                self.request_size,
                self.response_size,
                pipeline=pipeline,
            )
            self.bed.sim.process(rpc.run(), name="rpc%d" % i)
            self.rpc_clients.append(rpc)

    def run(self, warmup_ns=300_000, window_ns=1_500_000):
        sim = self.bed.sim
        sim.run(until=warmup_ns)
        for rpc in self.rpc_clients:
            rpc.meter.reset()
        sim.run(until=warmup_ns + window_ns)
        for rpc in self.rpc_clients:
            rpc.stop = True
        ops = sum(rpc.meter.events for rpc in self.rpc_clients)
        nbytes = sum(rpc.meter.bytes for rpc in self.rpc_clients)
        return {
            "ops_per_sec": ops * 1e9 / window_ns,
            "goodput_bps": nbytes * 8 * 1e9 / window_ns,
            "completed": ops,
            "per_conn_ops": [rpc.meter.events for rpc in self.rpc_clients],
        }


class MemcachedBench:
    """Memcached + memtier (the §2.1/§5.1 workload)."""

    def __init__(
        self,
        server_stack,
        server_cores=1,
        clients_per_core=8,
        client_hosts=2,
        key_size=32,
        value_size=32,
        seed=1,
    ):
        self.bed = Testbed(seed=seed)
        self.server_stack = server_stack
        self.server = add_server(self.bed, server_stack)
        self.client_hosts = [add_client(self.bed, "client%d" % i) for i in range(client_hosts)]
        self.bed.seed_all_arp()
        store = {}
        cores = usable_cores(self.server, server_stack)
        self.mc_servers = []
        for i in range(server_cores):
            ctx = self.server.new_context(cores[i % len(cores)])
            mc = MemcachedServer(ctx, 11211 + i, store=store)
            self.bed.sim.process(mc.run(), name="mc%d" % i)
            self.mc_servers.append(mc)
        self.tiers = []
        n_clients = server_cores * clients_per_core
        for i in range(n_clients):
            host = self.client_hosts[i % len(self.client_hosts)]
            ctx = host.new_context((i // len(self.client_hosts)) % 16)
            tier = MemtierClient(
                ctx,
                self.server.ip,
                11211 + (i % server_cores),
                key_size=key_size,
                value_size=value_size,
                key_space=100,
                seed=i,
                warmup=0,
            )
            self.bed.sim.process(tier.run(), name="memtier%d" % i)
            self.tiers.append(tier)

    def run(self, warmup_ns=400_000, window_ns=1_500_000):
        sim = self.bed.sim
        sim.run(until=warmup_ns)
        for tier in self.tiers:
            tier.meter.reset()
            tier.histogram = type(tier.histogram)()
        sim.run(until=warmup_ns + window_ns)
        for tier in self.tiers:
            tier.stop = True
        ops = sum(t.meter.events for t in self.tiers)
        merged = self.tiers[0].histogram
        for tier in self.tiers[1:]:
            merged.merge(tier.histogram)
        return {
            "ops_per_sec": ops * 1e9 / window_ns,
            "latency": merged,
            "completed": ops,
        }


def closed_loop_latency(server_stack, request_size, response_size, n_requests=300, seed=1, client_stack="flextoe"):
    """Single-connection ping-pong RTT distribution (Figs 10/12)."""
    bed = Testbed(seed=seed)
    server = add_server(bed, server_stack)
    client = add_client(bed, "client", stack=client_stack)
    bed.seed_all_arp()
    cores = usable_cores(server, server_stack)
    echo = EchoServer(
        server.new_context(cores[0]),
        7000,
        request_size=request_size,
        response_size=response_size,
    )
    bed.sim.process(echo.run(), name="echo")
    client_cores = usable_cores(client, client_stack)
    rpc = ClosedLoopClient(
        client.new_context(client_cores[0]),
        server.ip,
        7000,
        request_size,
        response_size,
        warmup=10,
    )
    proc = bed.sim.process(rpc.run(n_requests), name="rpc")
    bed.sim.run(until=proc)
    return rpc.histogram
