"""Ablations of FlexTOE design choices beyond Table 3 (DESIGN.md §6).

* ACK-every-segment vs delayed ACKs — the paper notes (§5.2) that
  delayed ACKs would improve bidirectional bulk throughput: each
  incoming segment currently generates an ACK, quadrupling packets/s
  for echo-style flows.
* One out-of-order interval vs dropping all OOO segments — the single
  interval is what lets go-back-N recover without resending everything
  the receiver already has.
"""

from common import EchoBench
from conftest import run_once
from repro.flextoe.config import PipelineConfig
from repro.harness.report import Table
from repro.net import LossInjector


def measure_ack_policy(delayed_segments):
    config = PipelineConfig.full()
    config.ack_every_segment = delayed_segments <= 1
    config.delayed_ack_segments = delayed_segments
    bench = EchoBench(
        "flextoe",
        n_connections=8,
        request_size=8 * 1024,
        pipeline=4,
        server_cores=2,
        client_hosts=2,
        pipeline_config=config,
    )
    result = bench.run(warmup_ns=1_000_000, window_ns=4_000_000)
    server_dp = bench.server.nic.datapath
    acks = sum(stage.acks_built for stage in server_dp.post_stages)
    return result["goodput_bps"], acks


def measure_ooo_policy(loss_rate):
    bench = EchoBench(
        "flextoe",
        n_connections=8,
        request_size=16 * 1024,
        response_size=32,
        pipeline=2,
        server_cores=1,
        client_hosts=2,
        loss=lambda rng: LossInjector(rng, probability=loss_rate),
    )
    result = bench.run(warmup_ns=2_000_000, window_ns=12_000_000)
    server_dp = bench.server.nic.datapath
    return result["goodput_bps"]


def test_ablation_ack_policy(benchmark):
    rows = run_once(
        benchmark,
        lambda: {d: measure_ack_policy(d) for d in (1, 2)},
    )
    table = Table(
        "Ablation: ACK policy on bidirectional bulk",
        ["delayed-ack segments", "goodput (Mbps)", "ACKs built"],
    )
    for d, (goodput, acks) in sorted(rows.items()):
        table.add_row(d, "%.1f" % (goodput / 1e6), acks)
    table.show()
    # Matching the paper's note: acking every segment is the default and
    # correct; a (simplified) delayed-ACK variant cuts ACK load.
    assert rows[2][1] < rows[1][1]
    # Throughput must not collapse under either policy.
    assert rows[2][0] > 0.5 * rows[1][0]


def test_ablation_ooo_interval(benchmark):
    goodput = run_once(benchmark, lambda: measure_ooo_policy(0.01))
    table = Table("Ablation: loss recovery with one OOO interval", ["loss", "goodput (Mbps)"])
    table.add_row("1%", "%.1f" % (goodput / 1e6))
    table.show()
    # The interval keeps bulk goodput alive under 1 % loss.
    assert goodput > 10e6
