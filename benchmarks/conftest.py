"""Benchmark harness configuration.

Each benchmark reproduces one of the paper's tables or figures. The
experiment bodies are deterministic simulations, so they run exactly
once inside pytest-benchmark (``pedantic`` with one round) — the
"benchmark" timing is the simulation's wall cost; the scientific output
is the printed paper-style table plus shape assertions.
"""

import sys
from pathlib import Path

# Make `common` importable when pytest runs from the repo root.
sys.path.insert(0, str(Path(__file__).parent))


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
