"""Figure 16: throughput distribution of bulk flows at line rate.

Many bulk connections share one 40 Gbps path; the per-connection
throughput distribution shows scheduler fairness.

Paper: FlexTOE's median tracks fair share with a 1st percentile at
0.67x of the median and JFI 0.98 at 2K connections; Linux's fairness
collapses past 256 connections (JFI 0.36 at 2K), with its median below
FlexTOE's 1st percentile above 1K connections.

Scaled: {8, 32, 96} bulk senders, millisecond window.
"""

from common import EchoBench
from conftest import run_once
from repro.harness.report import Table
from repro.stats import jains_fairness_index

CONN_COUNTS = (8, 32, 96)


def measure(stack, n_connections):
    bench = EchoBench(
        stack,
        n_connections=n_connections,
        request_size=8 * 1024,
        response_size=32,
        pipeline=4,
        server_cores=4,
        client_hosts=4,
        client_stack=stack,
    )
    result = bench.run(warmup_ns=1_500_000, window_ns=4_000_000)
    per_conn = sorted(result["per_conn_ops"])
    jfi = jains_fairness_index(per_conn)
    median = per_conn[len(per_conn) // 2]
    p1 = per_conn[max(0, len(per_conn) // 100)]
    return {"jfi": jfi, "median": median, "p1": p1, "total": sum(per_conn)}


def sweep():
    return {
        stack: {n: measure(stack, n) for n in CONN_COUNTS} for stack in ("flextoe", "linux")
    }


def test_fig16_fairness(benchmark):
    results = run_once(benchmark, sweep)

    table = Table(
        "Figure 16: bulk-flow fairness (per-conn RPCs in window)",
        ["stack", "conns", "median", "p1", "JFI"],
    )
    for stack in ("flextoe", "linux"):
        for n in CONN_COUNTS:
            row = results[stack][n]
            table.add_row(stack, n, row["median"], row["p1"], "%.3f" % row["jfi"])
    table.show()

    big = CONN_COUNTS[-1]
    # FlexTOE's scheduler keeps fairness high at every scale.
    for n in CONN_COUNTS:
        assert results["flextoe"][n]["jfi"] > 0.90
    # The 1st percentile stays within ~3x of the median for FlexTOE.
    flex = results["flextoe"][big]
    assert flex["p1"] > 0.33 * flex["median"]
    # Linux fairness degrades with connection count and ends below
    # FlexTOE's.
    assert results["linux"][big]["jfi"] < results["flextoe"][big]["jfi"]
