"""Figure 13: per-connection throughput with large RPCs.

Methodology note: the client side is a fixed FlexTOE traffic source so
the server stack under test is the only variable (our matched-pair
runs wash out the uni/echo asymmetry; see EXPERIMENTS.md).

A single connection carries a large request; (a) the server replies
32 B ("short response" — unidirectional streaming), (b) the server
echoes the message back (bidirectional).

Paper: in (a) the Chelsio 100G ASIC wins by ~20 % (streaming-optimized);
in (b) it loses ~20-25 % to FlexTOE, whose pipeline parallelizes
per-connection processing while FlexTOE's ACK-per-segment costs it some
bidirectional headroom. Other stacks cannot parallelize per-connection
processing at all.

Scaled: RPC sizes {64 KB, 256 KB}.
"""

from common import STACKS, Testbed, add_client, add_server, usable_cores
from conftest import run_once
from repro.apps import EchoServer
from repro.apps.rpc import ClosedLoopClient
from repro.harness.report import Table

SIZES = (64 * 1024, 256 * 1024)


def measure(stack, size, echo_back):
    bed = Testbed(seed=2)
    server = add_server(bed, stack)
    client = add_client(bed, "client")  # fixed fast source; server stack is the variable
    bed.seed_all_arp()
    cores = usable_cores(server, stack)
    if echo_back:
        request_size, response_size = size, size
    else:
        # Unidirectional streaming: the server under test is the bulk
        # sender (32 B request -> size B response), so the fixed client
        # only sinks the stream.
        request_size, response_size = 32, size
    echo = EchoServer(
        server.new_context(cores[0]), 7000, request_size=request_size, response_size=response_size
    )
    bed.sim.process(echo.run(), name="echo")
    rpc = ClosedLoopClient(
        client.new_context(0), server.ip, 7000, request_size, response_size, warmup=1
    )
    proc = bed.sim.process(rpc.run(8), name="rpc")
    bed.sim.run(until=proc)
    bed.sim.run(until=bed.sim.now + 1)
    if rpc.meter.events == 0:
        return 0.0
    return rpc.meter.bits_per_sec


def sweep():
    results = {}
    for stack in STACKS:
        for size in SIZES:
            results[(stack, size, "short")] = measure(stack, size, echo_back=False)
            results[(stack, size, "echo")] = measure(stack, size, echo_back=True)
    return results


def test_fig13_large_rpc(benchmark):
    results = run_once(benchmark, sweep)

    table = Table(
        "Figure 13: single-connection large-RPC goodput (Gbps)",
        ["stack", "RPC size", "short-response", "echo"],
    )
    for stack in STACKS:
        for size in SIZES:
            table.add_row(
                stack,
                size,
                "%.2f" % (results[(stack, size, "short")] / 1e9),
                "%.2f" % (results[(stack, size, "echo")] / 1e9),
            )
    table.show()

    big = SIZES[-1]
    # (a) Unidirectional streaming is the ASIC TOE's strength: Chelsio
    # stays within ~30 % of FlexTOE and clearly beats the software
    # stacks. (Deviation: the paper's +20 % Chelsio lead over FlexTOE
    # does not reproduce against our 40 Gbps sink — see EXPERIMENTS.md.)
    assert results[("chelsio", big, "short")] > 0.70 * results[("flextoe", big, "short")]
    assert results[("chelsio", big, "short")] > results[("tas", big, "short")]
    assert results[("chelsio", big, "short")] > 2 * results[("linux", big, "short")]
    # (b) Echo: FlexTOE overtakes Chelsio (the paper's fig 13b result) —
    # its pipeline parallelizes one connection's bidirectional stream.
    assert results[("flextoe", big, "echo")] > results[("chelsio", big, "echo")]
    # FlexTOE beats the software stacks in both modes at the large size.
    assert results[("flextoe", big, "short")] > results[("linux", big, "short")]
    assert results[("flextoe", big, "echo")] > results[("linux", big, "echo")]
