"""Table 2: throughput with flexible extensions.

Paper (saturated small-RPC data-path, mOps):
  baseline 11.35; statistics+profiling (48 tracepoints) 8.67 (-24 %);
  tcpdump no-filter 6.52 (-43 %); XDP null 10.87 (-4 %);
  XDP vlan-strip 10.83 (~null).

Same experiment here: a saturated 64 B echo server on FlexTOE with each
extension loaded, relative throughput compared against the baseline.
"""

from common import EchoBench
from conftest import run_once
from repro.flextoe.config import PipelineConfig
from repro.flextoe.module import ModuleChain
from repro.flextoe.tcpdump import PacketCapture
from repro.harness.report import Table
from repro.xdp import XdpAdapter
from repro.xdp.builtins import NullProgram, VlanStripProgram


def run_build(label):
    pipeline_config = PipelineConfig.full()
    kwargs = {}
    if label == "profiling":
        pipeline_config.tracepoints_enabled = True
    bench = EchoBench(
        "flextoe",
        n_connections=32,
        request_size=64,
        pipeline=12,
        server_cores=4,
        client_hosts=4,
        pipeline_config=pipeline_config,
    )
    nic = bench.server.nic
    if label == "profiling":
        nic.tracepoints.enable_all()
    elif label == "tcpdump":
        nic.datapath.capture = PacketCapture(packet_filter=None, limit=50_000)
    elif label == "xdp-null":
        nic.datapath.ingress_modules = ModuleChain([XdpAdapter(py_program=NullProgram())])
    elif label == "xdp-vlan-strip":
        nic.datapath.ingress_modules = ModuleChain([XdpAdapter(py_program=VlanStripProgram())])
    result = bench.run(window_ns=1_200_000)
    return result["ops_per_sec"]


BUILDS = ("baseline", "profiling", "tcpdump", "xdp-null", "xdp-vlan-strip")


def test_table2_extensions(benchmark):
    results = run_once(benchmark, lambda: {label: run_build(label) for label in BUILDS})

    base = results["baseline"]
    table = Table(
        "Table 2: performance with flexible extensions",
        ["build", "ops/s", "relative"],
    )
    for label in BUILDS:
        table.add_row(label, "%.0f" % results[label], "%.2f" % (results[label] / base))
    table.show()

    # Profiling costs real throughput, but far less than full logging.
    assert results["profiling"] < 0.95 * base
    assert results["tcpdump"] < results["profiling"]
    assert results["tcpdump"] > 0.12 * base
    # Null XDP and vlan-strip overheads are small (paper: ~4 %).
    assert results["xdp-null"] > 0.85 * base
    assert results["xdp-vlan-strip"] > 0.85 * base
    assert abs(results["xdp-vlan-strip"] - results["xdp-null"]) < 0.12 * base
