"""Micro-benchmarks backing individual claims in the paper's text.

* §2.3: computing an ECN-ratio gradient takes ~1,500 cycles (1.9 us) on
  an FPC — the motivating example for keeping congestion control on the
  control plane.
* §5.1: connection splicing sustains millions of packets per second on
  idle FPCs (paper: 6.4 Mpps, line rate at MTU size).
* §4: the flow scheduler converts rates to deadlines without division
  (Q8 multiply only).
"""

from conftest import run_once
from repro.flextoe.scheduler import INTERVAL_Q8_SHIFT, rate_to_interval_q8
from repro.harness.report import Table
from repro.nfp import Fpc
from repro.proto import make_tcp_frame, str_to_ip
from repro.sim import Simulator
from repro.xdp import XdpAdapter
from repro.xdp.builtins import SpliceEntry, SpliceProgram, splice_key

ECN_GRADIENT_CYCLES = 1500  # paper's measured FPC cost


def measure_ecn_gradient_ns():
    """Time the paper's 1,500-cycle gradient computation on one FPC."""
    sim = Simulator()
    fpc = Fpc(sim, "fpc0")
    finished = {}

    def program(thread):
        yield from thread.compute(ECN_GRADIENT_CYCLES)
        finished["at"] = sim.now

    fpc.spawn(program)
    sim.run()
    return finished["at"]


def measure_splice_rate():
    """Splicing executed back-to-back on idle FPC threads."""
    sim = Simulator()
    splice = SpliceProgram()
    adapter = XdpAdapter(py_program=splice)
    src = str_to_ip("10.0.0.1")
    dst = str_to_ip("10.0.0.2")
    key = splice_key(src, dst, 1000, 2000)
    splice.install(key, SpliceEntry(0xCC, str_to_ip("10.0.0.3"), 7, 8, 10, 20))

    n_packets = 2000
    fpcs = [Fpc(sim, "fpc%d" % i) for i in range(3)]  # the 3 idle FPCs/island
    done = {"count": 0}

    def worker(thread):
        while done["count"] < n_packets:
            done["count"] += 1
            frame = make_tcp_frame(0xA, 0xB, src, dst, 1000, 2000, payload=b"")
            adapter.handle(frame, None)
            yield from thread.compute(adapter.cost_cycles)

    for fpc in fpcs:
        for _ in range(8):
            fpc.spawn(worker)
    sim.run()
    return n_packets * 1e9 / sim.now


def test_misc_microbenchmarks(benchmark):
    gradient_ns, splice_pps = run_once(
        benchmark, lambda: (measure_ecn_gradient_ns(), measure_splice_rate())
    )

    table = Table("Micro-benchmarks", ["metric", "measured", "paper"])
    table.add_row("ECN gradient on FPC", "%.2f us" % (gradient_ns / 1e3), "1.9 us")
    table.add_row("splice rate (3 idle FPCs)", "%.1f Mpps" % (splice_pps / 1e6), "6.4 Mpps")
    table.show()

    # 1,500 cycles at 800 MHz = 1.875 us (the paper's 1.9 us).
    assert abs(gradient_ns - 1875) <= 5
    # Splicing sustains multi-Mpps on idle FPCs.
    assert splice_pps > 3e6


def test_scheduler_interval_is_division_free():
    # Control plane divides; the data-path multiplies Q8 intervals.
    interval = rate_to_interval_q8(1_250_000_000)  # 10 Gbps in bytes/s
    assert interval == (10**9 << INTERVAL_Q8_SHIFT) // 1_250_000_000
    # 1448 bytes at that interval: ~1158 ns (10 Gbps pacing).
    delay = (1448 * interval) >> INTERVAL_Q8_SHIFT
    assert 1100 < delay < 1220
    assert rate_to_interval_q8(0) == 0  # unlimited -> RR bypass
