"""Figure 12: median, 99p and 99.99p RPC RTT vs message size.

Paper: for small messages FlexTOE's median (20 us) is ~1.4x Chelsio's
(14 us) and 1.25x TAS's (16 us) — the FPC pipeline costs median latency —
but FlexTOE's tail is up to 3.2x smaller than Chelsio's and its latency
stays nearly flat as the RPC grows past the MSS (2 KB), where its
fine-grained parallelism hides multi-segment processing: 22 % lower
median and 50 % lower tail than TAS at 2 KB.

Scaled: 600 samples/point; the recorded tail is p99.9.
"""

from common import STACKS, closed_loop_latency
from conftest import run_once
from repro.harness.report import Table

SIZES = (64, 256, 1024, 2048)


def sweep():
    results = {}
    for stack in STACKS:
        for size in SIZES:
            hist = closed_loop_latency(stack, request_size=size, response_size=size, n_requests=600)
            results[(stack, size)] = (
                hist.percentile(50),
                hist.percentile(99),
                hist.percentile(99.9),
            )
    return results


def test_fig12_rpc_latency(benchmark):
    results = run_once(benchmark, sweep)

    table = Table(
        "Figure 12: RPC RTT vs message size (us)",
        ["stack", "size", "p50", "p99", "p99.9"],
    )
    for stack in STACKS:
        for size in SIZES:
            p50, p99, p999 = results[(stack, size)]
            table.add_row(stack, size, "%.1f" % (p50 / 1e3), "%.1f" % (p99 / 1e3), "%.1f" % (p999 / 1e3))
    table.show()

    # Small-RPC medians: FlexTOE above the ASIC TOE but within ~2x.
    assert results[("flextoe", 64)][0] < 2.5 * results[("chelsio", 64)][0]
    # FlexTOE tail latency beats Chelsio's and Linux's at every size.
    for size in SIZES:
        assert results[("flextoe", size)][2] < results[("chelsio", size)][2]
        assert results[("flextoe", size)][2] < results[("linux", size)][2]
    # FlexTOE stays nearly flat up to 2 KB (multi-segment RPCs pipelined):
    # median growth from 64 B to 2 KB bounded.
    flextoe_growth = results[("flextoe", 2048)][0] / results[("flextoe", 64)][0]
    assert flextoe_growth < 2.2
    # At 2 KB (> MSS) FlexTOE's tail stays well under TAS's (paper:
    # 50 % lower tail). Deviation from the paper: our TAS keeps a lower
    # 2 KB *median* than FlexTOE (see EXPERIMENTS.md).
    assert results[("flextoe", 2048)][2] < 0.85 * results[("tas", 2048)][2]
