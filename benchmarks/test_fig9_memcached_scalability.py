"""Figure 9: Memcached throughput scalability vs server cores.

Paper: FlexTOE reaches up to 1.6x TAS, 4.9x Chelsio, and 5.5x Linux;
FlexTOE and TAS scale with cores (per-core context queues) while Linux
and Chelsio are held back by kernel locks/syscalls. The Agilio CX
becomes the bottleneck around 12 host cores.

Scaled here to {1, 2, 4, 8} cores and millisecond windows.
"""

from common import STACKS, MemcachedBench
from conftest import run_once
from repro.harness.report import Table

CORE_COUNTS = (1, 2, 4, 8)


def measure(stack, cores):
    bench = MemcachedBench(stack, server_cores=cores, clients_per_core=24)
    result = bench.run(window_ns=1_000_000)
    return result["ops_per_sec"]


def sweep():
    return {
        stack: {cores: measure(stack, cores) for cores in CORE_COUNTS} for stack in STACKS
    }


def test_fig9_memcached_scalability(benchmark):
    results = run_once(benchmark, sweep)

    table = Table(
        "Figure 9: Memcached throughput vs server cores (ops/s)",
        ["stack"] + ["{} cores".format(c) for c in CORE_COUNTS],
    )
    for stack in STACKS:
        table.add_row(stack, *("%.0f" % results[stack][c] for c in CORE_COUNTS))
    table.show()

    peak = {stack: max(results[stack].values()) for stack in STACKS}
    # FlexTOE outperforms every other stack at peak.
    assert peak["flextoe"] > peak["tas"]
    assert peak["flextoe"] > 2.5 * peak["chelsio"]
    assert peak["flextoe"] > 2.5 * peak["linux"]
    # FlexTOE and TAS scale with cores; Linux scales poorly (kernel lock).
    assert results["flextoe"][4] > 1.5 * results["flextoe"][1]
    # ... until the Agilio CX becomes the compute bottleneck (paper: at
    # ~12 host cores; here the smaller simulated pipeline caps earlier).
    assert results["flextoe"][8] < 2.0 * results["flextoe"][4]
    assert results["tas"][4] > 2.0 * results["tas"][1]
    # Linux collapses under lock contention past its scaling knee...
    assert results["linux"][8] <= results["linux"][4]
    # ...while the kernel-bypass designs keep scaling until their own
    # bottleneck (TAS fast path / FlexTOE NIC pipeline).
    linux_scaling = results["linux"][8] / results["linux"][1]
    tas_scaling = results["tas"][8] / results["tas"][1]
    assert tas_scaling > 1.5 * linux_scaling
