"""Table 1: per-request CPU impact of TCP processing.

Single-threaded Memcached under memtier load (32 B keys/values); the
server machine's cycle accounting is divided by completed requests to
give kilocycles per request-response pair, split by category — the
paper's NIC driver / TCP stack / POSIX sockets / application / other
rows.

Paper (kc/request):  Linux 11.04, Chelsio 8.89, TAS 3.34, FlexTOE 1.67;
FlexTOE spends 0 in driver+TCP and the application share doubles vs TAS.
"""

from common import STACKS, MemcachedBench
from conftest import run_once
from repro.harness.report import Table

CATEGORIES = ("driver", "tcp", "sockets", "app", "other")


def measure(stack):
    bench = MemcachedBench(stack, server_cores=1, clients_per_core=8)
    result = bench.run(window_ns=1_200_000)
    acct = bench.server.machine.aggregate_accounting()
    requests = max(1, result["completed"])
    row = {cat: acct.cycles.get(cat, 0) / requests / 1000.0 for cat in CATEGORIES}
    row["total"] = sum(row.values())
    row["ops"] = result["ops_per_sec"]
    return row


def test_table1_cpu_breakdown(benchmark):
    rows = run_once(benchmark, lambda: {stack: measure(stack) for stack in STACKS})

    table = Table(
        "Table 1: per-request host CPU impact (kilocycles/request)",
        ["stack", "driver", "tcp", "sockets", "app", "other", "total"],
    )
    for stack in STACKS:
        row = rows[stack]
        table.add_row(
            stack,
            "%.2f" % row["driver"],
            "%.2f" % row["tcp"],
            "%.2f" % row["sockets"],
            "%.2f" % row["app"],
            "%.2f" % row["other"],
            "%.2f" % row["total"],
        )
    table.show()

    flextoe, linux, tas, chelsio = rows["flextoe"], rows["linux"], rows["tas"], rows["chelsio"]
    # FlexTOE eliminates all host driver + TCP-stack cycles.
    assert flextoe["driver"] == 0.0
    assert flextoe["tcp"] == 0.0
    # Total host cost ordering: FlexTOE < TAS < Chelsio <= Linux-ish.
    assert flextoe["total"] < tas["total"] < chelsio["total"]
    assert chelsio["total"] < linux["total"] * 1.15
    # FlexTOE halves the per-request host cycles vs TAS (paper: 1.67 vs 3.34).
    assert flextoe["total"] < 0.75 * tas["total"]
    # Application share of total: FlexTOE roughly doubles TAS (53% vs 26%).
    app_share_flextoe = flextoe["app"] / flextoe["total"]
    app_share_tas = tas["app"] / tas["total"]
    assert app_share_flextoe > 1.4 * app_share_tas
    # Linux and Chelsio burn most cycles outside the application.
    assert linux["app"] / linux["total"] < 0.30
    assert chelsio["app"] / chelsio["total"] < 0.35
