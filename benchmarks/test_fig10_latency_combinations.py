"""Figure 10: RPC latency for different server-client stack combinations.

Single-threaded Memcached-style ping-pong between every client stack and
every server stack. Paper: FlexTOE consistently provides the lowest
median and tail latency across combinations even though its *minimum*
latency is higher in some cases (wimpy FPCs + pipelining); Linux's
median is >= 5x the others.

Scaled: 64-byte echo RPCs, 200 samples per combination.
"""

from common import STACKS, closed_loop_latency
from conftest import run_once
from repro.harness.report import Table


def sweep():
    results = {}
    for server_stack in STACKS:
        for client_stack in ("flextoe", "linux"):
            hist = closed_loop_latency(
                server_stack, request_size=64, response_size=64, n_requests=200,
                client_stack=client_stack,
            )
            results[(server_stack, client_stack)] = hist.summary()
    return results


def test_fig10_latency_combinations(benchmark):
    results = run_once(benchmark, sweep)

    table = Table(
        "Figure 10: RPC RTT by stack combination (us)",
        ["server", "client", "min", "p50", "p99", "max"],
    )
    for (server_stack, client_stack), (mn, p50, p99, _p9999, mx) in sorted(results.items()):
        table.add_row(
            server_stack,
            client_stack,
            "%.1f" % (mn / 1000),
            "%.1f" % (p50 / 1000),
            "%.1f" % (p99 / 1000),
            "%.1f" % (mx / 1000),
        )
    table.show()

    def p50(server, client="flextoe"):
        return results[(server, client)][1]

    def p99(server, client="flextoe"):
        return results[(server, client)][2]

    # Linux server median is far above the kernel-bypass/offload stacks.
    assert p50("linux") > 2.5 * p50("flextoe")
    assert p50("linux") > 2.5 * p50("tas")
    # FlexTOE tail beats Linux and Chelsio tails.
    assert p99("flextoe") < p99("linux")
    assert p99("flextoe") < p99("chelsio")
    # FlexTOE's minimum may exceed Chelsio's (wimpy FPCs + pipelining),
    # but its median stays competitive (within 2x).
    assert p50("flextoe") < 2 * p50("chelsio")
