"""Table 3: FlexTOE data-path parallelism breakdown.

The echo benchmark (64 connections, one 2 KB RPC in flight each) run
against progressively more parallel data-path deployments:

  baseline (run-to-completion, one FPC thread)
  + pipelining (stages on dedicated FPCs)
  + intra-FPC parallelism (8 hardware threads per FPC)
  + replicated pre/post stages (with sequencing/reordering)
  + flow-group islands (4 protocol islands)

Paper: 1x -> 46x -> 103x -> 140x -> 286x throughput, with p50 latency
falling 1,179 us -> 46 us and p99.99 6,929 us -> 58 us. The absolute
factors depend on the NIC's memory latencies; the shape — each level of
parallelism contributing a significant multiple — is the claim.
"""

from common import EchoBench
from conftest import run_once
from repro.flextoe.config import PipelineConfig
from repro.harness.report import Table

DESIGNS = (
    ("baseline", PipelineConfig.baseline_run_to_completion),
    ("+ pipelining", PipelineConfig.pipelined_single_thread),
    ("+ intra-FPC parallelism", PipelineConfig.with_intra_fpc_parallelism),
    ("+ replicated pre/post", PipelineConfig.with_replicated_pre_post),
    ("+ flow-group islands", PipelineConfig.full),
)


def measure(config_factory):
    bench = EchoBench(
        "flextoe",
        n_connections=64,
        request_size=2048,
        pipeline=1,
        server_cores=4,
        client_hosts=4,
        pipeline_config=config_factory(),
    )
    result = bench.run(warmup_ns=700_000, window_ns=1_500_000)
    return result["goodput_bps"]


def test_table3_parallelism(benchmark):
    results = run_once(benchmark, lambda: [(label, measure(factory)) for label, factory in DESIGNS])

    base = max(1.0, results[0][1])
    table = Table(
        "Table 3: data-path parallelism breakdown",
        ["design", "goodput (Mbps)", "speedup"],
    )
    for label, goodput in results:
        table.add_row(label, "%.1f" % (goodput / 1e6), "%.1fx" % (goodput / base))
    table.show()

    throughputs = [goodput for _label, goodput in results]
    # Each added level of parallelism improves throughput.
    for before, after in zip(throughputs, throughputs[1:]):
        assert after > before * 1.1, "a parallelism level failed to help"
    # Cumulative speedup is large (paper: 286x on hardware whose
    # baseline also ate scheduling pathologies our model omits; shape
    # target here: >12x).
    assert throughputs[-1] > 12 * throughputs[0]
    # Pipelining alone is the single biggest step (paper: 46x).
    steps = [after / before for before, after in zip(throughputs, throughputs[1:])]
    assert steps[0] == max(steps)
