"""Figure 14: connection scalability.

An increasing number of connections each keep a single 64 B RPC in
flight against a multi-threaded echo server — worst case for FlexTOE's
connection-state caches (a miss at every pipeline stage per segment).

Paper: up to 2K connections FlexTOE is 3.3x Linux; TAS is 1.5x FlexTOE
(host LLC beats NIC SRAM); FlexTOE declines ~24 % by 8K connections
(EMEM cache strain) and plateaus; Chelsio collapses under epoll cost.

Scaled: the CLS/EMEM cache capacities are shrunk 8x (CLS 64/island,
EMEM cache 1K records) so the paper's 2K/16K knees appear at 256/1K
connections, which is simulable: sweep {64, 256, 1024}.
"""

from common import STACKS, EchoBench
from conftest import run_once
from repro.flextoe.config import PipelineConfig
from repro.harness.report import Table

CONN_COUNTS = (64, 256, 1024)

#: Cache shrink factor (documented above; applied to FlexTOE only).
CLS_ENTRIES = 64
EMEM_RECORDS = 1024


def measure(stack, n_connections):
    pipeline_config = None
    if stack == "flextoe":
        pipeline_config = PipelineConfig.full()
        pipeline_config.state_cache_cls_entries = CLS_ENTRIES
        pipeline_config.emem_cache_records = EMEM_RECORDS
    bench = EchoBench(
        stack,
        n_connections=n_connections,
        request_size=64,
        pipeline=1,  # single RPC in flight per connection
        server_cores=4,
        client_hosts=4,
        pipeline_config=pipeline_config,
    )
    result = bench.run(warmup_ns=600_000, window_ns=1_200_000)
    return result["ops_per_sec"]


def sweep():
    return {
        stack: {n: measure(stack, n) for n in CONN_COUNTS} for stack in STACKS
    }


def test_fig14_connection_scalability(benchmark):
    results = run_once(benchmark, sweep)

    table = Table(
        "Figure 14: throughput vs connection count (ops/s)",
        ["stack"] + ["%d conns" % n for n in CONN_COUNTS],
    )
    for stack in STACKS:
        table.add_row(stack, *("%.0f" % results[stack][n] for n in CONN_COUNTS))
    table.show()

    small, mid, large = CONN_COUNTS
    # In the cached regime FlexTOE leads Linux by a wide margin.
    assert results["flextoe"][mid] > 2.0 * results["linux"][mid]
    # TAS's host LLC makes it immune to connection count (the paper's
    # explanation for TAS's lead on this workload). Deviation: in our
    # model TAS does not overtake FlexTOE in absolute terms because its
    # fast path is calibrated against Fig 9 (see EXPERIMENTS.md).
    assert results["tas"][large] > 0.9 * results["tas"][small]
    # FlexTOE declines once connections spill the CLS cache (paper:
    # -24 % by 8K), but plateaus rather than collapsing.
    decline = results["flextoe"][large] / results["flextoe"][small]
    assert 0.55 < decline < 0.95
    # Chelsio's epoll overhead hurts it as connections grow.
    assert results["chelsio"][large] < results["flextoe"][large]
