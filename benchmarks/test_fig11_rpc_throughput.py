"""Figure 11: RPC throughput for a saturated single-threaded server.

Many connections (open loop, pipelined) against a server that spends an
artificial 250 or 1,000 cycles of application work per RPC. RX and TX
roles are measured separately by swapping producer/consumer: in RX mode
clients send size-B requests and the server replies 32 B; in TX mode
clients send 32 B and the server replies size B.

Paper: with 250 cycles/RPC FlexTOE gives up to 4x Linux and 5.3x
Chelsio receiving, >7.6x both when sending; TAS and FlexTOE track
closely (the single application core is the bottleneck for both); at
2 KB both reach line rate. Gains remain >2.2x at 1,000 cycles/RPC.

Scaled: 32 connections, sizes {64, 512, 2048}.
"""

from common import STACKS, EchoBench
from conftest import run_once
from repro.harness.report import Table

SIZES = (64, 512, 2048)


def measure(stack, direction, size, app_delay):
    if direction == "rx":
        request_size, response_size = size, 32
    else:
        request_size, response_size = 32, size
    bench = EchoBench(
        stack,
        n_connections=32,
        request_size=request_size,
        response_size=response_size,
        pipeline=8,
        server_cores=1,
        app_delay_cycles=app_delay,
    )
    result = bench.run(window_ns=1_000_000)
    return result["ops_per_sec"]


def sweep():
    results = {}
    for stack in STACKS:
        for direction in ("rx", "tx"):
            for size in SIZES:
                results[(stack, direction, size, 250)] = measure(stack, direction, size, 250)
        # The higher app-cost point at the smallest size.
        results[(stack, "rx", 64, 1000)] = measure(stack, "rx", 64, 1000)
    return results


def test_fig11_rpc_throughput(benchmark):
    results = run_once(benchmark, sweep)

    table = Table(
        "Figure 11: saturated-server RPC throughput (ops/s)",
        ["stack", "dir", "size", "app cycles", "ops/s"],
    )
    for (stack, direction, size, delay), ops in sorted(results.items(), key=lambda kv: str(kv[0])):
        table.add_row(stack, direction, size, delay, "%.0f" % ops)
    table.show()

    def get(stack, direction="rx", size=64, delay=250):
        return results[(stack, direction, size, delay)]

    # FlexTOE far outpaces the kernel-based stacks in both directions.
    assert get("flextoe", "rx") > 2.5 * get("linux", "rx")
    assert get("flextoe", "rx") > 2.5 * get("chelsio", "rx")
    assert get("flextoe", "tx") > 2.5 * get("linux", "tx")
    assert get("flextoe", "tx") > 2.5 * get("chelsio", "tx")
    # TAS and FlexTOE track within ~2.5x at the app-bound sizes.
    for size in SIZES:
        ratio = get("flextoe", "rx", size) / get("tas", "rx", size)
        assert 0.5 < ratio < 3.0
    # Higher app cost shrinks everyone, but FlexTOE's lead persists >2x.
    assert get("flextoe", "rx", 64, 1000) > 2.0 * get("linux", "rx", 64, 1000)
    assert get("flextoe", "rx", 64, 1000) < get("flextoe", "rx", 64, 250)
