"""Figure 15: throughput under induced packet loss.

Random drops at the switch with fixed probability.

(a) 64 B echo across many flows, 8 RPCs pipelined per connection —
    paper: at 2 % loss FlexTOE is >=2x TAS and an order of magnitude
    above Linux/Chelsio (NIC-side ACK processing triggers retransmits
    sooner; predictable latency aids recovery).
(b) unidirectional bulk transfer over a few connections — paper:
    Chelsio collapses at ~1e-6 loss (RTO-only hardwired recovery);
    Linux is most robust (SACK + full reassembly); FlexTOE (go-back-N)
    degrades but stays above TAS (which drops all OOO segments).

Scaled: 24 echo flows / 4 bulk flows; rates {0, 0.1 %, 2 %}.
"""

from common import STACKS, EchoBench
from conftest import run_once
from repro.harness.report import Table
from repro.net import LossInjector

LOSS_RATES = (0.0, 0.001, 0.02)


def measure_echo(stack, loss_rate):
    bench = EchoBench(
        stack,
        n_connections=16,
        request_size=64,
        pipeline=8,
        server_cores=2,
        client_hosts=2,
        client_stack=stack,
        loss=lambda rng: LossInjector(rng, probability=loss_rate),
    )
    result = bench.run(warmup_ns=2_000_000, window_ns=10_000_000)
    return result["ops_per_sec"]


def measure_bulk(stack, loss_rate):
    bench = EchoBench(
        stack,
        n_connections=4,
        request_size=32 * 1024,
        response_size=32,
        pipeline=2,
        server_cores=1,
        client_hosts=2,
        client_stack=stack,
        loss=lambda rng: LossInjector(rng, probability=loss_rate),
    )
    result = bench.run(warmup_ns=2_000_000, window_ns=10_000_000)
    return result["goodput_bps"]


def sweep():
    echo = {(s, p): measure_echo(s, p) for s in STACKS for p in LOSS_RATES}
    bulk = {(s, p): measure_bulk(s, p) for s in STACKS for p in LOSS_RATES}
    return echo, bulk


def test_fig15_packet_loss(benchmark):
    echo, bulk = run_once(benchmark, sweep)

    table = Table(
        "Figure 15a: 64B echo ops/s vs loss rate",
        ["stack"] + ["%.3f%%" % (p * 100) for p in LOSS_RATES],
    )
    for stack in STACKS:
        table.add_row(stack, *("%.0f" % echo[(stack, p)] for p in LOSS_RATES))
    table.show()

    table = Table(
        "Figure 15b: bulk goodput (Mbps) vs loss rate",
        ["stack"] + ["%.3f%%" % (p * 100) for p in LOSS_RATES],
    )
    for stack in STACKS:
        table.add_row(stack, *("%.1f" % (bulk[(stack, p)] / 1e6) for p in LOSS_RATES))
    table.show()

    heavy = LOSS_RATES[-1]
    # (a) At 2% loss FlexTOE sustains more echo RPCs than everyone.
    assert echo[("flextoe", heavy)] > 1.15 * echo[("tas", heavy)]
    assert echo[("flextoe", heavy)] > 2 * echo[("linux", heavy)]
    assert echo[("flextoe", heavy)] > 2 * echo[("chelsio", heavy)]
    # (b) Chelsio's RTO-only recovery collapses under even light loss.
    def retention(stack, p):
        return bulk[(stack, p)] / max(1.0, bulk[(stack, 0.0)])

    assert retention("chelsio", 0.001) < 0.5
    # Linux (SACK + full reassembly) is the most loss-robust stack (the
    # paper's observation): clearly the best retention at 0.1 % loss,
    # and within noise of the best at 2 %.
    light = {s: retention(s, 0.001) for s in STACKS}
    assert light["linux"] == max(light.values())
    heavy_retains = {s: retention(s, heavy) for s in STACKS}
    assert heavy_retains["linux"] > 0.75 * max(heavy_retains.values())
    # The go-back-N stacks degrade but stay an order of magnitude above
    # the hardwired TOE. (Deviation: the paper has FlexTOE above TAS on
    # lossy bulk; our rate-based FlexTOE resends bigger windows — see
    # EXPERIMENTS.md.)
    assert bulk[("flextoe", heavy)] > 2 * bulk[("chelsio", heavy)]
    assert bulk[("tas", heavy)] > 2 * bulk[("chelsio", heavy)]
