"""Ablation: DCTCP vs TIMELY on FlexTOE's control plane (paper §3.4).

Both algorithms plug into the same rate loop; this bench runs the
shaped-bottleneck workload under each and compares goodput, drops, and
fairness — demonstrating the control plane's pluggable congestion
control (the paper implements exactly these two).
"""

from common import EchoBench
from conftest import run_once
from repro.control.cc import Dctcp, Timely
from repro.harness.report import Table
from repro.net.switch import SwitchPortConfig
from repro.stats import jains_fairness_index

SHAPED_BPS = 2_500_000_000


def measure(algo_name):
    algo = Dctcp() if algo_name == "dctcp" else Timely(t_low_us=20, t_high_us=200)
    bench = EchoBench(
        "flextoe",
        n_connections=12,
        request_size=32,
        response_size=8 * 1024,
        pipeline=2,
        server_cores=2,
        client_hosts=3,
        cp_kwargs={"cc": algo},
    )
    shaped = SwitchPortConfig(
        rate_bps=SHAPED_BPS,
        queue_capacity_bytes=64 * 1024,
        ecn_threshold_bytes=16 * 1024,
        red_min_bytes=40 * 1024,
        red_max_bytes=64 * 1024,
    )
    for client_host in bench.clients:
        bench.bed.switch.set_port_config(client_host.station.switch_port, shaped)
    result = bench.run(warmup_ns=3_000_000, window_ns=12_000_000)
    drops = sum(
        bench.bed.switch.egress_stats(c.station.switch_port).dropped_tail
        + bench.bed.switch.egress_stats(c.station.switch_port).dropped_red
        for c in bench.clients
    )
    return {
        "goodput": result["goodput_bps"],
        "jfi": jains_fairness_index(result["per_conn_ops"]),
        "drops": drops,
    }


def test_ablation_cc_algorithms(benchmark):
    results = run_once(benchmark, lambda: {name: measure(name) for name in ("dctcp", "timely")})

    table = Table(
        "Ablation: congestion-control algorithm under a shaped bottleneck",
        ["algorithm", "goodput (Gbps)", "JFI", "switch drops"],
    )
    for name, row in results.items():
        table.add_row(name, "%.2f" % (row["goodput"] / 1e9), "%.3f" % row["jfi"], row["drops"])
    table.show()

    # Both algorithms drive the flows to a usable share of the shaped
    # bottleneck with reasonable fairness — the framework is generic.
    for name, row in results.items():
        assert row["goodput"] > 0.3 * SHAPED_BPS * 3, name  # 3 shaped client ports
        assert row["jfi"] > 0.7, name
