# Developer entry points. Everything runs from the source tree (no
# install needed); CI uses the same commands against the installed
# package.

PY := PYTHONPATH=src python

.PHONY: test lint lint-github baseline check-baseline certify bench-quick

test:
	$(PY) -m pytest -x -q

# Gate on findings not present in the committed baseline (all passes:
# xdp-verifier, xdp-deadcode, stage-race, atomicity, hb-race, ordering,
# sim-process).
lint:
	$(PY) -m repro lint --baseline lint-baseline.json

lint-github:
	$(PY) -m repro lint --format=github --certify

# Regenerate the committed lint baseline. Findings are deterministically
# sorted, so this is a no-op unless the tree actually changed
# (check-baseline asserts exactly that).
baseline:
	$(PY) -m repro lint --json > lint-baseline.json

check-baseline:
	$(PY) -m repro lint --json > lint-baseline.regen.json
	cmp lint-baseline.json lint-baseline.regen.json
	rm -f lint-baseline.regen.json

# Export + independently re-check the proof-carrying XDP certificates
# and the pipeline commutability certificate.
certify:
	$(PY) -m repro lint --certify

bench-quick:
	$(PY) -m repro bench --quick --no-out --no-history
