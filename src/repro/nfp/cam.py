"""Near-memory lookup acceleration (paper §4.1).

* :class:`Cam` — the per-FPC 16-entry fully-associative CAM used to build
  LRU local-memory caches of connection state.
* :class:`HashLookupEngine` — the IMEM lookup engine holding the active
  connection database; CRC-32 of the 4-tuple locates the connection
  index, with CAM-assisted collision resolution.
"""

import zlib
from collections import OrderedDict


class Cam:
    """A fully-associative CAM with LRU eviction (default 16 entries)."""

    def __init__(self, capacity=16):
        if capacity <= 0:
            raise ValueError("CAM capacity must be positive")
        self.capacity = capacity
        self._entries = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, key):
        """Return (hit, value). A hit refreshes LRU position."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return True, self._entries[key]
        self.misses += 1
        return False, None

    def insert(self, key, value):
        """Insert/update; returns the evicted (key, value) or None."""
        evicted = None
        if key in self._entries:
            self._entries.move_to_end(key)
        elif len(self._entries) >= self.capacity:
            evicted = self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = value
        return evicted

    def invalidate(self, key):
        return self._entries.pop(key, None)

    def clear(self):
        """Drop every entry (fault injection: forced cache flush)."""
        flushed = len(self._entries)
        self._entries.clear()
        return flushed

    def __contains__(self, key):
        return key in self._entries

    def __len__(self):
        return len(self._entries)

    @property
    def hit_rate(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def crc32_tuple(local_ip, remote_ip, local_port, remote_port):
    """CRC-32 over the 4-tuple, as the pre-processor computes in CRC HW."""
    data = (
        local_ip.to_bytes(4, "big")
        + remote_ip.to_bytes(4, "big")
        + local_port.to_bytes(2, "big")
        + remote_port.to_bytes(2, "big")
    )
    return zlib.crc32(data) & 0xFFFFFFFF


def pack_four_tuple(four_tuple):
    """Pack a (ip, ip, port, port) 4-tuple into one 96-bit int key.

    Equality of packed keys is equivalent to equality of tuples, so the
    lookup engine (and anything keying connections by 4-tuple) can store
    a single int instead of a 5-object tuple — ~200 bytes saved per
    connection at million-connection scale.
    """
    local_ip, remote_ip, local_port, remote_port = four_tuple
    return (
        (((local_ip << 32) | remote_ip) << 16 | local_port) << 16
    ) | remote_port


#: Singleton-bucket encoding span: the low 32 bits of the encoded int
#: hold the connection index, the rest the packed key.
_INDEX_SPAN = 1 << 32


class HashLookupEngine:
    """The IMEM-resident active-connection database.

    Maps 4-tuples to connection indices via a CRC-32 hash table with
    chained collision resolution (hardware uses a CAM per bucket). The
    occupancy statistics feed the Figure 14 analysis.

    Storage is deliberately compact — the hardware table is an IMEM
    array, so the model keeps per-connection cost near O(bytes) too.
    The bucket table is a preallocated list (the fixed IMEM array, 8 B
    per bucket of pointer), keys are packed 96-bit ints, and the
    (overwhelmingly common) single-entry bucket is stored as one int
    ``key << 32 | index`` rather than a list of tuples. Buckets
    escalate to ``[(key, index)]`` chains only on a genuine hash
    collision, preserving the exact chain order, probe counts and
    collision accounting of the chained design.
    """

    def __init__(self, n_buckets=65536):
        self.n_buckets = n_buckets
        self._buckets = [None] * n_buckets
        self.entries = 0
        self.lookups = 0
        self.collisions = 0

    def insert(self, four_tuple, connection_index):
        bucket_id = crc32_tuple(*four_tuple) % self.n_buckets
        key = pack_four_tuple(four_tuple)
        bucket = self._buckets[bucket_id]
        if bucket is None:
            if isinstance(connection_index, int) and 0 <= connection_index < _INDEX_SPAN:
                self._buckets[bucket_id] = key * _INDEX_SPAN + connection_index
            else:  # exotic index value: fall back to a chain of pairs
                self._buckets[bucket_id] = [(key, connection_index)]
            self.entries += 1
            return
        if isinstance(bucket, int):
            existing_key, existing_index = divmod(bucket, _INDEX_SPAN)
            if existing_key == key:
                self._buckets[bucket_id] = key * _INDEX_SPAN + connection_index
                return
            bucket = [(existing_key, existing_index)]
            self._buckets[bucket_id] = bucket
        for i, (entry_key, _) in enumerate(bucket):
            if entry_key == key:
                bucket[i] = (key, connection_index)
                return
        bucket.append((key, connection_index))
        self.entries += 1

    def lookup(self, four_tuple):
        """Return (found, connection_index, probe_count)."""
        self.lookups += 1
        bucket_id = crc32_tuple(*four_tuple) % self.n_buckets
        bucket = self._buckets[bucket_id]
        if bucket is None:
            return False, None, 1
        key = pack_four_tuple(four_tuple)
        if isinstance(bucket, int):
            existing_key, existing_index = divmod(bucket, _INDEX_SPAN)
            if existing_key == key:
                return True, existing_index, 1
            return False, None, 1
        for probes, (entry_key, index) in enumerate(bucket, start=1):
            if entry_key == key:
                if probes > 1:
                    self.collisions += 1
                return True, index, probes
        return False, None, len(bucket)

    def remove(self, four_tuple):
        bucket_id = crc32_tuple(*four_tuple) % self.n_buckets
        bucket = self._buckets[bucket_id]
        if bucket is None:
            return False
        key = pack_four_tuple(four_tuple)
        if isinstance(bucket, int):
            existing_key, _ = divmod(bucket, _INDEX_SPAN)
            if existing_key != key:
                return False
            self._buckets[bucket_id] = None
            self.entries -= 1
            return True
        for i, (entry_key, _) in enumerate(bucket):
            if entry_key == key:
                del bucket[i]
                if not bucket:
                    self._buckets[bucket_id] = None
                self.entries -= 1
                return True
        return False
