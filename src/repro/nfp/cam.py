"""Near-memory lookup acceleration (paper §4.1).

* :class:`Cam` — the per-FPC 16-entry fully-associative CAM used to build
  LRU local-memory caches of connection state.
* :class:`HashLookupEngine` — the IMEM lookup engine holding the active
  connection database; CRC-32 of the 4-tuple locates the connection
  index, with CAM-assisted collision resolution.
"""

import zlib
from collections import OrderedDict


class Cam:
    """A fully-associative CAM with LRU eviction (default 16 entries)."""

    def __init__(self, capacity=16):
        if capacity <= 0:
            raise ValueError("CAM capacity must be positive")
        self.capacity = capacity
        self._entries = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, key):
        """Return (hit, value). A hit refreshes LRU position."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return True, self._entries[key]
        self.misses += 1
        return False, None

    def insert(self, key, value):
        """Insert/update; returns the evicted (key, value) or None."""
        evicted = None
        if key in self._entries:
            self._entries.move_to_end(key)
        elif len(self._entries) >= self.capacity:
            evicted = self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = value
        return evicted

    def invalidate(self, key):
        return self._entries.pop(key, None)

    def clear(self):
        """Drop every entry (fault injection: forced cache flush)."""
        flushed = len(self._entries)
        self._entries.clear()
        return flushed

    def __contains__(self, key):
        return key in self._entries

    def __len__(self):
        return len(self._entries)

    @property
    def hit_rate(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def crc32_tuple(local_ip, remote_ip, local_port, remote_port):
    """CRC-32 over the 4-tuple, as the pre-processor computes in CRC HW."""
    data = (
        local_ip.to_bytes(4, "big")
        + remote_ip.to_bytes(4, "big")
        + local_port.to_bytes(2, "big")
        + remote_port.to_bytes(2, "big")
    )
    return zlib.crc32(data) & 0xFFFFFFFF


class HashLookupEngine:
    """The IMEM-resident active-connection database.

    Maps 4-tuples to connection indices via a CRC-32 hash table with
    chained collision resolution (hardware uses a CAM per bucket). The
    occupancy statistics feed the Figure 14 analysis.
    """

    def __init__(self, n_buckets=65536):
        self.n_buckets = n_buckets
        self._buckets = {}
        self.entries = 0
        self.lookups = 0
        self.collisions = 0

    def insert(self, four_tuple, connection_index):
        bucket_id = crc32_tuple(*four_tuple) % self.n_buckets
        bucket = self._buckets.setdefault(bucket_id, [])
        for i, (key, _) in enumerate(bucket):
            if key == four_tuple:
                bucket[i] = (four_tuple, connection_index)
                return
        bucket.append((four_tuple, connection_index))
        self.entries += 1

    def lookup(self, four_tuple):
        """Return (found, connection_index, probe_count)."""
        self.lookups += 1
        bucket_id = crc32_tuple(*four_tuple) % self.n_buckets
        bucket = self._buckets.get(bucket_id)
        if not bucket:
            return False, None, 1
        for probes, (key, index) in enumerate(bucket, start=1):
            if key == four_tuple:
                if probes > 1:
                    self.collisions += 1
                return True, index, probes
        return False, None, len(bucket)

    def remove(self, four_tuple):
        bucket_id = crc32_tuple(*four_tuple) % self.n_buckets
        bucket = self._buckets.get(bucket_id, [])
        for i, (key, _) in enumerate(bucket):
            if key == four_tuple:
                del bucket[i]
                self.entries -= 1
                return True
        return False
