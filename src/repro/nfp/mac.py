"""The MAC island and network block interface (NBI).

The NBI receives frames from the wire and hands them to a configurable
ingress handler (FlexTOE's pre-processing dispatch); transmit-side
serialization happens on the attached network link.
"""


class MacBlock:
    """Up to two 40 Gbps Ethernet interfaces; we model one."""

    def __init__(self, sim, name="mac"):
        self.sim = sim
        self.name = name
        self.port = None
        self.rx_handler = None
        self.tx_frames = 0
        self.rx_frames = 0
        self.rx_dropped_no_handler = 0

    def attach_port(self, port):
        """Bind to a network port; its receiver feeds the NBI."""
        self.port = port
        port.receiver = self._on_rx

    def transmit(self, frame):
        """Send a frame out the wire (NBI TX)."""
        if self.port is None:
            raise RuntimeError("MAC has no attached port")
        self.tx_frames += 1
        self.port.send(frame)

    def _on_rx(self, frame):
        self.rx_frames += 1
        if self.rx_handler is None:
            self.rx_dropped_no_handler += 1
            return
        self.rx_handler(frame)
