"""The PCIe island: MMIO doorbells, MSI-X interrupts, and the DMA engine.

The host rings doorbells via MMIO (posted writes, a few hundred ns); the
NIC raises MSI-X interrupts toward host eventfds. Context-queue payload
moves through :class:`~repro.nfp.dma.DmaEngine`.
"""

from repro.nfp.dma import DmaEngine

MMIO_WRITE_NS = 300


class Doorbell:
    """A NIC-side doorbell register the host writes via MMIO."""

    __slots__ = ("pending", "waiters", "rings")

    def __init__(self):
        self.pending = 0
        self.waiters = []
        self.rings = 0


class PcieBlock:
    """Doorbell registers + MSI-X + the chip's DMA engine."""

    def __init__(self, sim, dma=None):
        self.sim = sim
        self.dma = dma or DmaEngine(sim)
        self._doorbells = {}
        self._msix_handlers = {}
        self.msix_raised = 0
        #: Optional fault hook (repro.faults): called with the doorbell
        #: key; returns ``None`` to drop the posted write entirely, or an
        #: extra delay in ns appended to the MMIO latency (0 = healthy).
        self.mmio_fault = None
        self.doorbells_lost = 0
        self.mmio_delayed = 0

    def doorbell(self, key):
        """Get-or-create the doorbell register for ``key``."""
        if key not in self._doorbells:
            self._doorbells[key] = Doorbell()
        return self._doorbells[key]

    def ring(self, key):
        """Host-side MMIO write landing after the posted-write delay."""
        delay_ns = MMIO_WRITE_NS
        if self.mmio_fault is not None:
            extra = self.mmio_fault(key)
            if extra is None:
                # Posted write lost in flight: the host gets no error —
                # recovery relies on the control-plane RTO re-posting.
                self.doorbells_lost += 1
                return
            if extra > 0:
                self.mmio_delayed += 1
                delay_ns += int(extra)
        bell = self.doorbell(key)

        def fire(_event):
            bell.rings += 1
            if bell.waiters:
                # The oldest waiter consumes this ring directly.
                bell.waiters.pop(0).succeed()
            else:
                bell.pending += 1

        self.sim.timeout(delay_ns).callbacks.append(fire)

    def wait_doorbell(self, key):
        """NIC-side: event that fires when a ring is available; each fired
        event consumes exactly one ring."""
        bell = self.doorbell(key)
        event = self.sim.event()
        if bell.pending > 0:
            bell.pending -= 1
            event.succeed()
        else:
            bell.waiters.append(event)
        return event

    def register_msix(self, vector, handler):
        """Host driver registers an interrupt handler (eventfd ping)."""
        self._msix_handlers[vector] = handler

    def raise_msix(self, vector):
        """NIC raises an interrupt; handler runs after the PCIe delay."""
        handler = self._msix_handlers.get(vector)
        self.msix_raised += 1
        if handler is None:
            return

        def fire(_event):
            handler(vector)

        self.sim.timeout(MMIO_WRITE_NS).callbacks.append(fire)
