"""The PCIe DMA engine (paper §2.3).

The PCIe island exposes a pair of DMA transaction queues; FPCs may keep
up to 128 asynchronous operations in flight on each. An operation costs
a fixed round-trip latency (PCIe + host memory) plus transfer time on the
shared PCIe bandwidth. Hiding this latency is why DMA is its own
pipeline stage in FlexTOE.
"""

from repro.sim import Resource

PCIE_GEN3_X8_BPS = 63_000_000_000  # ~7.9 GB/s usable


class DmaEngine:
    """Two transaction queues over shared PCIe bandwidth."""

    def __init__(
        self,
        sim,
        n_queues=2,
        queue_depth=128,
        latency_ns=700,
        bandwidth_bps=PCIE_GEN3_X8_BPS,
    ):
        self.sim = sim
        self.latency_ns = latency_ns
        self.bandwidth_bps = bandwidth_bps
        self._queues = [
            Resource(sim, capacity=queue_depth, name="dma-q{}".format(i)) for i in range(n_queues)
        ]
        self._busy_until = 0
        self._transfer_ns_cache = {}
        self.ops = 0
        self.bytes_moved = 0
        #: Optional fault hook (repro.faults): called with the transfer
        #: size, returns extra retry latency in ns (0 = healthy op).
        self.fault_hook = None
        self.transient_failures = 0
        self.retry_ns_total = 0

    def transfer_time_ns(self, nbytes):
        # Memoized: descriptors come in a handful of fixed sizes
        # (headers, notifications, MSS payload slices).
        cache = self._transfer_ns_cache
        ns = cache.get(nbytes)
        if ns is None:
            ns = 0 if nbytes <= 0 else -(-nbytes * 8 * 1_000_000_000 // self.bandwidth_bps)
            if len(cache) < 4096:
                cache[nbytes] = ns
        return ns

    def issue(self, queue_id, nbytes):
        """Start a DMA of ``nbytes``; returns an event firing on completion.

        The caller (an FPC thread) does not hold its issue slot while the
        DMA runs — that is the entire point of the asynchronous engine.
        """
        queue = self._queues[queue_id % len(self._queues)]
        done = self.sim.event()
        self.sim.process(self._run(queue, nbytes, done), name="dma-op")
        return done

    def _run(self, queue, nbytes, done):
        grant = yield queue.request()
        retry_ns = 0
        if self.fault_hook is not None:
            # Transient DMA failure: the engine retries the descriptor
            # after ``retry_ns``; the operation still completes (PCIe
            # replay), it just arrives late and holds its queue slot.
            retry_ns = int(self.fault_hook(nbytes) or 0)
            if retry_ns > 0:
                self.transient_failures += 1
                self.retry_ns_total += retry_ns
                yield self.sim.timeout(retry_ns)
        start = max(self.sim.now, self._busy_until)
        finish = start + self.transfer_time_ns(nbytes)
        self._busy_until = finish
        yield self.sim.timeout(finish - self.sim.now + self.latency_ns)
        self.ops += 1
        self.bytes_moved += max(0, nbytes)
        grant.release()
        done.succeed()

    @property
    def in_flight(self):
        return sum(q.in_use + q.queued for q in self._queues)
