"""The assembled NFP-4000 chip (paper Figure 1).

Five general-purpose islands of 12 FPCs, chip-wide IMEM/EMEM with the
EMEM SRAM cache, the IMEM hash-lookup engine, the PCIe block (doorbells +
DMA), and the MAC block. An :class:`NfpConfig` captures the knobs that
distinguish the Agilio CX40 from the LX (frequency, island count).
"""

from repro.nfp.cam import HashLookupEngine
from repro.nfp.island import Island
from repro.nfp.mac import MacBlock
from repro.nfp.memory import MEM_EMEM, MEM_EMEM_CACHE, MEM_IMEM
from repro.nfp.pcie import PcieBlock
from repro.sim.clock import Clock


class NfpConfig:
    """Chip parameters. Defaults model the Agilio CX40's NFP-4000."""

    def __init__(self, n_islands=5, fpcs_per_island=12, fpc_hz=800_000_000, name="NFP-4000"):
        self.n_islands = n_islands
        self.fpcs_per_island = fpcs_per_island
        self.fpc_hz = fpc_hz
        self.name = name

    @classmethod
    def agilio_cx40(cls):
        return cls()

    @classmethod
    def agilio_lx(cls):
        """The LX doubles islands and runs FPCs at 1.2 GHz (paper fn. 6)."""
        return cls(n_islands=10, fpc_hz=1_200_000_000, name="NFP-6000/LX")


class Nfp4000:
    """The chip: islands + memories + engines."""

    def __init__(self, sim, config=None):
        self.sim = sim
        self.config = config or NfpConfig.agilio_cx40()
        clock = Clock(self.config.fpc_hz)
        self.clock = clock
        self.islands = [
            Island(sim, i, n_fpcs=self.config.fpcs_per_island, clock=clock)
            for i in range(self.config.n_islands)
        ]
        self.imem = MEM_IMEM()
        self.emem = MEM_EMEM()
        self.emem_cache = MEM_EMEM_CACHE()
        self.lookup_engine = HashLookupEngine()
        self.pcie = PcieBlock(sim)
        self.mac = MacBlock(sim)

    @property
    def dma(self):
        return self.pcie.dma

    def total_fpcs(self):
        return sum(len(island.fpcs) for island in self.islands)

    def free_fpcs(self):
        return sum(island.free_fpcs for island in self.islands)

    def __repr__(self):
        return "<{} islands={} fpcs={}>".format(self.config.name, len(self.islands), self.total_fpcs())
