"""NFP-4000 network-processor model (paper §2.3, Figure 1).

The Netronome Agilio CX40's NPU: five general-purpose islands of 12
flow-processing cores (FPCs) each, a service/PCIe/MAC structure, and a
multi-level memory hierarchy. FPCs are 800 MHz, 8 hardware threads, no
timers/division/floating point. The model charges compute cycles on an
issue slot per FPC and releases the slot during memory waits, so thread-
level latency hiding (Table 3's 2.25x) emerges from the simulation rather
than being asserted.
"""

from repro.nfp.chip import Nfp4000, NfpConfig
from repro.nfp.fpc import Fpc, FpcThread
from repro.nfp.island import Island
from repro.nfp.memory import MEM_CLS, MEM_CTM, MEM_EMEM, MEM_EMEM_CACHE, MEM_IMEM, MEM_LMEM, MemoryLevel
from repro.nfp.cam import Cam, HashLookupEngine
from repro.nfp.queues import ClsRing, WorkQueue
from repro.nfp.dma import DmaEngine
from repro.nfp.mac import MacBlock
from repro.nfp.pcie import PcieBlock

__all__ = [
    "Cam",
    "ClsRing",
    "DmaEngine",
    "Fpc",
    "FpcThread",
    "HashLookupEngine",
    "Island",
    "MacBlock",
    "MEM_CLS",
    "MEM_CTM",
    "MEM_EMEM",
    "MEM_EMEM_CACHE",
    "MEM_IMEM",
    "MEM_LMEM",
    "MemoryLevel",
    "Nfp4000",
    "NfpConfig",
    "PcieBlock",
    "WorkQueue",
]
