"""Flow-processing cores with hardware multithreading.

An FPC is a single-issue 32-bit core at 800 MHz with 8 hardware thread
contexts. Exactly one thread occupies the issue pipeline at a time;
threads voluntarily swap out on memory/IO waits, which is how the NFP
hides its long memory latencies. The model enforces this with a
capacity-1 issue slot held during :meth:`FpcThread.compute` and released
during :meth:`FpcThread.mem_wait`.
"""

from repro.sim import Resource
from repro.sim.clock import CYCLES_800MHZ

#: Cycles to issue a memory/IO command before swapping out.
ISSUE_CYCLES = 2


class FpcThread:
    """One hardware thread context; programs call its waiting helpers.

    All helpers are generator functions used with ``yield from`` inside
    the program generator.
    """

    __slots__ = ("fpc", "thread_id", "process")

    def __init__(self, fpc, thread_id):
        self.fpc = fpc
        self.thread_id = thread_id
        self.process = None

    @property
    def sim(self):
        return self.fpc.sim

    def compute(self, cycles):
        """Execute ``cycles`` instructions; holds the issue slot."""
        if cycles <= 0:
            return
        fpc = self.fpc
        grant = yield fpc._issue.request()
        yield fpc.sim.timeout(fpc.cycles_to_ns(cycles))
        fpc.busy_cycles += cycles
        grant.release()

    def mem_read(self, level, issue_cycles=ISSUE_CYCLES):
        """Read from a :class:`MemoryLevel`: brief issue, then latency
        wait with the issue slot released (another thread may run)."""
        yield from self.compute(issue_cycles)
        level.reads += 1
        yield self.sim.timeout(self.fpc.cycles_to_ns(level.latency_cycles))

    def mem_write(self, level, issue_cycles=ISSUE_CYCLES):
        """Write (posted): brief issue, then latency wait off-slot."""
        yield from self.compute(issue_cycles)
        level.writes += 1
        yield self.sim.timeout(self.fpc.cycles_to_ns(level.latency_cycles))

    def io_wait(self, event, issue_cycles=ISSUE_CYCLES):
        """Issue an IO command and sleep until ``event`` fires."""
        yield from self.compute(issue_cycles)
        result = yield event
        return result

    def wait_cycles(self, cycles):
        """Sleep without occupying the issue slot (e.g. signal wait)."""
        yield self.sim.timeout(self.fpc.cycles_to_ns(cycles))


class Fpc:
    """A flow-processing core hosting up to ``n_threads`` programs."""

    def __init__(self, sim, name, clock=CYCLES_800MHZ, n_threads=8, code_store=32 * 1024):
        self.sim = sim
        self.name = name
        self.clock = clock
        #: Bound memoized converter (see Clock.cycles_to_ns); saves an
        #: attribute hop on every compute/mem wait.
        self.cycles_to_ns = clock.cycles_to_ns
        self.n_threads = n_threads
        self.code_store = code_store
        self.code_used = 0
        self._issue = Resource(sim, capacity=1, name="{}.issue".format(name))
        self._threads = []
        self.busy_cycles = 0
        self.stalls = 0
        self.stalled_ns = 0

    def spawn(self, program_factory, name=None):
        """Start a program on a fresh hardware thread.

        ``program_factory(thread)`` must return a generator. Raises when
        all 8 thread contexts are taken.
        """
        if len(self._threads) >= self.n_threads:
            raise RuntimeError("{}: all {} hardware threads in use".format(self.name, self.n_threads))
        thread = FpcThread(self, len(self._threads))
        self._threads.append(thread)
        label = name or "{}.t{}".format(self.name, thread.thread_id)
        thread.process = self.sim.process(program_factory(thread), name=label)
        return thread

    def stall(self, duration_ns):
        """Occupy the issue pipeline for ``duration_ns`` (fault injection).

        Models a thread wedged in the issue stage — e.g. an ECC scrub,
        a firmware assist, or a microcode loop — during which no hardware
        thread on this FPC can issue instructions. Memory waits already
        in flight still complete. Returns the stall process.
        """

        def _stall():
            grant = yield self._issue.request()
            self.stalls += 1
            self.stalled_ns += duration_ns
            yield self.sim.timeout(duration_ns)
            grant.release()

        return self.sim.process(_stall(), name="{}.stall".format(self.name))

    def load_code(self, nbytes):
        """Account code-store usage; FPC code stores are only 32 KB."""
        if self.code_used + nbytes > self.code_store:
            raise MemoryError("{}: code store exhausted".format(self.name))
        self.code_used += nbytes

    @property
    def threads_used(self):
        return len(self._threads)

    def utilization(self, elapsed_ns):
        """Fraction of cycles spent issuing instructions."""
        if elapsed_ns <= 0:
            return 0.0
        total_cycles = self.clock.ns_to_cycles(elapsed_ns)
        return min(1.0, self.busy_cycles / total_cycles) if total_cycles else 0.0

    def __repr__(self):
        return "<Fpc {} threads={}/{}>".format(self.name, len(self._threads), self.n_threads)
