"""Inter-FPC communication structures (paper §4, §4.1).

* :class:`ClsRing` — island-local producer/consumer ring in CLS; the
  fastest intra-island mechanism.
* :class:`WorkQueue` — IMEM/EMEM-backed work queue for cross-island
  communication; the queue memory engine supports work stealing, so a
  WorkQueue may feed several consumer FPCs.
* :class:`TicketLock` — FPC synchronization primitive used by the
  sequencer to order segments.

Each structure records the access latency its backing memory imposes;
stage programs charge that latency through their FPC thread.
"""

from repro.sim import Store
from repro.nfp.memory import LAT_CLS, LAT_EMEM, LAT_IMEM


class ClsRing:
    """A bounded ring in island-local CLS memory."""

    __slots__ = ("store", "access_latency", "name", "tap")

    def __init__(self, sim, capacity=64, name="cls-ring"):
        self.store = Store(sim, capacity=capacity, name=name)
        self.access_latency = LAT_CLS
        self.name = name
        # Optional enqueue observer (``tap(item)``), fired synchronously
        # before the item enters the store. Used by the happens-before
        # runtime monitor (repro.analysis.hbmonitor); None in production,
        # so the cost is one attribute check per put.
        self.tap = None

    def put(self, item):
        if self.tap is not None:
            self.tap(item)
        return self.store.put(item)

    def get(self):
        return self.store.get()

    def try_put(self, item):
        accepted = self.store.try_put(item)
        if accepted and self.tap is not None:
            self.tap(item)
        return accepted

    def force_put(self, item):
        """Unconditional enqueue past the capacity bound (overflow path)."""
        if self.tap is not None:
            self.tap(item)
        return self.store.force_put(item)

    def __len__(self):
        return len(self.store)

    @property
    def max_occupancy(self):
        return self.store.max_occupancy


class WorkQueue:
    """An IMEM- or EMEM-backed work queue (cross-island, work-stealing)."""

    __slots__ = ("store", "access_latency", "backing", "name", "tap")

    def __init__(self, sim, capacity=None, name="work-queue", backing="imem"):
        self.store = Store(sim, capacity=capacity, name=name)
        self.access_latency = LAT_IMEM if backing == "imem" else LAT_EMEM
        self.backing = backing
        self.name = name
        self.tap = None  # see ClsRing.tap

    def put(self, item):
        if self.tap is not None:
            self.tap(item)
        return self.store.put(item)

    def get(self):
        return self.store.get()

    def try_put(self, item):
        accepted = self.store.try_put(item)
        if accepted and self.tap is not None:
            self.tap(item)
        return accepted

    def force_put(self, item):
        """Unconditional enqueue past the capacity bound (overflow path)."""
        if self.tap is not None:
            self.tap(item)
        return self.store.force_put(item)

    def __len__(self):
        return len(self.store)

    @property
    def max_occupancy(self):
        return self.store.max_occupancy


class TicketLock:
    """A fair spin lock: acquire order equals ticket order."""

    __slots__ = ("sim", "name", "_next_ticket", "_now_serving", "_waiters")

    def __init__(self, sim, name="ticket-lock"):
        self.sim = sim
        self.name = name
        self._next_ticket = 0
        self._now_serving = 0
        self._waiters = {}

    def acquire(self):
        """Returns an event that fires when the caller holds the lock."""
        ticket = self._next_ticket
        self._next_ticket += 1
        event = self.sim.event()
        if ticket == self._now_serving:
            event.succeed(ticket)
        else:
            self._waiters[ticket] = event
        return event

    def release(self):
        self._now_serving += 1
        waiter = self._waiters.pop(self._now_serving, None)
        if waiter is not None:
            waiter.succeed(self._now_serving)

    @property
    def queued(self):
        return len(self._waiters)
