"""The NFP-4000 memory hierarchy (paper §2.3).

Each level has a size and an access latency in FPC cycles. FlexTOE's
connection-state caching (§4.1) moves 108-byte state records between
these levels; where state lives determines per-segment latency, which is
what bends the Figure 14 connection-scalability curve.
"""

#: Access latencies in FPC cycles, per the paper.
LAT_LMEM = 3
LAT_CLS = 100
LAT_CTM = 100
LAT_IMEM = 250
LAT_EMEM_CACHE = 150
LAT_EMEM = 500

#: Issue-side cost of a fire-and-forget atomic add on the EMEM atomic
#: engine. The FPC does not wait for the full EMEM round trip — it posts
#: the command and moves on — so replicated-counter updates (declared via
#: the ``atomic()`` registry in :mod:`repro.flextoe.state`) charge this
#: instead of ``LAT_EMEM``.
LAT_ATOMIC_ADD = 20


class MemoryLevel:
    """One memory level with byte-granularity allocation accounting."""

    __slots__ = ("name", "size", "latency_cycles", "allocated", "reads", "writes")

    def __init__(self, name, size, latency_cycles):
        self.name = name
        self.size = size
        self.latency_cycles = latency_cycles
        self.allocated = 0
        self.reads = 0
        self.writes = 0

    def alloc(self, nbytes):
        """Reserve ``nbytes``; raises MemoryError when the level is full."""
        if self.allocated + nbytes > self.size:
            raise MemoryError("{} exhausted ({} + {} > {})".format(self.name, self.allocated, nbytes, self.size))
        self.allocated += nbytes
        return self.allocated - nbytes

    def free(self, nbytes):
        self.allocated -= nbytes
        if self.allocated < 0:
            raise RuntimeError("{}: freed more than allocated".format(self.name))

    @property
    def free_bytes(self):
        return self.size - self.allocated

    def __repr__(self):
        return "<{} {}/{} B, {} cyc>".format(self.name, self.allocated, self.size, self.latency_cycles)


def MEM_LMEM():
    """Per-FPC local data memory: 4 KB, ~single-cycle."""
    return MemoryLevel("LMEM", 4 * 1024, LAT_LMEM)


def MEM_CLS(island_id=0):
    """Island-local scratch: 64 KB, up to 100 cycles."""
    return MemoryLevel("CLS{}".format(island_id), 64 * 1024, LAT_CLS)


def MEM_CTM(island_id=0):
    """Island target memory: 256 KB, up to 100 cycles (packet buffers)."""
    return MemoryLevel("CTM{}".format(island_id), 256 * 1024, LAT_CTM)


def MEM_IMEM():
    """Internal memory unit: 4 MB SRAM, up to 250 cycles."""
    return MemoryLevel("IMEM", 4 * 1024 * 1024, LAT_IMEM)


def MEM_EMEM_CACHE():
    """The 3 MB SRAM cache fronting EMEM."""
    return MemoryLevel("EMEM$", 3 * 1024 * 1024, LAT_EMEM_CACHE)


def MEM_EMEM():
    """External memory unit: 2 GB DRAM, up to 500 cycles."""
    return MemoryLevel("EMEM", 2 * 1024 * 1024 * 1024, LAT_EMEM)
