"""Islands: NUMA-like groups of 12 FPCs with local CLS and CTM."""

from repro.nfp.fpc import Fpc
from repro.nfp.memory import MEM_CLS, MEM_CTM


class Island:
    """A general-purpose island: 12 FPCs + island-local memories."""

    def __init__(self, sim, island_id, n_fpcs=12, clock=None):
        self.sim = sim
        self.island_id = island_id
        self.cls = MEM_CLS(island_id)
        self.ctm = MEM_CTM(island_id)
        kwargs = {} if clock is None else {"clock": clock}
        self.fpcs = [
            Fpc(sim, "i{}.fpc{}".format(island_id, i), **kwargs) for i in range(n_fpcs)
        ]
        self._next_free = 0

    def claim_fpc(self):
        """Hand out the next unassigned FPC; raises when none remain."""
        if self._next_free >= len(self.fpcs):
            raise RuntimeError("island {} has no free FPCs".format(self.island_id))
        fpc = self.fpcs[self._next_free]
        self._next_free += 1
        return fpc

    @property
    def free_fpcs(self):
        return len(self.fpcs) - self._next_free

    def __repr__(self):
        return "<Island {} ({} FPCs, {} free)>".format(self.island_id, len(self.fpcs), self.free_fpcs)
