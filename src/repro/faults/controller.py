"""Installs a fault plan on a testbed and drives spec lifecycles.

One :class:`FaultController` per installed plan. For each spec it:

1. derives a dedicated RNG stream ``faults.<plan>.<label>`` from the
   testbed's :class:`~repro.sim.RngPool` — identical seeds therefore
   yield identical fault event traces regardless of other streams;
2. resolves the spec's ``target`` to concrete simulation objects (the
   switch-wide wire injector, a station's link, a FlexTOE host, ...);
   targets that do not apply (e.g. a NIC fault aimed at a Linux host)
   are recorded in the injection log as ``skipped``, never an error —
   plans are meant to run unchanged across the whole interop matrix;
3. runs a scheduler process honoring ``start_ns``, the optional
   ``when`` predicate (polled every ``poll_ns``), ``duration_ns``, and
   the spec's ``tick_ns`` pulse period.
"""

from repro.faults.log import InjectionLog
from repro.faults.wire import WireFaultInjector


class FaultContext:
    """Per-spec runtime handle: RNG stream, log, and sim helpers."""

    def __init__(self, controller, spec, rng):
        self.controller = controller
        self.spec = spec
        self.rng = rng
        self.sim = controller.sim
        self.testbed = controller.testbed
        self.log = controller.log

    def log_event(self, action, target, detail=""):
        self.log.record(
            self.sim.now, self.controller.plan.name, self.spec.label, action, target, detail
        )

    def after(self, delay_ns, fn):
        """Run ``fn()`` after ``delay_ns`` of simulated time."""
        self.sim.timeout(delay_ns).callbacks.append(lambda _ev: fn())


class FaultController:
    """Runtime for one installed :class:`~repro.faults.plan.FaultPlan`."""

    def __init__(self, testbed, plan, log=None):
        self.testbed = testbed
        self.sim = testbed.sim
        self.plan = plan
        self.log = log if log is not None else InjectionLog()
        self.wire_injector = None
        self.contexts = []
        self._installed = False

    def install(self):
        """Resolve targets and start every spec's scheduler process."""
        if self._installed:
            raise RuntimeError("plan {!r} already installed".format(self.plan.name))
        self._installed = True
        if any(spec.layer == "wire" for spec in self.plan.specs):
            self.wire_injector = WireFaultInjector(protect_control=self.plan.protect_control)
            if self.testbed.switch.faults is not None:
                raise RuntimeError("switch already has a fault injector installed")
            self.testbed.switch.faults = self.wire_injector
        for spec in self.plan.specs:
            rng = self.testbed.rng.stream("faults.{}.{}".format(self.plan.name, spec.label))
            ctx = FaultContext(self, spec, rng)
            self.contexts.append(ctx)
            objs = self._resolve(ctx, spec)
            if not objs:
                continue
            self.sim.process(
                self._schedule(ctx, spec, objs),
                name="fault.{}.{}".format(self.plan.name, spec.label),
            )
        return self

    # -- target resolution --------------------------------------------------

    @staticmethod
    def _target_names(target):
        """None for switch-wide, "*" for all hosts, else one host name."""
        if target in ("*", None):
            return None
        for prefix in ("host:", "link:"):
            if target.startswith(prefix):
                return [target[len(prefix) :]]
        return [target]

    def _resolve(self, ctx, spec):
        """Return [(name, obj), ...] this spec acts on, logging skips."""
        if spec.layer == "wire":
            return [("switch", self.wire_injector)]
        names = self._target_names(spec.target)
        if spec.layer == "link":
            stations = self.testbed.topology.stations
            picked = names if names is not None else sorted(stations)
            return [(n, (n, stations[n].port.link)) for n in picked]
        hosts = self.testbed.hosts
        picked = names if names is not None else list(hosts)
        out = []
        for name in picked:
            host = hosts[name]
            if spec.layer == "nic" and getattr(host, "nic", None) is None:
                ctx.log_event("skipped", name, "no FlexTOE NIC for {}".format(spec.label))
                continue
            if spec.layer == "host" and getattr(host, "machine", None) is None:
                ctx.log_event("skipped", name, "no host machine for {}".format(spec.label))
                continue
            out.append((name, (name, host)))
        return out

    # -- lifecycle ----------------------------------------------------------

    def _schedule(self, ctx, spec, objs):
        if spec.start_ns > 0:
            yield self.sim.timeout(spec.start_ns)
        if spec.when is not None:
            while not spec.when(self.testbed):
                yield self.sim.timeout(spec.poll_ns)
        for name, obj in objs:
            if spec.layer == "wire":
                obj.add_effect(spec, ctx)
            else:
                spec.activate(ctx, obj)
        ctx.log_event("active", spec.target, self._window_str(spec))
        if spec.tick_ns:
            deadline = None if spec.duration_ns is None else self.sim.now + spec.duration_ns
            while deadline is None or self.sim.now < deadline:
                for _name, obj in objs:
                    spec.tick(ctx, obj)
                yield self.sim.timeout(spec.tick_ns)
        elif spec.duration_ns is not None:
            yield self.sim.timeout(spec.duration_ns)
        if spec.duration_ns is None and not spec.tick_ns:
            return  # steady-state until end of run
        for name, obj in objs:
            if spec.layer == "wire":
                obj.remove_effect(spec)
            else:
                spec.deactivate(ctx, obj)
        ctx.log_event("inactive", spec.target, "")

    @staticmethod
    def _window_str(spec):
        dur = "end" if spec.duration_ns is None else "{}ns".format(spec.duration_ns)
        tick = " tick={}ns".format(spec.tick_ns) if spec.tick_ns else ""
        return "for {}{}".format(dur, tick)
