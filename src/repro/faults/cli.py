"""``python -m repro faults`` — run a named fault plan as an asserted test.

Builds a two-host testbed (any stack pair), installs the plan, streams
bytes client → server and echoes them back, then checks the delivery and
liveness invariants. Prints a per-fault event summary and the injection
log's SHA-256 digest (the determinism handle); ``--json`` dumps the full
log for offline analysis. Exit status 0 means every invariant held.

Examples::

    python -m repro faults --list
    python -m repro faults --plan bursty-loss --seed 7
    python -m repro faults --plan dma-flake --client linux --bytes 20000
    python -m repro faults --plan all --json run.json
"""

import argparse
import json
import sys

from repro.faults.invariants import (
    InvariantViolation,
    assert_exact_delivery,
    counters_snapshot,
    run_until,
    total_retransmits,
)
from repro.faults.plans import REGISTRY, make_plan


def build_host(bed, stack, name):
    if stack == "flextoe":
        return bed.add_flextoe_host(name)
    from repro.baselines import add_chelsio_host, add_linux_host, add_tas_host

    builders = {"linux": add_linux_host, "tas": add_tas_host, "chelsio": add_chelsio_host}
    try:
        return builders[stack](bed, name)
    except KeyError:
        raise SystemExit("unknown stack {!r}; known: flextoe, linux, tas, chelsio".format(stack))


def run_plan(plan_name, seed=1, server_stack="flextoe", client_stack="flextoe", n_bytes=8000, horizon_ns=2_000_000_000):
    """Run one plan against one stack pair; returns a result dict."""
    from repro.harness import Testbed

    bed = Testbed(seed=seed)
    server = build_host(bed, server_stack, "server")
    client = build_host(bed, client_stack, "client")
    bed.seed_all_arp()
    plan = make_plan(plan_name)
    controller = plan.install(bed)

    message = bytes(i % 251 for i in range(n_bytes))
    state = {"echoed": b"", "reply": b"", "done": False}

    def server_app(ctx):
        listener = ctx.listen(7000)
        sock = yield from ctx.accept(listener)
        data = b""
        while len(data) < n_bytes:
            chunk = yield from ctx.recv(sock, 65536)
            if not chunk:
                return
            data += chunk
        state["echoed"] = data
        yield from ctx.send(sock, data[::-1])

    def client_app(ctx):
        sock = yield from ctx.connect(server.ip, 7000)
        yield from ctx.send(sock, message)
        reply = b""
        while len(reply) < n_bytes:
            chunk = yield from ctx.recv(sock, 65536)
            if not chunk:
                break
            reply += chunk
        state["reply"] = reply
        state["done"] = True

    bed.sim.process(server_app(server.new_context()), name="server-app")
    bed.sim.process(client_app(client.new_context()), name="client-app")

    before = counters_snapshot(bed)
    violations = []
    finished_ns = None
    try:
        finished_ns = run_until(
            bed, lambda: state["done"], horizon_ns, label="faults:{}".format(plan_name)
        )
        assert_exact_delivery(message, state["echoed"], "client->server")
        assert_exact_delivery(message[::-1], state["reply"], "server->client")
    except InvariantViolation as exc:
        violations.append(str(exc))
    after = counters_snapshot(bed)

    return {
        "plan": plan_name,
        "seed": seed,
        "stacks": {"server": server_stack, "client": client_stack},
        "bytes": n_bytes,
        "finished_ns": finished_ns,
        "violations": violations,
        "retransmit_events": total_retransmits(after) - total_retransmits(before),
        "injections": len(controller.log),
        "event_counts": {
            "{}/{}".format(fault, action): count
            for (fault, action), count in sorted(controller.log.counts().items())
        },
        "digest": controller.log.digest(),
        "log": controller.log.to_jsonable(),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro faults", description="Run a deterministic fault plan as an asserted test."
    )
    parser.add_argument("--plan", default="bursty-loss", help="plan name, or 'all' (default: bursty-loss)")
    parser.add_argument("--list", action="store_true", help="list registered plans and exit")
    parser.add_argument("--seed", type=int, default=1, help="testbed RNG seed (default: 1)")
    parser.add_argument("--server", default="flextoe", help="server stack (default: flextoe)")
    parser.add_argument("--client", default="flextoe", help="client stack (default: flextoe)")
    parser.add_argument("--bytes", type=int, default=8000, dest="n_bytes", help="payload size (default: 8000)")
    parser.add_argument(
        "--horizon-ns", type=int, default=2_000_000_000, help="wedge bound in sim ns (default: 2e9)"
    )
    parser.add_argument("--json", metavar="PATH", help="write the full results (with logs) as JSON")
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(REGISTRY):
            print(name)
        return 0

    plan_names = sorted(REGISTRY) if args.plan == "all" else [args.plan]
    results = []
    failed = False
    for plan_name in plan_names:
        result = run_plan(
            plan_name,
            seed=args.seed,
            server_stack=args.server,
            client_stack=args.client,
            n_bytes=args.n_bytes,
            horizon_ns=args.horizon_ns,
        )
        results.append(result)
        status = "ok" if not result["violations"] else "FAIL"
        if result["violations"]:
            failed = True
        print(
            "[{}] plan={} seed={} {}<-{} bytes={} injections={} rexmt={} digest={}".format(
                status,
                result["plan"],
                result["seed"],
                args.server,
                args.client,
                result["bytes"],
                result["injections"],
                result["retransmit_events"],
                result["digest"][:16],
            )
        )
        for key, count in result["event_counts"].items():
            print("    {:<28} {}".format(key, count))
        for violation in result["violations"]:
            print("    VIOLATION: {}".format(violation))

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
        print("wrote {}".format(args.json))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
