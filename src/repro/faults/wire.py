"""Composition point for wire faults at the switch ingress.

The :class:`~repro.net.switch.Switch` consults ``switch.faults`` (when
set) for every ingressing frame; :class:`WireFaultInjector` implements
that hook by threading the frame through every *active* wire spec in
plan order. Each spec maps one frame to zero (drop), one (pass, corrupt
or delay), or several (duplicate) frames; delays compose additively, so
a duplicated frame can also be held back by a later reorder spec.

Control traffic (SYN/RST segments and ARP) is exempt by default, the
same policy as :class:`repro.net.loss.LossInjector` — the paper's
robustness experiments measure established connections, and plans that
want to attack handshakes can pass ``protect_control=False``.
"""

from repro.proto.tcp import FLAG_RST, FLAG_SYN


def is_control_frame(frame):
    if frame.arp is not None:
        return True
    if frame.tcp is not None and frame.tcp.flags & (FLAG_SYN | FLAG_RST):
        return True
    return False


class WireFaultInjector:
    """The ``switch.faults`` hook: composes active wire fault specs."""

    def __init__(self, protect_control=True):
        self.protect_control = protect_control
        self._effects = []  # [(spec, ctx)] in activation order
        self.frames_seen = 0
        self.frames_touched = 0

    def add_effect(self, spec, ctx):
        self._effects.append((spec, ctx))

    def remove_effect(self, spec):
        self._effects = [(s, c) for s, c in self._effects if s is not spec]

    @property
    def active_effects(self):
        return [spec for spec, _ctx in self._effects]

    def admit(self, frame):
        """Switch hook: ``[(frame, extra_delay_ns), ...]`` per ingress frame."""
        self.frames_seen += 1
        if not self._effects:
            return [(frame, 0)]
        if self.protect_control and is_control_frame(frame):
            return [(frame, 0)]
        out = [(frame, 0)]
        for spec, ctx in self._effects:
            passed = []
            for item, delay in out:
                for mangled, extra in spec.admit_one(ctx, item):
                    passed.append((mangled, delay + extra))
            out = passed
            if not out:
                break
        if len(out) != 1 or out[0][0] is not frame or out[0][1] != 0:
            self.frames_touched += 1
        return out
