"""Fault plans: named, ordered compositions of fault specs.

A plan is declarative — building one touches nothing. Installation on a
testbed creates a :class:`~repro.faults.controller.FaultController`
which resolves targets and starts the scheduler processes::

    plan = (FaultPlan("bursty-loss")
            .add(BurstLoss(probability=0.01, start_ns=1_000_000))
            .add(LinkFlap(target="link:client", period_ns=50_000_000)))
    controller = plan.install(testbed)
    ...
    testbed.run(until=HORIZON)
    print(controller.log.digest())

Determinism contract: with the same testbed seed, the same plan, and
the same workload, the injection log (and therefore its digest) is
byte-identical across runs. Every random decision draws from the
plan-and-spec-named RNG stream; nothing reads the wall clock or global
RNG state (enforced repo-wide by ``python -m repro lint``).
"""

from repro.faults.controller import FaultController
from repro.faults.events import FaultSpec


class FaultPlan:
    """An ordered, named collection of :class:`FaultSpec`."""

    def __init__(self, name, protect_control=True):
        self.name = name
        self.protect_control = protect_control
        self.specs = []

    def add(self, spec):
        """Append a spec; returns self for chaining."""
        if not isinstance(spec, FaultSpec):
            raise TypeError("expected a FaultSpec, got {!r}".format(spec))
        labels = {s.label for s in self.specs}
        if spec.label in labels:
            # Distinct RNG streams require distinct labels.
            spec.label = "{}-{}".format(spec.label, len(self.specs))
        self.specs.append(spec)
        return self

    def install(self, testbed, log=None):
        """Attach to ``testbed``; returns the live FaultController."""
        controller = FaultController(testbed, self, log=log)
        return controller.install()

    def __iter__(self):
        return iter(self.specs)

    def __len__(self):
        return len(self.specs)

    def __repr__(self):
        return "<FaultPlan {} specs={}>".format(self.name, len(self.specs))
