"""Canonical fault plans used by the fault matrix and the CLI.

Three plans are the acceptance bar for every stack pair (ISSUE 2):
``bursty-loss``, ``reorder-window``, and ``dma-flake``. The extra plans
exercise the remaining fault types and are available from the CLI and
for ad-hoc campaigns. Parameters are tuned so a correct stack always
recovers within the harness horizon — these plans assert robustness,
not collapse; collapse studies can scale the probabilities up.

Every fault starts after ``WARMUP_NS`` so connection setup (which the
paper's §5.3 experiments also exclude) happens on a clean network —
``protect_control`` additionally shields SYN/RST/ARP throughout.
"""

from repro.faults.events import (
    BurstLoss,
    CoreJitter,
    Corruption,
    DmaFlake,
    DoorbellLoss,
    Duplication,
    FpcStall,
    LinkFlap,
    MmioDelay,
    NicCrash,
    QueueBackpressure,
    ReorderWindow,
    StateCacheEvict,
)
from repro.faults.plan import FaultPlan

WARMUP_NS = 10_000


def bursty_loss_plan(probability=0.05, burst_min=2, burst_max=4):
    """Correlated switch loss (Fig. 15 made adversarial)."""
    return FaultPlan("bursty-loss").add(
        BurstLoss(
            probability=probability,
            burst_min=burst_min,
            burst_max=burst_max,
            start_ns=WARMUP_NS,
        )
    )


def reorder_window_plan(probability=0.2, delay_ns=25_000):
    """Reordering plus light duplication — the GRO/rexmt stress test."""
    return (
        FaultPlan("reorder-window")
        .add(ReorderWindow(probability=probability, delay_ns=delay_ns, start_ns=WARMUP_NS))
        .add(Duplication(probability=0.05, start_ns=WARMUP_NS))
    )


def dma_flake_plan(probability=0.2, retry_delay_ns=5_000):
    """Transient DMA failures with retry on every FlexTOE NIC."""
    return FaultPlan("dma-flake").add(
        DmaFlake(probability=probability, retry_delay_ns=retry_delay_ns, start_ns=WARMUP_NS)
    )


def corruption_plan(probability=0.02):
    """In-flight corruption: mostly FCS-caught, some checksum-caught."""
    return (
        FaultPlan("corruption")
        .add(Corruption(probability=probability, fcs=True, start_ns=WARMUP_NS, label="fcs"))
        .add(Corruption(probability=probability / 2, fcs=False, start_ns=WARMUP_NS, label="csum"))
    )


def link_flap_plan(down_ns=100_000, period_ns=20_000_000):
    """Periodic short link outages on every station."""
    return FaultPlan("link-flap").add(LinkFlap(down_ns=down_ns, period_ns=period_ns, start_ns=WARMUP_NS))


def nic_pressure_plan():
    """NIC-internal stress: stalled FPCs, cold caches, shrunken rings."""
    return (
        FaultPlan("nic-pressure")
        .add(FpcStall(stage="proto", stall_ns=20_000, period_ns=500_000, start_ns=WARMUP_NS))
        .add(StateCacheEvict(period_ns=1_000_000, start_ns=WARMUP_NS))
        .add(
            QueueBackpressure(
                ring="post", capacity=1, start_ns=WARMUP_NS, duration_ns=2_000_000
            )
        )
    )


def host_pressure_plan():
    """Host-side stress: lost doorbells, slow MMIO, stolen cores."""
    return (
        FaultPlan("host-pressure")
        .add(DoorbellLoss(probability=0.1, start_ns=WARMUP_NS))
        .add(MmioDelay(extra_ns=2_000, start_ns=WARMUP_NS))
        .add(CoreJitter(core=0, busy_ns=20_000, period_ns=500_000, start_ns=WARMUP_NS))
    )


def nic_crash_plan(target="host:server", crash_ns=50_000):
    """Kill one host's FlexTOE datapath mid-transfer (ISSUE 4).

    Requires the target host's control plane to have recovery enabled
    (the default): the watchdog must detect the frozen heartbeats and
    re-offload every connection for the transfer to complete. Not part
    of ``CANONICAL`` — it only makes sense on FlexTOE hosts.
    """
    return FaultPlan("nic-crash").add(NicCrash(target=target, start_ns=crash_ns))


#: The three acceptance-bar plans (ISSUE 2 fault matrix).
CANONICAL = {
    "bursty-loss": bursty_loss_plan,
    "reorder-window": reorder_window_plan,
    "dma-flake": dma_flake_plan,
}

#: Every named plan the CLI can run.
REGISTRY = dict(CANONICAL)
REGISTRY.update(
    {
        "corruption": corruption_plan,
        "link-flap": link_flap_plan,
        "nic-pressure": nic_pressure_plan,
        "host-pressure": host_pressure_plan,
        "nic-crash": nic_crash_plan,
    }
)


def canonical_plans():
    """Fresh instances of the three canonical plans, in a fixed order."""
    return [CANONICAL[name]() for name in ("bursty-loss", "reorder-window", "dma-flake")]


def make_plan(name):
    """Build a registered plan by name."""
    try:
        return REGISTRY[name]()
    except KeyError:
        raise KeyError(
            "unknown plan {!r}; known: {}".format(name, ", ".join(sorted(REGISTRY)))
        )
