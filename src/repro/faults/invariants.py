"""End-to-end invariants asserted under fault injection.

The fault layer's value is that every run is an *asserted* test. These
helpers state what must still hold no matter which plan ran:

* **Exact delivery** — application byte streams arrive complete and
  uncorrupted (:func:`assert_exact_delivery`).
* **Liveness** — the workload finishes within a wedge bound; a
  connection that stalls past the deadline is a bug, not bad luck
  (:func:`run_until`).
* **Recovery accounting** — loss-inducing plans must move the right
  recovery counters (retransmissions for FlexTOE's control plane /
  baseline engines), and checksum-caught corruption must surface as
  checksum drops, never as delivered bytes (:func:`counters_snapshot`,
  :func:`total_retransmits`).
* **Ownership** — running the suite with ``REPRO_SANITIZE=1`` arms the
  runtime sanitizer, so any fault-provoked stage-ownership violation
  raises :class:`repro.analysis.sanitizer.SanitizerError` on its own.
"""


class InvariantViolation(AssertionError):
    """An end-to-end fault invariant failed."""


class DeliveryViolation(InvariantViolation):
    """Delivered bytes differ from the bytes sent."""


class LivenessViolation(InvariantViolation):
    """The workload failed to finish within the wedge bound."""


def assert_exact_delivery(expected, actual, label=""):
    """Byte-exact stream comparison with a useful first-difference."""
    if actual == expected:
        return
    prefix = "{}: ".format(label) if label else ""
    if len(actual) != len(expected):
        raise DeliveryViolation(
            "{}length mismatch: got {} bytes, expected {}".format(prefix, len(actual), len(expected))
        )
    for offset, (got, want) in enumerate(zip(actual, expected)):
        if got != want:
            raise DeliveryViolation(
                "{}first corrupt byte at offset {}: got {!r}, expected {!r}".format(
                    prefix, offset, got, want
                )
            )
    raise DeliveryViolation("{}streams differ".format(prefix))


def run_until(testbed, predicate, deadline_ns, step_ns=1_000_000, label=""):
    """Step the sim until ``predicate()`` or the wedge bound.

    Returns the sim time at which the predicate first held (checked at
    ``step_ns`` granularity). Raises :class:`LivenessViolation` when
    the deadline passes first — the "no connection wedges" invariant.
    """
    sim = testbed.sim
    while True:
        if predicate():
            return sim.now
        if sim.now >= deadline_ns:
            raise LivenessViolation(
                "{}: workload did not finish within {} ns (wedged?)".format(
                    label or "fault run", deadline_ns
                )
            )
        sim.run(until=min(deadline_ns, sim.now + step_ns))


def counters_snapshot(testbed):
    """Deterministic recovery/drop counters for every host + the wire.

    Works across all four stacks: FlexTOE hosts report control-plane
    retransmission counters and NIC drop/fault counters; baseline hosts
    report their engine's per-connection recovery counters.
    """
    snap = {}
    for name in testbed.hosts:
        host = testbed.hosts[name]
        entry = {}
        control = getattr(host, "control_plane", None)
        if control is not None:
            entry["retransmits"] = control.retransmits_posted
            entry["probes"] = control.probes_posted
            entry["syn_retransmits"] = control.syn_retransmits
            entry["aborts"] = control.aborts
            entry["resets_received"] = control.resets_received
            entry["syn_dropped"] = control.syn_dropped
            entry["cookies_sent"] = control.cookies_sent
            entry["cookies_validated"] = control.cookies_validated
            entry["embryonic_reaped"] = control.embryonic_reaped
            entry["challenge_acks"] = control.challenge_acks
            recovery = getattr(control, "recovery", None)
            if recovery is not None:
                entry["watchdog_fired"] = recovery.watchdog_fired
                entry["recoveries"] = recovery.recoveries
                entry["reoffloaded"] = recovery.reoffloaded_connections
                entry["slowpath_acks"] = recovery.shim.acks_sent
        nic = getattr(host, "nic", None)
        if nic is not None:
            dp = nic.datapath
            entry["csum_drops"] = sum(pre.csum_drops for pre in dp.pre_stages)
            entry["fast_retransmits"] = sum(post.fast_retransmits for post in dp.post_stages)
            entry["dma_retries"] = nic.chip.dma.transient_failures
            entry["doorbells_lost"] = nic.chip.pcie.doorbells_lost
            entry["nic_reboots"] = nic.reboots
        engine = getattr(host, "engine", None)
        if engine is not None:
            entry["fast_retransmits"] = sum(
                conn.fast_retransmits for conn in engine.conns.values()
            )
            entry["retransmitted_bytes"] = sum(
                conn.retransmitted_bytes for conn in engine.conns.values()
            )
            entry["csum_drops"] = host.csum_drops
        station = getattr(host, "station", None)
        if station is not None:
            entry["fcs_drops"] = station.port.rx_fcs_drops
            entry["link_down_drops"] = station.port.link.drops_link_down
        snap[name] = entry
    return snap


def total_retransmits(snapshot):
    """Sum of retransmission events across every host in a snapshot."""
    total = 0
    for entry in snapshot.values():
        total += entry.get("retransmits", 0)
        total += entry.get("syn_retransmits", 0)
        total += entry.get("fast_retransmits", 0)
        total += entry.get("retransmitted_bytes", 0)
    return total


def counter_delta(before, after):
    """Per-host, per-counter difference of two snapshots."""
    delta = {}
    for name, entry in after.items():
        base = before.get(name, {})
        delta[name] = {key: value - base.get(key, 0) for key, value in entry.items()}
    return delta
