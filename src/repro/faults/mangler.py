"""Deterministic segment-sequence mangling for conformance fuzzing.

Where the live fault layer perturbs frames inside a running testbed,
:class:`SegmentMangler` perturbs an *ordered list* of abstract segments
before they are fed directly into ``proto_logic`` — the shape the
property-based conformance suite needs: hypothesis generates a payload
split and a seed, the mangler derives a reproducible schedule of
loss / duplication / reordering / corruption, and the test asserts the
protocol logic's invariants over the mangled arrival order.

The mangler is transport-agnostic: it reorders opaque items and calls
``corrupt_fn(item)`` to produce a corrupted variant (e.g. flip one
payload byte and mark the segment), so the same machinery can fuzz any
segment representation.
"""


class MangleOp:
    """One recorded mangling decision (for failure diagnostics)."""

    __slots__ = ("index", "op", "arg")

    def __init__(self, index, op, arg=None):
        self.index = index
        self.op = op
        self.arg = arg

    def __repr__(self):
        return "<{}@{}{}>".format(self.op, self.index, "" if self.arg is None else ":{}".format(self.arg))


class SegmentMangler:
    """Applies a seeded schedule of wire faults to a segment list."""

    def __init__(self, rng, loss_p=0.0, dup_p=0.0, reorder_p=0.0, corrupt_p=0.0, reorder_span=3):
        self.rng = rng
        self.loss_p = loss_p
        self.dup_p = dup_p
        self.reorder_p = reorder_p
        self.corrupt_p = corrupt_p
        self.reorder_span = max(1, reorder_span)
        self.ops = []

    def mangle(self, segments, corrupt_fn=None):
        """Return a new arrival order with faults applied.

        Order of decisions per original segment: loss, corruption,
        duplication; reordering then displaces survivors by up to
        ``reorder_span`` positions. ``self.ops`` records every decision
        for shrink-friendly failure messages.
        """
        self.ops = []
        working = []
        for index, segment in enumerate(segments):
            if self.loss_p and self.rng.random() < self.loss_p:
                self.ops.append(MangleOp(index, "drop"))
                continue
            item = segment
            if corrupt_fn is not None and self.corrupt_p and self.rng.random() < self.corrupt_p:
                item = corrupt_fn(segment)
                self.ops.append(MangleOp(index, "corrupt"))
            working.append(item)
            if self.dup_p and self.rng.random() < self.dup_p:
                self.ops.append(MangleOp(index, "dup"))
                working.append(item)
        if self.reorder_p:
            for position in range(len(working)):
                if self.rng.random() < self.reorder_p:
                    offset = self.rng.randint(1, self.reorder_span)
                    other = min(len(working) - 1, position + offset)
                    if other != position:
                        self.ops.append(MangleOp(position, "swap", other))
                        working[position], working[other] = working[other], working[position]
        return working
