"""Deterministic, seeded fault injection for the FlexTOE testbed.

Compose :class:`FaultPlan` objects from typed :mod:`~repro.faults.events`
specs, install them on a :class:`~repro.harness.Testbed`, and assert
end-to-end invariants from :mod:`~repro.faults.invariants`. Every random
decision draws from a plan-scoped :class:`~repro.sim.RngPool` stream and
lands in an :class:`InjectionLog` whose digest is byte-stable across
same-seed runs. See DESIGN.md §10 for the fault model.
"""

from repro.faults.controller import FaultController
from repro.faults.events import (
    BurstLoss,
    CoreJitter,
    Corruption,
    DmaFlake,
    DoorbellLoss,
    Duplication,
    FaultSpec,
    FpcStall,
    LinkFlap,
    MmioDelay,
    NicCrash,
    QueueBackpressure,
    ReorderWindow,
    StateCacheEvict,
)
from repro.faults.invariants import (
    DeliveryViolation,
    InvariantViolation,
    LivenessViolation,
    assert_exact_delivery,
    counter_delta,
    counters_snapshot,
    run_until,
    total_retransmits,
)
from repro.faults.log import InjectionLog, describe_frame
from repro.faults.mangler import SegmentMangler
from repro.faults.plan import FaultPlan
from repro.faults.plans import CANONICAL, REGISTRY, canonical_plans, make_plan
from repro.faults.wire import WireFaultInjector

__all__ = [
    "BurstLoss",
    "CANONICAL",
    "CoreJitter",
    "Corruption",
    "DeliveryViolation",
    "DmaFlake",
    "DoorbellLoss",
    "Duplication",
    "FaultController",
    "FaultPlan",
    "FaultSpec",
    "FpcStall",
    "InjectionLog",
    "InvariantViolation",
    "LinkFlap",
    "LivenessViolation",
    "MmioDelay",
    "NicCrash",
    "QueueBackpressure",
    "REGISTRY",
    "ReorderWindow",
    "SegmentMangler",
    "StateCacheEvict",
    "WireFaultInjector",
    "assert_exact_delivery",
    "canonical_plans",
    "counter_delta",
    "counters_snapshot",
    "describe_frame",
    "make_plan",
    "run_until",
    "total_retransmits",
]
