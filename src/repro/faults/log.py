"""The injection log: a deterministic record of every fault event.

Every action the fault layer takes — a dropped frame, a stalled FPC, a
flushed cache — is appended here with its simulated timestamp. Two runs
with the same seed and plan must produce *byte-identical* logs; the
:meth:`InjectionLog.digest` hash is what the determinism regression test
compares. To keep that guarantee, records may only contain values that
are themselves deterministic: sim time, wire header fields, configured
parameters. In particular ``Frame.frame_id`` comes from a process-global
counter and MUST NOT appear in records (see :func:`describe_frame`).
"""

import hashlib
import json

from repro.proto.tcp import flags_to_str


def describe_frame(frame):
    """A deterministic, human-readable one-liner for a frame.

    Uses only wire fields (ports, seq/ack, flags, payload length) so the
    description is identical across runs regardless of allocation order.
    """
    if frame.tcp is not None:
        return "tcp {}>{} seq={} ack={} flags={} len={}".format(
            frame.tcp.sport,
            frame.tcp.dport,
            frame.tcp.seq,
            frame.tcp.ack,
            flags_to_str(frame.tcp.flags),
            len(frame.payload),
        )
    if frame.arp is not None:
        return "arp"
    return "raw len={}".format(len(frame.payload))


class InjectionLog:
    """Append-only record of fault events, hashable for determinism tests."""

    def __init__(self):
        self.records = []

    def record(self, t_ns, plan, fault, action, target, detail=""):
        """Append one event.

        ``plan``/``fault`` are the plan and spec labels, ``action`` is a
        short verb ("drop", "stall", "flush", ...), ``target`` names the
        affected component, ``detail`` is a deterministic string.
        """
        self.records.append(
            {
                "t_ns": int(t_ns),
                "plan": plan,
                "fault": fault,
                "action": action,
                "target": target,
                "detail": detail,
            }
        )

    def __len__(self):
        return len(self.records)

    def counts(self):
        """{(fault, action): n} summary of the log."""
        out = {}
        for rec in self.records:
            key = (rec["fault"], rec["action"])
            out[key] = out.get(key, 0) + 1
        return out

    def actions(self, action):
        """All records with the given action verb."""
        return [rec for rec in self.records if rec["action"] == action]

    def to_jsonable(self):
        return list(self.records)

    def to_json(self, indent=None):
        return json.dumps(self.records, sort_keys=True, indent=indent)

    def digest(self):
        """SHA-256 over the canonical JSON encoding of the log."""
        payload = json.dumps(self.records, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()
