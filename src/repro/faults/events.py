"""Typed fault specifications.

A *spec* describes one fault: what it does (the subclass), where it
applies (``target``), and when it is active (``start_ns`` /
``duration_ns`` / an optional ``when`` predicate polled on sim time).
Specs are inert descriptions; the
:class:`~repro.faults.controller.FaultController` resolves targets,
derives a dedicated RNG stream per spec, and drives the lifecycle:

``activate(ctx, obj)`` / ``deactivate(ctx, obj)``
    called once when the active window opens/closes (steady-state
    faults: loss rates, installed hooks, shrunk ring capacities);

``tick(ctx, obj)``
    called every ``tick_ns`` while active (pulsed faults: FPC stalls,
    cache flushes, link flaps, core jitter);

``admit_one(ctx, frame)``
    wire specs only — per-frame transformation, composed by
    :class:`~repro.faults.wire.WireFaultInjector`.

``ctx`` is the spec's :class:`~repro.faults.controller.FaultContext`
(RNG stream, injection log, sim clock). All randomness must come from
``ctx.rng`` so identical seeds yield identical event traces.

Layers and default targets:

========  =====================  ===========================
layer     resolves to            target syntax
========  =====================  ===========================
wire      switch fault hook      ``"switch"``
link      host-switch links      ``"*"`` or ``"link:<host>"``
nic       FlexTOE NIC internals  ``"*"`` or ``"host:<host>"``
host      host machines          ``"*"`` or ``"host:<host>"``
========  =====================  ===========================
"""

from repro.faults.log import describe_frame


class FaultSpec:
    """Base class: scheduling fields shared by every fault."""

    layer = "wire"
    default_target = "switch"
    #: Pulse period in ns; None means the fault is steady-state.
    tick_ns = None

    def __init__(self, label=None, target=None, start_ns=0, duration_ns=None, when=None, poll_ns=50_000):
        self.label = label or type(self).__name__.lower()
        self.target = target if target is not None else self.default_target
        self.start_ns = start_ns
        self.duration_ns = duration_ns
        self.when = when
        self.poll_ns = poll_ns

    def activate(self, ctx, obj):
        pass

    def deactivate(self, ctx, obj):
        pass

    def tick(self, ctx, obj):
        pass

    def __repr__(self):
        return "<{} target={!r} start={} dur={}>".format(
            type(self).__name__, self.target, self.start_ns, self.duration_ns
        )


# -- wire faults (composed by WireFaultInjector) ---------------------------


class WireFault(FaultSpec):
    """A per-frame transformation applied at the switch ingress."""

    layer = "wire"
    default_target = "switch"

    def admit_one(self, ctx, frame):
        """Return ``[(frame, extra_delay_ns), ...]`` for one input frame."""
        raise NotImplementedError


class BurstLoss(WireFault):
    """Correlated loss: each trigger drops a short run of frames.

    With probability ``probability`` a frame starts a burst of
    ``burst_min``..``burst_max`` consecutive drops — the Gilbert-style
    pattern that separates go-back-N from SACK-less fast retransmit far
    more than independent loss at the same average rate.
    """

    def __init__(self, probability=0.01, burst_min=2, burst_max=4, **kwargs):
        super().__init__(**kwargs)
        if not 0.0 <= probability <= 1.0:
            raise ValueError("loss probability must be within [0, 1]")
        self.probability = probability
        self.burst_min = burst_min
        self.burst_max = burst_max
        self.dropped = 0
        self._burst_left = 0

    def admit_one(self, ctx, frame):
        if self._burst_left > 0:
            self._burst_left -= 1
            self.dropped += 1
            ctx.log_event("drop", "switch", describe_frame(frame))
            return []
        if ctx.rng.random() < self.probability:
            self._burst_left = ctx.rng.randint(self.burst_min, self.burst_max) - 1
            self.dropped += 1
            ctx.log_event("drop", "switch", describe_frame(frame))
            return []
        return [(frame, 0)]


class Corruption(WireFault):
    """Bit corruption in flight.

    ``fcs=True`` models corruption the receiving MAC's frame checksum
    catches (dropped at :meth:`repro.net.link.Port.deliver` before the
    device sees it). ``fcs=False`` models the rarer FCS-passing flip
    that only the TCP checksum catches — marked ``csum_bad`` and dropped
    by the pre-stage Val step / the baseline NIC checksum offload.
    """

    def __init__(self, probability=0.01, fcs=True, **kwargs):
        super().__init__(**kwargs)
        self.probability = probability
        self.fcs = fcs
        self.corrupted = 0

    def admit_one(self, ctx, frame):
        if ctx.rng.random() < self.probability:
            bad = frame.copy()
            bad.set_meta("fcs_bad" if self.fcs else "csum_bad", True)
            self.corrupted += 1
            ctx.log_event("corrupt", "switch", describe_frame(frame))
            return [(bad, 0)]
        return [(frame, 0)]


class Duplication(WireFault):
    """Frame duplication (e.g. a flapping LAG rehash)."""

    def __init__(self, probability=0.01, **kwargs):
        super().__init__(**kwargs)
        self.probability = probability
        self.duplicated = 0

    def admit_one(self, ctx, frame):
        if ctx.rng.random() < self.probability:
            self.duplicated += 1
            ctx.log_event("duplicate", "switch", describe_frame(frame))
            return [(frame, 0), (frame.copy(), 0)]
        return [(frame, 0)]


class ReorderWindow(WireFault):
    """Reordering: selected frames are held back ``delay_ns`` (plus
    uniform jitter), letting later frames overtake them."""

    def __init__(self, probability=0.05, delay_ns=25_000, jitter_ns=0, **kwargs):
        super().__init__(**kwargs)
        self.probability = probability
        self.delay_ns = delay_ns
        self.jitter_ns = jitter_ns
        self.delayed = 0

    def admit_one(self, ctx, frame):
        if ctx.rng.random() < self.probability:
            delay = self.delay_ns
            if self.jitter_ns:
                delay += ctx.rng.randrange(self.jitter_ns)
            self.delayed += 1
            ctx.log_event("delay", "switch", "{} +{}ns".format(describe_frame(frame), delay))
            return [(frame, delay)]
        return [(frame, 0)]


class LinkFlap(FaultSpec):
    """Administrative link flap: every ``tick_ns`` the link goes down
    for ``down_ns`` (frames offered meanwhile are lost, both ways)."""

    layer = "link"
    default_target = "*"

    def __init__(self, down_ns=100_000, period_ns=5_000_000, **kwargs):
        super().__init__(**kwargs)
        self.down_ns = down_ns
        self.tick_ns = period_ns

    def tick(self, ctx, obj):
        name, link = obj
        link.set_up(False)
        ctx.log_event("link-down", name, "for {}ns".format(self.down_ns))

        def back_up():
            link.set_up(True)
            ctx.log_event("link-up", name, "")

        ctx.after(self.down_ns, back_up)


# -- NIC faults -------------------------------------------------------------


class NicFault(FaultSpec):
    """Faults on the FlexTOE NIC; non-FlexTOE hosts are skipped."""

    layer = "nic"
    default_target = "*"


class FpcStall(NicFault):
    """Periodically wedge the issue pipeline of a stage's FPCs.

    Models firmware assists / ECC scrubs stealing the single-issue slot
    (paper §4: "an FPC is a wimpy 800 MHz core"). Targets the FPCs the
    datapath registered for ``stage`` in ``stage_fpcs``.
    """

    def __init__(self, stage="proto", stall_ns=50_000, period_ns=500_000, **kwargs):
        super().__init__(**kwargs)
        self.stage = stage
        self.stall_ns = stall_ns
        self.tick_ns = period_ns

    def tick(self, ctx, obj):
        name, host = obj
        fpcs = host.nic.datapath.stage_fpcs.get(self.stage, [])
        for fpc in fpcs:
            fpc.stall(self.stall_ns)
            ctx.log_event("stall", "{}:{}".format(name, fpc.name), "{}ns".format(self.stall_ns))


class DmaFlake(NicFault):
    """Transient DMA failures: an operation fails and is retried after
    ``retry_delay_ns`` (PCIe replay), delaying completion."""

    def __init__(self, probability=0.02, retry_delay_ns=3_000, **kwargs):
        super().__init__(**kwargs)
        self.probability = probability
        self.retry_delay_ns = retry_delay_ns
        self._saved = {}

    def activate(self, ctx, obj):
        name, host = obj
        dma = host.nic.chip.dma

        def hook(nbytes, _ctx=ctx, _name=name):
            if _ctx.rng.random() < self.probability:
                _ctx.log_event("dma-retry", _name, "{}B +{}ns".format(nbytes, self.retry_delay_ns))
                return self.retry_delay_ns
            return 0

        self._saved[name] = dma.fault_hook
        dma.fault_hook = hook

    def deactivate(self, ctx, obj):
        name, host = obj
        host.nic.chip.dma.fault_hook = self._saved.pop(name, None)


class StateCacheEvict(NicFault):
    """Periodically flush every protocol FPC's state cache, forcing the
    cold EMEM path (the Figure 14 worst case) at runtime."""

    def __init__(self, period_ns=1_000_000, **kwargs):
        super().__init__(**kwargs)
        self.tick_ns = period_ns

    def tick(self, ctx, obj):
        name, host = obj
        for stage in host.nic.datapath.protocol_stages:
            stage.state_cache.flush()
            ctx.log_event("flush", "{}:proto-g{}".format(name, stage.flow_group), "")


class QueueBackpressure(NicFault):
    """Shrink inter-stage ring capacity to ``capacity`` slots while
    active, forcing blocking puts and upstream backpressure."""

    def __init__(self, ring="post", capacity=1, **kwargs):
        super().__init__(**kwargs)
        self.ring = ring
        self.capacity = capacity
        self._saved = {}

    def _rings(self, host):
        dp = host.nic.datapath
        if self.ring == "proto":
            return list(dp.proto_rings)
        if self.ring == "post":
            return list(dp.post_rings)
        if self.ring == "dma":
            return [dp.dma_ring]
        if self.ring == "nbi":
            return [dp.nbi_ring]
        if self.ring == "ctx":
            return [dp.ctx_ring]
        raise ValueError("unknown ring {!r}".format(self.ring))

    def activate(self, ctx, obj):
        name, host = obj
        saved = []
        for ring in self._rings(host):
            saved.append(ring.store.capacity)
            ring.store.set_capacity(self.capacity)
        self._saved[name] = saved
        ctx.log_event("backpressure", "{}:{}".format(name, self.ring), "capacity={}".format(self.capacity))

    def deactivate(self, ctx, obj):
        name, host = obj
        saved = self._saved.pop(name, [])
        for ring, capacity in zip(self._rings(host), saved):
            ring.store.set_capacity(capacity)
        ctx.log_event("backpressure-end", "{}:{}".format(name, self.ring), "")


class DoorbellLoss(NicFault):
    """Lose host MMIO doorbell writes with some probability.

    Posted writes give the host no error; liveness relies on the
    control plane's RTO loop re-posting the descriptor and ringing
    again (repro.control), which this fault exercises.
    """

    def __init__(self, probability=0.1, **kwargs):
        super().__init__(**kwargs)
        self.probability = probability
        self._saved = {}

    def activate(self, ctx, obj):
        name, host = obj
        pcie = host.nic.chip.pcie
        prev = pcie.mmio_fault

        def hook(key, _ctx=ctx, _name=name, _prev=prev):
            if _ctx.rng.random() < self.probability:
                _ctx.log_event("doorbell-drop", _name, str(key))
                return None
            if _prev is not None:
                return _prev(key)
            return 0

        self._saved[name] = prev
        pcie.mmio_fault = hook

    def deactivate(self, ctx, obj):
        name, host = obj
        host.nic.chip.pcie.mmio_fault = self._saved.pop(name, None)


class MmioDelay(NicFault):
    """Stretch MMIO doorbell writes by ``extra_ns`` (congested PCIe
    root port / IOMMU contention)."""

    def __init__(self, extra_ns=2_000, probability=1.0, **kwargs):
        super().__init__(**kwargs)
        self.extra_ns = extra_ns
        self.probability = probability
        self._saved = {}

    def activate(self, ctx, obj):
        name, host = obj
        pcie = host.nic.chip.pcie
        prev = pcie.mmio_fault

        def hook(key, _ctx=ctx, _name=name, _prev=prev):
            extra = 0
            if _prev is not None:
                extra = _prev(key)
                if extra is None:
                    return None
            if self.probability >= 1.0 or _ctx.rng.random() < self.probability:
                _ctx.log_event("mmio-delay", _name, "+{}ns".format(self.extra_ns))
                return extra + self.extra_ns
            return extra

        self._saved[name] = prev
        pcie.mmio_fault = hook

    def deactivate(self, ctx, obj):
        name, host = obj
        host.nic.chip.pcie.mmio_fault = self._saved.pop(name, None)


class NicCrash(NicFault):
    """Hard data-path crash: firmware wedge / PCIe FLR-worthy fault.

    One-shot — when the active window opens the NIC's datapath is
    killed outright (stages stop, heartbeats freeze, the MAC drops RX).
    Nothing here restarts it: detection and re-offload are the control
    plane's job (:mod:`repro.control.recovery`), which is exactly what
    this fault exists to exercise.
    """

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.crashes = 0

    def activate(self, ctx, obj):
        name, host = obj
        nic = getattr(host, "nic", None)
        if nic is None or not hasattr(nic, "crash"):
            return  # non-FlexTOE stack: nothing to crash
        if nic.crashed:
            return
        nic.crash()
        self.crashes += 1
        ctx.log_event("nic-crash", name, "datapath killed")


# -- host faults ------------------------------------------------------------


class HostFault(FaultSpec):
    """Faults on host machines (any stack with a ``machine``)."""

    layer = "host"
    default_target = "*"


class CoreJitter(HostFault):
    """Periodically steal a core for ``busy_ns`` (noisy neighbor, SMI,
    kernel housekeeping) — app and driver work queues behind it."""

    def __init__(self, core=0, busy_ns=20_000, period_ns=500_000, **kwargs):
        super().__init__(**kwargs)
        self.core = core
        self.busy_ns = busy_ns
        self.tick_ns = period_ns

    def tick(self, ctx, obj):
        name, host = obj
        cores = host.machine.cores
        core = cores[self.core % len(cores)]
        core.steal(self.busy_ns)
        ctx.log_event("steal", "{}:{}".format(name, core.name), "{}ns".format(self.busy_ns))
