"""The Linux in-kernel TCP stack personality.

Versatile but bulky (paper §2.1): full SACK recovery and unrestricted
reassembly make it the most loss-robust stack (Fig 15b), but syscall
overheads, a coarse kernel lock, and interrupt wakeup latency cap its
throughput and multi-core scaling (Figs 9/10/16)."""

from repro.baselines.costs import LINUX_COSTS
from repro.baselines.engine import TcpEngineConfig
from repro.baselines.stack import BaselineHost, Personality


class LinuxPersonality(Personality):
    name = "linux"

    def __init__(self):
        config = TcpEngineConfig(
            recovery="sack",
            reassembly="full",
            delayed_ack_segments=2,
            rto_ns=2_000_000,
            min_rto_ns=1_000_000,
            use_dctcp=True,
        )
        super().__init__(LINUX_COSTS, config)
        self.kernel_lock = True
        self.rx_dispatchers = 4


def add_linux_host(testbed, name, n_cores=20, **attach_kwargs):
    """Attach a Linux-stack host to a testbed."""
    mac, ip = testbed.addresses()
    attach_kwargs.setdefault("mac", mac)
    attach_kwargs.setdefault("ip", ip)
    host = BaselineHost(
        testbed.sim, testbed, name, LinuxPersonality(), n_cores=n_cores, **attach_kwargs
    )
    testbed.add_host(name, host)
    return host
