"""A complete software TCP engine for the baseline stacks.

Simulation-free core: all methods take ``now`` (ns) and return/emit
frames through a transmit callback, so the engine is unit-testable and
the per-stack *personality* decides which core pays the cycles.

Feature matrix (selected per stack by :class:`TcpEngineConfig`):

* recovery: ``"sack"`` (selective retransmit, Linux), ``"gbn"``
  (go-back-N on 3 dup-ACKs, TAS), ``"rto_only"`` (Chelsio TOE).
* reassembly: ``"full"`` (arbitrary OOO queue, Linux), ``"interval"``
  (one interval, like FlexTOE), ``"drop"`` (discard OOO, TAS).
* DCTCP ECN reaction and NewReno-style cwnd control.
* delayed ACKs, window-scale 7, RFC 7323 timestamps, zero-window probes.
"""

from repro.proto.packet import make_tcp_frame
from repro.proto.tcp import (
    FLAG_ACK,
    FLAG_ECE,
    FLAG_FIN,
    FLAG_PSH,
    FLAG_RST,
    FLAG_SYN,
    TcpOptions,
    seq_add,
    seq_diff,
)

WINDOW_SCALE = 7
SEQ_MASK = 0xFFFFFFFF

# Connection states.
SYN_SENT = "syn-sent"
SYN_RCVD = "syn-rcvd"
ESTABLISHED = "established"
FIN_WAIT = "fin-wait"
CLOSE_WAIT = "close-wait"
LAST_ACK = "last-ack"
CLOSED = "closed"


class TcpEngineConfig:
    def __init__(
        self,
        mss=1448,
        recovery="sack",
        reassembly="full",
        delayed_ack_segments=1,
        init_cwnd_segments=10,
        rto_ns=1_000_000,
        min_rto_ns=200_000,
        max_rto_ns=64_000_000,
        use_dctcp=True,
        use_timestamps=True,
        rx_buffer=256 * 1024,
        tx_buffer=256 * 1024,
        dctcp_g=1.0 / 16.0,
    ):
        self.mss = mss
        self.recovery = recovery
        self.reassembly = reassembly
        self.delayed_ack_segments = delayed_ack_segments
        self.init_cwnd_segments = init_cwnd_segments
        self.rto_ns = rto_ns
        self.min_rto_ns = min_rto_ns
        self.max_rto_ns = max_rto_ns
        self.use_dctcp = use_dctcp
        self.use_timestamps = use_timestamps
        self.rx_buffer = rx_buffer
        self.tx_buffer = tx_buffer
        self.dctcp_g = dctcp_g


class TcpConn:
    """One connection's complete state. Stream positions are unbounded
    ints; wire sequence = (iss/irs + 1 + pos) mod 2^32."""

    def __init__(self, four_tuple, local_mac, peer_mac, iss, config):
        self.four_tuple = four_tuple  # (lip, rip, lport, rport)
        self.local_mac = local_mac
        self.peer_mac = peer_mac
        self.config = config
        self.state = CLOSED
        self.iss = iss
        self.irs = None
        # Send side.
        self.tx_buf = bytearray()
        self.tx_base_pos = 0  # stream pos of tx_buf[0] == SND.UNA
        self.snd_nxt_pos = 0
        self.snd_max_pos = 0  # highest position ever sent (for ACK validation)
        self.fin_pending = False
        self.fin_sent_pos = None
        self.fin_acked = False
        self.remote_win = 0xFFFF << WINDOW_SCALE
        self.cwnd = config.init_cwnd_segments * config.mss
        self.ssthresh = 1 << 30
        self.dupacks = 0
        self.in_recovery = False
        self.recovery_end_pos = 0
        self.sacked = []  # list of (start_pos, end_pos), disjoint sorted
        self.retransmit_pos = None
        # DCTCP.
        self.dctcp_alpha = 0.0
        self.win_acked = 0
        self.win_marked = 0
        self.win_end_pos = 0
        # Receive side.
        self.rcv_nxt_pos = 0
        self.rx_ready = bytearray()
        self.rx_ooo = []  # list of (start_pos, bytes), disjoint sorted
        self.rx_fin_pos = None
        self.fin_delivered = False
        self.peer_ts = 0
        # ACK policy.
        self.segs_since_ack = 0
        # Timers (deadlines in ns; None = disarmed).
        self.rto_deadline = None
        self.rto_backoff = 0
        self.persist_deadline = None
        self.delack_deadline = None
        # Stats.
        self.retransmitted_bytes = 0
        self.fast_retransmits = 0
        self.timeouts = 0
        self.bytes_acked_total = 0

    # -- sequence mapping ------------------------------------------------

    def snd_seq(self, pos):
        return seq_add(self.iss, 1 + pos)

    def rcv_seq(self, pos):
        return seq_add(self.irs, 1 + pos)

    def snd_pos(self, seq):
        return seq_diff(seq, seq_add(self.iss, 1)) + self._snd_wrap_base(seq)

    def _snd_wrap_base(self, seq):
        # Streams in our experiments stay < 2^31; no wrap correction.
        return 0

    # -- window bookkeeping ------------------------------------------------

    @property
    def snd_una_pos(self):
        return self.tx_base_pos

    @property
    def flight(self):
        return self.snd_nxt_pos - self.tx_base_pos

    @property
    def tx_pending(self):
        return self.tx_base_pos + len(self.tx_buf) - self.snd_nxt_pos

    @property
    def tx_free(self):
        return self.config.tx_buffer - len(self.tx_buf)

    @property
    def rx_space(self):
        """Advertised receive space: unread in-order bytes only.

        Out-of-order data is not counted against the advertised window
        (it would perturb the window field and defeat the peer's
        duplicate-ACK detection); the reassembly queue is bounded
        separately by the same buffer capacity."""
        return max(0, self.config.rx_buffer - len(self.rx_ready))

    def advertised_window(self):
        return min(0xFFFF, self.rx_space >> WINDOW_SCALE)

    @property
    def readable(self):
        return len(self.rx_ready) > 0 or (
            self.rx_fin_pos is not None and self.rcv_nxt_pos >= self.rx_fin_pos and not self.fin_delivered
        )


class HostTcpEngine:
    """The engine: owns all connections of one stack instance.

    The hosting stack provides ``callbacks`` with:
    ``transmit(frame)``, ``on_connected(conn)``, ``on_accept(conn)``,
    ``on_data(conn)``, ``on_tx_space(conn)``, ``on_eof(conn)``,
    ``on_reset(conn)``, ``syn_to_unknown_port(frame) -> bool``.
    """

    def __init__(self, local_mac, local_ip, config, callbacks):
        self.local_mac = local_mac
        self.local_ip = local_ip
        self.config = config
        self.callbacks = callbacks
        self.conns = {}  # four_tuple -> TcpConn
        self._iss = 50_000

    # -- helpers -----------------------------------------------------------

    def _next_iss(self):
        self._iss += 64_000
        return self._iss & SEQ_MASK

    def _options(self, conn, now, syn=False):
        options = TcpOptions()
        if syn:
            options.mss = self.config.mss
            options.wscale = WINDOW_SCALE
            options.sack_permitted = self.config.recovery == "sack"
        if self.config.use_timestamps:
            options.ts_val = (now // 1000) & SEQ_MASK
            options.ts_ecr = conn.peer_ts
        if not syn and self.config.recovery == "sack" and conn.rx_ooo:
            for start, data in conn.rx_ooo[:3]:
                options.sack_blocks.append(
                    (conn.rcv_seq(start), conn.rcv_seq(start + len(data)))
                )
        return options

    def _frame(self, conn, seq, flags, payload=b"", now=0, ece=False, syn=False):
        lip, rip, lport, rport = conn.four_tuple
        ack = conn.rcv_seq(conn.rcv_nxt_pos + (1 if self._rx_fin_consumed(conn) else 0)) if conn.irs is not None else 0
        if flags & FLAG_ACK == 0 and not syn:
            flags |= FLAG_ACK
        frame = make_tcp_frame(
            conn.local_mac,
            conn.peer_mac,
            lip,
            rip,
            lport,
            rport,
            seq=seq,
            ack=ack if (flags & FLAG_ACK) else 0,
            flags=flags | (FLAG_ECE if ece else 0),
            window=conn.advertised_window(),
            payload=payload,
            options=self._options(conn, now, syn=syn),
            ecn=0b10 if self.config.use_dctcp else 0,
            born_at=now,
        )
        return frame

    def _rx_fin_consumed(self, conn):
        return conn.rx_fin_pos is not None and conn.rcv_nxt_pos >= conn.rx_fin_pos

    # -- connection setup -----------------------------------------------------

    def open(self, four_tuple, peer_mac, now):
        """Active open: create the connection and send the SYN."""
        conn = TcpConn(four_tuple, self.local_mac, peer_mac, self._next_iss(), self.config)
        conn.state = SYN_SENT
        self.conns[four_tuple] = conn
        self._send_syn(conn, now)
        return conn

    def _send_syn(self, conn, now, syn_ack=False):
        flags = FLAG_SYN | (FLAG_ACK if syn_ack else 0)
        lip, rip, lport, rport = conn.four_tuple
        frame = make_tcp_frame(
            conn.local_mac,
            conn.peer_mac,
            lip,
            rip,
            lport,
            rport,
            seq=conn.iss,
            ack=conn.rcv_seq(0) if syn_ack else 0,
            flags=flags,
            window=0xFFFF,
            options=self._options(conn, now, syn=True),
            born_at=now,
        )
        conn.rto_deadline = now + self.config.rto_ns
        self.callbacks.transmit(frame)

    # -- segment input -----------------------------------------------------------

    def on_segment(self, frame, now):
        """Process one received segment; returns the connection or None."""
        tcp = frame.tcp
        four = (frame.ip.dst, frame.ip.src, tcp.dport, tcp.sport)
        conn = self.conns.get(four)
        if conn is None:
            if tcp.flags & FLAG_SYN and not (tcp.flags & FLAG_ACK):
                return self._on_syn(frame, four, now)
            if not tcp.flags & FLAG_RST:
                self._send_rst_for(frame, now)
            return None
        if tcp.flags & FLAG_RST:
            self._teardown(conn, reset=True)
            return conn
        if conn.state == SYN_SENT:
            self._on_syn_ack(conn, frame, now)
            return conn
        if conn.state == SYN_RCVD:
            if tcp.flags & FLAG_SYN:
                self._send_syn(conn, now, syn_ack=True)  # SYN-ACK lost
                return conn
            conn.state = ESTABLISHED
            conn.rto_deadline = None
            self.callbacks.on_accept(conn)
            # Fall through: the ACK may carry data.
        self._on_established_segment(conn, frame, now)
        return conn

    def _on_syn(self, frame, four, now):
        if not self.callbacks.syn_to_unknown_port(frame):
            self._send_rst_for(frame, now)
            return None
        conn = TcpConn(four, self.local_mac, frame.eth.src, self._next_iss(), self.config)
        conn.state = SYN_RCVD
        conn.irs = frame.tcp.seq
        conn.remote_win = frame.tcp.window << WINDOW_SCALE
        if frame.tcp.options.ts_val is not None:
            conn.peer_ts = frame.tcp.options.ts_val
        self.conns[four] = conn
        self._send_syn(conn, now, syn_ack=True)
        return conn

    def _on_syn_ack(self, conn, frame, now):
        if not frame.tcp.flags & FLAG_SYN:
            return
        conn.irs = frame.tcp.seq
        conn.remote_win = frame.tcp.window << WINDOW_SCALE
        if frame.tcp.options.ts_val is not None:
            conn.peer_ts = frame.tcp.options.ts_val
        conn.state = ESTABLISHED
        conn.rto_deadline = None
        self.callbacks.transmit(self._frame(conn, conn.snd_seq(0), FLAG_ACK, now=now))
        self.callbacks.on_connected(conn)

    def _send_rst_for(self, frame, now):
        rst = make_tcp_frame(
            self.local_mac,
            frame.eth.src,
            frame.ip.dst,
            frame.ip.src,
            frame.tcp.dport,
            frame.tcp.sport,
            seq=frame.tcp.ack,
            ack=seq_add(frame.tcp.seq, max(1, len(frame.payload))),
            flags=FLAG_RST | FLAG_ACK,
            born_at=now,
        )
        self.callbacks.transmit(rst)

    # -- established-state processing ----------------------------------------

    def _on_established_segment(self, conn, frame, now):
        tcp = frame.tcp
        if tcp.flags & FLAG_SYN:
            # A retransmitted SYN-ACK: our handshake ACK was lost and
            # the peer is still in SYN-RCVD — re-acknowledge (RFC 793).
            self._send_ack(conn, now)
            return
        if tcp.options.ts_val is not None:
            conn.peer_ts = tcp.options.ts_val
        ack_side_progress = self._process_ack(conn, tcp, len(frame.payload), now)
        data_progress, need_ack, dup = self._process_data(conn, frame, now)
        if data_progress:
            self.callbacks.on_data(conn)
        if ack_side_progress:
            self.callbacks.on_tx_space(conn)
            self._try_transmit(conn, now)
        if self._rx_fin_consumed(conn) and not conn.fin_delivered and conn.rx_fin_pos == conn.rcv_nxt_pos and not conn.rx_ready:
            # Bare-FIN edge: EOF with no pending data still wakes the app.
            self.callbacks.on_eof(conn)
        if need_ack:
            self._maybe_ack(conn, now, force_dup=dup, ce=frame.ip.ce_marked)
        if conn.state == LAST_ACK and conn.fin_acked:
            self._teardown(conn)

    def _process_ack(self, conn, tcp, payload_len, now):
        if not tcp.flags & FLAG_ACK:
            return False
        new_remote_win = tcp.window << WINDOW_SCALE
        ack_pos = conn.snd_una_pos + seq_diff(tcp.ack, conn.snd_seq(conn.snd_una_pos))
        fin_units = 1 if conn.fin_sent_pos is not None else 0
        # ACKs may cover data sent before a go-back-N reset rewound
        # SND.NXT, so validate against the highest position ever sent.
        max_pos = max(conn.snd_nxt_pos, conn.snd_max_pos) + fin_units
        progress = False
        if conn.snd_una_pos < ack_pos <= max_pos:
            acked = ack_pos - conn.snd_una_pos
            if conn.fin_sent_pos is not None and ack_pos > conn.fin_sent_pos:
                conn.fin_acked = True
                acked -= 1
                ack_pos -= 1
            del conn.tx_buf[:acked]
            conn.tx_base_pos = ack_pos
            if conn.snd_nxt_pos < ack_pos:
                conn.snd_nxt_pos = ack_pos
            conn.bytes_acked_total += acked
            conn.dupacks = 0
            conn.rto_backoff = 0
            conn.rto_deadline = (now + self._rto(conn)) if (conn.flight or fin_units and not conn.fin_acked) else None
            self._drop_sacked_below(conn, ack_pos)
            # Congestion window growth + DCTCP window accounting.
            self._cc_on_ack(conn, acked, bool(tcp.flags & FLAG_ECE), now)
            if conn.in_recovery:
                if ack_pos >= conn.recovery_end_pos:
                    conn.in_recovery = False
                elif self.config.recovery == "sack":
                    self._retransmit_hole(conn, now)
            progress = True
        elif ack_pos == conn.snd_una_pos and payload_len == 0 and conn.flight > 0:
            if new_remote_win == conn.remote_win and not (tcp.flags & (FLAG_SYN | FLAG_FIN)):
                conn.dupacks += 1
                if self.config.recovery == "sack" and tcp.options.sack_blocks:
                    self._absorb_sack(conn, tcp.options.sack_blocks)
                if conn.dupacks == 3 and self.config.recovery != "rto_only":
                    self._fast_retransmit(conn, now)
        window_grew = new_remote_win > conn.remote_win
        conn.remote_win = new_remote_win
        if conn.remote_win > 0:
            conn.persist_deadline = None
        # A pure window update must restart a stalled sender.
        return progress or (window_grew and conn.tx_pending > 0)

    def _process_data(self, conn, frame, now):
        tcp = frame.tcp
        payload = frame.payload
        fin = bool(tcp.flags & FLAG_FIN)
        if not payload and not fin:
            return False, False, False
        seg_pos = conn.rcv_nxt_pos + seq_diff(tcp.seq, conn.rcv_seq(conn.rcv_nxt_pos))
        progress = False
        dup = False
        if payload:
            start = seg_pos
            end = seg_pos + len(payload)
            if end <= conn.rcv_nxt_pos:
                dup = True  # complete duplicate
            else:
                if start < conn.rcv_nxt_pos:
                    payload = payload[conn.rcv_nxt_pos - start :]
                    start = conn.rcv_nxt_pos
                # Trim to receive space.
                space = conn.rx_space - (start - conn.rcv_nxt_pos)
                if len(payload) > space:
                    payload = payload[: max(0, space)]
                    fin = False
                if not payload:
                    dup = True
                elif start == conn.rcv_nxt_pos:
                    conn.rx_ready += payload
                    conn.rcv_nxt_pos += len(payload)
                    self._fold_ooo(conn)
                    progress = True
                else:
                    dup = True  # out of order: dup-ACK the expected seq
                    self._stash_ooo(conn, start, payload)
        if fin:
            fin_pos = seg_pos + len(frame.payload)
            if fin_pos == conn.rcv_nxt_pos and conn.rx_fin_pos is None:
                conn.rx_fin_pos = fin_pos
                if conn.state == ESTABLISHED:
                    conn.state = CLOSE_WAIT
                self.callbacks.on_eof(conn)
                progress = True
            elif fin_pos > conn.rcv_nxt_pos:
                dup = True
        return progress, True, dup

    def _stash_ooo(self, conn, start, payload):
        policy = self.config.reassembly
        if policy == "drop":
            return
        ooo_bytes = sum(len(b) for _s, b in conn.rx_ooo)
        if ooo_bytes + len(payload) > self.config.rx_buffer:
            return  # reassembly queue bounded by the buffer capacity
        if policy == "interval" and conn.rx_ooo:
            lo, data = conn.rx_ooo[0]
            hi = lo + len(data)
            if start > hi or start + len(payload) < lo:
                return  # merge failure: single-interval policy drops
        merged = conn.rx_ooo + [(start, bytes(payload))]
        merged.sort(key=lambda item: item[0])
        out = []
        for seg_start, seg_data in merged:
            if out:
                last_start, last_data = out[-1]
                last_end = last_start + len(last_data)
                if seg_start <= last_end:
                    tail = seg_start + len(seg_data) - last_end
                    if tail > 0:
                        out[-1] = (last_start, last_data + seg_data[-tail:])
                    continue
            out.append((seg_start, bytes(seg_data)))
        conn.rx_ooo = out

    def _fold_ooo(self, conn):
        while conn.rx_ooo:
            start, data = conn.rx_ooo[0]
            if start > conn.rcv_nxt_pos:
                return
            usable = data[conn.rcv_nxt_pos - start :]
            conn.rx_ready += usable
            conn.rcv_nxt_pos += len(usable)
            conn.rx_ooo.pop(0)

    # -- congestion control -----------------------------------------------------

    def _cc_on_ack(self, conn, acked, ece, now):
        config = self.config
        conn.win_acked += acked
        if ece:
            conn.win_marked += acked
        if conn.snd_una_pos >= conn.win_end_pos:
            # A congestion window's worth of data acked: update alpha.
            if config.use_dctcp and conn.win_acked > 0:
                fraction = conn.win_marked / conn.win_acked
                conn.dctcp_alpha = (
                    (1 - config.dctcp_g) * conn.dctcp_alpha + config.dctcp_g * fraction
                )
                if fraction > 0:
                    conn.cwnd = max(config.mss, int(conn.cwnd * (1 - conn.dctcp_alpha / 2)))
            conn.win_acked = 0
            conn.win_marked = 0
            conn.win_end_pos = conn.snd_nxt_pos
        if conn.in_recovery:
            return
        if conn.cwnd < conn.ssthresh:
            conn.cwnd += acked  # slow start
        else:
            conn.cwnd += max(1, config.mss * acked // max(1, conn.cwnd))

    # -- loss recovery --------------------------------------------------------

    def _absorb_sack(self, conn, blocks):
        for start_seq, end_seq in blocks:
            start = conn.snd_una_pos + seq_diff(start_seq, conn.snd_seq(conn.snd_una_pos))
            end = conn.snd_una_pos + seq_diff(end_seq, conn.snd_seq(conn.snd_una_pos))
            if end <= start:
                continue
            conn.sacked.append((start, end))
        conn.sacked.sort()
        merged = []
        for start, end in conn.sacked:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(end, merged[-1][1]))
            else:
                merged.append((start, end))
        conn.sacked = merged

    def _drop_sacked_below(self, conn, pos):
        conn.sacked = [(s, e) for s, e in conn.sacked if e > pos]

    def _fast_retransmit(self, conn, now):
        conn.fast_retransmits += 1
        conn.ssthresh = max(2 * self.config.mss, conn.flight // 2)
        conn.cwnd = conn.ssthresh
        conn.in_recovery = True
        conn.recovery_end_pos = conn.snd_nxt_pos
        if self.config.recovery == "gbn":
            conn.snd_nxt_pos = conn.snd_una_pos  # resend everything
            self._try_transmit(conn, now)
        else:
            self._retransmit_hole(conn, now)
        conn.rto_deadline = now + self._rto(conn)

    def _retransmit_hole(self, conn, now):
        """SACK: resend the first unsacked chunk at SND.UNA."""
        hole_start = conn.snd_una_pos
        hole_end = min(conn.snd_nxt_pos, hole_start + self.config.mss)
        for s, e in conn.sacked:
            if s <= hole_start < e:
                return  # una itself is sacked; wait for cumulative ack
            if hole_start < s < hole_end:
                hole_end = s
                break
        if hole_end <= hole_start:
            return
        self._emit(conn, hole_start, hole_end - hole_start, now, retransmit=True)

    def _rto(self, conn):
        rto = self.config.rto_ns << min(6, conn.rto_backoff)
        return max(self.config.min_rto_ns, min(self.config.max_rto_ns, rto))

    # -- transmission ------------------------------------------------------------

    def app_send(self, conn, data, now):
        """Append app data; returns bytes accepted."""
        accepted = min(len(data), conn.tx_free)
        if accepted:
            conn.tx_buf += data[:accepted]
            self._try_transmit(conn, now)
        return accepted

    def app_recv(self, conn, max_bytes, now):
        """Pop in-order data; returns bytes (possibly empty)."""
        take = min(max_bytes, len(conn.rx_ready))
        data = bytes(conn.rx_ready[:take])
        del conn.rx_ready[:take]
        if take and conn.irs is not None and conn.state in (ESTABLISHED, CLOSE_WAIT, FIN_WAIT):
            # Window update if we were nearly closed.
            if conn.rx_space - take < 2 * self.config.mss:
                self._send_ack(conn, now)
        if not data and self._rx_fin_consumed(conn):
            conn.fin_delivered = True
        return data

    def app_close(self, conn, now):
        conn.fin_pending = True
        if conn.state == ESTABLISHED:
            conn.state = FIN_WAIT
        elif conn.state == CLOSE_WAIT:
            conn.state = LAST_ACK
        self._try_transmit(conn, now)

    def _usable_window(self, conn):
        window = min(conn.cwnd, conn.remote_win)
        return max(0, conn.snd_una_pos + window - conn.snd_nxt_pos)

    def _try_transmit(self, conn, now):
        config = self.config
        while True:
            usable = self._usable_window(conn)
            pending = conn.tx_pending
            if pending <= 0:
                break
            length = min(config.mss, usable, pending)
            if length <= 0:
                if conn.remote_win == 0 and conn.persist_deadline is None:
                    conn.persist_deadline = now + self._rto(conn)
                break
            self._emit(conn, conn.snd_nxt_pos, length, now)
            conn.snd_nxt_pos += length
            if conn.rto_deadline is None:
                conn.rto_deadline = now + self._rto(conn)
        if (
            conn.fin_pending
            and conn.fin_sent_pos is None
            and conn.tx_pending == 0
        ):
            self._emit_fin(conn, now)

    def _emit(self, conn, pos, length, now, retransmit=False):
        offset = pos - conn.tx_base_pos
        if pos + length > conn.snd_max_pos:
            conn.snd_max_pos = pos + length
        payload = bytes(conn.tx_buf[offset : offset + length])
        fin = False
        if (
            conn.fin_pending
            and pos + length == conn.tx_base_pos + len(conn.tx_buf)
            and (conn.fin_sent_pos is None or retransmit)
        ):
            fin = True
            conn.fin_sent_pos = pos + length
        flags = FLAG_ACK | (FLAG_PSH if payload else 0) | (FLAG_FIN if fin else 0)
        frame = self._frame(conn, conn.snd_seq(pos), flags, payload=payload, now=now)
        if retransmit:
            conn.retransmitted_bytes += length
        conn.segs_since_ack = 0
        conn.delack_deadline = None
        self.callbacks.transmit(frame)

    def _emit_fin(self, conn, now):
        conn.fin_sent_pos = conn.snd_nxt_pos
        frame = self._frame(conn, conn.snd_seq(conn.snd_nxt_pos), FLAG_ACK | FLAG_FIN, now=now)
        conn.rto_deadline = now + self._rto(conn)
        self.callbacks.transmit(frame)

    # -- acknowledgment policy ------------------------------------------------

    def _maybe_ack(self, conn, now, force_dup=False, ce=False):
        conn.segs_since_ack += 1
        if force_dup or conn.segs_since_ack >= self.config.delayed_ack_segments:
            self._send_ack(conn, now, ce=ce)
        elif conn.delack_deadline is None:
            conn.delack_deadline = now + 500_000  # 500 us delayed-ACK timer
            if ce:
                self._send_ack(conn, now, ce=True)

    def _send_ack(self, conn, now, ce=False):
        conn.segs_since_ack = 0
        conn.delack_deadline = None
        frame = self._frame(conn, conn.snd_seq(conn.snd_nxt_pos), FLAG_ACK, now=now, ece=ce)
        self.callbacks.transmit(frame)

    # -- timers -----------------------------------------------------------------

    def tick(self, now):
        """Drive all per-connection timers; call every ~100 us."""
        for conn in list(self.conns.values()):
            if conn.state == CLOSED:
                continue
            if conn.state in (SYN_SENT, SYN_RCVD):
                if conn.rto_deadline is not None and now >= conn.rto_deadline:
                    conn.rto_deadline = now + self._rto(conn)
                    conn.rto_backoff += 1
                    if conn.rto_backoff > 7:
                        self._teardown(conn, reset=True)
                        continue
                    self._send_syn(conn, now, syn_ack=conn.state == SYN_RCVD)
                continue
            if conn.delack_deadline is not None and now >= conn.delack_deadline:
                self._send_ack(conn, now)
            if conn.persist_deadline is not None and now >= conn.persist_deadline:
                conn.persist_deadline = now + self._rto(conn)
                self._zero_window_probe(conn, now)
            if conn.rto_deadline is not None and now >= conn.rto_deadline:
                if conn.flight > 0 or (conn.fin_sent_pos is not None and not conn.fin_acked):
                    conn.timeouts += 1
                    conn.rto_backoff += 1
                    conn.ssthresh = max(2 * self.config.mss, conn.flight // 2)
                    conn.cwnd = self.config.mss
                    conn.in_recovery = False
                    conn.sacked = []
                    if conn.fin_sent_pos is not None and not conn.fin_acked:
                        conn.fin_sent_pos = None  # re-arm the FIN
                    conn.snd_nxt_pos = conn.snd_una_pos  # go-back-N resend
                    conn.rto_deadline = now + self._rto(conn)
                    self._try_transmit(conn, now)
                else:
                    conn.rto_deadline = None

    def _zero_window_probe(self, conn, now):
        if conn.tx_pending <= 0:
            conn.persist_deadline = None
            return
        offset = conn.snd_nxt_pos - conn.tx_base_pos
        payload = bytes(conn.tx_buf[offset : offset + 1])
        frame = self._frame(conn, conn.snd_seq(conn.snd_nxt_pos), FLAG_ACK | FLAG_PSH, payload=payload, now=now)
        self.callbacks.transmit(frame)

    # -- teardown ----------------------------------------------------------------

    def _teardown(self, conn, reset=False):
        conn.state = CLOSED
        self.conns.pop(conn.four_tuple, None)
        if reset:
            self.callbacks.on_reset(conn)

    def close_silently(self, conn):
        """Drop state without emitting anything (test/util hook)."""
        self._teardown(conn)
