"""Per-stack host cycle costs, calibrated to Table 1 of the paper.

Table 1 reports kilocycles per Memcached request-response pair. A pair
is one RX segment + one TX segment + one recv() + one send() (plus the
ACKs). The constants below split the paper's per-pair numbers across
those operations; benchmark shapes depend on the relative magnitudes,
not the absolute values.
"""


class StackCosts:
    """Host cycles charged per operation, by category."""

    def __init__(
        self,
        driver_rx,
        driver_tx,
        tcp_rx,
        tcp_tx,
        sockets_recv,
        sockets_send,
        other_per_op,
        per_kb_copy=40,
        wakeup_latency_ns=0,
        epoll_base=120,
        epoll_per_conn_milli=0,
        interrupt_delay_ns=0,
        wakeup_jitter_prob=0.0,
        wakeup_jitter_mult=1,
    ):
        self.driver_rx = driver_rx
        self.driver_tx = driver_tx
        self.tcp_rx = tcp_rx
        self.tcp_tx = tcp_tx
        self.sockets_recv = sockets_recv
        self.sockets_send = sockets_send
        self.other_per_op = other_per_op
        self.per_kb_copy = per_kb_copy
        #: Interrupt/scheduler wakeup latency for blocking IO.
        self.wakeup_latency_ns = wakeup_latency_ns
        self.epoll_base = epoll_base
        #: Extra epoll cycles per watched connection, in millicycles.
        self.epoll_per_conn_milli = epoll_per_conn_milli
        #: Interrupt/softirq pipeline delay added to every received
        #: segment (pure latency; does not occupy a core).
        self.interrupt_delay_ns = interrupt_delay_ns
        #: Host scheduler jitter: with this probability a blocking
        #: wakeup takes ``mult`` times longer (tail-latency source).
        self.wakeup_jitter_prob = wakeup_jitter_prob
        self.wakeup_jitter_mult = wakeup_jitter_mult


#: Linux: 11.04 kc/pair total — driver 750, TCP 2620, sockets 2700,
#: other 3610 (Table 1), split across rx/tx halves.
LINUX_COSTS = StackCosts(
    driver_rx=400,
    driver_tx=350,
    tcp_rx=1500,
    tcp_tx=1120,
    sockets_recv=1350,
    sockets_send=1350,
    other_per_op=1800,
    per_kb_copy=80,
    wakeup_latency_ns=9_000,
    epoll_base=700,
    epoll_per_conn_milli=400,
    interrupt_delay_ns=25_000,
    wakeup_jitter_prob=0.03,
    wakeup_jitter_mult=10,
)

#: TAS: 3.34 kc/pair — driver 180, TCP 1440 (fast-path cores),
#: sockets 790, other 90.
TAS_COSTS = StackCosts(
    driver_rx=100,
    driver_tx=80,
    tcp_rx=800,
    tcp_tx=640,
    sockets_recv=395,
    sockets_send=395,
    other_per_op=45,
    per_kb_copy=50,
    wakeup_latency_ns=1_500,
    epoll_base=160,
    epoll_per_conn_milli=40,
    wakeup_jitter_prob=0.03,
    wakeup_jitter_mult=8,
)

#: Chelsio: 8.89 kc/pair — driver 1280 (complex TOE driver), TCP 400
#: (residual host work), sockets 2610, other 3280; TCP itself is on the
#: NIC. epoll dominates connection scalability (paper §5.2).
CHELSIO_COSTS = StackCosts(
    driver_rx=700,
    driver_tx=580,
    tcp_rx=220,
    tcp_tx=180,
    sockets_recv=1305,
    sockets_send=1305,
    other_per_op=1640,
    per_kb_copy=45,
    wakeup_latency_ns=5_000,
    epoll_base=900,
    epoll_per_conn_milli=900,
    interrupt_delay_ns=2_500,
    wakeup_jitter_prob=0.025,
    wakeup_jitter_mult=18,
)
