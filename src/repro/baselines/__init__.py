"""Baseline TCP stacks: Linux, TAS, and the Chelsio Terminator TOE.

All three share one software TCP engine (:mod:`repro.baselines.engine`)
that speaks the same wire format as FlexTOE over the simulated network;
a *personality* parameterizes what differs in the paper's analysis:

* **Linux** — in-kernel: syscall/driver/kernel cycle costs (Table 1),
  a coarse kernel lock that throttles multi-core scaling (Fig 9),
  SACK-based recovery + full reassembly (most loss-robust, Fig 15b),
  delayed ACKs, interrupt latency.
* **TAS** — kernel-bypass fast path on dedicated cores, per-core context
  queues (scales like FlexTOE), go-back-N with OOO drop, low latency.
* **Chelsio TOE** — TCP on the NIC (host cycles only for the kernel
  driver + sockets), 100 Gbps unidirectional streaming strength, but
  RTO-only recovery (Fig 15 collapse) and epoll-bound connection
  scalability.
"""

from repro.baselines.engine import HostTcpEngine, TcpEngineConfig
from repro.baselines.stack import BaselineContext, BaselineHost, BaselineSocket
from repro.baselines.linux import LinuxPersonality, add_linux_host
from repro.baselines.tas import TasPersonality, add_tas_host
from repro.baselines.chelsio import ChelsioPersonality, add_chelsio_host

__all__ = [
    "BaselineContext",
    "BaselineHost",
    "BaselineSocket",
    "ChelsioPersonality",
    "HostTcpEngine",
    "LinuxPersonality",
    "TasPersonality",
    "TcpEngineConfig",
    "add_chelsio_host",
    "add_linux_host",
    "add_tas_host",
]
