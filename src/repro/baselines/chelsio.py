"""The Chelsio Terminator TOE personality.

TCP runs in fixed-function NIC hardware: host TCP cycles nearly vanish
(Table 1), and unidirectional streaming at 100 Gbps is its strength
(Fig 13a). The hardwired engine cannot be adapted: recovery is RTO-only
with a conservative minimum (Fig 15 collapse), reassembly is a single
interval, and the kernel-based driver + epoll dominate RPC cost
(Figs 9/11/14)."""

from repro.baselines.costs import CHELSIO_COSTS
from repro.baselines.engine import TcpEngineConfig
from repro.baselines.stack import BaselineHost, Personality


class ChelsioPersonality(Personality):
    name = "chelsio"

    def __init__(self):
        config = TcpEngineConfig(
            recovery="rto_only",
            reassembly="interval",
            delayed_ack_segments=2,
            rto_ns=5_000_000,
            min_rto_ns=5_000_000,
            use_dctcp=True,
        )
        super().__init__(CHELSIO_COSTS, config)
        self.nic_tcp = True
        self.kernel_lock = True
        self.nic_tcp_capacity = 16
        self.nic_tcp_service_ns = 100
        self.rx_dispatchers = 4


def add_chelsio_host(testbed, name, n_cores=20, link_rate_bps=100_000_000_000, **attach_kwargs):
    """Attach a Chelsio-TOE host (100 Gbps NIC, per the testbed)."""
    attach_kwargs.setdefault("rate_bps", link_rate_bps)
    mac, ip = testbed.addresses()
    attach_kwargs.setdefault("mac", mac)
    attach_kwargs.setdefault("ip", ip)
    host = BaselineHost(
        testbed.sim, testbed, name, ChelsioPersonality(), n_cores=n_cores, **attach_kwargs
    )
    testbed.add_host(name, host)
    return host
