"""Baseline stack plumbing: NIC delivery, cycle charging, socket API.

A :class:`BaselineHost` runs one personality's TCP on a machine. Its
:class:`BaselineContext`/:class:`BaselineSocket` expose the same
generator API as libTOE, so applications (echo, Memcached, RPC clients)
run unmodified on any stack.
"""

import random
import zlib
from collections import deque

from repro.baselines.engine import HostTcpEngine
from repro.host import Machine
from repro.host.cpu import CAT_DRIVER, CAT_OTHER, CAT_SOCKETS, CAT_TCP
from repro.libtoe.errors import ConnectRefusedError, ToeError
from repro.proto import ARP_REPLY, ARP_REQUEST, ArpHeader, ETHERTYPE_ARP, EthernetHeader, Frame
from repro.sim import Resource, Store

BROADCAST_MAC = (1 << 48) - 1


class Personality:
    """What differs between Linux / TAS / Chelsio (see subclasses)."""

    name = "base"

    def __init__(self, costs, engine_config):
        self.costs = costs
        self.engine_config = engine_config
        #: Coarse in-kernel lock serializing all TCP work (Linux).
        self.kernel_lock = False
        #: Number of machine cores dedicated to the stack fast path
        #: (TAS); 0 means processing runs on interrupt/app cores.
        self.dedicated_cores = 0
        #: TCP processing happens on the NIC (Chelsio TOE).
        self.nic_tcp = False
        #: NIC TOE concurrent segment capacity and service time.
        self.nic_tcp_capacity = 8
        self.nic_tcp_service_ns = 250
        #: RX dispatcher parallelism when not using dedicated cores.
        self.rx_dispatchers = 2

    def charge_rx(self, host, core, frame):
        """Generator: host cycles for receiving one segment."""
        costs = self.costs
        yield from core.run(costs.driver_rx, CAT_DRIVER)
        yield from core.run(costs.tcp_rx, CAT_TCP)
        extra = costs.per_kb_copy * (len(frame.payload) // 1024)
        if extra:
            yield from core.run(extra, CAT_TCP)


class Listener:
    def __init__(self, ctx, port, backlog):
        self.ctx = ctx
        self.port = port
        self.backlog = backlog
        self.ready = deque()
        self.waiters = deque()


class BaselineSocket:
    """A connection as the application sees it (libTOE-compatible)."""

    __slots__ = ("ctx", "conn", "connected", "bytes_sent", "bytes_received", "reset")

    def __init__(self, ctx, conn):
        self.ctx = ctx
        self.conn = conn
        self.connected = True
        self.bytes_sent = 0
        self.bytes_received = 0
        self.reset = False

    @property
    def readable(self):
        return self.conn.readable or self.reset

    @property
    def peer_fin(self):
        return self.conn.rx_fin_pos is not None and self.conn.rcv_nxt_pos >= self.conn.rx_fin_pos

    @property
    def conn_index(self):
        return id(self.conn)

    def __repr__(self):
        return "<BaselineSocket {} state={}>".format(self.conn.four_tuple, self.conn.state)


class BaselineContext:
    """Per-app-thread handle; mirrors LibToeContext's surface."""

    def __init__(self, host, core):
        self.host = host
        self.sim = host.sim
        self.core = core
        self.epolls = []
        self._waiters = []

    # -- setup ------------------------------------------------------------

    def listen(self, port, backlog=128):
        return self.host.listen(self, port, backlog)

    def accept(self, listener):
        yield from self.core.run(self.host.personality.costs.sockets_recv, CAT_SOCKETS)
        while not listener.ready:
            waiter = self.sim.event()
            listener.waiters.append(waiter)
            yield waiter
        conn = listener.ready.popleft()
        sock = BaselineSocket(self, conn)
        self.host.bind_socket(conn, sock)
        return sock

    def connect(self, remote_ip, remote_port):
        costs = self.host.personality.costs
        yield from self.core.run(costs.sockets_send, CAT_SOCKETS)
        yield from self.core.run(costs.other_per_op, CAT_OTHER)
        conn = yield from self.host.connect(self, remote_ip, remote_port)
        sock = BaselineSocket(self, conn)
        self.host.bind_socket(conn, sock)
        return sock

    # -- data ----------------------------------------------------------------

    def send(self, sock, data, blocking=True):
        host = self.host
        costs = host.personality.costs
        view = memoryview(data)
        total = 0
        while view:
            accepted = yield from host.tcp_send(self, sock.conn, bytes(view))
            if accepted == 0:
                if not blocking:
                    return total
                yield from self.wait_any()
                continue
            yield from self.core.run(
                costs.sockets_send + costs.per_kb_copy * (accepted // 1024), CAT_SOCKETS
            )
            yield from self.core.run(costs.other_per_op, CAT_OTHER)
            sock.bytes_sent += accepted
            total += accepted
            view = view[accepted:]
        return total

    def recv(self, sock, max_bytes, blocking=True):
        host = self.host
        costs = host.personality.costs
        while not sock.conn.readable:
            if sock.reset:
                raise ToeError("connection reset")
            if sock.peer_fin:
                return b""
            if not blocking:
                return None
            yield from self.wait_any()
        yield from self.core.run(costs.sockets_recv, CAT_SOCKETS)
        yield from self.core.run(costs.other_per_op, CAT_OTHER)
        data = yield from host.tcp_recv(self, sock.conn, max_bytes)
        if data:
            copy = costs.per_kb_copy * (len(data) // 1024)
            if copy:
                yield from self.core.run(copy, CAT_SOCKETS)
        sock.bytes_received += len(data)
        return data

    def close(self, sock):
        yield from self.core.run(self.host.personality.costs.sockets_send, CAT_SOCKETS)
        yield from self.host.tcp_close(self, sock.conn)

    # -- events ------------------------------------------------------------------

    def dispatch(self):
        return 0  # engine callbacks push state directly

    def wake(self):
        waiters = self._waiters
        self._waiters = []
        for waiter in waiters:
            if not waiter.triggered:
                waiter.succeed()

    def wait_any(self):
        waiter = self.sim.event()
        self._waiters.append(waiter)
        yield waiter
        costs = self.host.personality.costs
        latency = costs.wakeup_latency_ns
        if latency:
            if costs.wakeup_jitter_prob and self.host.jitter_rng.random() < costs.wakeup_jitter_prob:
                # Host scheduler preemption: occasional long wakeup.
                latency *= costs.wakeup_jitter_mult
            yield self.sim.timeout(latency)

    def epoll_cost_cycles(self, n_watched):
        costs = self.host.personality.costs
        return costs.epoll_base + (costs.epoll_per_conn_milli * n_watched) // 1000


class _EngineCallbacks:
    """Bridges engine events to sockets/contexts/NIC."""

    def __init__(self, host):
        self.host = host

    def transmit(self, frame):
        self.host.transmit(frame)

    def syn_to_unknown_port(self, frame):
        return frame.tcp.dport in self.host.listeners

    def on_connected(self, conn):
        waiter = self.host.connect_waiters.pop(conn.four_tuple, None)
        if waiter is not None and not waiter.triggered:
            waiter.succeed(conn)

    def on_accept(self, conn):
        port = conn.four_tuple[2]
        listener = self.host.listeners.get(port)
        if listener is None:
            self.host.engine.close_silently(conn)
            return
        if listener.waiters:
            # Hand the connection straight to a blocked accept().
            listener.ready.append(conn)
            listener.waiters.popleft().succeed()
        elif len(listener.ready) < listener.backlog:
            listener.ready.append(conn)

    def _wake_sock(self, conn):
        sock = self.host.socket_of(conn)
        if sock is None:
            return
        sock.ctx.wake()
        for epoll in sock.ctx.epolls:
            epoll.on_event(sock)

    def on_data(self, conn):
        self._wake_sock(conn)

    def on_tx_space(self, conn):
        self._wake_sock(conn)

    def on_eof(self, conn):
        self._wake_sock(conn)

    def on_reset(self, conn):
        sock = self.host.socket_of(conn)
        waiter = self.host.connect_waiters.pop(conn.four_tuple, None)
        if waiter is not None and not waiter.triggered:
            waiter.succeed(None)
        if sock is not None:
            sock.reset = True
            self._wake_sock(conn)


class BaselineHost:
    """A machine running one baseline stack."""

    def __init__(self, sim, testbed, name, personality, n_cores=20, **attach_kwargs):
        self.sim = sim
        self.name = name
        self.personality = personality
        self.machine = Machine(sim, name, n_cores=n_cores)
        station = testbed.topology.attach(name, **attach_kwargs)
        self.station = station
        self.mac = station.mac
        self.ip = station.ip
        self.port = station.port
        self.port.receiver = self._on_rx_frame
        self.engine = HostTcpEngine(self.mac, self.ip, personality.engine_config, _EngineCallbacks(self))
        self.listeners = {}
        self.connect_waiters = {}
        self._sockets = {}
        self.arp_table = {}
        self._arp_waiters = {}
        self._ephemeral = 42_000
        self._rx_queue = Store(sim, name="{}-rxq".format(name))
        # crc32, not hash(): str hash is salted per process, and the
        # golden-digest/bench suites need cross-process determinism.
        self.jitter_rng = random.Random(0xC0FFEE ^ zlib.crc32(name.encode()))
        self._rx_rr = 0
        self.csum_drops = 0
        self._kernel_lock = Resource(sim, capacity=1) if personality.kernel_lock else None
        self._nic_toe = (
            Resource(sim, capacity=personality.nic_tcp_capacity) if personality.nic_tcp else None
        )
        # The hardwired TOE's per-connection engine state serializes RX
        # and TX of one connection (it is optimized for unidirectional
        # streaming, paper §5.2) — one lock per four-tuple.
        self._toe_conn_locks = {}
        if personality.dedicated_cores:
            self._fastpath_cores = self.machine.cores[-personality.dedicated_cores :]
        else:
            self._fastpath_cores = None
        for i in range(max(1, personality.rx_dispatchers)):
            sim.process(self._rx_loop(i), name="{}-rx{}".format(name, i))
        sim.process(self._timer_loop(), name="{}-tcp-timers".format(name))

    # -- addressing ------------------------------------------------------------

    def seed_arp(self, ip, mac):
        self.arp_table[ip] = mac

    def _next_port(self):
        self._ephemeral += 1
        if self._ephemeral > 65_000:
            self._ephemeral = 42_000
        return self._ephemeral

    # -- app-facing --------------------------------------------------------------

    def new_context(self, core_index=0):
        return BaselineContext(self, self.machine.cores[core_index])

    def listen(self, ctx, port, backlog=128):
        if port in self.listeners:
            raise ValueError("port {} already bound".format(port))
        listener = Listener(ctx, port, backlog)
        self.listeners[port] = listener
        return listener

    def connect(self, ctx, remote_ip, remote_port):
        peer_mac = yield from self._resolve(remote_ip)
        four = (self.ip, remote_ip, self._next_port(), remote_port)
        waiter = self.sim.event()
        self.connect_waiters[four] = waiter
        self.engine.open(four, peer_mac, self.sim.now)
        conn = yield waiter
        if conn is None:
            raise ConnectRefusedError("connect failed")
        return conn

    def bind_socket(self, conn, sock):
        self._sockets[conn.four_tuple] = sock

    def socket_of(self, conn):
        return self._sockets.get(conn.four_tuple)

    def tcp_send(self, ctx, conn, data):
        """Charge TX protocol cycles, then hand bytes to the engine."""
        accepted = min(len(data), conn.tx_free)
        if accepted <= 0:
            return 0
        segments = -(-accepted // self.engine.config.mss)
        costs = self.personality.costs
        cycles = (costs.tcp_tx + costs.driver_tx) * segments
        yield from self._run_protocol(ctx.core, cycles, conn, len_hint=accepted)
        return self.engine.app_send(conn, data[:accepted], self.sim.now)

    def tcp_recv(self, ctx, conn, max_bytes):
        data = self.engine.app_recv(conn, max_bytes, self.sim.now)
        return data
        yield  # pragma: no cover - keeps this a generator; sim-lint: allow

    def tcp_close(self, ctx, conn):
        costs = self.personality.costs
        yield from self._run_protocol(ctx.core, costs.tcp_tx, conn)
        self.engine.app_close(conn, self.sim.now)

    def _toe_conn_lock(self, four_tuple):
        lock = self._toe_conn_locks.get(four_tuple)
        if lock is None:
            lock = Resource(self.sim, capacity=1)
            self._toe_conn_locks[four_tuple] = lock
        return lock

    def _toe_process(self, four_tuple, n_segments=1):
        """TOE engine occupancy: per-connection serialized service."""
        lock = self._toe_conn_lock(four_tuple)
        grant = yield lock.request()
        toe = yield self._nic_toe.request()
        yield self.sim.timeout(self.personality.nic_tcp_service_ns * n_segments)
        toe.release()
        grant.release()

    def _run_protocol(self, core, cycles, conn, len_hint=1):
        """Run protocol cycles under the personality's concurrency model."""
        if self._nic_toe is not None:
            # TOE: the NIC does protocol work; the host pays the complex
            # TOE driver (buffer management + synchronization, §2.1),
            # which runs under the kernel lock like any driver.
            if self._kernel_lock is not None:
                lock = yield self._kernel_lock.request()
                yield from core.run(self.personality.costs.driver_tx, CAT_DRIVER)
                lock.release()
            else:
                yield from core.run(self.personality.costs.driver_tx, CAT_DRIVER)
            segments = -(-max(1, len_hint) // self.engine.config.mss)
            yield from self._toe_process(conn.four_tuple, n_segments=segments)
            return
        if self._kernel_lock is not None:
            grant = yield self._kernel_lock.request()
            yield from core.run(cycles, CAT_TCP)
            grant.release()
        else:
            yield from core.run(cycles, CAT_TCP)

    # -- receive path ---------------------------------------------------------

    def _on_rx_frame(self, frame):
        # NIC checksum offload: payloads corrupted in flight (marked
        # ``csum_bad`` by repro.faults) fail verification and are dropped
        # before the stack sees them, as on real hardware.
        if frame.get_meta("csum_bad"):
            self.csum_drops += 1
            return
        delay = self.personality.costs.interrupt_delay_ns
        if delay:
            # Interrupt + softirq scheduling latency: delays delivery
            # without occupying a core (coalescing pipelines it).
            self.sim.timeout(delay).callbacks.append(
                lambda _ev, f=frame: self._rx_queue.try_put(f)
            )
        else:
            self._rx_queue.try_put(frame)

    def _rx_loop(self, index):
        while True:
            frame = yield self._rx_queue.get()
            if frame.arp is not None:
                self._handle_arp(frame)
                continue
            if frame.tcp is None:
                continue
            yield from self._process_segment(index, frame)

    def _process_segment(self, index, frame):
        personality = self.personality
        if self._nic_toe is not None:
            four = (frame.ip.dst, frame.ip.src, frame.tcp.dport, frame.tcp.sport)
            yield from self._toe_process(four)
            # Per-segment TOE driver work (descriptor reaping) on a core,
            # serialized by the kernel lock.
            self._rx_rr += 1
            core = self.machine.cores[self._rx_rr % len(self.machine.cores)]
            if self._kernel_lock is not None:
                lock = yield self._kernel_lock.request()
                yield from core.run(personality.costs.driver_rx, CAT_DRIVER)
                lock.release()
            else:
                yield from core.run(personality.costs.driver_rx, CAT_DRIVER)
        else:
            if self._fastpath_cores is not None:
                core = self._fastpath_cores[index % len(self._fastpath_cores)]
            else:
                self._rx_rr += 1
                app_cores = self.machine.cores
                core = app_cores[self._rx_rr % len(app_cores)]
            if self._kernel_lock is not None:
                # Driver work runs outside the lock; TCP processing
                # (shared protocol state) serializes under it. GRO
                # halves the per-segment TCP cost for full segments.
                costs = personality.costs
                gro = 2 if len(frame.payload) >= 1024 else 1
                yield from core.run(costs.driver_rx // gro, CAT_DRIVER)
                grant = yield self._kernel_lock.request()
                cycles = costs.tcp_rx // gro + costs.per_kb_copy * (len(frame.payload) // 1024)
                yield from core.run(cycles, CAT_TCP)
                grant.release()
            else:
                yield from personality.charge_rx(self, core, frame)
        self.engine.on_segment(frame, self.sim.now)

    def _timer_loop(self):
        while True:
            yield self.sim.timeout(100_000)
            self.engine.tick(self.sim.now)

    # -- ARP ----------------------------------------------------------------------

    def _handle_arp(self, frame):
        arp = frame.arp
        if arp.op == ARP_REQUEST and arp.target_ip == self.ip:
            eth = EthernetHeader(dst=arp.sender_mac, src=self.mac, ethertype=ETHERTYPE_ARP)
            self.transmit(Frame(eth, arp=arp.reply(self.mac), born_at=self.sim.now))
            self.arp_table[arp.sender_ip] = arp.sender_mac
        elif arp.op == ARP_REPLY:
            self.arp_table[arp.sender_ip] = arp.sender_mac
            for waiter in self._arp_waiters.pop(arp.sender_ip, []):
                if not waiter.triggered:
                    waiter.succeed(arp.sender_mac)

    def _resolve(self, ip):
        if ip in self.arp_table:
            return self.arp_table[ip]
        waiter = self.sim.event()
        self._arp_waiters.setdefault(ip, []).append(waiter)
        request = ArpHeader.request(self.mac, self.ip, ip)
        eth = EthernetHeader(dst=BROADCAST_MAC, src=self.mac, ethertype=ETHERTYPE_ARP)
        self.transmit(Frame(eth, arp=request, born_at=self.sim.now))
        yield self.sim.any_of([waiter, self.sim.timeout(5_000_000)])
        if ip not in self.arp_table:
            raise ConnectRefusedError("ARP resolution failed for {}".format(ip))
        return self.arp_table[ip]

    # -- transmit --------------------------------------------------------------------

    def transmit(self, frame):
        self.port.send(frame)
