"""The TAS kernel-bypass accelerator personality (Kaufmann et al.).

A protected fast path on dedicated host cores handles common-case TCP;
applications use per-core context queues without kernel calls. Low
per-request cost and good scaling (Figs 9/14), go-back-N recovery with
out-of-order drop (Fig 15)."""

from repro.baselines.costs import TAS_COSTS
from repro.baselines.engine import TcpEngineConfig
from repro.baselines.stack import BaselineHost, Personality


class TasPersonality(Personality):
    name = "tas"

    def __init__(self, fast_path_cores=4):
        config = TcpEngineConfig(
            recovery="gbn",
            reassembly="drop",
            delayed_ack_segments=1,
            rto_ns=1_000_000,
            min_rto_ns=500_000,
            use_dctcp=True,
        )
        super().__init__(TAS_COSTS, config)
        self.dedicated_cores = fast_path_cores
        self.rx_dispatchers = fast_path_cores


def add_tas_host(testbed, name, n_cores=20, fast_path_cores=4, **attach_kwargs):
    """Attach a TAS host. The fast path claims the machine's last cores;
    application work should use the earlier ones."""
    mac, ip = testbed.addresses()
    attach_kwargs.setdefault("mac", mac)
    attach_kwargs.setdefault("ip", ip)
    host = BaselineHost(
        testbed.sim,
        testbed,
        name,
        TasPersonality(fast_path_cores=fast_path_cores),
        n_cores=n_cores,
        **attach_kwargs
    )
    testbed.add_host(name, host)
    return host
