"""A machine: cores + memory + the NICs plugged into it."""

from repro.host.cpu import CpuCore
from repro.host.memory import HostMemory
from repro.sim.clock import CYCLES_2GHZ


class Machine:
    """A testbed host (e.g. the 20-core Xeon Gold 6138 server)."""

    def __init__(self, sim, name, n_cores=20, clock=CYCLES_2GHZ, n_hugepages=4):
        self.sim = sim
        self.name = name
        self.clock = clock
        self.cores = [
            CpuCore(sim, "{}.core{}".format(name, i), clock=clock) for i in range(n_cores)
        ]
        self.memory = HostMemory(n_hugepages=n_hugepages)
        self.nics = {}

    def add_nic(self, label, nic):
        self.nics[label] = nic
        return nic

    def nic(self, label):
        return self.nics[label]

    def aggregate_accounting(self):
        """Merged cycle accounting across all cores."""
        from repro.host.cpu import CycleAccounting

        total = CycleAccounting()
        for core in self.cores:
            total.merge(core.accounting)
        return total

    def __repr__(self):
        return "<Machine {} cores={}>".format(self.name, len(self.cores))
