"""Host CPU cores with categorized cycle accounting.

Costs are charged in cycles at the core clock (default 2 GHz, the
testbed's Xeon Gold 6138). Categories mirror Table 1's row labels.
"""

from repro.sim import Resource
from repro.sim.clock import CYCLES_2GHZ

CAT_DRIVER = "driver"
CAT_TCP = "tcp"
CAT_SOCKETS = "sockets"
CAT_APP = "app"
CAT_OTHER = "other"

CATEGORIES = (CAT_DRIVER, CAT_TCP, CAT_SOCKETS, CAT_APP, CAT_OTHER)


class CycleAccounting:
    """Per-category cycle counters (aggregable across cores)."""

    def __init__(self):
        self.cycles = {category: 0 for category in CATEGORIES}

    def charge(self, category, cycles):
        if category not in self.cycles:
            self.cycles[category] = 0
        self.cycles[category] += cycles

    def total(self):
        return sum(self.cycles.values())

    def merge(self, other):
        for category, cycles in other.cycles.items():
            self.charge(category, cycles)

    def breakdown(self):
        """{category: (cycles, percent)} over the recorded total."""
        total = self.total() or 1
        return {
            category: (cycles, 100.0 * cycles / total)
            for category, cycles in self.cycles.items()
        }

    def __repr__(self):
        return "<CycleAccounting total={}>".format(self.total())


class CpuCore:
    """One host hardware thread.

    ``yield from core.run(cycles, category)`` charges cycles and blocks
    the core for their duration. The core is a capacity-1 resource, so
    two software threads pinned to it serialize (used by the Linux
    baseline's lock-contention model).
    """

    def __init__(self, sim, name, clock=CYCLES_2GHZ):
        self.sim = sim
        self.name = name
        self.clock = clock
        self.accounting = CycleAccounting()
        self._slot = Resource(sim, capacity=1, name="{}.slot".format(name))
        self.busy_cycles = 0
        self.steals = 0
        self.stolen_ns = 0

    def run(self, cycles, category=CAT_OTHER):
        """Execute ``cycles`` of work attributed to ``category``."""
        if cycles <= 0:
            return
        grant = yield self._slot.request()
        yield self.sim.timeout(self.clock.cycles_to_ns(cycles))
        self.accounting.charge(category, cycles)
        self.busy_cycles += cycles
        grant.release()

    def steal(self, duration_ns):
        """Occupy the core for ``duration_ns`` (fault injection: jitter).

        Models a noisy neighbor, SMI, or kernel housekeeping burst that
        preempts whatever software thread is pinned here. The stolen
        time is not charged to any accounting category. Returns the
        stealing process.
        """

        def _steal():
            grant = yield self._slot.request()
            self.steals += 1
            self.stolen_ns += duration_ns
            yield self.sim.timeout(duration_ns)
            grant.release()

        return self.sim.process(_steal(), name="{}.steal".format(self.name))

    def block(self, event):
        """Sleep off-core until ``event`` fires (e.g. epoll_wait)."""
        result = yield event
        return result

    def utilization(self, elapsed_ns):
        if elapsed_ns <= 0:
            return 0.0
        total = self.clock.ns_to_cycles(elapsed_ns)
        return min(1.0, self.busy_cycles / total) if total else 0.0

    def __repr__(self):
        return "<CpuCore {}>".format(self.name)
