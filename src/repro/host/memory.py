"""Host memory: the 1G hugepage pool FlexTOE allocates buffers from.

The control-plane maps a pool of physically contiguous 1 GB hugepages at
startup (paper §4) and carves socket payload buffers and context queues
out of it, so NIC DMA needs no page translation. Region contents are
real bytearrays — DMA in the simulation actually moves the payload
bytes, so end-to-end data integrity is checkable.
"""

HUGEPAGE_SIZE = 1 << 30


class Region:
    """A carved-out region: (physical address, length, backing bytes)."""

    __slots__ = ("addr", "length", "data")

    def __init__(self, addr, length):
        self.addr = addr
        self.length = length
        self.data = bytearray(length)

    def write(self, offset, payload):
        end = offset + len(payload)
        if offset < 0 or end > self.length:
            raise IndexError("write outside region")
        self.data[offset:end] = payload

    def read(self, offset, length):
        if offset < 0 or offset + length > self.length:
            raise IndexError("read outside region")
        return bytes(self.data[offset : offset + length])


class HugepagePool:
    """Bump allocator over a fixed number of mapped 1G hugepages."""

    def __init__(self, n_pages=4, base_addr=0x1_0000_0000):
        self.capacity = n_pages * HUGEPAGE_SIZE
        self.base_addr = base_addr
        self.brk = 0
        self.regions = {}

    def alloc(self, length, align=64):
        """Allocate a region; returns :class:`Region`."""
        start = -(-self.brk // align) * align
        if start + length > self.capacity:
            raise MemoryError("hugepage pool exhausted")
        self.brk = start + length
        region = Region(self.base_addr + start, length)
        self.regions[region.addr] = region
        return region

    def region_at(self, addr):
        """Find the region containing physical address ``addr``."""
        for base, region in self.regions.items():
            if base <= addr < base + region.length:
                return region, addr - base
        raise KeyError("no region at address 0x{:x}".format(addr))

    @property
    def used(self):
        return self.brk


class HostMemory:
    """The machine's memory: a hugepage pool plus simple statistics."""

    def __init__(self, n_hugepages=4):
        self.hugepages = HugepagePool(n_pages=n_hugepages)

    def alloc(self, length, align=64):
        return self.hugepages.alloc(length, align)

    def region_at(self, addr):
        return self.hugepages.region_at(addr)
