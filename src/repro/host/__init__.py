"""Host machine model: CPU cores with cycle accounting, hugepage memory.

The paper's Table 1 and Figure 9 are host-CPU cycle-accounting results;
every simulated stack charges its work to a :class:`CpuCore` under a
named category (driver / tcp / sockets / app / other), so the same
breakdown falls out of any experiment.
"""

from repro.host.cpu import CAT_APP, CAT_DRIVER, CAT_OTHER, CAT_SOCKETS, CAT_TCP, CpuCore, CycleAccounting
from repro.host.memory import HostMemory, HugepagePool
from repro.host.machine import Machine

__all__ = [
    "CAT_APP",
    "CAT_DRIVER",
    "CAT_OTHER",
    "CAT_SOCKETS",
    "CAT_TCP",
    "CpuCore",
    "CycleAccounting",
    "HostMemory",
    "HugepagePool",
    "Machine",
]
