"""Fairness metrics: Jain's fairness index (Figure 16, Table 4)."""


def jains_fairness_index(values):
    """JFI = (sum x)^2 / (n * sum x^2); 1.0 is perfectly fair.

    Returns 1.0 for an empty input (vacuously fair)."""
    values = list(values)
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)
