"""HDR-style latency histogram with logarithmic buckets.

Records nanosecond latencies into log2 buckets with linear sub-buckets,
giving bounded relative error at any magnitude — the structure real
latency-measurement tools (HdrHistogram) use, so tail percentiles
(99.99p in Figure 12 / Table 4) stay accurate without storing samples.
"""

SUB_BUCKET_BITS = 5
SUB_BUCKETS = 1 << SUB_BUCKET_BITS


class LatencyHistogram:
    """Log-bucketed histogram over positive integer values (ns)."""

    def __init__(self):
        self._buckets = {}
        self.count = 0
        self.total = 0
        self.min_value = None
        self.max_value = None

    def record(self, value):
        if value < 0:
            raise ValueError("latency cannot be negative")
        value = int(value)
        self.count += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        key = self._bucket_key(value)
        self._buckets[key] = self._buckets.get(key, 0) + 1

    @staticmethod
    def _bucket_key(value):
        if value < SUB_BUCKETS:
            return (0, value)
        magnitude = value.bit_length() - SUB_BUCKET_BITS
        return (magnitude, value >> magnitude)

    @staticmethod
    def _bucket_midpoint(key):
        magnitude, sub = key
        if magnitude == 0:
            return sub
        low = sub << magnitude
        high = ((sub + 1) << magnitude) - 1
        return (low + high) // 2

    def percentile(self, pct):
        """Value at the given percentile (0 < pct <= 100)."""
        if self.count == 0:
            return 0
        if not 0 < pct <= 100:
            raise ValueError("percentile must be in (0, 100]")
        target = max(1, -(-self.count * pct // 100))  # ceil
        running = 0
        for key in sorted(self._buckets):
            running += self._buckets[key]
            if running >= target:
                return self._bucket_midpoint(key)
        return self.max_value

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def merge(self, other):
        for key, count in other._buckets.items():
            self._buckets[key] = self._buckets.get(key, 0) + count
        self.count += other.count
        self.total += other.total
        if other.min_value is not None:
            if self.min_value is None or other.min_value < self.min_value:
                self.min_value = other.min_value
        if other.max_value is not None:
            if self.max_value is None or other.max_value > self.max_value:
                self.max_value = other.max_value

    def summary(self):
        """(min, p50, p99, p99.99, max) in recorded units."""
        return (
            self.min_value or 0,
            self.percentile(50),
            self.percentile(99),
            self.percentile(99.99),
            self.max_value or 0,
        )

    def __len__(self):
        return self.count
