"""Measurement utilities: latency histograms, throughput meters, fairness."""

from repro.stats.fairness import jains_fairness_index
from repro.stats.histogram import LatencyHistogram
from repro.stats.meters import GoodputMeter, IntervalSeries, ThroughputMeter

__all__ = [
    "GoodputMeter",
    "IntervalSeries",
    "LatencyHistogram",
    "ThroughputMeter",
    "jains_fairness_index",
]
