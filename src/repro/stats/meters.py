"""Throughput meters and interval series."""


class ThroughputMeter:
    """Counts events/bytes over a window of simulated time."""

    __slots__ = ("sim", "started_at", "events", "bytes")

    def __init__(self, sim):
        self.sim = sim
        self.started_at = sim.now
        self.events = 0
        self.bytes = 0

    def record(self, nbytes=0):
        self.events += 1
        self.bytes += nbytes

    def reset(self):
        self.started_at = self.sim.now
        self.events = 0
        self.bytes = 0

    @property
    def elapsed_ns(self):
        return max(1, self.sim.now - self.started_at)

    @property
    def ops_per_sec(self):
        return self.events * 1_000_000_000 / self.elapsed_ns

    @property
    def bits_per_sec(self):
        return self.bytes * 8 * 1_000_000_000 / self.elapsed_ns


class IntervalSeries:
    """Per-interval samples (e.g. per-connection goodput over a run)."""

    __slots__ = ("samples",)

    def __init__(self):
        self.samples = []

    def add(self, value):
        self.samples.append(value)

    def percentile(self, pct):
        if not self.samples:
            return 0
        ordered = sorted(self.samples)
        index = max(0, min(len(ordered) - 1, int(round(pct / 100.0 * (len(ordered) - 1)))))
        return ordered[index]

    @property
    def median(self):
        return self.percentile(50)

    @property
    def mean(self):
        return sum(self.samples) / len(self.samples) if self.samples else 0

    def __len__(self):
        return len(self.samples)
