"""Throughput meters and interval series."""


class ThroughputMeter:
    """Counts events/bytes over a window of simulated time."""

    __slots__ = ("sim", "started_at", "events", "bytes")

    def __init__(self, sim):
        self.sim = sim
        self.started_at = sim.now
        self.events = 0
        self.bytes = 0

    def record(self, nbytes=0):
        self.events += 1
        self.bytes += nbytes

    def reset(self):
        self.started_at = self.sim.now
        self.events = 0
        self.bytes = 0

    @property
    def elapsed_ns(self):
        return max(1, self.sim.now - self.started_at)

    @property
    def ops_per_sec(self):
        return self.events * 1_000_000_000 / self.elapsed_ns

    @property
    def bits_per_sec(self):
        return self.bytes * 8 * 1_000_000_000 / self.elapsed_ns


class GoodputMeter:
    """Goodput accounting under mixed benign/hostile load.

    *Goodput* is application-level payload bytes delivered for **benign**
    traffic only — attack bytes, retransmissions of attack payloads, and
    junk that reached the app anyway are tallied separately and never
    inflate the headline number. One meter per testbed; workloads tag
    their completions benign, attack generators tag theirs hostile.
    """

    __slots__ = ("sim", "started_at", "benign_bytes", "benign_ops", "attack_bytes", "attack_ops")

    def __init__(self, sim):
        self.sim = sim
        self.started_at = sim.now
        self.benign_bytes = 0
        self.benign_ops = 0
        self.attack_bytes = 0
        self.attack_ops = 0

    def record(self, nbytes, benign=True):
        if benign:
            self.benign_ops += 1
            self.benign_bytes += nbytes
        else:
            self.attack_ops += 1
            self.attack_bytes += nbytes

    @property
    def elapsed_ns(self):
        return max(1, self.sim.now - self.started_at)

    @property
    def goodput_bps(self):
        """Benign app-level bits per second — the defended quantity."""
        return self.benign_bytes * 8 * 1_000_000_000 / self.elapsed_ns

    @property
    def offered_bytes(self):
        """Everything delivered, hostile included (for ratio reporting)."""
        return self.benign_bytes + self.attack_bytes

    def goodput_fraction(self):
        """Benign share of delivered bytes (1.0 when no attack bytes)."""
        total = self.offered_bytes
        return self.benign_bytes / total if total else 1.0


class IntervalSeries:
    """Per-interval samples (e.g. per-connection goodput over a run)."""

    __slots__ = ("samples",)

    def __init__(self):
        self.samples = []

    def add(self, value):
        self.samples.append(value)

    def percentile(self, pct):
        if not self.samples:
            return 0
        ordered = sorted(self.samples)
        index = max(0, min(len(ordered) - 1, int(round(pct / 100.0 * (len(ordered) - 1)))))
        return ordered[index]

    @property
    def median(self):
        return self.percentile(50)

    @property
    def mean(self):
        return sum(self.samples) / len(self.samples) if self.samples else 0

    def __len__(self):
        return len(self.samples)
