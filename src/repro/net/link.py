"""Point-to-point links and the port abstraction.

A :class:`Port` is owned by a device (NIC MAC block or switch). Its owner
sets ``receiver`` to a callable invoked for each arriving frame. A
:class:`Link` joins two ports; each direction has an independent
serializer modeling the transmit rate, plus a propagation delay.
"""

ETH_OVERHEAD = 24  # preamble(8) + FCS(4) + IFG(12) bytes per frame on the wire
MIN_FRAME = 64

#: wire_time_ns memo: rate_bps -> {length: ns}. Traffic uses a handful
#: of rates and frame sizes, so this converges almost immediately; the
#: bound guards pathological fuzzing workloads.
_WIRE_TIME_CACHE = {}
_WIRE_TIME_CACHE_MAX = 8192


def wire_time_ns(rate_bps, length):
    """Serialization time of ``length`` payload bytes at ``rate_bps``."""
    per_rate = _WIRE_TIME_CACHE.get(rate_bps)
    if per_rate is None:
        per_rate = _WIRE_TIME_CACHE[rate_bps] = {}
    ns = per_rate.get(length)
    if ns is None:
        on_wire = max(length, MIN_FRAME) + ETH_OVERHEAD
        ns = -(-on_wire * 8 * 1_000_000_000 // rate_bps)
        if len(per_rate) < _WIRE_TIME_CACHE_MAX:
            per_rate[length] = ns
    return ns


class Port:
    """One attachment point. ``receiver(frame)`` is called on arrival.

    The port models the receiving MAC's FCS check: frames marked with
    ``fcs_bad`` metadata (wire corruption, see :mod:`repro.faults`) are
    counted and dropped before the device ever sees them.
    """

    def __init__(self, sim, name="port"):
        self.sim = sim
        self.name = name
        self.link = None
        self.receiver = None
        self.tx_frames = 0
        self.tx_bytes = 0
        self.rx_frames = 0
        self.rx_bytes = 0
        self.rx_fcs_drops = 0

    def send(self, frame):
        """Transmit a frame onto the attached link."""
        if self.link is None:
            raise RuntimeError("port {!r} is not connected".format(self.name))
        self.tx_frames += 1
        self.tx_bytes += frame.wire_len
        self.link.transmit(self, frame)

    def deliver(self, frame):
        if frame.get_meta("fcs_bad"):
            self.rx_fcs_drops += 1
            return
        self.rx_frames += 1
        self.rx_bytes += frame.wire_len
        if self.receiver is not None:
            self.receiver(frame)

    def __repr__(self):
        return "<Port {}>".format(self.name)


class _Direction:
    """One direction of a link: a serializer plus propagation delay."""

    __slots__ = ("sim", "rate_bps", "prop_delay_ns", "dst", "busy_until")

    def __init__(self, sim, rate_bps, prop_delay_ns, dst):
        self.sim = sim
        self.rate_bps = rate_bps
        self.prop_delay_ns = prop_delay_ns
        self.dst = dst
        self.busy_until = 0

    def transmit(self, frame):
        start = max(self.sim.now, self.busy_until)
        if self.rate_bps is None:
            done = start
        else:
            done = start + wire_time_ns(self.rate_bps, frame.wire_len)
        self.busy_until = done
        arrival = done + self.prop_delay_ns
        event = self.sim.timeout(arrival - self.sim.now)
        dst = self.dst
        event.callbacks.append(lambda _ev, f=frame, d=dst: d.deliver(f))


class Link:
    """A full-duplex link between two ports.

    ``rate_bps=None`` disables serialization modeling (used between a
    switch egress queue — which already paces frames — and the next port).

    A link can be administratively flapped (``set_up``) by the fault
    layer; frames offered while the link is down are silently lost, as
    on a real cable pull.
    """

    def __init__(self, sim, port_a, port_b, rate_bps=40_000_000_000, prop_delay_ns=500):
        self.sim = sim
        self.port_a = port_a
        self.port_b = port_b
        self.up = True
        self.drops_link_down = 0
        self._a_to_b = _Direction(sim, rate_bps, prop_delay_ns, port_b)
        self._b_to_a = _Direction(sim, rate_bps, prop_delay_ns, port_a)
        port_a.link = self
        port_b.link = self

    def set_up(self, up):
        """Administrative link state (fault injection: link flap)."""
        self.up = bool(up)

    def transmit(self, src_port, frame):
        if not self.up:
            self.drops_link_down += 1
            return
        if src_port is self.port_a:
            self._a_to_b.transmit(frame)
        elif src_port is self.port_b:
            self._b_to_a.transmit(frame)
        else:
            raise RuntimeError("port is not attached to this link")
