"""Random loss injection (paper §5.3, Figure 15).

The paper induces loss "by randomly dropping packets at the switch with a
fixed probability"; :class:`LossInjector` reproduces that, with an option
to protect pure control segments so handshakes complete (the paper
measures established-connection throughput).
"""

from repro.proto.tcp import FLAG_RST, FLAG_SYN


class LossInjector:
    """Drops frames with fixed probability, using a dedicated RNG stream."""

    def __init__(self, rng, probability=0.0, protect_control=True):
        if not 0.0 <= probability <= 1.0:
            raise ValueError("loss probability must be within [0, 1]")
        self.rng = rng
        self.probability = probability
        self.protect_control = protect_control
        self.dropped = 0
        self.passed = 0

    def should_drop(self, frame):
        if self.probability == 0.0:
            self.passed += 1
            return False
        if self.protect_control and frame.tcp is not None:
            if frame.tcp.flags & (FLAG_SYN | FLAG_RST):
                self.passed += 1
                return False
        if self.protect_control and frame.arp is not None:
            self.passed += 1
            return False
        if self.rng.random() < self.probability:
            self.dropped += 1
            return True
        self.passed += 1
        return False

    @property
    def observed_rate(self):
        total = self.dropped + self.passed
        return self.dropped / total if total else 0.0
