"""Output-queued Ethernet switch with ECN marking, WRED, and shaping.

Forwarding is by destination MAC (static table learned at attach time,
plus flooding for broadcast/unknown — enough for ARP). Each egress port
has a bounded byte queue drained at the port's (possibly shaped) rate:

* **ECN step marking** — frames enqueued while the queue exceeds
  ``ecn_threshold_bytes`` get a CE mark (DCTCP-style, paper §3.4).
* **WRED** — between ``red_min_bytes`` and ``red_max_bytes`` frames are
  dropped with linearly increasing probability; above max, tail drop
  (used by the incast experiment, Table 4).
* **Shaping** — ``rate_bps`` per egress port can be lowered to model the
  paper's 10 Gbps shaped incast bottleneck.
"""

from collections import deque

from repro.net.link import Port, wire_time_ns

BROADCAST_MAC = (1 << 48) - 1


class SwitchPortConfig:
    """Egress queue policy for one switch port."""

    def __init__(
        self,
        rate_bps=100_000_000_000,
        queue_capacity_bytes=2 * 1024 * 1024,
        ecn_threshold_bytes=None,
        red_min_bytes=None,
        red_max_bytes=None,
        red_max_drop=1.0,
    ):
        self.rate_bps = rate_bps
        self.queue_capacity_bytes = queue_capacity_bytes
        self.ecn_threshold_bytes = ecn_threshold_bytes
        self.red_min_bytes = red_min_bytes
        self.red_max_bytes = red_max_bytes
        self.red_max_drop = red_max_drop


class _EgressQueue:
    """A bounded byte queue drained at the egress rate."""

    def __init__(self, sim, port, config, rng):
        self.sim = sim
        self.port = port
        self.config = config
        self.rng = rng
        self.queue = deque()
        self.bytes_queued = 0
        self.draining = False
        self.enqueued = 0
        self.dropped_tail = 0
        self.dropped_red = 0
        self.marked_ce = 0
        self.peak_bytes = 0

    def offer(self, frame):
        config = self.config
        size = frame.wire_len
        if self.bytes_queued + size > config.queue_capacity_bytes:
            self.dropped_tail += 1
            return
        if config.red_min_bytes is not None and self.bytes_queued > config.red_min_bytes:
            span = max(1, (config.red_max_bytes or config.queue_capacity_bytes) - config.red_min_bytes)
            excess = self.bytes_queued - config.red_min_bytes
            drop_p = min(1.0, excess / span) * config.red_max_drop
            if self.rng.random() < drop_p:
                self.dropped_red += 1
                return
        if config.ecn_threshold_bytes is not None and self.bytes_queued > config.ecn_threshold_bytes:
            if frame.ip is not None and frame.ip.mark_ce():
                self.marked_ce += 1
        self.queue.append(frame)
        self.bytes_queued += size
        if self.bytes_queued > self.peak_bytes:
            self.peak_bytes = self.bytes_queued
        self.enqueued += 1
        if not self.draining:
            self.draining = True
            self.sim.process(self._drain(), name="switch-egress")

    def _drain(self):
        while self.queue:
            frame = self.queue.popleft()
            self.bytes_queued -= frame.wire_len
            yield self.sim.timeout(wire_time_ns(self.config.rate_bps, frame.wire_len))
            self.port.send(frame)
        self.draining = False


class Switch:
    """A store-and-forward switch with per-egress-port queue policy."""

    def __init__(self, sim, name="switch", default_config=None, rng=None, loss=None, faults=None):
        self.sim = sim
        self.name = name
        self.default_config = default_config or SwitchPortConfig()
        self.rng = rng
        self.loss = loss
        #: Optional wire-fault hook (repro.faults.WireFaultInjector):
        #: ``admit(frame)`` returns [(frame, extra_delay_ns), ...] — an
        #: empty list drops, several entries duplicate, a delay reorders.
        self.faults = faults
        self._ports = []
        self._egress = []
        self._mac_table = {}
        self.forwarded = 0
        self.flooded = 0
        self.unroutable = 0

    def new_port(self, mac=None, config=None):
        """Create a switch port; ``mac`` statically binds an address."""
        index = len(self._ports)
        port = Port(self.sim, name="{}[{}]".format(self.name, index))
        port.receiver = lambda frame, i=index: self._ingress(i, frame)
        self._ports.append(port)
        self._egress.append(_EgressQueue(self.sim, port, config or self.default_config, self.rng))
        if mac is not None:
            self._mac_table[mac] = index
        return port

    def bind_mac(self, mac, port):
        self._mac_table[mac] = self._ports.index(port)

    def set_port_config(self, port, config):
        """Replace the egress policy of ``port`` (e.g. shape to 10 Gbps)."""
        index = self._ports.index(port)
        self._egress[index].config = config

    def egress_stats(self, port):
        return self._egress[self._ports.index(port)]

    def _ingress(self, in_index, frame):
        # Learn source MAC.
        self._mac_table.setdefault(frame.eth.src, in_index)
        if self.loss is not None and self.loss.should_drop(frame):
            return
        if self.faults is not None:
            for out_frame, delay_ns in self.faults.admit(frame):
                if delay_ns > 0:
                    event = self.sim.timeout(delay_ns)
                    event.callbacks.append(
                        lambda _ev, f=out_frame, i=in_index: self._forward(i, f)
                    )
                else:
                    self._forward(in_index, out_frame)
            return
        self._forward(in_index, frame)

    def _forward(self, in_index, frame):
        dst = frame.eth.dst
        if dst == BROADCAST_MAC:
            self.flooded += 1
            for index, egress in enumerate(self._egress):
                if index != in_index:
                    egress.offer(frame.copy())
            return
        out_index = self._mac_table.get(dst)
        if out_index is None or out_index == in_index:
            self.unroutable += 1
            return
        self.forwarded += 1
        self._egress[out_index].offer(frame)
