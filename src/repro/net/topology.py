"""Topology builder: stations attached to one switch (the paper testbed)."""

from repro.net.link import Link, Port
from repro.net.switch import Switch


class Station:
    """One attachment: the host-side port plus addressing."""

    __slots__ = ("name", "mac", "ip", "port", "switch_port")

    def __init__(self, name, mac, ip, port, switch_port):
        self.name = name
        self.mac = mac
        self.ip = ip
        self.port = port
        self.switch_port = switch_port


class Topology:
    """A single-switch star topology.

    ::

        topo = Topology(sim)
        a = topo.attach("server", mac=1, ip=ip("10.0.0.1"))
        a.port.receiver = my_nic.handle_rx
    """

    def __init__(self, sim, switch=None, link_rate_bps=40_000_000_000, link_delay_ns=500):
        self.sim = sim
        self.switch = switch or Switch(sim)
        self.link_rate_bps = link_rate_bps
        self.link_delay_ns = link_delay_ns
        self.stations = {}

    def attach(self, name, mac, ip, rate_bps=None, config=None):
        """Attach a station to the switch; returns a :class:`Station`."""
        if name in self.stations:
            raise ValueError("duplicate station name {!r}".format(name))
        host_port = Port(self.sim, name="{}.nic".format(name))
        switch_port = self.switch.new_port(mac=mac, config=config)
        Link(
            self.sim,
            host_port,
            switch_port,
            rate_bps=rate_bps or self.link_rate_bps,
            prop_delay_ns=self.link_delay_ns,
        )
        station = Station(name, mac, ip, host_port, switch_port)
        self.stations[name] = station
        return station

    def station(self, name):
        return self.stations[name]
