"""Simulated network fabric: ports, links, switch, loss injection.

The testbed (paper §5) is two-to-six machines connected through a 100 Gbps
Ethernet switch. Here ports and links move :class:`~repro.proto.Frame`
objects with serialization + propagation delay; the switch adds bounded
output queues, ECN marking, WRED, per-port shaping (for the incast
experiment) and random loss injection (for the robustness experiments).
"""

from repro.net.link import Link, Port
from repro.net.loss import LossInjector
from repro.net.switch import Switch, SwitchPortConfig
from repro.net.topology import Topology

__all__ = ["Link", "LossInjector", "Port", "Switch", "SwitchPortConfig", "Topology"]
