"""``python -m repro``: a 30-second self-demonstration.

Builds the four-stack testbed, runs one echo RPC on each server stack,
and prints a latency line per stack — a smoke test that the whole
simulation (NIC pipeline, control plane, baselines, switch) is healthy.

``python -m repro lint`` instead runs the static analysis suite
(:mod:`repro.analysis.cli`): XDP verifier, stage race lint, and
sim-process lint.

``python -m repro faults`` runs a named deterministic fault plan
against a stack pair and asserts the delivery/liveness invariants
(:mod:`repro.faults.cli`).
"""

import sys

from repro.apps import EchoServer
from repro.apps.rpc import ClosedLoopClient
from repro.baselines import add_chelsio_host, add_linux_host, add_tas_host
from repro.harness import Testbed


def demo_stack(stack):
    bed = Testbed(seed=7)
    if stack == "flextoe":
        server = bed.add_flextoe_host("server")
    elif stack == "linux":
        server = add_linux_host(bed, "server")
    elif stack == "tas":
        server = add_tas_host(bed, "server")
    else:
        server = add_chelsio_host(bed, "server")
    client = bed.add_flextoe_host("client")
    bed.seed_all_arp()
    echo = EchoServer(server.new_context(), 7000, request_size=64)
    bed.sim.process(echo.run(), name="echo")
    rpc = ClosedLoopClient(client.new_context(), server.ip, 7000, 64, 64, warmup=5)
    proc = bed.sim.process(rpc.run(50), name="rpc")
    bed.sim.run(until=proc)
    return rpc.histogram


def main():
    print("FlexTOE reproduction self-demo: 50 echo RPCs per server stack\n")
    print("%-9s %10s %10s %10s" % ("stack", "p50 (us)", "p99 (us)", "min (us)"))
    for stack in ("flextoe", "tas", "chelsio", "linux"):
        hist = demo_stack(stack)
        print(
            "%-9s %10.1f %10.1f %10.1f"
            % (stack, hist.percentile(50) / 1e3, hist.percentile(99) / 1e3, (hist.min_value or 0) / 1e3)
        )
    print("\nAll four stacks exchanged RPCs over the simulated testbed.")
    print("Next: pytest tests/  |  pytest benchmarks/ --benchmark-only  |  examples/")


if __name__ == "__main__":
    if len(sys.argv) > 1:
        if sys.argv[1] == "lint":
            from repro.analysis.cli import main as lint_main

            sys.exit(lint_main(sys.argv[2:]))
        if sys.argv[1] == "faults":
            from repro.faults.cli import main as faults_main

            sys.exit(faults_main(sys.argv[2:]))
        print("usage: python -m repro [lint|faults ...]  (no argument runs the self-demo)")
        sys.exit(2)
    main()
