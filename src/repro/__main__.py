"""``python -m repro``: entry points for the reproduction.

With no arguments this runs a 30-second self-demonstration: it builds
the four-stack testbed, runs one echo RPC exchange on each server
stack, and prints a latency line per stack — a smoke test that the
whole simulation (NIC pipeline, control plane, baselines, switch) is
healthy.

Subcommands (each forwards its remaining arguments to the subsystem's
own argument parser — ``python -m repro <cmd> --help`` for details):

* ``lint``   — static analysis suite (:mod:`repro.analysis.cli`): XDP
  verifier, stage race lint, sim-process lint, atomicity pass.
* ``faults`` — run a named deterministic fault plan as an asserted test
  (:mod:`repro.faults.cli`).
* ``bench``  — simulator performance matrix; writes schema-versioned
  ``BENCH_flextoe.json`` and gates regressions with ``--compare``
  (:mod:`repro.bench.cli`).
"""

import argparse
import sys


def demo_stack(stack):
    from repro.apps import EchoServer
    from repro.apps.rpc import ClosedLoopClient
    from repro.baselines import add_chelsio_host, add_linux_host, add_tas_host
    from repro.harness import Testbed

    bed = Testbed(seed=7)
    if stack == "flextoe":
        server = bed.add_flextoe_host("server")
    elif stack == "linux":
        server = add_linux_host(bed, "server")
    elif stack == "tas":
        server = add_tas_host(bed, "server")
    else:
        server = add_chelsio_host(bed, "server")
    client = bed.add_flextoe_host("client")
    bed.seed_all_arp()
    echo = EchoServer(server.new_context(), 7000, request_size=64)
    bed.sim.process(echo.run(), name="echo")
    rpc = ClosedLoopClient(client.new_context(), server.ip, 7000, 64, 64, warmup=5)
    proc = bed.sim.process(rpc.run(50), name="rpc")
    bed.sim.run(until=proc)
    return rpc.histogram


def demo():
    print("FlexTOE reproduction self-demo: 50 echo RPCs per server stack\n")
    print("%-9s %10s %10s %10s" % ("stack", "p50 (us)", "p99 (us)", "min (us)"))
    for stack in ("flextoe", "tas", "chelsio", "linux"):
        hist = demo_stack(stack)
        print(
            "%-9s %10.1f %10.1f %10.1f"
            % (stack, hist.percentile(50) / 1e3, hist.percentile(99) / 1e3, (hist.min_value or 0) / 1e3)
        )
    print("\nAll four stacks exchanged RPCs over the simulated testbed.")
    print("Next: python -m repro lint  |  python -m repro faults --list  |  python -m repro bench --quick")
    return 0


COMMANDS = {
    "lint": "static analysis: XDP verifier, stage race lint, sim-process lint",
    "faults": "run a deterministic fault plan as an asserted test",
    "bench": "simulator performance matrix -> BENCH_flextoe.json",
}


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FlexTOE reproduction entry points (no subcommand runs the self-demo).",
        epilog="Each subcommand has its own options: python -m repro <cmd> --help.",
    )
    sub = parser.add_subparsers(dest="command", metavar="{%s}" % ",".join(COMMANDS))
    for name, help_text in COMMANDS.items():
        sub.add_parser(name, help=help_text, add_help=False)
    return parser


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    # Dispatch manually so subcommand options (e.g. ``bench --quick``)
    # reach the subsystem's own parser verbatim (argparse.REMAINDER
    # mis-parses leading optionals after a subparser, bpo-17050).
    if argv and argv[0] in COMMANDS:
        command, rest = argv[0], argv[1:]
        if command == "lint":
            from repro.analysis.cli import main as lint_main

            return lint_main(rest)
        if command == "faults":
            from repro.faults.cli import main as faults_main

            return faults_main(rest)
        from repro.bench.cli import main as bench_main

        return bench_main(rest)
    build_parser().parse_args(argv)
    return demo()


if __name__ == "__main__":
    sys.exit(main())
