"""Paper-style result tables printed by the benchmark harness."""


def format_rate(bps):
    """Human-readable bit rate."""
    if bps >= 1e9:
        return "{:.2f} Gbps".format(bps / 1e9)
    if bps >= 1e6:
        return "{:.2f} Mbps".format(bps / 1e6)
    if bps >= 1e3:
        return "{:.2f} Kbps".format(bps / 1e3)
    return "{:.0f} bps".format(bps)


def format_us(ns):
    """Nanoseconds -> microseconds string."""
    return "{:.1f} us".format(ns / 1000.0)


def format_mops(ops_per_sec):
    return "{:.2f} mOps".format(ops_per_sec / 1e6)


class Table:
    """A fixed-column ASCII table, printed like the paper's tables."""

    def __init__(self, title, columns):
        self.title = title
        self.columns = columns
        self.rows = []

    def add_row(self, *values):
        if len(values) != len(self.columns):
            raise ValueError("expected {} values".format(len(self.columns)))
        self.rows.append([str(v) for v in values])

    def render(self):
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = ["", "== {} ==".format(self.title)]
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def show(self):
        print(self.render())
