"""Experiment harness: testbed construction and paper-style reporting."""

from repro.harness.testbed import FlexToeHost, Testbed
from repro.harness.report import Table, format_rate, format_us

__all__ = ["FlexToeHost", "Table", "Testbed", "format_rate", "format_us"]
