"""Builds the paper's testbed (§5) in simulation.

A :class:`Testbed` is the switch plus attached hosts. Each host can run
any of the four stacks; :class:`FlexToeHost` bundles machine + FlexTOE
NIC + control plane + libTOE contexts. Baseline-stack hosts are built by
:mod:`repro.baselines`.
"""

from repro.control import ControlPlane
from repro.flextoe import FlexToeNic
from repro.flextoe.config import PipelineConfig
from repro.host import Machine
from repro.libtoe import LibToeContext
from repro.net import Switch, Topology
from repro.proto import str_to_ip, str_to_mac
from repro.sim import RngPool, Simulator


class FlexToeHost:
    """A machine with a FlexTOE-offloaded NIC and its control plane."""

    def __init__(self, sim, testbed, name, mac, ip, pipeline_config=None, n_cores=20, cp_kwargs=None, **attach_kwargs):
        self.sim = sim
        self.name = name
        self.mac = mac
        self.ip = ip
        self.machine = Machine(sim, name, n_cores=n_cores)
        self.nic = FlexToeNic(sim, config=pipeline_config or PipelineConfig.full())
        station = testbed.topology.attach(name, mac=mac, ip=ip, **attach_kwargs)
        self.station = station
        self.nic.attach_port(station.port)
        self.control_plane = ControlPlane(
            sim, self.nic, self.machine, local_mac=mac, local_ip=ip, **(cp_kwargs or {})
        )
        self.control_plane.enable_recovery(station)
        self._next_context = 1
        self.contexts = []

    def new_context(self, core_index=0):
        """A libTOE context pinned to one of this machine's cores."""
        ctx = LibToeContext(
            self.sim,
            self.machine.cores[core_index],
            self.nic,
            self.control_plane,
            context_id=self._next_context,
        )
        self._next_context += 1
        self.contexts.append(ctx)
        return ctx


class Testbed:
    """One switch; hosts attach by name with auto-assigned addresses."""

    def __init__(self, sim=None, seed=0, switch=None, link_rate_bps=40_000_000_000, link_delay_ns=500):
        self.sim = sim or Simulator()
        self.rng = RngPool(seed=seed)
        self.switch = switch or Switch(self.sim, rng=self.rng.stream("switch"))
        self.topology = Topology(
            self.sim, switch=self.switch, link_rate_bps=link_rate_bps, link_delay_ns=link_delay_ns
        )
        self.hosts = {}
        self.fault_controllers = []
        self._next_host = 1

    def addresses(self):
        n = self._next_host
        self._next_host += 1
        mac = str_to_mac("02:00:00:00:00:00") + n
        ip = str_to_ip("10.0.0.0") + n
        return mac, ip

    def add_flextoe_host(self, name, pipeline_config=None, n_cores=20, cp_kwargs=None, **attach_kwargs):
        mac, ip = self.addresses()
        host = FlexToeHost(
            self.sim,
            self,
            name,
            mac,
            ip,
            pipeline_config=pipeline_config,
            n_cores=n_cores,
            cp_kwargs=cp_kwargs,
            **attach_kwargs
        )
        self.hosts[name] = host
        return host

    def add_host(self, name, host):
        """Register an externally built (baseline-stack) host."""
        self.hosts[name] = host
        return host

    def seed_all_arp(self):
        """Pre-populate every host's ARP table (skips ARP round trips in
        experiments that are not about connection setup)."""
        entries = [(h.ip, h.mac) for h in self.hosts.values() if hasattr(h, "ip")]
        for host in self.hosts.values():
            seed = getattr(getattr(host, "control_plane", None), "seed_arp", None) or getattr(
                host, "seed_arp", None
            )
            if seed is None:
                continue
            for ip, mac in entries:
                seed(ip, mac)

    def install_fault_plan(self, plan, log=None):
        """Install a :class:`repro.faults.FaultPlan` on this testbed.

        Call after every host has been attached (target resolution reads
        ``hosts``/``topology.stations`` at install time). Returns the
        live :class:`~repro.faults.controller.FaultController`; its
        ``log`` carries the deterministic injection record.
        """
        controller = plan.install(self, log=log)
        self.fault_controllers.append(controller)
        return controller

    def run(self, until=None):
        return self.sim.run(until=until)
