"""XDP result codes (paper §3.3)."""

XDP_DROP = 0
XDP_PASS = 1
XDP_TX = 2
XDP_REDIRECT = 3

RESULT_NAMES = {
    XDP_DROP: "XDP_DROP",
    XDP_PASS: "XDP_PASS",
    XDP_TX: "XDP_TX",
    XDP_REDIRECT: "XDP_REDIRECT",
}
