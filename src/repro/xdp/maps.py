"""BPF maps: fixed-size-key/value stores shared between data-path
modules and the control plane (paper §3.3).

Keys and values are fixed-length byte strings, as in the kernel ABI; the
VM reads and writes them through pointers into the map's value storage.
Updates are atomic with respect to module invocations (the simulation's
cooperative scheduling guarantees module handlers never interleave
mid-update, matching the NFP's per-entry locking)."""

from collections import OrderedDict


class BpfMapError(Exception):
    pass


class _BaseMap:
    def __init__(self, key_size, value_size, max_entries, name="map"):
        if key_size <= 0 or value_size <= 0 or max_entries <= 0:
            raise BpfMapError("map dimensions must be positive")
        self.key_size = key_size
        self.value_size = value_size
        self.max_entries = max_entries
        self.name = name
        self.lookups = 0
        self.updates = 0
        self.deletes = 0

    def _check_key(self, key):
        if len(key) != self.key_size:
            raise BpfMapError(
                "{}: key size {} != {}".format(self.name, len(key), self.key_size)
            )
        return bytes(key)

    def _check_value(self, value):
        if len(value) != self.value_size:
            raise BpfMapError(
                "{}: value size {} != {}".format(self.name, len(value), self.value_size)
            )
        return bytearray(value)


class BpfHashMap(_BaseMap):
    """bpf_map_type BPF_MAP_TYPE_HASH."""

    def __init__(self, key_size, value_size, max_entries, name="hash"):
        super().__init__(key_size, value_size, max_entries, name)
        self._table = {}

    def lookup(self, key):
        """Returns the value storage (bytearray) or None."""
        self.lookups += 1
        return self._table.get(self._check_key(key))

    def update(self, key, value):
        key = self._check_key(key)
        value = self._check_value(value)
        if key not in self._table and len(self._table) >= self.max_entries:
            raise BpfMapError("{}: map full".format(self.name))
        self.updates += 1
        self._table[key] = value

    def delete(self, key):
        self.deletes += 1
        return self._table.pop(self._check_key(key), None) is not None

    def keys(self):
        return list(self._table.keys())

    def __len__(self):
        return len(self._table)


class BpfLruHashMap(BpfHashMap):
    """BPF_MAP_TYPE_LRU_HASH: full map evicts the least recently used."""

    def __init__(self, key_size, value_size, max_entries, name="lru-hash"):
        super().__init__(key_size, value_size, max_entries, name)
        self._table = OrderedDict()

    def lookup(self, key):
        self.lookups += 1
        key = self._check_key(key)
        value = self._table.get(key)
        if value is not None:
            self._table.move_to_end(key)
        return value

    def update(self, key, value):
        key = self._check_key(key)
        value = self._check_value(value)
        if key not in self._table and len(self._table) >= self.max_entries:
            self._table.popitem(last=False)
        self.updates += 1
        self._table[key] = value
        self._table.move_to_end(key)


class BpfArrayMap(_BaseMap):
    """BPF_MAP_TYPE_ARRAY: 4-byte little-endian index keys, preallocated."""

    def __init__(self, value_size, max_entries, name="array"):
        super().__init__(4, value_size, max_entries, name)
        self._slots = [bytearray(value_size) for _ in range(max_entries)]

    def _index(self, key):
        key = self._check_key(key)
        return int.from_bytes(key, "little")

    def lookup(self, key):
        self.lookups += 1
        index = self._index(key)
        if index >= self.max_entries:
            return None
        return self._slots[index]

    def update(self, key, value):
        index = self._index(key)
        if index >= self.max_entries:
            raise BpfMapError("{}: index {} out of range".format(self.name, index))
        self.updates += 1
        self._slots[index][:] = self._check_value(value)

    def delete(self, key):
        """Array entries cannot be deleted; they zero out."""
        index = self._index(key)
        if index >= self.max_entries:
            return False
        self.deletes += 1
        self._slots[index][:] = bytes(self.value_size)
        return True

    def __len__(self):
        return self.max_entries
