"""A check-eliding JIT for verified XDP programs.

:class:`BpfVm` re-validates every memory access per packet even though
the verifier already proved them in bounds at load time. This module
makes the static analysis pay for itself: a verified program is
compiled — through a proof-carrying certificate — into one specialized
Python closure where every *certified* access is a raw ``struct``
pack/unpack with no bounds test, and only accesses the certificate
could not discharge (map values of unknown size, possibly-zero
divisors) keep their run-time guard.

Trust base: :func:`repro.analysis.certificate.check_certificate`, not
the verifier. :func:`compile_program` first re-validates the
certificate with the deliberately small single-step checker and only
then consumes its facts; a certificate that fails the checker never
reaches code generation.

Semantics are bit-identical to :class:`BpfVm` by construction:

* same virtual address layout (ctx/packet/stack/map values), same
  little-endian loads and stores, same masking discipline per ALU op;
* retained guards go through the same :class:`_Memory` resolver and
  raise the same :class:`VmFault` messages;
* division by an unproven divisor checks the *unmasked 64-bit* value,
  exactly like the interpreter (even for 32-bit division);
* ``run`` returns the same ``(r0, instructions executed)`` pair with
  the same count — the generated code charges each straight-line block
  at entry, so the adapter's cycle accounting is unchanged.

The instruction-budget check is elided wholesale: the certificate's
structural pass proves the program is a DAG, so one packet executes at
most ``len(program)`` (≤ 4096) instructions, far under the budget.

Control flow: certified programs are forward-only DAGs, so the
generated source lays blocks out in address order behind a skip
variable ``_s`` — a taken branch sets ``_s`` to the target index and
intervening blocks fall through without executing.
"""

import struct

from repro.analysis.certificate import check_certificate, export_certificate
from repro.analysis.dataflow import CTX_PTR, MAP_VALUE, PKT_PTR, STACK_PTR
from repro.xdp.maps import BpfMapError
from repro.xdp.vm import (
    CTX_BASE,
    HELPER_MAP_DELETE,
    HELPER_MAP_LOOKUP,
    HELPER_MAP_UPDATE,
    MAP_VALUE_BASE,
    MAP_VALUE_STRIDE,
    MASK32,
    MASK64,
    PACKET_BASE,
    STACK_SIZE,
    STACK_TOP,
    VmFault,
    _Memory,
)

_SIZES = {"b": 1, "h": 2, "w": 4, "dw": 8}

#: struct accessors per access size, shared by all generated closures.
_STRUCTS = {1: struct.Struct("<B"), 2: struct.Struct("<H"), 4: struct.Struct("<I"), 8: struct.Struct("<Q")}

_CTX_PACK = struct.Struct("<QQ").pack_into

_REGION_BASE = {
    CTX_PTR: CTX_BASE,
    PKT_PTR: PACKET_BASE,
    STACK_PTR: STACK_TOP - STACK_SIZE,
}

_REGION_BUF = {CTX_PTR: "_ctx", PKT_PTR: "_pkt", STACK_PTR: "_stk"}

_UNSIGNED_JUMPS = {
    "jeq": "==",
    "jne": "!=",
    "jgt": ">",
    "jge": ">=",
    "jlt": "<",
    "jle": "<=",
}

_SIGNED_JUMPS = {"jsgt": ">", "jsge": ">=", "jslt": "<", "jsle": "<="}

_SIMPLE_ALU = {"add": "+", "sub": "-", "mul": "*", "and": "&", "or": "|", "xor": "^"}


def _sgn64(value):
    return value - (1 << 64) if value >= 1 << 63 else value


def _sgn32(value):
    value &= MASK32
    return value - (1 << 32) if value >= 1 << 31 else value


def _bswap(value, nbytes):
    # Same code path as the interpreter's be/le handling.
    return int.from_bytes((value & ((1 << (8 * nbytes)) - 1)).to_bytes(nbytes, "little"), "big")


def _call_helper(maps, helper_id, a1, a2, a3, memory, value_regions, value_buffers):
    """The interpreter's helper dispatch, plus an address->buffer index
    so certified map-value accesses can skip the region scan."""
    if helper_id == HELPER_MAP_LOOKUP:
        bpf_map = maps.get(a1)
        if bpf_map is None:
            raise VmFault("bad map fd {}".format(a1))
        key = memory.read_bytes(a2, bpf_map.key_size)
        value = bpf_map.lookup(key)
        if value is None:
            return 0
        region_key = (a1, key)
        address = value_regions.get(region_key)
        if address is None:
            address = MAP_VALUE_BASE + len(value_regions) * MAP_VALUE_STRIDE
            memory.add_region(address, value)
            value_regions[region_key] = address
            value_buffers[address] = value
        return address
    if helper_id == HELPER_MAP_UPDATE:
        bpf_map = maps.get(a1)
        if bpf_map is None:
            raise VmFault("bad map fd {}".format(a1))
        key = memory.read_bytes(a2, bpf_map.key_size)
        value = memory.read_bytes(a3, bpf_map.value_size)
        try:
            bpf_map.update(key, value)
        except BpfMapError:
            return (-1) & MASK64
        return 0
    if helper_id == HELPER_MAP_DELETE:
        bpf_map = maps.get(a1)
        if bpf_map is None:
            raise VmFault("bad map fd {}".format(a1))
        key = memory.read_bytes(a2, bpf_map.key_size)
        return 0 if bpf_map.delete(key) else (-1) & MASK64
    raise VmFault("unknown helper {}".format(helper_id))


class JitError(Exception):
    """The program cannot be compiled (certificate missing a fact)."""


class _Codegen:
    def __init__(self, program, facts, maps):
        self.program = program
        self.facts = facts
        self.maps = maps
        # Map-value addresses alias across regions if a value outgrows
        # its stride; the interpreter's linear region scan would still
        # resolve them, the aligned-base index would not — retain the
        # guard in that (never-seen) configuration.
        self.mv_elide_ok = all(
            m.value_size <= MAP_VALUE_STRIDE for m in (maps or {}).values()
        )
        self.stats = {
            "mem_elided": 0,
            "mem_retained": 0,
            "div_elided": 0,
            "div_retained": 0,
            "insns": len(program),
        }

    # -- expression helpers ------------------------------------------------

    def _rhs(self, insn, mode, mask=MASK64):
        return "r{}".format(insn.src) if mode == "reg" else repr(insn.imm & mask)

    def _mem_stmts(self, index, insn, fact, value_expr=None):
        """Statements for one load/store. ``value_expr`` None => load."""
        size = fact["size"]
        ptr = "r{}".format(fact["ptr"])
        elide = fact["elide"] and (fact["region"] != MAP_VALUE or self.mv_elide_ok)
        self.stats["mem_elided" if elide else "mem_retained"] += 1
        if not elide:
            addr = "({} + {}) & {}".format(ptr, insn.off, MASK64)
            if value_expr is None:
                return ["r{} = _mem.load({}, {})".format(insn.dst, addr, size)]
            return ["_mem.store({}, {}, {})".format(addr, size, value_expr)]
        if fact["region"] == MAP_VALUE:
            lines = ["_a = {} + {}".format(ptr, insn.off)]
            buf = "_vbufs[_a & {}]".format(-MAP_VALUE_STRIDE)
            idx = "_a & {}".format(MAP_VALUE_STRIDE - 1)
        else:
            lines = []
            buf = _REGION_BUF[fact["region"]]
            idx = "{} + {}".format(ptr, insn.off - _REGION_BASE[fact["region"]])
        if value_expr is None:
            lines.append("r{} = _u{}({}, {})[0]".format(insn.dst, size, buf, idx))
        else:
            mask = (1 << (8 * size)) - 1
            if value_expr.isdigit():
                value_expr = repr(int(value_expr) & mask)
            else:
                value_expr = "{} & {}".format(value_expr, mask)
            lines.append("_p{}({}, {}, {})".format(size, buf, idx, value_expr))
        return lines

    # -- per-instruction ---------------------------------------------------

    def emit(self, index, insn):
        """Python statements for ``program[index]`` (VM-dispatch order)."""
        op = insn.op
        fact = self.facts[index]
        if op == "exit":
            return ["return r0, _n"]
        if op == "call":
            return [
                "r0 = _call(_maps, {}, r1, r2, r3, _mem, _vregs, _vbufs)".format(insn.imm)
            ]
        if op == "ja":
            return ["_s = {}".format(index + 1 + insn.off)]
        base, _, mode = op.partition(".")
        target = index + 1 + insn.off
        if base in _UNSIGNED_JUMPS:
            return [
                "if r{} {} {}: _s = {}".format(
                    insn.dst, _UNSIGNED_JUMPS[base], self._rhs(insn, mode), target
                )
            ]
        if base == "jset":
            return ["if (r{} & {}) != 0: _s = {}".format(insn.dst, self._rhs(insn, mode), target)]
        if base in _SIGNED_JUMPS:
            rhs = (
                "_sgn64(r{})".format(insn.src)
                if mode == "reg"
                else repr(_sgn64(insn.imm & MASK64))
            )
            return ["if _sgn64(r{}) {} {}: _s = {}".format(insn.dst, _SIGNED_JUMPS[base], rhs, target)]
        if base in ("mov", "mov32"):
            if mode == "reg":
                src = "r{}".format(insn.src)
                expr = "{} & {}".format(src, MASK32) if base == "mov32" else src
            else:
                expr = repr(insn.imm & (MASK32 if base == "mov32" else MASK64))
            return ["r{} = {}".format(insn.dst, expr)]
        if base == "lddw":
            return ["r{} = {}".format(insn.dst, insn.imm & MASK64)]
        alu32 = base.endswith("32")
        alu_base = base[:-2] if alu32 else base
        mask = MASK32 if alu32 else MASK64
        dst = "r{}".format(insn.dst)
        lhs = "({} & {})".format(dst, MASK32) if alu32 else dst
        if alu_base in _SIMPLE_ALU:
            rhs = self._rhs(insn, mode, mask)
            if mode == "reg" and alu32:
                rhs = "(r{} & {})".format(insn.src, MASK32)
            return ["{} = ({} {} {}) & {}".format(dst, lhs, _SIMPLE_ALU[alu_base], rhs, mask)]
        if alu_base in ("lsh", "rsh"):
            # The interpreter masks the shift count to 6 bits for both
            # widths (its lambda is shared); replicate, don't "fix".
            shift = (
                "(r{} & 63)".format(insn.src) if mode == "reg" else repr(insn.imm & MASK64 & 63)
            )
            sym = "<<" if alu_base == "lsh" else ">>"
            return ["{} = ({} {} {}) & {}".format(dst, lhs, sym, shift, mask)]
        if alu_base in ("div", "mod"):
            rhs = self._rhs(insn, mode)  # unmasked 64-bit, like the VM
            lines = []
            if fact is not None and fact.get("nonzero"):
                self.stats["div_elided"] += 1
            else:
                self.stats["div_retained"] += 1
                lines.append("if {} == 0: raise VmFault('division by zero')".format(rhs))
            sym = "//" if alu_base == "div" else "%"
            lines.append("{} = ({} {} {}) & {}".format(dst, lhs, sym, rhs, mask))
            return lines
        if alu_base == "neg":
            return ["{} = (-{}) & {}".format(dst, dst, mask)]
        if alu_base == "arsh":
            bits = 32 if alu32 else 64
            shift = (
                "(r{} & {})".format(insn.src, bits - 1)
                if mode == "reg"
                else repr(insn.imm & (bits - 1))
            )
            sgn = "_sgn32" if alu32 else "_sgn64"
            return ["{} = ({}({}) >> {}) & {}".format(dst, sgn, dst, shift, mask)]
        if base[:2] in ("be", "le") and base[2:].isdigit():
            width = int(base[2:])
            if base.startswith("le"):
                return ["{} = {} & {}".format(dst, dst, (1 << width) - 1)]
            return ["{} = _bswap({}, {})".format(dst, dst, width // 8)]
        if base.startswith("ldx"):
            return self._mem_stmts(index, insn, fact)
        if base.startswith("stx"):
            return self._mem_stmts(index, insn, fact, value_expr="r{}".format(insn.src))
        if base.startswith("st"):
            return self._mem_stmts(index, insn, fact, value_expr=repr(insn.imm))
        # The verifier admits unknown ALU mnemonics as opaque scalars;
        # the interpreter faults when one executes. So do we.
        return ["raise VmFault({!r})".format("unknown instruction {!r}".format(op))]

    # -- whole program -----------------------------------------------------

    def block_starts(self):
        starts = {0}
        n = len(self.program)
        for index, insn in enumerate(self.program):
            base = insn.op.partition(".")[0]
            if base == "exit" or base.startswith("j"):
                if base != "exit":
                    starts.add(index + 1 + insn.off)
                if index + 1 < n:
                    starts.add(index + 1)
        return sorted(start for start in starts if 0 <= start < n)

    def generate(self):
        lines = [
            "def _jit_run(_pkt):",
            "    _mem = _Memory()",
            "    _stk = bytearray({})".format(STACK_SIZE),
            "    _ctx = bytearray(16)",
            "    _ctxpack(_ctx, 0, {}, {} + len(_pkt))".format(PACKET_BASE, PACKET_BASE),
            "    _mem.add_region({}, _ctx)".format(CTX_BASE),
            "    _mem.add_region({}, _pkt)".format(PACKET_BASE),
            "    _mem.add_region({}, _stk)".format(STACK_TOP - STACK_SIZE),
            "    _vregs = {}",
            "    _vbufs = {}",
            "    r0 = r2 = r3 = r4 = r5 = r6 = r7 = r8 = r9 = 0",
            "    r1 = {}".format(CTX_BASE),
            "    r10 = {}".format(STACK_TOP),
            "    _n = 0",
            "    _s = -1",
        ]
        starts = self.block_starts()
        for which, start in enumerate(starts):
            end = starts[which + 1] if which + 1 < len(starts) else len(self.program)
            lines.append("    if _s < 0 or _s == {}:".format(start))
            lines.append("        _s = -1")
            lines.append("        _n += {}".format(end - start))
            for index in range(start, end):
                for stmt in self.emit(index, self.program[index]):
                    lines.append("        " + stmt)
        # Unreachable for certified programs: every path returns at exit.
        lines.append("    raise VmFault('program counter out of range: {}'.format(_s))")
        return "\n".join(lines) + "\n"


class JitProgram:
    """A compiled XDP program with the :class:`BpfVm` run interface."""

    def __init__(self, program, maps, cert, fn, source, stats):
        self.program = program
        self.maps = maps
        self.cert = cert
        self.source = source
        self.stats = stats
        self._fn = fn
        self.total_instructions = 0
        self.runs = 0

    def run(self, packet):
        """Execute over ``packet`` (bytearray, modified in place).

        Returns (r0 result, instructions executed)."""
        result, executed = self._fn(packet)
        self.total_instructions += executed
        self.runs += 1
        return result, executed


def compile_program(program, maps=None, cert=None):
    """Compile a verified program into a specialized closure.

    When ``cert`` is None the verifier runs and exports one; either
    way the certificate is re-validated by the independent checker
    before any fact reaches code generation.
    """
    if cert is None:
        cert = export_certificate(program, maps)
    check_certificate(program, cert, maps)
    maps_dict = dict(maps or {})
    codegen = _Codegen(program, cert.facts, maps_dict)
    source = codegen.generate()
    namespace = {
        "_Memory": _Memory,
        "_ctxpack": _CTX_PACK,
        "_call": _call_helper,
        "_maps": maps_dict,
        "_sgn32": _sgn32,
        "_sgn64": _sgn64,
        "_bswap": _bswap,
        "VmFault": VmFault,
    }
    for size, accessor in _STRUCTS.items():
        namespace["_u{}".format(size)] = accessor.unpack_from
        namespace["_p{}".format(size)] = accessor.pack_into
    exec(compile(source, "<xdp-jit>", "exec"), namespace)
    return JitProgram(program, maps_dict, cert, namespace["_jit_run"], source, codegen.stats)
