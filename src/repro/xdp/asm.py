"""A textual assembler for the eBPF VM.

Syntax (one instruction per line, ``;`` comments, ``label:`` targets)::

    ; r2 = packet data, r3 = data_end
    ldxdw r2, [r1+0]
    ldxdw r3, [r1+8]
    mov r4, r2
    add r4, 14
    jgt r4, r3, out          ; bounds check
    ldxb r5, [r2+12]
    jeq r5, 0x08, ipv4
    out:
    mov r0, 1                ; XDP_PASS
    exit

Operand forms: ``rN`` registers, decimal/hex immediates, ``[rN+off]``
memory operands, label jump targets. ``lddw rN, map:FD`` loads a map
file descriptor for the helper calls. Mnemonics mirror
:mod:`repro.xdp.vm`; register-register ALU/JMP forms are selected
automatically when the second operand is a register."""

import re

from repro.xdp.vm import Insn

_MEM_RE = re.compile(r"^\[r(\d+)\s*([+-]\s*\d+|[+-]\s*0x[0-9a-fA-F]+)?\]$")

_NO_OPERANDS = {"exit"}
_JUMPS = {"ja", "jeq", "jne", "jgt", "jge", "jlt", "jle", "jset", "jsgt", "jsge", "jslt", "jsle"}
_ALU = {
    "mov", "mov32", "add", "sub", "mul", "div", "mod", "and", "or", "xor",
    "lsh", "rsh", "arsh", "add32", "sub32", "mul32", "div32", "mod32",
    "and32", "or32", "xor32", "lsh32", "rsh32", "arsh32",
}
_UNARY = {"neg", "neg32", "be16", "be32", "be64", "le16", "le32", "le64"}


class AsmError(Exception):
    pass


def _parse_int(token):
    token = token.strip()
    return int(token.replace(" ", ""), 0)


def _parse_reg(token):
    token = token.strip()
    if not token.startswith("r") or not token[1:].isdigit():
        raise AsmError("expected register, got {!r}".format(token))
    reg = int(token[1:])
    if reg > 10:
        raise AsmError("no such register r{}".format(reg))
    return reg


def _parse_mem(token):
    match = _MEM_RE.match(token.strip())
    if not match:
        raise AsmError("expected memory operand, got {!r}".format(token))
    reg = int(match.group(1))
    off = _parse_int(match.group(2)) if match.group(2) else 0
    return reg, off


def _split_operands(rest):
    return [part.strip() for part in rest.split(",")] if rest.strip() else []


def assemble(text):
    """Assemble source text into a list of :class:`Insn`."""
    # First pass: strip comments, find labels.
    lines = []
    labels = {}
    for raw in text.splitlines():
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        while True:
            match = re.match(r"^([A-Za-z_][\w]*):\s*(.*)$", line)
            if not match:
                break
            label = match.group(1)
            if label in labels:
                raise AsmError("duplicate label {!r}".format(label))
            labels[label] = len(lines)
            line = match.group(2).strip()
            if not line:
                break
        if line:
            lines.append(line)

    program = []
    for index, line in enumerate(lines):
        parts = line.split(None, 1)
        op = parts[0].lower()
        operands = _split_operands(parts[1]) if len(parts) > 1 else []
        program.append(_encode(op, operands, index, labels))
    return program


def _branch_off(target, index, labels):
    if target in labels:
        return labels[target] - index - 1
    return _parse_int(target)


def _encode(op, operands, index, labels):
    if op in _NO_OPERANDS:
        return Insn("exit")
    if op == "call":
        return Insn("call", imm=_parse_int(operands[0]))
    if op == "ja":
        return Insn("ja", off=_branch_off(operands[0], index, labels))
    if op in _JUMPS:
        if len(operands) != 3:
            raise AsmError("{} needs dst, src, target".format(op))
        dst = _parse_reg(operands[0])
        off = _branch_off(operands[2], index, labels)
        if operands[1].startswith("r"):
            return Insn(op + ".reg", dst=dst, src=_parse_reg(operands[1]), off=off)
        return Insn(op + ".imm", dst=dst, imm=_parse_int(operands[1]), off=off)
    if op == "lddw":
        dst = _parse_reg(operands[0])
        value = operands[1]
        if value.startswith("map:"):
            return Insn("lddw", dst=dst, imm=_parse_int(value[4:]))
        return Insn("lddw", dst=dst, imm=_parse_int(value))
    if op in _UNARY:
        return Insn(op + ".none", dst=_parse_reg(operands[0]))
    if op in _ALU:
        dst = _parse_reg(operands[0])
        if operands[1].startswith("[") or len(operands) != 2:
            raise AsmError("bad ALU operands for {}".format(op))
        if operands[1].startswith("r"):
            return Insn(op + ".reg", dst=dst, src=_parse_reg(operands[1]))
        return Insn(op + ".imm", dst=dst, imm=_parse_int(operands[1]))
    if op.startswith("ldx"):
        dst = _parse_reg(operands[0])
        src, off = _parse_mem(operands[1])
        return Insn(op + ".mem", dst=dst, src=src, off=off)
    if op.startswith("stx"):
        dst, off = _parse_mem(operands[0])
        src = _parse_reg(operands[1])
        return Insn(op + ".mem", dst=dst, src=src, off=off)
    if op.startswith("st"):
        dst, off = _parse_mem(operands[0])
        return Insn(op + ".mem", dst=dst, off=off, imm=_parse_int(operands[1]))
    raise AsmError("unknown mnemonic {!r}".format(op))
