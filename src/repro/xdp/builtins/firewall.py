"""Firewall module: drop packets from blacklisted source IPs.

The paper's running example for BPF maps (§3.3): "a firewall module may
store blacklisted IPs in a hash map and the control plane may add or
remove entries dynamically."

Provided in both flavors: a native program and an eBPF-assembly program
for the VM (demonstrating real dynamic loading)."""

import struct

from repro.xdp.adapter import PyXdpProgram
from repro.xdp.asm import assemble
from repro.xdp.maps import BpfHashMap
from repro.xdp.program import XDP_DROP, XDP_PASS

BLACKLIST_FD = 1


class FirewallProgram(PyXdpProgram):
    name = "firewall"
    cost_cycles = 45

    def __init__(self, max_entries=1024):
        self.blacklist = BpfHashMap(4, 1, max_entries, name="blacklist")
        self.dropped = 0

    def block(self, ip):
        self.blacklist.update(struct.pack("!I", ip), b"\x01")

    def unblock(self, ip):
        self.blacklist.delete(struct.pack("!I", ip))

    def run(self, frame, meta):
        if frame.ip is None:
            return XDP_PASS
        if self.blacklist.lookup(struct.pack("!I", frame.ip.src)) is not None:
            self.dropped += 1
            return XDP_DROP
        return XDP_PASS


#: The same firewall as eBPF assembly. Packet layout: Ethernet (14 B,
#: no VLAN) then IPv4; source IP at offset 26. The key is stored on the
#: stack in network byte order to match control-plane insertions.
FIREWALL_ASM = """
    ; r1 = ctx. Load packet bounds.
    ldxdw r2, [r1+0]        ; data
    ldxdw r3, [r1+8]        ; data_end
    mov r4, r2
    add r4, 34              ; need Ethernet + IPv4 headers
    jgt r4, r3, pass
    ; EtherType must be IPv4 (0x0800 big-endian at offset 12).
    ldxh r5, [r2+12]
    jne r5, 0x0008, pass    ; little-endian load of big-endian 0x0800
    ; Key = source IP (offset 26), kept in wire byte order.
    ldxw r5, [r2+26]
    stxw [r10-4], r5
    ; blacklist lookup(map fd, key ptr)
    lddw r1, map:{fd}
    mov r2, r10
    sub r2, 4
    call 1
    jeq r0, 0, pass
    mov r0, 0               ; XDP_DROP
    exit
pass:
    mov r0, 1               ; XDP_PASS
    exit
""".format(fd=BLACKLIST_FD)


def firewall_asm_program():
    """(program, maps) pair ready for :class:`repro.xdp.XdpAdapter`."""
    blacklist = BpfHashMap(4, 1, 1024, name="blacklist")
    program = assemble(FIREWALL_ASM)
    return program, {BLACKLIST_FD: blacklist}


def block_ip(blacklist, ip):
    """Control-plane helper for the assembly firewall's map."""
    blacklist.update(struct.pack("!I", ip), b"\x01")
