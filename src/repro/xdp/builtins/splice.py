"""Connection splicing (paper §3.3, Listing 1, and AccelTCP).

A proxy terminates two TCP connections and splices them: the module
looks up the segment's 4-tuple in a BPF hash map; on a hit it rewrites
MAC/IP addresses, ports, and translates sequence/acknowledgment numbers
by the configured deltas, then transmits straight out the MAC
(XDP_TX) — the segment never touches the host or the TCP pipeline.
Control-flagged segments atomically remove the map entry and are
redirected to the control plane, exactly as in Listing 1."""

import struct

from repro.proto.tcp import FLAG_FIN, FLAG_RST, FLAG_SYN, seq_add
from repro.xdp.adapter import PyXdpProgram
from repro.xdp.maps import BpfHashMap
from repro.xdp.program import XDP_PASS, XDP_REDIRECT, XDP_TX

KEY_FORMAT = struct.Struct("!IIHH")  # src_ip, dst_ip, sport, dport
VALUE_FORMAT = struct.Struct("!QIHHII")  # mac, ip, lport, rport, seqd, ackd

CONTROL_FLAGS = FLAG_SYN | FLAG_FIN | FLAG_RST


def splice_key(src_ip, dst_ip, sport, dport):
    return KEY_FORMAT.pack(src_ip, dst_ip, sport, dport)


class SpliceEntry:
    """One direction of a spliced connection pair."""

    __slots__ = ("remote_mac", "remote_ip", "local_port", "remote_port", "seq_delta", "ack_delta")

    def __init__(self, remote_mac, remote_ip, local_port, remote_port, seq_delta, ack_delta):
        self.remote_mac = remote_mac
        self.remote_ip = remote_ip
        self.local_port = local_port
        self.remote_port = remote_port
        self.seq_delta = seq_delta % (1 << 32)
        self.ack_delta = ack_delta % (1 << 32)

    def pack(self):
        return VALUE_FORMAT.pack(
            self.remote_mac,
            self.remote_ip,
            self.local_port,
            self.remote_port,
            self.seq_delta,
            self.ack_delta,
        )

    @classmethod
    def unpack(cls, data):
        mac, ip, lport, rport, seqd, ackd = VALUE_FORMAT.unpack(bytes(data))
        return cls(mac, ip, lport, rport, seqd, ackd)


class SpliceProgram(PyXdpProgram):
    """The Listing 1 module as a native XDP program."""

    name = "tcp-splice"
    cost_cycles = 120  # lookup + header patch + checksum update

    def __init__(self, max_entries=4096, control_plane_cb=None):
        self.table = BpfHashMap(
            KEY_FORMAT.size, VALUE_FORMAT.size, max_entries, name="splice_tbl"
        )
        self.control_plane_cb = control_plane_cb
        self.spliced = 0
        self.closed = 0

    # -- control-plane API ----------------------------------------------------

    def install(self, four_tuple_key, entry):
        self.table.update(four_tuple_key, entry.pack())

    def remove(self, four_tuple_key):
        return self.table.delete(four_tuple_key)

    # -- data path ----------------------------------------------------------------

    def run(self, frame, meta):
        if frame.tcp is None or frame.ip is None:
            return XDP_REDIRECT  # non-IPv4/TCP segments to control-plane
        key = splice_key(frame.ip.src, frame.ip.dst, frame.tcp.sport, frame.tcp.dport)
        if frame.tcp.flags & CONTROL_FLAGS:
            # Atomically remove the map entry; forward to control-plane.
            if self.table.delete(key):
                self.closed += 1
                if self.control_plane_cb is not None:
                    self.control_plane_cb(key, frame)
                return XDP_REDIRECT
            return XDP_PASS
        raw = self.table.lookup(key)
        if raw is None:
            return XDP_PASS  # not spliced: send to the data-plane
        state = SpliceEntry.unpack(raw)
        self._patch_headers(frame, state)
        self.spliced += 1
        return XDP_TX

    @staticmethod
    def _patch_headers(frame, state):
        frame.eth.src = frame.eth.dst
        frame.eth.dst = state.remote_mac
        frame.ip.src = frame.ip.dst
        frame.ip.dst = state.remote_ip
        frame.tcp.sport = state.local_port
        frame.tcp.dport = state.remote_port
        frame.tcp.seq = seq_add(frame.tcp.seq, state.seq_delta)
        frame.tcp.ack = seq_add(frame.tcp.ack, state.ack_delta)
        # FlexTOE handles sequencing and the checksum update (paper §3.3);
        # in the simulator checksums are recomputed at serialization.
