"""Connection splicing (paper §3.3, Listing 1, and AccelTCP).

A proxy terminates two TCP connections and splices them: the module
looks up the segment's 4-tuple in a BPF hash map; on a hit it rewrites
MAC/IP addresses, ports, and translates sequence/acknowledgment numbers
by the configured deltas, then transmits straight out the MAC
(XDP_TX) — the segment never touches the host or the TCP pipeline.
Control-flagged segments atomically remove the map entry and are
redirected to the control plane, exactly as in Listing 1."""

import struct

from repro.proto.tcp import FLAG_FIN, FLAG_RST, FLAG_SYN, seq_add
from repro.xdp.adapter import PyXdpProgram
from repro.xdp.asm import assemble
from repro.xdp.maps import BpfHashMap
from repro.xdp.program import XDP_PASS, XDP_REDIRECT, XDP_TX

KEY_FORMAT = struct.Struct("!IIHH")  # src_ip, dst_ip, sport, dport
VALUE_FORMAT = struct.Struct("!QIHHII")  # mac, ip, lport, rport, seqd, ackd

CONTROL_FLAGS = FLAG_SYN | FLAG_FIN | FLAG_RST


def splice_key(src_ip, dst_ip, sport, dport):
    return KEY_FORMAT.pack(src_ip, dst_ip, sport, dport)


class SpliceEntry:
    """One direction of a spliced connection pair."""

    __slots__ = ("remote_mac", "remote_ip", "local_port", "remote_port", "seq_delta", "ack_delta")

    def __init__(self, remote_mac, remote_ip, local_port, remote_port, seq_delta, ack_delta):
        self.remote_mac = remote_mac
        self.remote_ip = remote_ip
        self.local_port = local_port
        self.remote_port = remote_port
        self.seq_delta = seq_delta % (1 << 32)
        self.ack_delta = ack_delta % (1 << 32)

    def pack(self):
        return VALUE_FORMAT.pack(
            self.remote_mac,
            self.remote_ip,
            self.local_port,
            self.remote_port,
            self.seq_delta,
            self.ack_delta,
        )

    @classmethod
    def unpack(cls, data):
        mac, ip, lport, rport, seqd, ackd = VALUE_FORMAT.unpack(bytes(data))
        return cls(mac, ip, lport, rport, seqd, ackd)


class SpliceProgram(PyXdpProgram):
    """The Listing 1 module as a native XDP program."""

    name = "tcp-splice"
    cost_cycles = 120  # lookup + header patch + checksum update

    def __init__(self, max_entries=4096, control_plane_cb=None):
        self.table = BpfHashMap(
            KEY_FORMAT.size, VALUE_FORMAT.size, max_entries, name="splice_tbl"
        )
        self.control_plane_cb = control_plane_cb
        self.spliced = 0
        self.closed = 0

    # -- control-plane API ----------------------------------------------------

    def install(self, four_tuple_key, entry):
        self.table.update(four_tuple_key, entry.pack())

    def remove(self, four_tuple_key):
        return self.table.delete(four_tuple_key)

    # -- data path ----------------------------------------------------------------

    def run(self, frame, meta):
        if frame.tcp is None or frame.ip is None:
            return XDP_REDIRECT  # non-IPv4/TCP segments to control-plane
        key = splice_key(frame.ip.src, frame.ip.dst, frame.tcp.sport, frame.tcp.dport)
        if frame.tcp.flags & CONTROL_FLAGS:
            # Atomically remove the map entry; forward to control-plane.
            if self.table.delete(key):
                self.closed += 1
                if self.control_plane_cb is not None:
                    self.control_plane_cb(key, frame)
                return XDP_REDIRECT
            return XDP_PASS
        raw = self.table.lookup(key)
        if raw is None:
            return XDP_PASS  # not spliced: send to the data-plane
        state = SpliceEntry.unpack(raw)
        self._patch_headers(frame, state)
        self.spliced += 1
        return XDP_TX

    @staticmethod
    def _patch_headers(frame, state):
        frame.eth.src = frame.eth.dst
        frame.eth.dst = state.remote_mac
        frame.ip.src = frame.ip.dst
        frame.ip.dst = state.remote_ip
        frame.tcp.sport = state.local_port
        frame.tcp.dport = state.remote_port
        frame.tcp.seq = seq_add(frame.tcp.seq, state.seq_delta)
        frame.tcp.ack = seq_add(frame.tcp.ack, state.ack_delta)
        # FlexTOE handles sequencing and the checksum update (paper §3.3);
        # in the simulator checksums are recomputed at serialization.


SPLICE_FD = 3

#: Listing 1 as eBPF assembly. Wire layout without VLAN: Ethernet
#: 0-13, IPv4 14-33 (src 26, dst 30), TCP from 34 (sport 34, dport 36,
#: seq 38, ack 42, flags byte 47). The 4-tuple key ("!IIHH") is exactly
#: the contiguous wire bytes [26, 38), so building it is three aligned
#: word copies; same-size load/store pairs are endian-neutral. The
#: packet pointer lives in r6 because the verifier models helper calls
#: as clobbering r1-r5.
SPLICE_ASM = """
    ldxdw r2, [r1+0]        ; data
    ldxdw r3, [r1+8]        ; data_end
    mov r6, r2              ; packet pointer, survives helper calls
    mov r4, r6
    add r4, 48              ; Ethernet + IPv4 + TCP incl. flags byte
    jgt r4, r3, slow
    ldxh r5, [r6+12]
    jne r5, 0x0008, slow    ; not IPv4 (big-endian 0x0800)
    ldxb r5, [r6+23]
    jne r5, 6, slow         ; not TCP
    ; key = (src_ip, dst_ip, sport, dport) in wire order
    ldxw r5, [r6+26]
    stxw [r10-12], r5
    ldxw r5, [r6+30]
    stxw [r10-8], r5
    ldxw r5, [r6+34]
    stxw [r10-4], r5
    ; control-flagged segment (SYN|FIN|RST)?
    ldxb r5, [r6+47]
    and r5, 0x07
    jne r5, 0, control
    lddw r1, map:{fd}
    mov r2, r10
    sub r2, 12
    call 1                  ; splice table lookup
    jeq r0, 0, pass         ; not spliced: data plane handles it
    ; patch headers: eth.src <- eth.dst, eth.dst <- entry MAC
    ldxw r5, [r6+0]
    stxw [r6+6], r5
    ldxh r5, [r6+4]
    stxh [r6+10], r5
    ldxw r5, [r0+2]         ; MAC = low 6 bytes of the big-endian u64
    stxw [r6+0], r5
    ldxh r5, [r0+6]
    stxh [r6+4], r5
    ; ip.src <- ip.dst, ip.dst <- entry IP
    ldxw r5, [r6+30]
    stxw [r6+26], r5
    ldxw r5, [r0+8]
    stxw [r6+30], r5
    ; ports
    ldxh r5, [r0+12]
    stxh [r6+34], r5
    ldxh r5, [r0+14]
    stxh [r6+36], r5
    ; seq/ack translation, mod 2^32 (be32 is its own inverse)
    ldxw r5, [r6+38]
    be32 r5
    ldxw r4, [r0+16]
    be32 r4
    add32 r5, r4
    be32 r5
    stxw [r6+38], r5
    ldxw r5, [r6+42]
    be32 r5
    ldxw r4, [r0+20]
    be32 r4
    add32 r5, r4
    be32 r5
    stxw [r6+42], r5
    mov r0, 2               ; XDP_TX: straight back out the MAC
    exit
control:
    lddw r1, map:{fd}
    mov r2, r10
    sub r2, 12
    call 3                  ; atomically remove the entry
    jne r0, 0, pass         ; no entry: not ours
    mov r0, 3               ; XDP_REDIRECT: hand to the control plane
    exit
slow:
    mov r0, 3               ; XDP_REDIRECT: non-TCP to the control plane
    exit
pass:
    mov r0, 1               ; XDP_PASS
    exit
""".format(fd=SPLICE_FD)


def splice_asm_program(max_entries=4096):
    """(program, maps) pair ready for :class:`repro.xdp.XdpAdapter`."""
    table = BpfHashMap(KEY_FORMAT.size, VALUE_FORMAT.size, max_entries, name="splice_tbl")
    return assemble(SPLICE_ASM), {SPLICE_FD: table}
