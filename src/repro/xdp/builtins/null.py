"""The null XDP program: passes every packet (Table 2's overhead probe)."""

from repro.xdp.adapter import PyXdpProgram
from repro.xdp.asm import assemble
from repro.xdp.program import XDP_PASS


class NullProgram(PyXdpProgram):
    name = "xdp-null"
    cost_cycles = 10

    def run(self, frame, meta):
        return XDP_PASS


NULL_ASM = """
    mov r0, 1
    exit
"""


def null_asm_program():
    return assemble(NULL_ASM), {}
