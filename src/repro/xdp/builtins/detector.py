"""In-NIC attack detector: per-source feature counters + threshold drops.

The survivability counterpart of the firewall builtin: instead of a
control-plane-curated blacklist, the program *itself* builds per-source
features (packets, bytes, pure-SYN count, RST count) in an LRU hash map
and drops at the NIC — before checksum verification, before connection
lookup, and critically before the control plane can allocate any
offload state (buffers, connection index, CONN_SLAB slot) for the flow.

Feature map (LRU, keyed by source IP in wire byte order)::

    struct features { u64 pkts; u64 bytes; u64 syns; u64 rsts; }

Threshold map (one-slot array, all u64; a zero disables that rule)::

    struct thresholds { u64 syn_limit; u64 rst_limit;
                        u64 pkt_floor; u64 min_bpp; }

Verdicts, in program order:

* pure SYN (SYN set, ACK clear) with the source's SYN count above
  ``syn_limit`` -> drop (SYN flood);
* RST with the source's RST count above ``rst_limit`` -> drop
  (RST/churn storm);
* TCP segment carrying none of SYN/ACK/RST -> drop unconditionally (no
  real TCP endpoint emits flag-less junk; this is the incast garbage
  profile and it otherwise triggers control-plane RST reflection);
* once a source has sent more than ``pkt_floor`` packets, an average
  L3 bytes/packet below ``min_bpp`` -> drop (runt flood).

Counting uses the IP total-length field rather than pointer arithmetic
so the program stays within the verifier's packet-bounds proof idiom.
The division in the bytes/packet rule is guarded by an explicit
zero-compare, which the range analysis picks up to elide the JIT's
division guard.
"""

import struct

from repro.xdp.asm import assemble
from repro.xdp.maps import BpfArrayMap, BpfLruHashMap

FEATURES_FD = 1
THRESHOLDS_FD = 2

#: features value layout (little-endian u64s).
_FEATURES_FMT = "<QQQQ"
_THRESHOLDS_FMT = "<QQQQ"

DETECTOR_ASM = """
    ; r8 = data, r9 = data_end (callee-saved across helper calls).
    ldxdw r8, [r1+0]
    ldxdw r9, [r1+8]
    mov r4, r8
    add r4, 48              ; eth(14) + ipv4(20) + tcp through flags(14)
    jgt r4, r9, pass
    ldxh r5, [r8+12]
    jne r5, 0x0008, pass    ; EtherType IPv4 (wire 0x0800, LE load)
    ldxb r5, [r8+23]
    jne r5, 6, pass         ; IPv4 protocol must be TCP
    ldxb r7, [r8+47]        ; TCP flags byte, callee-saved
    ; Thresholds: one-slot array map, index 0.
    stw [r10-8], 0
    lddw r1, map:{thresholds}
    mov r2, r10
    sub r2, 8
    call 1
    jeq r0, 0, pass
    ; Copy to the stack: the next helper call clobbers r0.
    ldxdw r6, [r0+0]
    stxdw [r10-16], r6      ; syn_limit
    ldxdw r6, [r0+8]
    stxdw [r10-24], r6      ; rst_limit
    ldxdw r6, [r0+16]
    stxdw [r10-32], r6      ; pkt_floor
    ldxdw r6, [r0+24]
    stxdw [r10-40], r6      ; min_bpp
    ; Per-source feature slot, key = src IP in wire order.
    ldxw r5, [r8+26]
    stxw [r10-4], r5
    lddw r1, map:{features}
    mov r2, r10
    sub r2, 4
    call 1
    jne r0, 0, found
    ; First sighting: insert a zeroed record, then re-look it up (the
    ; LRU map evicts rather than fail, so the re-lookup always hits).
    stdw [r10-72], 0
    stdw [r10-64], 0
    stdw [r10-56], 0
    stdw [r10-48], 0
    lddw r1, map:{features}
    mov r2, r10
    sub r2, 4
    mov r3, r10
    sub r3, 72
    call 2
    lddw r1, map:{features}
    mov r2, r10
    sub r2, 4
    call 1
    jeq r0, 0, pass
found:
    ; pkts += 1 (keep the new count in r6 for the bytes/pkt rule).
    ldxdw r6, [r0+0]
    add r6, 1
    stxdw [r0+0], r6
    ; bytes += IP total length (offset 16, big-endian).
    ldxh r5, [r8+16]
    be16 r5
    ldxdw r4, [r0+8]
    add r4, r5
    stxdw [r0+8], r4
    ; Pure SYN?
    mov r5, r7
    and r5, 0x12            ; SYN|ACK
    jne r5, 0x02, not_syn
    ldxdw r5, [r0+16]
    add r5, 1
    stxdw [r0+16], r5
    ldxdw r3, [r10-16]      ; syn_limit (0 = disabled)
    jeq r3, 0, pass
    jgt r5, r3, drop
    ja pass
not_syn:
    mov r5, r7
    and r5, 0x04            ; RST
    jeq r5, 0, not_rst
    ldxdw r5, [r0+24]
    add r5, 1
    stxdw [r0+24], r5
    ldxdw r3, [r10-24]      ; rst_limit (0 = disabled)
    jeq r3, 0, pass
    jgt r5, r3, drop
    ja pass
not_rst:
    ; Protocol validity: a TCP segment with none of SYN/ACK/RST set is
    ; junk no real endpoint emits — drop before it reaches the slow
    ; path's RST reflection.
    mov r5, r7
    and r5, 0x16            ; SYN|RST|ACK
    jeq r5, 0, drop
    ; Runt-flood rule: enough packets seen and avg bytes/pkt too small.
    ldxdw r3, [r10-32]      ; pkt_floor (0 = disabled)
    jeq r3, 0, pass
    jgt r6, r3, bpp_check
    ja pass
bpp_check:
    ldxdw r3, [r10-40]      ; min_bpp (0 = disabled)
    jeq r3, 0, pass
    jeq r6, 0, pass         ; divisor-nonzero guard (elides JIT check)
    mov r5, r4
    div r5, r6              ; avg L3 bytes per packet
    jlt r5, r3, drop
    ja pass
drop:
    mov r0, 0               ; XDP_DROP
    exit
pass:
    mov r0, 1               ; XDP_PASS
    exit
""".format(features=FEATURES_FD, thresholds=THRESHOLDS_FD)


def detector_asm_program(max_sources=1024):
    """(program, maps) pair ready for :class:`repro.xdp.XdpAdapter`.

    Thresholds start zeroed: only the protocol-validity rule is active
    until the control plane programs a policy via :func:`set_thresholds`.
    """
    features = BpfLruHashMap(4, 32, max_sources, name="flow_features")
    thresholds = BpfArrayMap(32, 1, name="detector_thresholds")
    program = assemble(DETECTOR_ASM)
    return program, {FEATURES_FD: features, THRESHOLDS_FD: thresholds}


def set_thresholds(maps, syn_limit=0, rst_limit=0, pkt_floor=0, min_bpp=0):
    """Program the detector's policy (a zero disables that rule)."""
    maps[THRESHOLDS_FD].update(
        struct.pack("<I", 0),
        struct.pack(_THRESHOLDS_FMT, syn_limit, rst_limit, pkt_floor, min_bpp),
    )


def read_features(maps, src_ip):
    """(pkts, bytes, syns, rsts) for a source IP, or None if unseen."""
    value = maps[FEATURES_FD].lookup(struct.pack("!I", src_ip))
    if value is None:
        return None
    return struct.unpack(_FEATURES_FMT, bytes(value))


def decay_features(maps):
    """Halve every source's counters: called periodically this turns
    the cumulative counts into (coarse) rates, so a source that stops
    attacking decays back under threshold instead of staying banned."""
    features = maps[FEATURES_FD]
    for key in features.keys():
        value = features.lookup(key)
        if value is None:
            continue
        pkts, nbytes, syns, rsts = struct.unpack(_FEATURES_FMT, bytes(value))
        struct.pack_into(
            _FEATURES_FMT, value, 0, pkts // 2, nbytes // 2, syns // 2, rsts // 2
        )
