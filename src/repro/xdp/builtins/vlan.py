"""VLAN stripping on ingress (Table 2's 'XDP (vlan-strip)' row)."""

from repro.xdp.adapter import PyXdpProgram
from repro.xdp.asm import assemble
from repro.xdp.program import XDP_PASS


class VlanStripProgram(PyXdpProgram):
    name = "vlan-strip"
    cost_cycles = 28

    def __init__(self):
        self.stripped = 0

    def run(self, frame, meta):
        if frame.eth.vlan is not None:
            frame.eth.vlan = None
            frame.eth.vlan_pcp = 0
            self.stripped += 1
        return XDP_PASS


#: Assembly flavor. The VM rewrites packets in place and cannot shrink
#: them, so this performs the in-place half of the strip: tagged frames
#: get their 802.1Q priority (PCP) cleared. TPID 0x8100 sits big-endian
#: at offset 12; the TCI's first byte carries PCP in its top 3 bits.
VLAN_ASM = """
    ldxdw r2, [r1+0]        ; data
    ldxdw r3, [r1+8]        ; data_end
    mov r4, r2
    add r4, 18              ; Ethernet + 802.1Q tag
    jgt r4, r3, pass
    ldxh r5, [r2+12]
    jne r5, 0x0081, pass    ; little-endian load of big-endian 0x8100
    ldxb r5, [r2+14]
    and r5, 0x1f            ; clear PCP, keep DEI + VID high bits
    stxb [r2+14], r5
pass:
    mov r0, 1               ; XDP_PASS
    exit
"""


def vlan_asm_program():
    """(program, maps) pair ready for :class:`repro.xdp.XdpAdapter`."""
    return assemble(VLAN_ASM), {}
