"""VLAN stripping on ingress (Table 2's 'XDP (vlan-strip)' row)."""

from repro.xdp.adapter import PyXdpProgram
from repro.xdp.program import XDP_PASS


class VlanStripProgram(PyXdpProgram):
    name = "vlan-strip"
    cost_cycles = 28

    def __init__(self):
        self.stripped = 0

    def run(self, frame, meta):
        if frame.eth.vlan is not None:
            frame.eth.vlan = None
            frame.eth.vlan_pcp = 0
            self.stripped += 1
        return XDP_PASS
