"""Programmable flow classification (paper §2.1's feature list).

Counts packets and bytes per destination port class in a BPF array map
(the control plane reads the counters); optionally drops flows matching
a deny port. Also provided as eBPF assembly for the VM."""

import struct

from repro.xdp.adapter import PyXdpProgram
from repro.xdp.asm import assemble
from repro.xdp.maps import BpfArrayMap
from repro.xdp.program import XDP_DROP, XDP_PASS

COUNTERS_FD = 2
N_CLASSES = 16


class FlowClassifierProgram(PyXdpProgram):
    name = "flow-classifier"
    cost_cycles = 40

    def __init__(self, deny_port=None):
        self.counters = BpfArrayMap(16, N_CLASSES, name="flow_counters")
        self.deny_port = deny_port

    def run(self, frame, meta):
        if frame.tcp is None:
            return XDP_PASS
        if self.deny_port is not None and frame.tcp.dport == self.deny_port:
            return XDP_DROP
        class_id = frame.tcp.dport % N_CLASSES
        slot = self.counters.lookup(struct.pack("<I", class_id))
        packets, nbytes = struct.unpack("<QQ", bytes(slot))
        struct.pack_into("<QQ", slot, 0, packets + 1, nbytes + frame.wire_len)
        return XDP_PASS

    def read_class(self, class_id):
        slot = self.counters.lookup(struct.pack("<I", class_id))
        return struct.unpack("<QQ", bytes(slot))


#: Assembly version: increments the packet counter of dport % 16.
CLASSIFIER_ASM = """
    ldxdw r2, [r1+0]
    ldxdw r3, [r1+8]
    mov r4, r2
    add r4, 38              ; eth(14) + ip(20) + tcp ports(4)
    jgt r4, r3, pass
    ldxh r5, [r2+12]
    jne r5, 0x0008, pass
    ; dport at offset 36, big-endian on the wire.
    ldxh r5, [r2+36]
    be16 r5
    and r5, 15
    stxw [r10-4], r5        ; array key (little-endian u32)
    lddw r1, map:{fd}
    mov r2, r10
    sub r2, 4
    call 1
    jeq r0, 0, pass
    ; increment value[0] (packet count, u64)
    ldxdw r6, [r0+0]
    add r6, 1
    stxdw [r0+0], r6
pass:
    mov r0, 1
    exit
""".format(fd=COUNTERS_FD)


def classifier_asm_program():
    counters = BpfArrayMap(16, N_CLASSES, name="flow_counters")
    return assemble(CLASSIFIER_ASM), {COUNTERS_FD: counters}
