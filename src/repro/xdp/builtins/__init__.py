"""Builtin XDP modules from the paper: splicing, firewall, VLAN strip,
flow classification, and the null program (Table 2)."""

from repro.xdp.builtins.splice import (
    SpliceEntry,
    SpliceProgram,
    splice_asm_program,
    splice_key,
)
from repro.xdp.builtins.firewall import FirewallProgram, firewall_asm_program
from repro.xdp.builtins.vlan import VlanStripProgram, vlan_asm_program
from repro.xdp.builtins.filter import FlowClassifierProgram, classifier_asm_program
from repro.xdp.builtins.null import NullProgram, null_asm_program
from repro.xdp.builtins.detector import (
    decay_features,
    detector_asm_program,
    read_features,
    set_thresholds,
)

#: name -> zero-argument factory returning (program, maps); the lint
#: CLI's --certify mode and the JIT test-suite sweep iterate this.
ASM_BUILTINS = {
    "null": null_asm_program,
    "filter": classifier_asm_program,
    "firewall": firewall_asm_program,
    "vlan": vlan_asm_program,
    "splice": splice_asm_program,
    "detector": detector_asm_program,
}

__all__ = [
    "ASM_BUILTINS",
    "FirewallProgram",
    "FlowClassifierProgram",
    "NullProgram",
    "SpliceEntry",
    "SpliceProgram",
    "VlanStripProgram",
    "classifier_asm_program",
    "decay_features",
    "detector_asm_program",
    "firewall_asm_program",
    "null_asm_program",
    "read_features",
    "set_thresholds",
    "splice_asm_program",
    "splice_key",
    "vlan_asm_program",
]
