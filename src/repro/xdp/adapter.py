"""Runs XDP programs as FlexTOE pipeline modules.

Two program flavors share :class:`XdpAdapter`:

* a verified VM program (:class:`repro.xdp.vm.BpfVm`) — the frame is
  serialized to wire bytes, executed over, and re-parsed if modified;
  the FPC cycle charge is proportional to instructions executed (the
  NFP executes offloaded eBPF natively);
* a :class:`PyXdpProgram` — a native-Python module with the same result
  codes, for hot benchmark paths.

FlexTOE handles sequencing/reordering around replicated XDP stages
(§3.2/§3.3); the adapter plugs into the same hook machinery as native
modules, so that applies automatically.

VM programs are compiled by the proof-carrying JIT
(:mod:`repro.xdp.jit`) by default: the verifier's certificate lets
proven-in-bounds accesses run guard-free. Set ``REPRO_XDP_JIT=0`` (or
pass ``jit=False``) to fall back to the :class:`BpfVm` interpreter,
which is retained as the differential oracle.
"""

import os

from repro.flextoe.module import ACTION_DROP, ACTION_PASS, ACTION_REDIRECT, ACTION_TX, DatapathModule
from repro.proto.packet import Frame
from repro.xdp.program import XDP_DROP, XDP_PASS, XDP_REDIRECT, XDP_TX
from repro.xdp.verifier import verify


def jit_enabled_default():
    """JIT on unless ``REPRO_XDP_JIT`` disables it."""
    return os.environ.get("REPRO_XDP_JIT", "1").strip().lower() not in ("0", "false", "off")

_RESULT_TO_ACTION = {
    XDP_PASS: ACTION_PASS,
    XDP_DROP: ACTION_DROP,
    XDP_TX: ACTION_TX,
    XDP_REDIRECT: ACTION_REDIRECT,
}

#: Cycles per interpreted eBPF instruction on an FPC (≈1 with the NFP's
#: native translation; the small constant covers packet-memory staging).
CYCLES_PER_INSN = 1
CYCLES_SETUP = 12


class PyXdpProgram:
    """Base for native-Python XDP programs: override :meth:`run`.

    ``run(frame, meta)`` returns an XDP result code; ``cost_cycles`` is
    the fixed per-packet FPC charge."""

    name = "py-xdp"
    cost_cycles = 20

    def run(self, frame, meta):
        raise NotImplementedError


class XdpAdapter(DatapathModule):
    """Wraps a VM or Python XDP program as a data-path module."""

    def __init__(self, program=None, maps=None, py_program=None, name=None, jit=None):
        if (program is None) == (py_program is None):
            raise ValueError("provide exactly one of program/py_program")
        self.py_program = py_program
        self.vm = None
        self.jit_enabled = False
        if program is not None:
            use_jit = jit_enabled_default() if jit is None else jit
            if use_jit:
                # compile_program verifies via the certificate pipeline:
                # export, independent re-check, then code generation.
                from repro.xdp.jit import compile_program

                self.vm = compile_program(program, maps)
                self.jit_enabled = True
            else:
                verify(program, maps)
                from repro.xdp.vm import BpfVm

                self.vm = BpfVm(program, maps)
        self.name = name or (py_program.name if py_program else "xdp-vm")
        self.invocations = 0
        self.results = {XDP_PASS: 0, XDP_DROP: 0, XDP_TX: 0, XDP_REDIRECT: 0}
        self._last_cost = CYCLES_SETUP
        if py_program is not None:
            self.cost_cycles = py_program.cost_cycles
        else:
            self.cost_cycles = CYCLES_SETUP + 24  # refined after each run

    def handle(self, frame, meta):
        self.invocations += 1
        if self.py_program is not None:
            result = self.py_program.run(frame, meta)
        else:
            result = self._run_vm(frame, meta)
        self.results[result] = self.results.get(result, 0) + 1
        return _RESULT_TO_ACTION.get(result, ACTION_PASS)

    def _run_vm(self, frame, meta):
        wire = bytearray(frame.pack())
        original = bytes(wire)
        result, executed = self.vm.run(wire)
        self.cost_cycles = CYCLES_SETUP + CYCLES_PER_INSN * executed
        if bytes(wire) != original:
            # The program rewrote the packet: re-parse into the frame.
            reparsed = Frame.unpack(bytes(wire))
            frame.eth = reparsed.eth
            frame.ip = reparsed.ip
            frame.tcp = reparsed.tcp
            frame.arp = reparsed.arp
            frame.payload = reparsed.payload
        return result
