"""Load-time verification of XDP VM programs.

A deliberately small subset of the kernel verifier, enough to give the
same operational guarantees the NFP offload needs (paper §3.3): programs
terminate (no back-edges, bounded length), cannot call unknown helpers,
always end in ``exit``, and never read obviously-uninitialized
registers. Memory safety is additionally enforced at run time by the VM.
"""

from repro.xdp.vm import HELPER_MAP_DELETE, HELPER_MAP_LOOKUP, HELPER_MAP_UPDATE

MAX_PROGRAM_LEN = 4096
VALID_HELPERS = {HELPER_MAP_LOOKUP, HELPER_MAP_UPDATE, HELPER_MAP_DELETE}

#: Registers each helper reads (r1 = map fd, r2 = key, ...).
HELPER_ARG_COUNT = {
    HELPER_MAP_LOOKUP: 2,
    HELPER_MAP_UPDATE: 3,
    HELPER_MAP_DELETE: 2,
}


class VerifierError(Exception):
    pass


def verify(program, maps=None):
    """Raise :class:`VerifierError` if the program is unacceptable."""
    if not program:
        raise VerifierError("empty program")
    if len(program) > MAX_PROGRAM_LEN:
        raise VerifierError("program too long ({} insns)".format(len(program)))

    has_exit = False
    # Conservative straight-line register-initialization tracking:
    # r1 (ctx) and r10 (frame pointer) start initialized.
    initialized = {1, 10}
    for index, insn in enumerate(program):
        op = insn.op
        base, _, mode = op.partition(".")
        if base == "exit":
            has_exit = True
            continue
        if base == "call":
            if insn.imm not in VALID_HELPERS:
                raise VerifierError("insn {}: unknown helper {}".format(index, insn.imm))
            for reg in range(1, 1 + HELPER_ARG_COUNT[insn.imm]):
                if reg not in initialized:
                    raise VerifierError(
                        "insn {}: helper reads uninitialized r{}".format(index, reg)
                    )
            initialized.add(0)  # r0 = return value
            # r1-r5 are clobbered by calls.
            initialized -= {1, 2, 3, 4, 5}
            continue
        if base == "ja" or base in (
            "jeq", "jne", "jgt", "jge", "jlt", "jle", "jset", "jsgt", "jsge", "jslt", "jsle"
        ):
            target = index + 1 + insn.off
            if insn.off < 0:
                raise VerifierError("insn {}: backward jump (loops rejected)".format(index))
            if not 0 <= target <= len(program):
                raise VerifierError("insn {}: jump target {} out of range".format(index, target))
            if base != "ja":
                if insn.dst not in initialized:
                    raise VerifierError("insn {}: jump reads uninitialized r{}".format(index, insn.dst))
                if mode == "reg" and insn.src not in initialized:
                    raise VerifierError("insn {}: jump reads uninitialized r{}".format(index, insn.src))
            continue
        if base in ("mov", "mov32", "lddw"):
            if mode == "reg" and insn.src not in initialized:
                raise VerifierError("insn {}: mov reads uninitialized r{}".format(index, insn.src))
            initialized.add(insn.dst)
            continue
        if base.startswith("ldx"):
            if insn.src not in initialized:
                raise VerifierError("insn {}: load through uninitialized r{}".format(index, insn.src))
            initialized.add(insn.dst)
            continue
        if base.startswith("stx"):
            if insn.dst not in initialized or insn.src not in initialized:
                raise VerifierError("insn {}: store uses uninitialized register".format(index))
            continue
        if base.startswith("st"):
            if insn.dst not in initialized:
                raise VerifierError("insn {}: store through uninitialized r{}".format(index, insn.dst))
            continue
        # ALU / byteswap: dst must be initialized (it is read-modify-write).
        if insn.dst not in initialized:
            raise VerifierError("insn {}: ALU reads uninitialized r{}".format(index, insn.dst))
        if mode == "reg" and insn.src not in initialized:
            raise VerifierError("insn {}: ALU reads uninitialized r{}".format(index, insn.src))
        initialized.add(insn.dst)
    if not has_exit:
        raise VerifierError("program has no exit instruction")
    return True
