"""Load-time verification of XDP VM programs.

The actual analysis lives in :mod:`repro.analysis.verifier`: a
control-flow-graph + worklist dataflow verifier with per-path register
initialization (facts meet at branch joins), scalar-vs-pointer register
typing, bounds checks on context/stack/packet/map-value accesses,
null-check enforcement for map lookups, unreachable-code detection, and
a path-sensitive "every path reaches ``exit``" guarantee.

This module keeps the historical import surface
(``from repro.xdp.verifier import verify, VerifierError``) stable for
the adapter and external callers. Memory safety is additionally
enforced at run time by the VM, as defense in depth.
"""

from repro.analysis.verifier import (
    HELPER_ARG_COUNT,
    MAX_PROGRAM_LEN,
    VALID_HELPERS,
    VerifierError,
    verify,
)

__all__ = [
    "HELPER_ARG_COUNT",
    "MAX_PROGRAM_LEN",
    "VALID_HELPERS",
    "VerifierError",
    "verify",
]
