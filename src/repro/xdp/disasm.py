"""Disassembler for VM programs: the inverse of :mod:`repro.xdp.asm`.

Used by debugging tooling (dump a loaded program) and by the round-trip
property tests that pin down the assembler's encoding.
"""

_SIZES = ("b", "h", "w", "dw")


def disassemble_insn(insn):
    """One instruction -> its canonical assembly text (numeric branch
    offsets; labels are a source-level convenience only)."""
    op = insn.op
    base, _, mode = op.partition(".")
    if base == "exit":
        return "exit"
    if base == "call":
        return "call {}".format(insn.imm)
    if base == "ja":
        return "ja {}".format(insn.off)
    if base in ("jeq", "jne", "jgt", "jge", "jlt", "jle", "jset", "jsgt", "jsge", "jslt", "jsle"):
        src = "r{}".format(insn.src) if mode == "reg" else str(insn.imm)
        return "{} r{}, {}, {}".format(base, insn.dst, src, insn.off)
    if base == "lddw":
        return "lddw r{}, {}".format(insn.dst, insn.imm)
    if base in ("neg", "neg32") or base.startswith("be") or base.startswith("le"):
        return "{} r{}".format(base, insn.dst)
    if base.startswith("ldx"):
        return "{} r{}, [r{}{}]".format(base, insn.dst, insn.src, _off(insn.off))
    if base.startswith("stx"):
        return "{} [r{}{}], r{}".format(base, insn.dst, _off(insn.off), insn.src)
    if base.startswith("st"):
        return "{} [r{}{}], {}".format(base, insn.dst, _off(insn.off), insn.imm)
    # ALU / mov forms.
    src = "r{}".format(insn.src) if mode == "reg" else str(insn.imm)
    return "{} r{}, {}".format(base, insn.dst, src)


def _off(off):
    if off == 0:
        return "+0"
    return "{:+d}".format(off)


def disassemble(program):
    """Program -> assembly text, one instruction per line."""
    return "\n".join(disassemble_insn(insn) for insn in program)
