"""XDP/eBPF support for the FlexTOE data-path (paper §3.3).

eBPF programs can be compiled to NFP assembly and dynamically loaded
into FlexTOE; here they run on a faithful register VM:

* :mod:`repro.xdp.maps` — BPF maps (array / hash / LRU-hash) with the
  atomic update semantics modules and the control plane share.
* :mod:`repro.xdp.vm` — a 64-bit 11-register eBPF interpreter with
  packet/stack/map memory and the map helpers.
* :mod:`repro.xdp.asm` — a textual assembler producing VM programs.
* :mod:`repro.xdp.verifier` — load-time checks (bounded programs, no
  back-edges, register initialization, valid helpers).
* :mod:`repro.xdp.adapter` — runs native-Python or VM programs as
  FlexTOE pipeline modules with per-instruction cycle accounting.
* :mod:`repro.xdp.jit` — proof-carrying check-eliding compiler: a
  certificate-validated program becomes one specialized Python closure
  where proven accesses skip their run-time guards.
* :mod:`repro.xdp.builtins` — the paper's example modules: connection
  splicing (Listing 1), firewall, VLAN strip, flow classifier, null.
"""

from repro.xdp.adapter import PyXdpProgram, XdpAdapter, jit_enabled_default
from repro.xdp.asm import assemble
from repro.xdp.jit import JitProgram, compile_program
from repro.xdp.maps import BpfArrayMap, BpfHashMap, BpfLruHashMap
from repro.xdp.program import XDP_DROP, XDP_PASS, XDP_REDIRECT, XDP_TX
from repro.xdp.verifier import VerifierError, verify
from repro.xdp.vm import BpfVm, VmFault

__all__ = [
    "BpfArrayMap",
    "BpfHashMap",
    "BpfLruHashMap",
    "BpfVm",
    "JitProgram",
    "PyXdpProgram",
    "VerifierError",
    "VmFault",
    "XDP_DROP",
    "XDP_PASS",
    "XDP_REDIRECT",
    "XDP_TX",
    "XdpAdapter",
    "assemble",
    "compile_program",
    "jit_enabled_default",
    "verify",
]
