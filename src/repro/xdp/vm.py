"""An eBPF-style virtual machine for XDP programs.

Eleven 64-bit registers (r0-r9 + frame pointer r10), a 512-byte stack,
flat-address packet and context regions, and the three BPF map helpers.
Instructions are :class:`Insn` records produced by the assembler
(:mod:`repro.xdp.asm`); the interpreter dispatches on mnemonic.

Memory is bounds-checked: any access outside the packet, stack, context,
or a returned map value faults with :class:`VmFault` (the NFP offload's
equivalent is the verifier refusing the program; ours checks at run time
as well, defense in depth for the simulator)."""

import struct

from repro.xdp.maps import BpfMapError

MASK64 = (1 << 64) - 1
MASK32 = (1 << 32) - 1

# Fixed virtual addresses.
CTX_BASE = 0x100
PACKET_BASE = 0x10000
STACK_TOP = 0x7F000
STACK_SIZE = 512
MAP_VALUE_BASE = 0x20000000
MAP_VALUE_STRIDE = 0x10000

HELPER_MAP_LOOKUP = 1
HELPER_MAP_UPDATE = 2
HELPER_MAP_DELETE = 3

MAX_INSNS_EXECUTED = 100_000


class VmFault(Exception):
    """Illegal memory access, division by zero, or bad instruction."""


class Insn:
    """One instruction: mnemonic + dst/src registers + offset + imm."""

    __slots__ = ("op", "dst", "src", "off", "imm")

    def __init__(self, op, dst=0, src=0, off=0, imm=0):
        self.op = op
        self.dst = dst
        self.src = src
        self.off = off
        self.imm = imm

    def __repr__(self):
        return "<{} r{} r{} off={} imm={}>".format(self.op, self.dst, self.src, self.off, self.imm)


def _signed(value, bits=64):
    value &= (1 << bits) - 1
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


class _Memory:
    """Flat virtual address space over named byte regions."""

    def __init__(self):
        self._regions = []  # (base, buffer)

    def add_region(self, base, buffer):
        self._regions.append((base, buffer))

    def _resolve(self, addr, size):
        for base, buffer in self._regions:
            if base <= addr and addr + size <= base + len(buffer):
                return buffer, addr - base
        raise VmFault("out-of-bounds access at 0x{:x} size {}".format(addr, size))

    def load(self, addr, size):
        buffer, offset = self._resolve(addr, size)
        return int.from_bytes(buffer[offset : offset + size], "little")

    def store(self, addr, size, value):
        buffer, offset = self._resolve(addr, size)
        buffer[offset : offset + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")

    def read_bytes(self, addr, size):
        buffer, offset = self._resolve(addr, size)
        return bytes(buffer[offset : offset + size])

    def write_bytes(self, addr, data):
        buffer, offset = self._resolve(addr, len(data))
        buffer[offset : offset + len(data)] = data


_ALU_OPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "lsh": lambda a, b: a << (b & 63),
    "rsh": lambda a, b: a >> (b & 63),
}

_JMP_OPS = {
    "jeq": lambda a, b: a == b,
    "jne": lambda a, b: a != b,
    "jgt": lambda a, b: a > b,
    "jge": lambda a, b: a >= b,
    "jlt": lambda a, b: a < b,
    "jle": lambda a, b: a <= b,
    "jset": lambda a, b: (a & b) != 0,
    "jsgt": lambda a, b: _signed(a) > _signed(b),
    "jsge": lambda a, b: _signed(a) >= _signed(b),
    "jslt": lambda a, b: _signed(a) < _signed(b),
    "jsle": lambda a, b: _signed(a) <= _signed(b),
}

_SIZES = {"b": 1, "h": 2, "w": 4, "dw": 8}


class BpfVm:
    """Executes one program against packets; maps persist across runs."""

    def __init__(self, program, maps=None):
        self.program = program
        self.maps = dict(maps or {})
        self.total_instructions = 0
        self.runs = 0

    def run(self, packet):
        """Execute over ``packet`` (bytearray, modified in place).

        Returns (r0 result, instructions executed)."""
        memory = _Memory()
        stack = bytearray(STACK_SIZE)
        ctx = bytearray(16)
        struct.pack_into("<QQ", ctx, 0, PACKET_BASE, PACKET_BASE + len(packet))
        memory.add_region(CTX_BASE, ctx)
        memory.add_region(PACKET_BASE, packet)
        memory.add_region(STACK_TOP - STACK_SIZE, stack)
        value_regions = {}

        regs = [0] * 11
        regs[1] = CTX_BASE
        regs[10] = STACK_TOP

        pc = 0
        executed = 0
        program = self.program
        n = len(program)
        while True:
            if pc < 0 or pc >= n:
                raise VmFault("program counter out of range: {}".format(pc))
            executed += 1
            if executed > MAX_INSNS_EXECUTED:
                raise VmFault("instruction budget exceeded")
            insn = program[pc]
            op = insn.op
            pc += 1
            if op == "exit":
                self.total_instructions += executed
                self.runs += 1
                return regs[0], executed
            if op == "call":
                regs[0] = self._helper(insn.imm, regs, memory, value_regions)
                continue
            if op == "ja":
                pc += insn.off
                continue
            base, _, mode = op.partition(".")
            if base in _JMP_OPS:
                rhs = regs[insn.src] if mode == "reg" else insn.imm & MASK64
                if _JMP_OPS[base](regs[insn.dst], rhs):
                    pc += insn.off
                continue
            if base == "mov" or base == "mov32":
                value = regs[insn.src] if mode == "reg" else insn.imm & MASK64
                regs[insn.dst] = value & (MASK32 if base == "mov32" else MASK64)
                continue
            if base == "lddw":
                regs[insn.dst] = insn.imm & MASK64
                continue
            alu32 = base.endswith("32")
            alu_base = base[:-2] if alu32 else base
            if alu_base in _ALU_OPS:
                rhs = regs[insn.src] if mode == "reg" else insn.imm & MASK64
                mask = MASK32 if alu32 else MASK64
                result = _ALU_OPS[alu_base](regs[insn.dst] & mask, rhs & mask) & mask
                regs[insn.dst] = result
                continue
            if alu_base in ("div", "mod"):
                rhs = regs[insn.src] if mode == "reg" else insn.imm & MASK64
                if rhs == 0:
                    raise VmFault("division by zero")
                mask = MASK32 if alu32 else MASK64
                lhs = regs[insn.dst] & mask
                regs[insn.dst] = (lhs // rhs if alu_base == "div" else lhs % rhs) & mask
                continue
            if alu_base == "neg":
                mask = MASK32 if alu32 else MASK64
                regs[insn.dst] = (-regs[insn.dst]) & mask
                continue
            if alu_base == "arsh":
                rhs = regs[insn.src] if mode == "reg" else insn.imm
                bits = 32 if alu32 else 64
                regs[insn.dst] = (_signed(regs[insn.dst], bits) >> (rhs & (bits - 1))) & (
                    (1 << bits) - 1
                )
                continue
            if base.startswith("be") or base.startswith("le"):
                width = int(base[2:])
                nbytes = width // 8
                raw = (regs[insn.dst] & ((1 << width) - 1)).to_bytes(nbytes, "little")
                if base.startswith("be"):
                    regs[insn.dst] = int.from_bytes(raw, "big")
                else:
                    regs[insn.dst] = int.from_bytes(raw, "little")
                continue
            if base.startswith("ldx"):
                size = _SIZES[base[3:]]
                regs[insn.dst] = memory.load((regs[insn.src] + insn.off) & MASK64, size)
                continue
            if base.startswith("stx"):
                size = _SIZES[base[3:]]
                memory.store((regs[insn.dst] + insn.off) & MASK64, size, regs[insn.src])
                continue
            if base.startswith("st"):
                size = _SIZES[base[2:]]
                memory.store((regs[insn.dst] + insn.off) & MASK64, size, insn.imm)
                continue
            raise VmFault("unknown instruction {!r}".format(op))

    # -- helpers ----------------------------------------------------------

    def _helper(self, helper_id, regs, memory, value_regions):
        if helper_id == HELPER_MAP_LOOKUP:
            bpf_map = self._map(regs[1])
            key = memory.read_bytes(regs[2], bpf_map.key_size)
            value = bpf_map.lookup(key)
            if value is None:
                return 0
            return self._expose_value(regs[1], key, value, memory, value_regions)
        if helper_id == HELPER_MAP_UPDATE:
            bpf_map = self._map(regs[1])
            key = memory.read_bytes(regs[2], bpf_map.key_size)
            value = memory.read_bytes(regs[3], bpf_map.value_size)
            try:
                bpf_map.update(key, value)
            except BpfMapError:
                return (-1) & MASK64
            return 0
        if helper_id == HELPER_MAP_DELETE:
            bpf_map = self._map(regs[1])
            key = memory.read_bytes(regs[2], bpf_map.key_size)
            return 0 if bpf_map.delete(key) else (-1) & MASK64
        raise VmFault("unknown helper {}".format(helper_id))

    def _map(self, fd):
        bpf_map = self.maps.get(fd)
        if bpf_map is None:
            raise VmFault("bad map fd {}".format(fd))
        return bpf_map

    def _expose_value(self, fd, key, value, memory, value_regions):
        """Map the live value storage at a stable virtual address."""
        region_key = (fd, key)
        if region_key not in value_regions:
            address = MAP_VALUE_BASE + len(value_regions) * MAP_VALUE_STRIDE
            memory.add_region(address, value)
            value_regions[region_key] = address
        return value_regions[region_key]
