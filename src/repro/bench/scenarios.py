"""The benchmark scenario matrix.

Each scenario builds a fresh :class:`~repro.harness.Testbed` with a
fixed seed, drives a short deterministic workload to completion, and
returns ``(sim, checks)`` — the simulator (for event/time accounting by
the runner) plus a dict of scenario-level sanity values (RPC counts,
delivered bytes). Scenarios are deterministic by construction: same
code, same seed, same event count and same final sim time. The runner
records those alongside the wall-clock numbers, so a *behaviour* change
shows up in ``--compare`` as a drift warning even when performance is
fine.

Sizes are deliberately small (a few hundred milliseconds of simulated
time): the point is a stable performance trajectory, not paper figures —
``benchmarks/`` does that.
"""

from repro.apps import EchoServer, MemcachedServer, MemtierClient
from repro.apps.rpc import ClosedLoopClient
from repro.faults.invariants import assert_exact_delivery, run_until
from repro.faults.plans import make_plan
from repro.flextoe.module import ModuleChain
from repro.harness import Testbed
from repro.xdp import XdpAdapter
from repro.xdp.builtins.firewall import BLACKLIST_FD, block_ip, firewall_asm_program

#: Scenario registry: name -> (builder, description, repeats-override).
SCENARIOS = {}

#: The subset the CI quick gate runs (all of them, at quick sizes).
QUICK_MATRIX = (
    "echo-rpc-16pair",
    "memcached-64conn",
    "loss-recovery",
    "fault-soak",
    "xdp-filter-jit",
    "xdp-filter-interp",
    "connscale-10k",
    "connscale-100k",
    "attack-synflood",
    "attack-churn",
    "attack-incast",
)


def scenario(name, description, repeats=None):
    """Register a scenario. ``repeats`` overrides the runner's default
    best-of-N wall-time sampling — the connscale scenarios pin it to 1
    because each run spawns worker processes (minutes, not seconds, at
    the large sizes) and their headline metric is memory, not wall."""

    def register(fn):
        SCENARIOS[name] = (fn, description, repeats)
        return fn

    return register


def scenario_repeats(name, default):
    """The scenario's repeats override, or ``default``."""
    entry = SCENARIOS[name]
    return entry[2] if len(entry) > 2 and entry[2] else default


def run_scenario(name, quick=False):
    """Run one scenario; returns ``(sim, checks)`` or
    ``(sim, checks, metrics)`` — ``metrics`` being measured (therefore
    non-deterministic) scenario-level quantities like RSS per
    connection, which the runner reports but excludes from the
    behaviour-drift comparison."""
    try:
        fn = SCENARIOS[name][0]
    except KeyError:
        raise KeyError(
            "unknown scenario {!r}; known: {}".format(name, ", ".join(sorted(SCENARIOS)))
        )
    return fn(quick)


@scenario("echo-rpc-16pair", "16 closed-loop 64B echo RPC pairs, FlexTOE on both sides")
def echo_rpc_16pair(quick=False):
    pairs = 16
    n_requests = 40 if quick else 150
    bed = Testbed(seed=3)
    server = bed.add_flextoe_host("server")
    client = bed.add_flextoe_host("client")
    bed.seed_all_arp()
    clients = []
    waiters = []
    for i in range(pairs):
        echo = EchoServer(server.new_context(i % 20), 7000 + i, request_size=64)
        bed.sim.process(echo.run(), name="echo%d" % i)
        rpc = ClosedLoopClient(client.new_context(i % 20), server.ip, 7000 + i, 64, 64, warmup=2)
        waiters.append(bed.sim.process(rpc.run(n_requests), name="rpc%d" % i))
        clients.append(rpc)
    bed.sim.run(until=bed.sim.all_of(waiters))
    completed = sum(c.completed for c in clients)
    if completed != pairs * n_requests:
        raise AssertionError("echo scenario incomplete: %d RPCs" % completed)
    return bed.sim, {"rpcs": completed}


@scenario("memcached-64conn", "64 memtier connections against 4 memcached server contexts")
def memcached_64conn(quick=False):
    conns = 64
    server_ctxs = 4
    n_requests = 6 if quick else 25
    bed = Testbed(seed=5)
    server = bed.add_flextoe_host("server")
    client = bed.add_flextoe_host("client")
    bed.seed_all_arp()
    store = {}
    for i in range(server_ctxs):
        mc = MemcachedServer(server.new_context(i % 20), 11211 + i, store=store)
        bed.sim.process(mc.run(), name="memcached%d" % i)
    tiers = []
    waiters = []
    for i in range(conns):
        tier = MemtierClient(
            client.new_context(i % 20),
            server.ip,
            11211 + (i % server_ctxs),
            seed=i,
            warmup=1,
        )
        waiters.append(bed.sim.process(tier.run(n_requests), name="memtier%d" % i))
        tiers.append(tier)
    bed.sim.run(until=bed.sim.all_of(waiters))
    completed = sum(t.completed for t in tiers)
    if completed != conns * n_requests:
        raise AssertionError("memcached scenario incomplete: %d requests" % completed)
    return bed.sim, {"requests": completed}


def _stream_pair(bed, server, client, n_bytes, state):
    """Client streams n_bytes to the server; server echoes them reversed."""
    message = bytes(i % 251 for i in range(n_bytes))

    def server_app(ctx):
        listener = ctx.listen(7000)
        sock = yield from ctx.accept(listener)
        data = b""
        while len(data) < n_bytes:
            chunk = yield from ctx.recv(sock, 65536)
            if not chunk:
                return
            data += chunk
        state["echoed"] = data
        yield from ctx.send(sock, data[::-1])

    def client_app(ctx):
        sock = yield from ctx.connect(server.ip, 7000)
        yield from ctx.send(sock, message)
        reply = b""
        while len(reply) < n_bytes:
            chunk = yield from ctx.recv(sock, 65536)
            if not chunk:
                break
            reply += chunk
        state["reply"] = reply
        state["done"] = True

    bed.sim.process(server_app(server.new_context()), name="bench-server")
    bed.sim.process(client_app(client.new_context()), name="bench-client")
    return message


def _fault_stream(plan_name, seed, n_bytes, label):
    bed = Testbed(seed=seed)
    server = bed.add_flextoe_host("server")
    client = bed.add_flextoe_host("client")
    bed.seed_all_arp()
    controller = bed.install_fault_plan(make_plan(plan_name))
    state = {"echoed": b"", "reply": b"", "done": False}
    message = _stream_pair(bed, server, client, n_bytes, state)
    run_until(bed, lambda: state["done"], 4_000_000_000, label=label)
    assert_exact_delivery(message, state["echoed"], "client->server")
    assert_exact_delivery(message[::-1], state["reply"], "server->client")
    return bed.sim, {"bytes": 2 * n_bytes, "injections": len(controller.log)}


@scenario("loss-recovery", "bidirectional byte stream under the bursty-loss plan")
def loss_recovery(quick=False):
    # Floors chosen so even --quick runs ~0.25s wall: shorter runs put
    # the 15% compare gate inside scheduler-timing noise.
    return _fault_stream("bursty-loss", seed=7, n_bytes=150_000 if quick else 300_000, label="bench:loss-recovery")


@scenario("fault-soak", "longer stream under the dma-flake plan (retry-path soak)")
def fault_soak(quick=False):
    return _fault_stream("dma-flake", seed=7, n_bytes=150_000 if quick else 300_000, label="bench:fault-soak")


def _xdp_filter(quick, jit):
    """The eBPF firewall on the ingress hot path, filter-bound.

    A simulated line-rate pump drives batches of frames through the
    real :class:`~repro.xdp.XdpAdapter` ingress chain — the same module
    object and packing/re-parsing path the FlexTOE RX stage runs — with
    a traffic mix hitting every program path: blacklisted source
    (dropped after a hash hit), clean IPv4 (hash miss), and non-IP
    (early EtherType exit). Wall time is dominated by eBPF execution,
    so the two registrations — identical but for ``jit=`` — pin the
    proof-carrying JIT's speedup over the :class:`~repro.xdp.BpfVm`
    interpreter: the deterministic events/sim-time/checks are equal by
    construction (the JIT preserves executed-instruction counts, hence
    FPC cycle charges), and the paired ``events_per_sec`` values in one
    report differ by exactly the filter speedup.
    """
    from repro.proto import FLAG_ACK, make_tcp_frame, str_to_ip
    from repro.sim import Simulator

    # Floors as in loss-recovery: enough packets that the 15% compare
    # gate sits well outside scheduler-timing noise.
    batches = 150 if quick else 600
    batch_size = 50
    program, maps = firewall_asm_program()
    bad_ip = str_to_ip("10.0.0.66")
    block_ip(maps[BLACKLIST_FD], bad_ip)
    block_ip(maps[BLACKLIST_FD], str_to_ip("10.9.9.1"))  # decoy entry
    adapter = XdpAdapter(program=program, maps=maps, jit=jit, name="bench-firewall")
    chain = ModuleChain([adapter])

    def frame(src_ip, ethertype_ip=True):
        made = make_tcp_frame(0xA, 0xB, src_ip, str_to_ip("10.0.0.2"), 1000, 2000,
                              flags=FLAG_ACK, payload=b"x" * 32)
        if not ethertype_ip:
            made.ip = None  # packs as a non-IP EtherType: early-exit path
            made.tcp = None
        return made

    mix = [
        frame(str_to_ip("10.0.0.1")),   # clean: full lookup, miss
        frame(str_to_ip("10.0.0.3")),
        frame(bad_ip),                  # blacklisted: lookup hit, drop
        frame(str_to_ip("10.0.0.4")),
        frame(str_to_ip("10.0.0.1"), ethertype_ip=False),  # non-IP
    ]
    actions = {}

    def pump():
        for _ in range(batches):
            for i in range(batch_size):
                action = chain.run(mix[i % len(mix)], None)
                actions[action] = actions.get(action, 0) + 1
            yield sim.timeout(1000)

    sim = Simulator()
    sim.process(pump(), name="xdp-pump")
    sim.run()
    if adapter.invocations != batches * batch_size:
        raise AssertionError("xdp-filter pump incomplete: %d packets" % adapter.invocations)
    return sim, {
        "packets": adapter.invocations,
        "results": dict(sorted(adapter.results.items())),
        "actions": dict(sorted(actions.items())),
        "jit": jit,
    }


@scenario("xdp-filter-jit", "eBPF firewall ingress pump, proof-carrying JIT")
def xdp_filter_jit(quick=False):
    return _xdp_filter(quick, jit=True)


@scenario("xdp-filter-interp", "same firewall pump on the BpfVm interpreter (JIT oracle)")
def xdp_filter_interp(quick=False):
    return _xdp_filter(quick, jit=False)


def _connscale(total_conns, shards):
    """Million-connection scale-out curve (slab state + sharded workers).

    Each shard is an independent process-isolated testbed owning a
    residue class of flow groups: a handful of active RPC pairs plus its
    share of ``total_conns`` bulk connections installed quiescent via
    the recovery manager's adopt path. The headline metrics are
    events/sec across shards and the measured RSS delta per bulk
    connection — the paper's "connection state is bytes, not objects"
    claim, which the slab layer restores (Table 5 budgets 108 B/conn).

    Sizes are NOT reduced under --quick: the deterministic merge is the
    point, and shrinking the plan would fork the committed baseline's
    event counts between quick and full runs.
    """
    from repro.bench.shard import MergedSim, run_connscale

    merged = run_connscale(total_conns=total_conns, shards=shards, actives=8, n_requests=5, seed=11)
    counters = merged["counters"]
    expected_actives = 8
    if counters["bulk_installed"] != total_conns:
        raise AssertionError(
            "connscale incomplete: %d/%d bulk installs" % (counters["bulk_installed"], total_conns)
        )
    if counters["active_established"] != expected_actives:
        raise AssertionError(
            "connscale incomplete: %d active conns" % counters["active_established"]
        )
    checks = {
        "bulk_conns": merged["bulk_conns"],
        "rpcs": counters["rpcs"],
        "active_established": counters["active_established"],
        "shards": merged["n_shards"],
    }
    metrics = {
        "rss_per_conn_bytes": merged["rss_per_conn_bytes"],
        "rss_delta_kb": merged["rss_delta_kb"],
        "worker_wall_s": merged["worker_wall_s"],
    }
    return MergedSim(merged["events"], merged["sim_ns"]), checks, metrics


@scenario("connscale-10k", "10k slab connections across 4 sharded workers", repeats=1)
def connscale_10k(quick=False):
    return _connscale(10_000, shards=4)


@scenario("connscale-100k", "100k slab connections across 4 sharded workers", repeats=1)
def connscale_100k(quick=False):
    return _connscale(100_000, shards=4)


@scenario("connscale-1m", "the million-connection headline point (8 shards)", repeats=1)
def connscale_1m(quick=False):
    # Not in QUICK_MATRIX: minutes of wall time. Run explicitly with
    #   python -m repro bench --scenario connscale-1m
    return _connscale(1_000_000, shards=8)


@scenario(
    "attack-synflood",
    "benign goodput under a 10:1 spoofed SYN flood, defense off vs on",
    repeats=1,
)
def attack_synflood(quick=False):
    from repro.bench.attack import run_attack_scenario

    return run_attack_scenario("synflood", quick)


@scenario(
    "attack-churn",
    "open/RST churn burning buffers and slab slots, defense off vs on",
    repeats=1,
)
def attack_churn(quick=False):
    from repro.bench.attack import run_attack_scenario

    return run_attack_scenario("churn", quick)


@scenario(
    "attack-incast",
    "spoofed junk incast and control-plane RST reflection, defense off vs on",
    repeats=1,
)
def attack_incast(quick=False):
    from repro.bench.attack import run_attack_scenario

    return run_attack_scenario("incast", quick)
