"""Continuous benchmark harness (ISSUE 5).

Runs a fixed matrix of short deterministic scenarios against the
simulator and reports *simulator* performance — events/sec, simulated
nanoseconds advanced per wall-clock second, and peak RSS — as opposed to
the paper-figure benchmarks under ``benchmarks/`` which report
*simulated* performance (Gbps, RPC latency).

``python -m repro bench`` writes a schema-versioned ``BENCH_flextoe.json``
at the repo root; ``--compare BASELINE.json`` fails on calibrated
events/sec regressions beyond the threshold (15 % by default). See
:mod:`repro.bench.runner` for the schema and the calibration scheme that
makes cross-machine comparisons meaningful.
"""

from repro.bench.runner import (
    SCHEMA,
    BenchResult,
    calibrate,
    compare_reports,
    run_matrix,
    write_report,
)
from repro.bench.scenarios import SCENARIOS, QUICK_MATRIX, run_scenario

__all__ = [
    "SCHEMA",
    "BenchResult",
    "SCENARIOS",
    "QUICK_MATRIX",
    "calibrate",
    "compare_reports",
    "run_matrix",
    "run_scenario",
    "write_report",
]
