"""Measurement, report schema, and baseline comparison.

Report schema (``BENCH_flextoe.json``)::

    {
      "schema": "repro-bench/1",
      "quick": true,
      "python": "3.11.7", "implementation": "cpython", "platform": "...",
      "calibration_ops_per_sec": 1.23e7,
      "scenarios": {
        "<name>": {
          "events": 812345,          # deterministic: sim events processed
          "sim_ns": 1234567,         # deterministic: final simulated time
          "wall_s": 0.81,
          "events_per_sec": 1.0e6,
          "sim_ns_per_wall_s": 1.5e6,
          "peak_rss_kb": 48000,
          "checks": {...}            # deterministic scenario sanity values
        }, ...
      }
    }

Cross-machine comparability: raw events/sec tracks interpreter and CPU
speed, so ``--compare`` normalizes each side by its own
``calibration_ops_per_sec`` — a fixed pure-python heap workload measured
in the same process right before the scenarios. The compared quantity is
"simulator events per calibration op", which cancels most of the
machine-speed difference and leaves genuine hot-path regressions.
"""

import json
import platform
import sys
import time
from heapq import heappop, heappush

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX
    resource = None

from repro.bench.scenarios import QUICK_MATRIX, SCENARIOS, run_scenario, scenario_repeats

SCHEMA = "repro-bench/1"

#: One JSON object per line in ``BENCH_history.jsonl``.
HISTORY_SCHEMA = "repro-bench-history/1"

#: Regression threshold for --compare (fraction of baseline).
DEFAULT_THRESHOLD = 0.15

_CALIBRATION_OPS = 400_000


def _peak_rss_kb():
    if resource is None:
        return 0
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KB, macOS bytes.
    return usage // 1024 if sys.platform == "darwin" else usage


def calibrate(n_ops=_CALIBRATION_OPS, rounds=3):
    """Interpreter-speed yardstick: ops/sec of a fixed heap+int workload.

    The workload intentionally resembles the simulator's inner loop
    (heap pushes/pops, tuple ordering, integer arithmetic) so the
    normalization in :func:`compare_reports` cancels machine speed.
    Best-of-``rounds``: the maximum estimates unloaded interpreter
    speed, which is far more stable than any single sample.
    """
    best = 0.0
    for _ in range(rounds):
        heap = []
        acc = 0
        start = time.perf_counter()  # sim-lint: allow (bench measures wall time)
        for i in range(n_ops):
            heappush(heap, ((i * 2654435761) % 1000003, i))
            acc += i & 0xFF
            if len(heap) > 64:
                _, j = heappop(heap)
                acc ^= j
        elapsed = time.perf_counter() - start  # sim-lint: allow
        rate = n_ops / elapsed if elapsed > 0 else float("inf")
        if rate > best:
            best = rate
    return best


class BenchResult:
    """One scenario's measurement."""

    __slots__ = ("name", "events", "sim_ns", "wall_s", "peak_rss_kb", "checks", "metrics")

    def __init__(self, name, events, sim_ns, wall_s, peak_rss_kb, checks, metrics=None):
        self.name = name
        self.events = events
        self.sim_ns = sim_ns
        self.wall_s = wall_s
        self.peak_rss_kb = peak_rss_kb
        self.checks = checks
        self.metrics = metrics or {}

    @property
    def events_per_sec(self):
        return self.events / self.wall_s if self.wall_s > 0 else float("inf")

    @property
    def sim_ns_per_wall_s(self):
        return self.sim_ns / self.wall_s if self.wall_s > 0 else float("inf")

    def to_jsonable(self):
        entry = {
            "events": self.events,
            "sim_ns": self.sim_ns,
            "wall_s": round(self.wall_s, 4),
            "events_per_sec": round(self.events_per_sec, 1),
            "sim_ns_per_wall_s": round(self.sim_ns_per_wall_s, 1),
            "peak_rss_kb": self.peak_rss_kb,
            "checks": self.checks,
        }
        if self.metrics:
            entry["metrics"] = self.metrics
        return entry


def run_one(name, quick=False, repeats=2):
    """Measure one scenario; best-of-``repeats`` wall time.

    Scenarios are deterministic, so every repeat does identical work and
    the fastest wall time is the least-noisy estimate of simulator
    speed (slower samples measure the machine's background load, not
    the code). Events/sim-time/checks are identical across repeats.
    """
    best_wall = None
    for _ in range(max(1, scenario_repeats(name, repeats))):
        start = time.perf_counter()  # sim-lint: allow (bench measures wall time)
        outcome = run_scenario(name, quick=quick)
        wall_s = time.perf_counter() - start  # sim-lint: allow
        sim, checks = outcome[0], outcome[1]
        metrics = outcome[2] if len(outcome) > 2 else None
        if best_wall is None or wall_s < best_wall:
            best_wall = wall_s
    return BenchResult(
        name, sim.processed_events, sim.now, best_wall, _peak_rss_kb(), checks, metrics
    )


def run_matrix(names=None, quick=False, out=None, repeats=2):
    """Run scenarios; returns (results, report_dict). ``out`` is a stream
    for progress lines (None = silent)."""
    names = list(names) if names else list(QUICK_MATRIX)
    cal = calibrate()
    results = []
    for name in names:
        result = run_one(name, quick=quick, repeats=repeats)
        results.append(result)
        if out is not None:
            rss_per_conn = result.metrics.get("rss_per_conn_bytes")
            out.write(
                "%-18s %10d events %12d sim-ns %7.2f wall-s %12.0f ev/s %9d KB%s\n"
                % (
                    name,
                    result.events,
                    result.sim_ns,
                    result.wall_s,
                    result.events_per_sec,
                    result.peak_rss_kb,
                    "" if rss_per_conn is None else " %7.0f B/conn" % rss_per_conn,
                )
            )
    report = {
        "schema": SCHEMA,
        "quick": bool(quick),
        "python": platform.python_version(),
        "implementation": platform.python_implementation().lower(),
        "platform": platform.platform(),
        "calibration_ops_per_sec": round(cal, 1),
        "scenarios": {r.name: r.to_jsonable() for r in results},
    }
    return results, report


def write_report(report, path):
    with open(path, "w") as out:
        json.dump(report, out, indent=2, sort_keys=False)
        out.write("\n")


def git_sha():
    """HEAD commit of the working tree, or None outside a checkout."""
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def history_record(report, sha=None, timestamp=None):
    """One append-only history line: the report's performance trajectory
    keyed by git SHA, compact enough to accumulate for years.

    Keeps the calibration figure and each scenario's deterministic
    event count plus measured rate; drops platform strings and checks
    (the full report has those).
    """
    return {
        "schema": HISTORY_SCHEMA,
        "sha": git_sha() if sha is None else sha,
        "timestamp": time.time() if timestamp is None else timestamp,  # sim-lint: allow (bench metadata)
        "quick": bool(report.get("quick")),
        "python": report.get("python"),
        "calibration_ops_per_sec": report.get("calibration_ops_per_sec"),
        "scenarios": {
            name: _history_scenario(entry)
            for name, entry in report.get("scenarios", {}).items()
        },
    }


def _history_scenario(entry):
    compact = {
        "events": entry.get("events"),
        "wall_s": entry.get("wall_s"),
        "events_per_sec": entry.get("events_per_sec"),
    }
    rss_per_conn = (entry.get("metrics") or {}).get("rss_per_conn_bytes")
    if rss_per_conn is not None:
        compact["rss_per_conn_bytes"] = rss_per_conn
    return compact


def append_history(report, path, sha=None, timestamp=None):
    """Append one :func:`history_record` line to ``path`` (JSONL)."""
    record = history_record(report, sha=sha, timestamp=timestamp)
    with open(path, "a") as out:
        json.dump(record, out, sort_keys=True)
        out.write("\n")
    return record


def load_history(path):
    """Parse a JSONL history file; skips blank lines."""
    records = []
    with open(path) as source:
        for line in source:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if not str(record.get("schema", "")).startswith("repro-bench-history/"):
                raise ValueError("{}: not a bench history file".format(path))
            records.append(record)
    return records


def load_report(path):
    with open(path) as source:
        report = json.load(source)
    schema = report.get("schema", "")
    if not str(schema).startswith("repro-bench/"):
        raise ValueError("{}: not a repro-bench report (schema={!r})".format(path, schema))
    return report


def compare_reports(new, baseline, threshold=DEFAULT_THRESHOLD):
    """Compare two report dicts; returns (failures, warnings).

    A *failure* is a calibrated events/sec regression beyond
    ``threshold`` on a scenario present in both reports. A *warning* is
    behaviour drift: the deterministic ``events``/``sim_ns``/``checks``
    values differ (the golden-digest tests are the hard gate for that —
    here it is advisory, since baselines may predate behaviour changes).
    """
    failures = []
    warnings = []
    new_cal = float(new.get("calibration_ops_per_sec") or 1.0)
    old_cal = float(baseline.get("calibration_ops_per_sec") or 1.0)
    old_scenarios = baseline.get("scenarios", {})
    for name, fresh in new.get("scenarios", {}).items():
        old = old_scenarios.get(name)
        if old is None:
            warnings.append("{}: not in baseline (new scenario?)".format(name))
            continue
        new_norm = float(fresh["events_per_sec"]) / new_cal
        old_norm = float(old["events_per_sec"]) / old_cal
        if old_norm > 0 and new_norm < old_norm * (1.0 - threshold):
            failures.append(
                "{}: calibrated events/sec regressed {:.1f}% (norm {:.4f} -> {:.4f}; "
                "raw {:.0f} -> {:.0f} ev/s)".format(
                    name,
                    100.0 * (1.0 - new_norm / old_norm),
                    old_norm,
                    new_norm,
                    float(old["events_per_sec"]),
                    float(fresh["events_per_sec"]),
                )
            )
        for key in ("events", "sim_ns"):
            if old.get(key) != fresh.get(key):
                warnings.append(
                    "{}: {} drifted {} -> {} (behaviour change? see golden digests)".format(
                        name, key, old.get(key), fresh.get(key)
                    )
                )
        if old.get("checks") != fresh.get("checks"):
            warnings.append("{}: checks drifted {} -> {}".format(name, old.get("checks"), fresh.get("checks")))
        # Memory gate: RSS per connection is machine-independent (it is
        # bytes of state, not speed), so it compares raw — no
        # calibration factor — and regressing it past the threshold is
        # a hard failure like a throughput regression.
        new_rss = (fresh.get("metrics") or {}).get("rss_per_conn_bytes")
        old_rss = (old.get("metrics") or {}).get("rss_per_conn_bytes")
        if new_rss is not None and old_rss:
            if float(new_rss) > float(old_rss) * (1.0 + threshold):
                failures.append(
                    "{}: rss per connection regressed {:.1f}% ({:.0f} -> {:.0f} B/conn)".format(
                        name,
                        100.0 * (float(new_rss) / float(old_rss) - 1.0),
                        float(old_rss),
                        float(new_rss),
                    )
                )
    return failures, warnings
