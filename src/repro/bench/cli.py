"""``python -m repro bench`` — run the scenario matrix, write the report.

Examples::

    python -m repro bench                        # full matrix -> BENCH_flextoe.json
    python -m repro bench --quick                # CI-sized matrix
    python -m repro bench --list
    python -m repro bench --scenario echo-rpc-16pair --out /tmp/echo.json
    python -m repro bench --quick --compare BENCH_flextoe.json
    python -m repro bench --scenario connscale-1m --no-out --no-history

The default matrix includes the sharded ``connscale-10k``/``-100k``
scale-out scenarios (events/sec + RSS per connection; the RSS figure is
``--compare``-gated like a throughput regression). The
million-connection point ``connscale-1m`` runs only when named
explicitly — it takes minutes.

``--compare`` exits 1 when any scenario's calibrated events/sec falls
more than ``--threshold`` (default 15 %) below the baseline report.
Behaviour drift (different deterministic event counts) is printed as a
warning only; the golden-digest test suite is the hard gate for that.

Every run also appends one compact record — keyed by the checkout's git
SHA — to ``BENCH_history.jsonl`` (``--history``/``--no-history``), so
the performance trajectory across commits accumulates in one
append-only file.
"""

import argparse
import sys

from repro.bench.runner import (
    DEFAULT_THRESHOLD,
    append_history,
    compare_reports,
    load_report,
    run_matrix,
    write_report,
)
from repro.bench.scenarios import SCENARIOS

DEFAULT_OUT = "BENCH_flextoe.json"
DEFAULT_HISTORY = "BENCH_history.jsonl"


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Simulator performance benchmark: fixed deterministic scenario matrix.",
    )
    parser.add_argument("--quick", action="store_true", help="CI-sized scenarios (a few seconds)")
    parser.add_argument("--list", action="store_true", help="list scenarios and exit")
    parser.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help="run only this scenario (repeatable; default: full matrix)",
    )
    parser.add_argument(
        "--out", default=DEFAULT_OUT, metavar="PATH", help="report path (default: %(default)s)"
    )
    parser.add_argument("--no-out", action="store_true", help="do not write a report file")
    parser.add_argument(
        "--history",
        default=DEFAULT_HISTORY,
        metavar="JSONL",
        help="append a per-run record keyed by git SHA (default: %(default)s)",
    )
    parser.add_argument("--no-history", action="store_true", help="do not append to the history file")
    parser.add_argument(
        "--compare", metavar="BASELINE", help="fail on calibrated regression vs this report"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="regression threshold as a fraction (default: %(default)s)",
    )
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for name in SCENARIOS:
            print("%-18s %s" % (name, SCENARIOS[name][1]))
        return 0

    names = args.scenario or None
    for name in names or []:
        if name not in SCENARIOS:
            parser.error("unknown scenario {!r}; --list shows the matrix".format(name))

    _, report = run_matrix(names=names, quick=args.quick, out=sys.stdout)
    print(
        "calibration: %.0f ops/s (%s %s)"
        % (report["calibration_ops_per_sec"], report["implementation"], report["python"])
    )

    if not args.no_out:
        write_report(report, args.out)
        print("wrote %s" % args.out)
    if not args.no_history:
        record = append_history(report, args.history)
        print("history: appended %s @ %s" % (args.history, (record["sha"] or "no-git")[:12]))

    if args.compare:
        baseline = load_report(args.compare)
        if bool(baseline.get("quick")) != bool(report.get("quick")):
            print(
                "note: comparing quick=%s run against quick=%s baseline; "
                "deterministic drift warnings are expected"
                % (report.get("quick"), baseline.get("quick"))
            )
        failures, warnings = compare_reports(report, baseline, threshold=args.threshold)
        for line in warnings:
            print("WARN %s" % line)
        for line in failures:
            print("FAIL %s" % line)
        if failures:
            print("regression vs %s (threshold %.0f%%)" % (args.compare, 100 * args.threshold))
            return 1
        print("no regression vs %s (threshold %.0f%%)" % (args.compare, 100 * args.threshold))
    return 0


if __name__ == "__main__":
    sys.exit(main())
