"""Flow-group-sharded scale-out runs (``connscale``).

FlexTOE parallelizes the data path by *flow group*: connections are
partitioned, each partition is serviced independently, and nothing
crosses a partition boundary except through explicit merge points. This
module applies the same decomposition one level up, at testbed
granularity: a scale-out run is split into N *shards*, each an
independent :class:`~repro.harness.Testbed` in its own worker process,
owning a deterministic subset of the workload's shard-level flow groups.

Determinism
-----------

Shard-level flow groups are assigned round-robin by connection ordinal
(connection ``i`` belongs to group ``i % SHARD_GROUPS``); shard ``k`` of
``n`` owns every group ``g`` with ``g % n == k``. Because ownership is a
pure function of ``(ordinal, n_shards)``, every connection runs in
exactly one shard, and *which* shard never depends on timing. Each
shard's simulator is seeded with a pure function of the plan seed and
the shard index, so a shard's entire simulation — wire traffic included
— is a deterministic function of ``(seed, shard_index, n_shards)``:
repeated runs are byte-identical per shard.

Merged *semantic* counters (RPC completions, per-group install counts)
are sums over the global connection set, so they are additionally
invariant to ``n_shards``: shards=1 and shards=N agree exactly. Raw
event/time totals and wire digests are per-shard quantities — stable
across repeats, but not across different shard counts (each shard runs
its own handshake/ACK timeline).

Workers run serially by default: shards are CPU-bound pure-Python
simulations, so on a single-core host interleaving them buys nothing
and would muddy the per-shard RSS deltas the connscale scenarios chart.
"""

import gc
import json
import os
import subprocess
import sys
import time

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX
    resource = None

#: Shard-level flow groups (the unit of workload partitioning). A
#: divisor-friendly constant: shard counts of 1/2/4/8/16 partition it
#: evenly.
SHARD_GROUPS = 16

#: Synthetic bulk-connection addressing: remote peers live in their own
#: /8 so they can never collide with testbed host addresses or active
#: connection tuples.
_BULK_IP_BASE = 11 << 24  # 11.0.0.0
_BULK_LOCAL_PORT = 9
_BULK_REMOTE_PORT = 40000

#: Buffer geometry for shard testbeds. Bulk connections share one small
#: host region (they carry no traffic — the point is state footprint);
#: active connections get real, if modest, circular buffers.
_BULK_BUFFER_BYTES = 4096
_ACTIVE_BUFFER_BYTES = 32 * 1024


def shard_seed(seed, shard_index):
    """Per-shard simulator seed: pure function of plan seed and shard."""
    return (seed * 1_000_003 + shard_index * 7919 + 1) & 0x7FFFFFFF


def owner_of_group(group, n_shards):
    return group % n_shards


def group_of_ordinal(ordinal):
    return ordinal % SHARD_GROUPS


def _vm_rss_kb():
    """Current resident set (kB). VmRSS, not ru_maxrss: deltas matter."""
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:  # pragma: no cover - non-Linux
        pass
    if resource is not None:  # pragma: no cover - non-Linux fallback
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return 0  # pragma: no cover


class _WireTap:
    """Passive switch hook hashing every admitted frame (golden-digest
    style): forwards each frame once, undelayed."""

    def __init__(self, sim):
        self.sim = sim
        self._sha = None
        self.frames = 0

    def admit(self, frame):
        import hashlib

        from repro.faults.log import describe_frame

        if self._sha is None:
            self._sha = hashlib.sha256()
        self._sha.update(
            "{} {}\n".format(self.sim.now, describe_frame(frame)).encode()
        )
        self.frames += 1
        return [(frame, 0)]

    def digest(self):
        import hashlib

        return (self._sha or hashlib.sha256()).hexdigest()


def _run_shard(params):
    """One shard's whole life: build, bulk-install, drive actives, report.

    Runs inside a worker process (or inline with ``in_process=True``).
    Returns a plain dict: everything here crosses a pipe.
    """
    from repro.apps import EchoServer
    from repro.apps.rpc import ClosedLoopClient
    from repro.control import ControlPlaneConfig
    from repro.control.recovery import SHADOW_SLAB
    from repro.flextoe.state import CONN_SLAB
    from repro.harness import Testbed

    shard_index = params["shard_index"]
    n_shards = params["n_shards"]
    total_conns = params["total_conns"]
    actives = params["actives"]
    n_requests = params["n_requests"]

    start_wall = time.perf_counter()  # sim-lint: allow (bench measures wall time)
    config = ControlPlaneConfig(
        rx_buffer_size=_ACTIVE_BUFFER_BYTES,
        tx_buffer_size=_ACTIVE_BUFFER_BYTES,
        snapshot_interval_ns=0,  # O(conns) per tick: off for scale runs
    )
    bed = Testbed(seed=shard_seed(params["seed"], shard_index))
    server = bed.add_flextoe_host("server", cp_kwargs={"config": config})
    client = bed.add_flextoe_host("client", cp_kwargs={"config": config})
    bed.seed_all_arp()
    tap = _WireTap(bed.sim)
    bed.switch.faults = tap

    # -- active connections: real handshakes, closed-loop echo RPCs ------
    my_actives = [
        a for a in range(actives)
        if owner_of_group(group_of_ordinal(a), n_shards) == shard_index
    ]
    rpcs = []
    waiters = []
    for a in my_actives:
        echo = EchoServer(server.new_context(a % 20), 7000 + a, request_size=64)
        bed.sim.process(echo.run(), name="echo%d" % a)
        rpc = ClosedLoopClient(client.new_context(a % 20), server.ip, 7000 + a, 64, 64, warmup=1)
        waiters.append(bed.sim.process(rpc.run(n_requests), name="rpc%d" % a))
        rpcs.append((a, rpc))

    # -- bulk connections: quiescent slab-backed offloads ----------------
    # Installed via the recovery manager's adoption path: full data-path
    # state (lookup, conn table, shadow) but no per-tick control-plane
    # servicing. All of them share one host region — footprint is the
    # experiment, not payload.
    recovery = server.control_plane.enable_recovery()
    bulk_ctx = 500
    server.nic.register_context(bulk_ctx, capacity=4)
    region = server.machine.memory.alloc(_BULK_BUFFER_BYTES)
    bulk_buffer = (region, region.addr, _BULK_BUFFER_BYTES)
    my_bulk = [
        i for i in range(total_conns)
        if owner_of_group(group_of_ordinal(i), n_shards) == shard_index
    ]
    bulk_by_group = {}
    gc.collect()
    rss_before_kb = _vm_rss_kb()
    for i in my_bulk:
        four = (server.ip, _BULK_IP_BASE + i, _BULK_LOCAL_PORT, _BULK_REMOTE_PORT)
        recovery.adopt_offloaded(
            four_tuple=four,
            peer_mac=client.mac,
            local_mac=server.mac,
            iss=1,
            irs=1,
            context_id=bulk_ctx,
            opaque=None,
            rx_buffer=bulk_buffer,
            tx_buffer=bulk_buffer,
        )
        group = group_of_ordinal(i)
        bulk_by_group[group] = bulk_by_group.get(group, 0) + 1
    gc.collect()
    rss_after_kb = _vm_rss_kb()

    if waiters:
        bed.sim.run(until=bed.sim.all_of(waiters))
    completed = sum(rpc.completed for _, rpc in rpcs)
    if completed != len(my_actives) * n_requests:
        raise AssertionError(
            "shard %d/%d incomplete: %d RPCs" % (shard_index, n_shards, completed)
        )
    rpcs_by_group = {}
    for a, rpc in rpcs:
        group = group_of_ordinal(a)
        rpcs_by_group[group] = rpcs_by_group.get(group, 0) + rpc.completed

    counters = {
        "rpcs": completed,
        "bulk_installed": len(my_bulk),
        "active_established": len(my_actives),
        "bulk_by_group": {str(g): bulk_by_group[g] for g in sorted(bulk_by_group)},
        "rpcs_by_group": {str(g): rpcs_by_group[g] for g in sorted(rpcs_by_group)},
    }
    return {
        "shard": shard_index,
        "n_shards": n_shards,
        "events": bed.sim.processed_events,
        "sim_ns": bed.sim.now,
        "wall_s": time.perf_counter() - start_wall,  # sim-lint: allow
        "wire_frames": tap.frames,
        "wire_digest": tap.digest(),
        "counters": counters,
        "bulk_conns": len(my_bulk),
        "rss_before_kb": rss_before_kb,
        "rss_after_kb": rss_after_kb,
        "conn_slab_live": CONN_SLAB.live,
        "shadow_slab_live": SHADOW_SLAB.live,
        "conn_slab_bytes_per_slot": CONN_SLAB.bytes_per_slot(),
        "shadow_slab_bytes_per_slot": SHADOW_SLAB.bytes_per_slot(),
    }


def _worker_main():  # pragma: no cover - exercised in worker processes
    """Subprocess entry: shard params as JSON on stdin, result on stdout.

    A plain subprocess (not ``multiprocessing`` spawn) so the worker
    never re-imports the parent's ``__main__`` module — connscale runs
    identically under ``python -m repro``, pytest, and unguarded
    scripts.
    """
    params = json.load(sys.stdin)
    try:
        result = _run_shard(params)
        json.dump({"status": "ok", "result": result}, sys.stdout)
    except BaseException as exc:
        json.dump(
            {"status": "error", "error": "{}: {}".format(type(exc).__name__, exc)},
            sys.stdout,
        )


def _merge_counters(merged, counters):
    for key, value in counters.items():
        if isinstance(value, dict):
            bucket = merged.setdefault(key, {})
            for sub, count in value.items():
                bucket[sub] = bucket.get(sub, 0) + count
        else:
            merged[key] = merged.get(key, 0) + value


class MergedSim:
    """Duck-typed stand-in for a Simulator in bench accounting: the sum
    of the shards' event counts and the maximum of their clocks."""

    __slots__ = ("processed_events", "now")

    def __init__(self, processed_events, now):
        self.processed_events = processed_events
        self.now = now


def merge_results(shard_results):
    """Deterministic merge, in stable shard order."""
    ordered = sorted(shard_results, key=lambda r: r["shard"])
    counters = {}
    events = 0
    sim_ns = 0
    bulk_total = 0
    rss_delta_kb = 0
    worker_wall_s = 0.0
    for result in ordered:
        _merge_counters(counters, result["counters"])
        events += result["events"]
        sim_ns = max(sim_ns, result["sim_ns"])
        bulk_total += result["bulk_conns"]
        rss_delta_kb += max(0, result["rss_after_kb"] - result["rss_before_kb"])
        worker_wall_s += result["wall_s"]
    rss_per_conn = (rss_delta_kb * 1024.0 / bulk_total) if bulk_total else 0.0
    return {
        "n_shards": ordered[0]["n_shards"] if ordered else 0,
        "counters": counters,
        "events": events,
        "sim_ns": sim_ns,
        "bulk_conns": bulk_total,
        "rss_delta_kb": rss_delta_kb,
        "rss_per_conn_bytes": round(rss_per_conn, 1),
        "worker_wall_s": round(worker_wall_s, 4),
        "wire_digests": [r["wire_digest"] for r in ordered],
        "shards": ordered,
    }


def run_connscale(
    total_conns,
    shards,
    actives=8,
    n_requests=5,
    seed=11,
    in_process=False,
):
    """Run one connscale plan across ``shards`` workers; returns the
    merged result dict (see :func:`merge_results`).

    ``in_process=True`` runs every shard inline in this process —
    useful under debuggers and for tests that want to poke the shard
    internals; RSS deltas then share one heap, so scale numbers should
    come from the default (process-per-shard) mode.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if SHARD_GROUPS % shards:
        raise ValueError(
            "shards must divide {} shard-level groups".format(SHARD_GROUPS)
        )
    plans = [
        {
            "shard_index": k,
            "n_shards": shards,
            "total_conns": total_conns,
            "actives": actives,
            "n_requests": n_requests,
            "seed": seed,
        }
        for k in range(shards)
    ]
    results = []
    if in_process:
        for params in plans:
            results.append(_run_shard(params))
        return merge_results(results)
    for params in plans:
        proc = subprocess.run(
            [sys.executable, "-c", "from repro.bench.shard import _worker_main; _worker_main()"],
            input=json.dumps(params),
            capture_output=True,
            text=True,
            env=_worker_env(),
        )
        if proc.returncode != 0 or not proc.stdout.strip():
            raise RuntimeError(
                "connscale shard {} died (exit {}): {}".format(
                    params["shard_index"], proc.returncode, proc.stderr.strip()[-500:]
                )
            )
        payload = json.loads(proc.stdout)
        if payload.get("status") != "ok":
            raise RuntimeError(
                "connscale shard {} failed: {}".format(
                    params["shard_index"], payload.get("error")
                )
            )
        results.append(payload["result"])
    return merge_results(results)


def _worker_env():
    """The parent's environment plus a PYTHONPATH that resolves repro.

    Covers source checkouts where ``repro`` was importable via the
    parent's ``sys.path`` (pytest rootdir munging, PYTHONPATH=src) but
    is not installed site-wide.
    """
    env = dict(os.environ)
    package_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    existing = env.get("PYTHONPATH")
    if package_root not in (existing or "").split(os.pathsep):
        env["PYTHONPATH"] = package_root + (os.pathsep + existing if existing else "")
    return env
