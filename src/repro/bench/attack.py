"""Goodput-under-attack scenarios: benign load vs adversarial traffic.

Each scenario runs the same seeded testbed three times —

* **baseline** — benign load only (the no-attack goodput yardstick);
* **off** — attack mixed in, every defense disabled (the legacy
  accept-on-SYN-ACK control plane, no NIC detector);
* **on** — the same attack against the full defense stack: the XDP
  detector builtin dropping at NIC ingress, plus the overload-safe
  control plane (enforced backlog, embryonic limit + SYN cookies,
  half-open reaper).

and reports benign goodput for each, with in-scenario hard gates: with
the defense on, benign goodput must stay at >=50% of the no-attack
baseline, and `CONN_SLAB`'s live-slot high-water mark must stay at the
baseline's level (dropped SYNs allocate no offload state). For the SYN
flood the defense-off run must also *collapse* (<50% of baseline) —
that asymmetry is the survivability claim, pinned here and in CI's
attack-matrix job.

Attack:benign ratios are configured as packet rates; the SYN flood runs
at ~10:1 attack packets per benign request (the acceptance-criteria
operating point). Detector thresholds are chosen so the seeded spoof
pool trips the per-source SYN limit while the (per-host) benign SYN
rate, halved by the periodic decay process, stays well under it.

Injection logs are written to ``$REPRO_ATTACK_LOG_DIR`` (one JSON per
scenario/mode) when that variable is set — CI uploads them as
artifacts.
"""

import gc
import json
import os

from repro.apps import EchoServer
from repro.apps.attackgen import Attacker
from repro.control.plane import ControlPlaneConfig
from repro.control.policy import PolicyConfig
from repro.flextoe.module import ModuleChain
from repro.harness import Testbed
from repro.libtoe.errors import ToeError
from repro.proto import str_to_ip, str_to_mac
from repro.stats import GoodputMeter
from repro.xdp import XdpAdapter
from repro.xdp.builtins.detector import (
    decay_features,
    detector_asm_program,
    set_thresholds,
)

ECHO_PORT = 7000
REQUEST = b"q" * 64
#: pacing gap between benign rounds (one short echo RPC per round).
BENIGN_GAP_NS = 20_000
N_BENIGN_LOOPS = 4
#: per-RPC reply deadline. Under attack a handshake can complete and
#: the accept-queue overflow still black-hole the connection
#: (``Listener.dropped_overflow``) — a benign client must give up on
#: such a connection rather than block forever.
RPC_DEADLINE_NS = 2_000_000
RPC_POLL_NS = 5_000
#: periodic halving of the detector's per-source counters.
DECAY_INTERVAL_NS = 100_000

#: XDP result code 0 == XDP_DROP (the adapter counts verdicts by code).
_XDP_DROP = 0


def _benign_short_conns(ctx, server_ip, n_rounds, meter, tally):
    """Connect / one echo RPC / close, paced — goodput here depends on
    *handshake availability*, which is what a SYN flood attacks."""
    for _ in range(n_rounds):
        try:
            sock = yield from ctx.connect(server_ip, ECHO_PORT)
        except ToeError:
            tally["refused"] += 1
            yield ctx.sim.timeout(BENIGN_GAP_NS)
            continue
        try:
            yield from _echo_round(ctx, sock, meter, tally)
            yield from ctx.close(sock)
        except ToeError:
            tally["errors"] += 1
        yield ctx.sim.timeout(BENIGN_GAP_NS)


def _benign_persistent(ctx, server_ip, n_rounds, meter, tally):
    """One long-lived connection issuing paced echo RPCs — goodput here
    depends on the shared wire/switch path, which incast attacks."""
    rounds = 0
    while rounds < n_rounds:
        try:
            sock = yield from ctx.connect(server_ip, ECHO_PORT)
        except ToeError:
            tally["refused"] += 1
            yield ctx.sim.timeout(BENIGN_GAP_NS)
            continue
        try:
            while rounds < n_rounds:
                yield from _echo_round(ctx, sock, meter, tally)
                rounds += 1
                yield ctx.sim.timeout(BENIGN_GAP_NS)
            yield from ctx.close(sock)
        except ToeError:
            # Reset or timeout mid-stream: reconnect and continue.
            tally["errors"] += 1
            rounds += 1
            yield ctx.sim.timeout(BENIGN_GAP_NS)


def _echo_round(ctx, sock, meter, tally):
    yield from ctx.send(sock, REQUEST)
    reply = b""
    deadline = ctx.sim.now + RPC_DEADLINE_NS
    while len(reply) < len(REQUEST):
        ctx.dispatch()
        chunk = yield from ctx.recv(sock, 4096, blocking=False)
        if chunk is None:
            if ctx.sim.now >= deadline:
                break
            yield ctx.sim.timeout(RPC_POLL_NS)
            continue
        if chunk == b"":
            break
        reply += chunk
    if len(reply) == len(REQUEST):
        meter.record(len(REQUEST) + len(reply), benign=True)
        tally["completed"] += 1
        return True
    tally["errors"] += 1
    return False


class ClosingEchoServer(EchoServer):
    """EchoServer that also closes its end after the peer's FIN, so a
    finished connection leaves the directory (and the admission policy's
    count) instead of lingering as a zombie across the reconnect churn."""

    def _serve(self, sock, epoll):
        yield from EchoServer._serve(self, sock, epoll)
        if sock not in epoll.watched:
            yield from self.ctx.close(sock)


def _install_detector(server, thresholds):
    program, maps = detector_asm_program(max_sources=256)
    set_thresholds(maps, **thresholds)
    adapter = XdpAdapter(program=program, maps=maps, name="attack-detector")
    chain = ModuleChain([adapter])
    # The datapath reads the chain per-frame; the NIC-level reference
    # covers datapath re-creation after a crash/reboot.
    server.nic._ingress_modules = chain
    server.nic.datapath.ingress_modules = chain
    return adapter, maps


def _run_case(kind, mode, quick):
    """One sub-run; returns plain scalars so the testbed (and with it
    every connection record holding a CONN_SLAB slot) can be collected
    before the next sub-run measures the watermark."""
    from repro.flextoe.state import CONN_SLAB

    gc.collect()
    slab_base = CONN_SLAB.live
    CONN_SLAB.high_water = CONN_SLAB.live

    defense = mode == "on"
    cp_kwargs = {}
    if kind == "synflood":
        # The admission cap is the defense-off failure mode: bogus
        # SYN-time establishes exhaust it and benign connects get RSTs.
        cp_kwargs["policy"] = PolicyConfig(max_connections_per_app=256)
    if defense:
        cp_kwargs["config"] = ControlPlaneConfig(
            syn_defense_enabled=True,
            embryonic_limit=64,
            half_open_timeout_ns=500_000,
        )

    bed = Testbed(seed=29)
    server = bed.add_flextoe_host("server", cp_kwargs=cp_kwargs)
    clients = [bed.add_flextoe_host("client%d" % i) for i in range(N_BENIGN_LOOPS)]
    bed.seed_all_arp()

    adapter = None
    if defense:
        if kind == "incast":
            # The protocol-validity rule (always on) is the defense;
            # no rate thresholds needed.
            thresholds = {}
        else:
            thresholds = {"syn_limit": 20, "rst_limit": 20}
        adapter, dmaps = _install_detector(server, thresholds)

        def decay_loop():
            while True:
                yield bed.sim.timeout(DECAY_INTERVAL_NS)
                decay_features(dmaps)

        bed.sim.process(decay_loop(), name="detector-decay")

    echo = ClosingEchoServer(server.new_context(0), ECHO_PORT, request_size=len(REQUEST))
    bed.sim.process(echo.run(), name="attack-echo")

    meter = GoodputMeter(bed.sim)
    tally = {"completed": 0, "refused": 0, "errors": 0}
    n_rounds = 30 if quick else 75
    benign = _benign_persistent if kind == "incast" else _benign_short_conns
    waiters = [
        bed.sim.process(
            benign(host.new_context(0), server.ip, n_rounds, meter, tally),
            name="benign%d" % i,
        )
        for i, host in enumerate(clients)
    ]

    attacker = None
    if mode != "baseline":
        station = bed.topology.attach(
            "attacker", mac=str_to_mac("02:00:00:00:00:c8"), ip=str_to_ip("10.0.200.1")
        )
        attacker = Attacker(
            bed.sim, station, server.ip, server.mac, ECHO_PORT, seed=17
        )
        if kind == "synflood":
            # ~10:1 attack packets per benign request: benign offers one
            # request per (gap / n_loops) = 5us, the flood one SYN per
            # 500ns, from a pool of 4 spoofed sources.
            attack = attacker.syn_flood(
                n_packets=1600 if quick else 4000, interval_ns=500, src_pool=4
            )
        elif kind == "churn":
            attack = attacker.conn_churn(
                n_cycles=250 if quick else 600, interval_ns=2_500
            )
        else:
            attack = attacker.incast(
                n_bursts=30 if quick else 75, burst_size=4, interval_ns=20_000, src_pool=16
            )
        bed.sim.process(attack, name="attack-%s" % kind)

    bed.sim.run(until=bed.sim.all_of(waiters))
    if attacker is not None:
        attacker.stop = True

    plane = server.control_plane
    result = {
        "goodput_bps": round(meter.goodput_bps, 1),
        "completed": tally["completed"],
        "refused": tally["refused"],
        "errors": tally["errors"],
        "events": bed.sim.processed_events,
        "sim_ns": bed.sim.now,
        "slab_watermark": CONN_SLAB.high_water - slab_base,
        "mem_used_bytes": server.machine.memory.hugepages.used,
        "syn_dropped": plane.syn_dropped,
        "cookies_sent": plane.cookies_sent,
        "cookies_validated": plane.cookies_validated,
        "embryonic_reaped": plane.embryonic_reaped,
        "resets_received": plane.resets_received,
        "challenge_acks": plane.challenge_acks,
        "detector_drops": adapter.results.get(_XDP_DROP, 0) if adapter else 0,
        "attack_sent": attacker.sent if attacker else 0,
        "rsts_reflected": attacker.rsts_received if attacker else 0,
    }
    _write_attack_log(kind, mode, attacker)
    return result


def _write_attack_log(kind, mode, attacker):
    log_dir = os.environ.get("REPRO_ATTACK_LOG_DIR")
    if not log_dir or attacker is None:
        return
    os.makedirs(log_dir, exist_ok=True)
    path = os.path.join(log_dir, "attack-{}-{}.json".format(kind, mode))
    with open(path, "w") as fh:
        json.dump(attacker.log.to_jsonable(), fh, indent=2, sort_keys=True)


def run_attack_scenario(kind, quick):
    """baseline/off/on sub-runs plus the survivability gates; returns
    ``(merged_sim, checks, metrics)`` for the bench runner."""
    from repro.bench.shard import MergedSim

    modes = {}
    for mode in ("baseline", "off", "on"):
        modes[mode] = _run_case(kind, mode, quick)

    base_bps = modes["baseline"]["goodput_bps"]
    off_bps = modes["off"]["goodput_bps"]
    on_bps = modes["on"]["goodput_bps"]
    on_ratio = on_bps / base_bps if base_bps else 0.0
    off_ratio = off_bps / base_bps if base_bps else 0.0

    if modes["baseline"]["completed"] == 0:
        raise AssertionError("attack-%s: baseline benign load completed nothing" % kind)
    # The headline survivability gate (mirrored by CI's attack-matrix
    # job): defense on keeps >=50% of no-attack goodput.
    if on_ratio < 0.5:
        raise AssertionError(
            "attack-%s: defense-on goodput %.0f bps is %.0f%% of baseline %.0f bps (<50%%)"
            % (kind, on_bps, 100 * on_ratio, base_bps)
        )
    if modes["on"]["detector_drops"] == 0:
        raise AssertionError("attack-%s: detector never fired" % kind)
    # No offload state for dropped SYNs: the defended run's CONN_SLAB
    # watermark stays at the baseline's (benign-only) level.
    slack = 8
    if modes["on"]["slab_watermark"] > modes["baseline"]["slab_watermark"] + slack:
        raise AssertionError(
            "attack-%s: defense-on slab watermark %d exceeds baseline %d"
            % (kind, modes["on"]["slab_watermark"], modes["baseline"]["slab_watermark"])
        )
    if kind == "synflood":
        # The collapse pin: with everything off, the flood must take
        # the legacy control plane below 50% of baseline.
        if off_ratio >= 0.5:
            raise AssertionError(
                "attack-synflood: defense-off goodput %.0f%% of baseline — expected collapse"
                % (100 * off_ratio)
            )
        if modes["off"]["slab_watermark"] <= modes["baseline"]["slab_watermark"]:
            raise AssertionError(
                "attack-synflood: defense-off run allocated no extra slab state"
            )
    if kind == "churn":
        # Churn burns host memory (buffer allocations never return to
        # the hugepage pool); the detector must stop the burn.
        if modes["on"]["mem_used_bytes"] >= modes["off"]["mem_used_bytes"]:
            raise AssertionError("attack-churn: defense did not reduce memory burn")
    if kind == "incast":
        # Defense must stop the control plane's RST reflection.
        if modes["off"]["rsts_reflected"] == 0:
            raise AssertionError("attack-incast: no reflection observed with defense off")
        if modes["on"]["rsts_reflected"] >= modes["off"]["rsts_reflected"]:
            raise AssertionError("attack-incast: defense did not curb RST reflection")

    checks = {
        "baseline_completed": modes["baseline"]["completed"],
        "off_completed": modes["off"]["completed"],
        "on_completed": modes["on"]["completed"],
        "off_ratio": round(off_ratio, 4),
        "on_ratio": round(on_ratio, 4),
        "detector_drops": modes["on"]["detector_drops"],
        "attack_sent": modes["off"]["attack_sent"],
        "slab_watermark_off": modes["off"]["slab_watermark"],
        "slab_watermark_on": modes["on"]["slab_watermark"],
        "syn_dropped_on": modes["on"]["syn_dropped"],
        "cookies_sent_on": modes["on"]["cookies_sent"],
        "embryonic_reaped_on": modes["on"]["embryonic_reaped"],
        "rsts_reflected_off": modes["off"]["rsts_reflected"],
        "rsts_reflected_on": modes["on"]["rsts_reflected"],
    }
    metrics = {
        "goodput_baseline_bps": base_bps,
        "goodput_off_bps": off_bps,
        "goodput_on_bps": on_bps,
        "mem_used_off_bytes": modes["off"]["mem_used_bytes"],
        "mem_used_on_bytes": modes["on"]["mem_used_bytes"],
    }
    merged = MergedSim(
        sum(m["events"] for m in modes.values()),
        sum(m["sim_ns"] for m in modes.values()),
    )
    return merged, checks, metrics
