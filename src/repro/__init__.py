"""FlexTOE reproduction: flexible TCP offload with fine-grained
parallelism (NSDI 2022), on a simulated NPU SmartNIC testbed.

Top-level convenience imports::

    from repro import Testbed

    bed = Testbed(seed=1)
    server = bed.add_flextoe_host("server")

Subpackages: ``sim`` (event kernel), ``proto`` (wire formats), ``net``
(switch/links), ``nfp`` (the NFP-4000), ``host`` (CPUs/memory),
``flextoe`` (the offloaded data-path), ``control`` (control plane),
``libtoe`` (sockets), ``xdp`` (eBPF), ``baselines`` (Linux/TAS/Chelsio),
``apps`` (workloads), ``stats``, ``harness``.
"""

__version__ = "1.0.0"

from repro.harness import Testbed

__all__ = ["Testbed", "__version__"]
