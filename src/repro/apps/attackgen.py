"""Deterministic adversarial traffic generators.

An :class:`Attacker` is a *raw* station on the switch — no NIC model, no
control plane, no libTOE — that crafts frames directly, the way a
DPDK/scapy attack box would. Every generator is a simulation process
driven by a seeded :class:`random.Random`, so a given (seed, rate,
count) triple replays the identical packet sequence; every injected
frame is recorded in an :class:`AttackLog` for post-mortem artifacts.

Generators (paper-level threat model, ROADMAP item 3):

* :meth:`Attacker.syn_flood` — pure SYNs from a bounded pool of spoofed
  source IPs; exhausts server handshake state, never completes.
* :meth:`Attacker.conn_churn` — full handshake, then immediate RST;
  burns connection setup/teardown (slab slots, buffers) at line rate.
* :meth:`Attacker.rst_storm` — blind RSTs (or bare ACKs) spoofed into
  *established* victim flows; tests the RFC 5961 window check and the
  challenge-ACK rate limit.
* :meth:`Attacker.http_flood` — handshake then request-shaped payload
  spam with responses never read or ACKed; ties up app-level service
  and retransmission machinery.
* :meth:`Attacker.incast` — synchronized bursts of flag-less junk from
  many spoofed sources; overruns switch queues and, unchecked, the
  control plane's RST reflection amplifies it.

Mixing with benign load is a rate ratio: run a generator whose packet
interval is ``benign_interval / ratio`` next to a normal memtier/echo
workload on the same testbed (:func:`attack_interval_ns`).
"""

import random

from repro.proto import make_tcp_frame
from repro.proto.tcp import FLAG_ACK, FLAG_RST, FLAG_SYN

_MASK = 0xFFFFFFFF


def attack_interval_ns(benign_interval_ns, ratio):
    """Packet interval giving ``ratio`` attack packets per benign one."""
    return max(1, int(benign_interval_ns / ratio))


class AttackLog:
    """Append-only record of every injected frame (CI artifact)."""

    def __init__(self):
        self.events = []
        self.counts = {}

    def note(self, kind, **fields):
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.events.append(dict(fields, kind=kind))

    def to_jsonable(self):
        return {"counts": dict(self.counts), "events": self.events}


class Attacker:
    """A raw frame injector bound to one switch station.

    The station's own MAC/IP are real (replies route back to us even
    for spoofed *IP* sources, since the server learns IP->MAC from the
    frames themselves), which also means per-source-IP detection at the
    NIC sees the same bounded, seeded spoof pool on every run.
    """

    def __init__(self, sim, station, target_ip, target_mac, target_port, seed=0, log=None):
        self.sim = sim
        self.station = station
        self.target_ip = target_ip
        self.target_mac = target_mac
        self.target_port = target_port
        self.rng = random.Random(seed)
        self.log = log if log is not None else AttackLog()
        self.sent = 0
        self.synacks_seen = 0
        self.rsts_received = 0
        self.stop = False
        #: sport -> callback(frame) for handshakes we must answer.
        self._responders = {}
        station.port.receiver = self._on_frame

    # -- plumbing ----------------------------------------------------------

    def _on_frame(self, frame):
        if frame.tcp is None:
            return
        if frame.tcp.flags & FLAG_RST:
            # Reflection measurement: every RST the target bounces back
            # at us (policy refusals, junk-triggered resets) lands here
            # because spoofed sources still carry our station MAC.
            self.rsts_received += 1
        handler = self._responders.get(frame.tcp.dport)
        if handler is not None:
            handler(frame)

    def _send(self, frame, kind, **fields):
        self.sent += 1
        self.log.note(kind, at=self.sim.now, **fields)
        self.station.port.send(frame)

    def _frame(self, src_ip, sport, **kwargs):
        return make_tcp_frame(
            self.station.mac,
            self.target_mac,
            src_ip,
            self.target_ip,
            sport,
            self.target_port,
            born_at=self.sim.now,
            **kwargs
        )

    def _spoofed_sources(self, pool_size):
        """Deterministic spoofed source pool: 10.0.201.x upward."""
        base = (10 << 24) | (201 << 16)
        return [base + i for i in range(pool_size)]

    # -- generators (sim processes) ----------------------------------------

    def syn_flood(self, n_packets, interval_ns, src_pool=64):
        """Pure SYNs from ``src_pool`` spoofed sources, never ACKed."""
        sources = self._spoofed_sources(src_pool)
        for _ in range(n_packets):
            if self.stop:
                return
            src = self.rng.choice(sources)
            sport = self.rng.randrange(1024, 65535)
            syn = self._frame(
                src, sport, seq=self.rng.getrandbits(32), flags=FLAG_SYN, window=0xFFFF
            )
            self._send(syn, "syn", src=src, sport=sport)
            yield self.sim.timeout(interval_ns)

    def conn_churn(self, n_cycles, interval_ns):
        """Open/RST cycles: handshake completes, then immediate RST."""
        for cycle in range(n_cycles):
            if self.stop:
                return
            sport = 2000 + (cycle % 60000)
            iss = self.rng.getrandbits(32)
            self._responders[sport] = self._churn_responder(sport, iss)
            syn = self._frame(
                self.station.ip, sport, seq=iss, flags=FLAG_SYN, window=0xFFFF
            )
            self._send(syn, "churn-syn", sport=sport)
            yield self.sim.timeout(interval_ns)

    def _churn_responder(self, sport, iss):
        def on_frame(frame):
            tcp = frame.tcp
            if not (tcp.flags & FLAG_SYN and tcp.flags & FLAG_ACK):
                return
            self._responders.pop(sport, None)
            self.synacks_seen += 1
            seq = (iss + 1) & _MASK
            ack = (tcp.seq + 1) & _MASK
            self._send(
                self._frame(self.station.ip, sport, seq=seq, ack=ack, flags=FLAG_ACK),
                "churn-ack",
                sport=sport,
            )
            self._send(
                self._frame(
                    self.station.ip, sport, seq=seq, ack=ack, flags=FLAG_RST | FLAG_ACK
                ),
                "churn-rst",
                sport=sport,
            )

        return on_frame

    def rst_storm(self, victims, n_packets, interval_ns, mode="rst", window_spread=4096, seq_base=0):
        """Blind RSTs (or bare ACKs) spoofed into established flows.

        ``victims`` is a list of server-side four-tuples
        ``(server_ip, client_ip, server_port, client_port)``; the storm
        forges the client side. Sequence numbers are sprayed over
        ``seq_base + [1, window_spread)``. A real blind attacker sprays
        from a guess; tests pin ``seq_base`` near the victim's rcv_nxt
        so the packets land in-window-but-inexact — the RFC 5961 case
        that must produce rate-limited challenge ACKs, not teardowns.
        """
        flags = FLAG_RST | FLAG_ACK if mode == "rst" else FLAG_ACK
        for _ in range(n_packets):
            if self.stop:
                return
            server_ip, client_ip, server_port, client_port = self.rng.choice(victims)
            seq = (seq_base + self.rng.randrange(1, window_spread)) & _MASK
            forged = make_tcp_frame(
                self.station.mac,
                self.target_mac,
                client_ip,
                server_ip,
                client_port,
                server_port,
                seq=seq,
                ack=self.rng.getrandbits(32),
                flags=flags,
                born_at=self.sim.now,
            )
            self._send(forged, "storm-" + mode, src=client_ip, seq=seq)
            yield self.sim.timeout(interval_ns)

    def http_flood(self, n_connections, requests_per_conn, interval_ns, request_size=128):
        """Request floods: real handshakes, then request-shaped payload
        spam with server responses never read or acknowledged."""
        for conn in range(n_connections):
            if self.stop:
                return
            sport = 30000 + (conn % 30000)
            iss = self.rng.getrandbits(32)
            self._responders[sport] = self._flood_responder(
                sport, iss, requests_per_conn, request_size
            )
            syn = self._frame(
                self.station.ip, sport, seq=iss, flags=FLAG_SYN, window=0xFFFF
            )
            self._send(syn, "flood-syn", sport=sport)
            yield self.sim.timeout(interval_ns)

    def _flood_responder(self, sport, iss, n_requests, request_size):
        payload = b"GET /x HTTP/1.0\r\n\r\n".ljust(request_size, b".")

        def on_frame(frame):
            tcp = frame.tcp
            if not (tcp.flags & FLAG_SYN and tcp.flags & FLAG_ACK):
                return
            self._responders.pop(sport, None)
            self.synacks_seen += 1
            seq = (iss + 1) & _MASK
            ack = (tcp.seq + 1) & _MASK
            self._send(
                self._frame(self.station.ip, sport, seq=seq, ack=ack, flags=FLAG_ACK),
                "flood-ack",
                sport=sport,
            )
            for _ in range(n_requests):
                self._send(
                    self._frame(
                        self.station.ip,
                        sport,
                        seq=seq,
                        ack=ack,
                        flags=FLAG_ACK,
                        payload=payload,
                    ),
                    "flood-req",
                    sport=sport,
                )
                seq = (seq + len(payload)) & _MASK

        return on_frame

    def incast(self, n_bursts, burst_size, interval_ns, src_pool=32, junk_size=64):
        """Synchronized junk bursts from many spoofed sources.

        The frames carry payload but none of SYN/ACK/RST — nothing a
        real endpoint emits — so with the detector off they fall through
        connection lookup into the control plane, whose per-frame RST
        reflection doubles the incast load on the switch queue.
        """
        sources = self._spoofed_sources(src_pool)
        junk = b"\x00" * junk_size
        for _ in range(n_bursts):
            if self.stop:
                return
            for src in sources:
                for _ in range(burst_size):
                    frame = self._frame(
                        src,
                        self.rng.randrange(1024, 65535),
                        seq=self.rng.getrandbits(32),
                        flags=0,
                        payload=junk,
                    )
                    self._send(frame, "incast-junk", src=src)
            yield self.sim.timeout(interval_ns)
