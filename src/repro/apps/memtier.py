"""A memtier_benchmark-style load generator.

Closed-loop KV transactions on persistent connections: each client
connection issues GETs and SETs (default 10:1) with fixed-size keys and
values (32 B in the paper's §2.1/§5.1 experiments), measuring per-request
latency and aggregate throughput."""

import random

from repro.apps.memcached import OP_GET, OP_SET, decode_response, encode_request
from repro.stats import LatencyHistogram, ThroughputMeter


class MemtierClient:
    """One closed-loop connection worth of load."""

    def __init__(
        self,
        ctx,
        server_ip,
        port,
        key_size=32,
        value_size=32,
        get_ratio=10,
        key_space=1000,
        seed=0,
        warmup=20,
    ):
        self.ctx = ctx
        self.server_ip = server_ip
        self.port = port
        self.key_size = key_size
        self.value_size = value_size
        self.get_ratio = get_ratio
        self.key_space = key_space
        self.warmup = warmup
        self.histogram = LatencyHistogram()
        self.meter = ThroughputMeter(ctx.sim)
        self.completed = 0
        self._counter = 0
        self._rng = random.Random(seed)
        self.stop = False

    def _key(self):
        key_id = self._rng.randrange(self.key_space)
        base = ("key-%08d" % key_id).encode()
        return base.ljust(self.key_size, b"k")[: self.key_size]

    def _request(self):
        key = self._key()
        self._counter += 1
        if self._counter % (self.get_ratio + 1) == 0:
            return encode_request(OP_SET, key, b"v" * self.value_size)
        return encode_request(OP_GET, key)

    def run(self, n_requests=None):
        ctx = self.ctx
        sock = yield from ctx.connect(self.server_ip, self.port)
        # Prime the keyspace so GETs hit.
        yield from ctx.send(sock, encode_request(OP_SET, self._key(), b"v" * self.value_size))
        yield from self._read_response(sock)
        issued = 0
        while not self.stop and (n_requests is None or issued < n_requests):
            request = self._request()
            start = ctx.sim.now
            yield from ctx.send(sock, request)
            response = yield from self._read_response(sock)
            if response is None:
                return
            issued += 1
            self.completed += 1
            if issued > self.warmup:
                self.histogram.record(ctx.sim.now - start)
                self.meter.record(nbytes=len(request) + len(response))

    def _read_response(self, sock):
        ctx = self.ctx
        buffered = b""
        while True:
            parsed = decode_response(buffered)
            if parsed is not None:
                status, value, consumed = parsed
                assert consumed == len(buffered), "memtier assumes one response in flight"
                return buffered
            chunk = yield from ctx.recv(sock, 64 * 1024)
            if not chunk:
                return None
            buffered += chunk
