"""A multi-connection RPC echo server.

Fixed-size message framing (both sides agree on the request size), an
epoll accept/serve loop, and an optional per-RPC artificial processing
delay in host cycles — exactly the server the paper's §5.2 benchmarks
run ("to simulate application processing, our server waits for an
artificial delay of 250 or 1,000 cycles for each RPC").
"""

from repro.host.cpu import CAT_APP
from repro.libtoe.epoll import EventPoll


class EchoServer:
    """Echoes fixed-size requests; optionally replies with a fixed-size
    response instead of the request body (consumer/producer modes)."""

    def __init__(self, ctx, port, request_size, response_size=None, app_delay_cycles=0, max_requests=None):
        self.ctx = ctx
        self.port = port
        self.request_size = request_size
        self.response_size = response_size  # None = echo the request
        self.app_delay_cycles = app_delay_cycles
        self.max_requests = max_requests
        self.requests_served = 0
        self.connections_accepted = 0
        self._buffers = {}

    def run(self):
        """The server process: accept loop + epoll serve loop."""
        ctx = self.ctx
        listener = ctx.listen(self.port)
        epoll = EventPoll(ctx)
        ctx.sim.process(self._acceptor(listener, epoll), name="echo-acceptor")
        while self.max_requests is None or self.requests_served < self.max_requests:
            ready = yield from epoll.wait()
            for sock in ready:
                yield from self._serve(sock, epoll)

    def _acceptor(self, listener, epoll):
        while True:
            sock = yield from self.ctx.accept(listener)
            self.connections_accepted += 1
            self._buffers[sock.conn_index] = b""
            epoll.register(sock)

    def _serve(self, sock, epoll):
        ctx = self.ctx
        data = yield from ctx.recv(sock, 256 * 1024, blocking=False)
        if data is None:
            return
        if data == b"":
            epoll.unregister(sock)  # peer closed
            self._buffers.pop(sock.conn_index, None)
            return
        buffered = self._buffers.get(sock.conn_index, b"") + data
        while len(buffered) >= self.request_size:
            request = buffered[: self.request_size]
            buffered = buffered[self.request_size :]
            if self.app_delay_cycles:
                yield from ctx.core.run(self.app_delay_cycles, CAT_APP)
            if self.response_size is None:
                response = request
            else:
                response = b"R" * self.response_size
            yield from ctx.send(sock, response)
            self.requests_served += 1
        self._buffers[sock.conn_index] = buffered


def run_echo_server(ctx, port, request_size, **kwargs):
    """Convenience: build the server and return (server, process)."""
    server = EchoServer(ctx, port, request_size, **kwargs)
    process = ctx.sim.process(server.run(), name="echo-server")
    return server, process
