"""Workload applications, stack-agnostic over the shared context API.

* :mod:`repro.apps.echo` — multi-connection RPC echo server.
* :mod:`repro.apps.rpc` — closed/open-loop RPC clients with latency
  histograms and throughput meters (§5.2's workloads).
* :mod:`repro.apps.memcached` — a key-value store speaking a compact
  binary protocol (the §2.1/§5.1 application).
* :mod:`repro.apps.memtier` — a memtier-style closed-loop KV load
  generator (32-byte keys and values, persistent connections).
* :mod:`repro.apps.attackgen` — deterministic adversarial traffic
  (SYN flood, churn, RST storms, request floods, incast).
"""

from repro.apps.attackgen import Attacker, AttackLog, attack_interval_ns
from repro.apps.echo import EchoServer, run_echo_server
from repro.apps.memcached import MemcachedServer, decode_request, encode_request, encode_response
from repro.apps.memtier import MemtierClient
from repro.apps.rpc import ClosedLoopClient, OpenLoopClient

__all__ = [
    "AttackLog",
    "Attacker",
    "attack_interval_ns",
    "ClosedLoopClient",
    "EchoServer",
    "MemcachedServer",
    "MemtierClient",
    "OpenLoopClient",
    "decode_request",
    "encode_request",
    "encode_response",
    "run_echo_server",
]
