"""A Memcached-style key-value server over TCP.

Compact binary protocol (all integers big-endian):

* request: op(1) keylen(1) vallen(2) key val — op 0 = GET, 1 = SET
* response: status(1) vallen(2) val — status 0 = OK/hit, 1 = miss

The per-request application work (hash + store access + response build)
is charged in host cycles, calibrated so that with 32-byte keys/values
the application share lands near Table 1's Memcached profile."""

import struct

from repro.host.cpu import CAT_APP
from repro.libtoe.epoll import EventPoll

OP_GET = 0
OP_SET = 1
STATUS_OK = 0
STATUS_MISS = 1

REQ_HEADER = struct.Struct("!BBH")
RESP_HEADER = struct.Struct("!BH")

#: Application cycles per request (hashing, lookup, response build).
CYCLES_GET = 700
CYCLES_SET = 850
CYCLES_PER_KB = 120


def encode_request(op, key, value=b""):
    return REQ_HEADER.pack(op, len(key), len(value)) + key + value


def decode_request(buffer):
    """Parse one request from ``buffer``; returns (op, key, value,
    consumed) or None if incomplete."""
    if len(buffer) < REQ_HEADER.size:
        return None
    op, keylen, vallen = REQ_HEADER.unpack_from(buffer, 0)
    total = REQ_HEADER.size + keylen + vallen
    if len(buffer) < total:
        return None
    key = bytes(buffer[REQ_HEADER.size : REQ_HEADER.size + keylen])
    value = bytes(buffer[REQ_HEADER.size + keylen : total])
    return op, key, value, total


def encode_response(status, value=b""):
    return RESP_HEADER.pack(status, len(value)) + value


def decode_response(buffer):
    if len(buffer) < RESP_HEADER.size:
        return None
    status, vallen = RESP_HEADER.unpack_from(buffer, 0)
    total = RESP_HEADER.size + vallen
    if len(buffer) < total:
        return None
    return status, bytes(buffer[RESP_HEADER.size : total]), total


class MemcachedServer:
    """One server thread: its own context, epoll loop, shared store."""

    def __init__(self, ctx, port, store=None):
        self.ctx = ctx
        self.port = port
        self.store = store if store is not None else {}
        self.requests = 0
        self.gets = 0
        self.sets = 0
        self.hits = 0
        self._buffers = {}

    def run(self, listener=None):
        ctx = self.ctx
        if listener is None:
            listener = ctx.listen(self.port)
        epoll = EventPoll(ctx)
        ctx.sim.process(self._acceptor(listener, epoll), name="mc-acceptor")
        while True:
            ready = yield from epoll.wait()
            for sock in ready:
                yield from self._serve(sock, epoll)

    def _acceptor(self, listener, epoll):
        while True:
            sock = yield from self.ctx.accept(listener)
            self._buffers[sock.conn_index] = b""
            epoll.register(sock)

    def _serve(self, sock, epoll):
        ctx = self.ctx
        data = yield from ctx.recv(sock, 128 * 1024, blocking=False)
        if data is None:
            return
        if data == b"":
            epoll.unregister(sock)  # peer closed
            self._buffers.pop(sock.conn_index, None)
            return
        buffered = self._buffers.get(sock.conn_index, b"") + data
        responses = []
        while True:
            parsed = decode_request(buffered)
            if parsed is None:
                break
            op, key, value, consumed = parsed
            buffered = buffered[consumed:]
            self.requests += 1
            if op == OP_SET:
                self.sets += 1
                yield from ctx.core.run(
                    CYCLES_SET + CYCLES_PER_KB * (len(value) // 1024), CAT_APP
                )
                self.store[key] = value
                responses.append(encode_response(STATUS_OK))
            else:
                self.gets += 1
                yield from ctx.core.run(CYCLES_GET, CAT_APP)
                stored = self.store.get(key)
                if stored is None:
                    responses.append(encode_response(STATUS_MISS))
                else:
                    self.hits += 1
                    responses.append(encode_response(STATUS_OK, stored))
        self._buffers[sock.conn_index] = buffered
        if responses:
            yield from ctx.send(sock, b"".join(responses))
