"""RPC clients: closed-loop (ping-pong) and open-loop (pipelined).

Closed-loop clients measure per-RPC round-trip latency into a
:class:`~repro.stats.LatencyHistogram`; open-loop clients keep a fixed
number of RPCs pipelined per connection (the paper's saturated-server
workload, §5.2)."""

from repro.stats import LatencyHistogram, ThroughputMeter


class ClosedLoopClient:
    """One connection, one RPC in flight: request -> full response."""

    def __init__(self, ctx, server_ip, port, request_size, response_size, warmup=10):
        self.ctx = ctx
        self.server_ip = server_ip
        self.port = port
        self.request_size = request_size
        self.response_size = response_size
        self.warmup = warmup
        self.histogram = LatencyHistogram()
        self.meter = ThroughputMeter(ctx.sim)
        self.completed = 0
        self.sock = None

    def run(self, n_requests):
        ctx = self.ctx
        self.sock = yield from ctx.connect(self.server_ip, self.port)
        request = b"Q" * self.request_size
        for i in range(n_requests):
            start = ctx.sim.now
            yield from ctx.send(self.sock, request)
            received = 0
            while received < self.response_size:
                chunk = yield from ctx.recv(self.sock, 256 * 1024)
                if not chunk:
                    return
                received += len(chunk)
            self.completed += 1
            if i >= self.warmup:
                self.histogram.record(ctx.sim.now - start)
                self.meter.record(nbytes=self.request_size + self.response_size)


class OpenLoopClient:
    """One connection with up to ``pipeline`` RPCs outstanding."""

    def __init__(self, ctx, server_ip, port, request_size, response_size, pipeline=8):
        self.ctx = ctx
        self.server_ip = server_ip
        self.port = port
        self.request_size = request_size
        self.response_size = response_size
        self.pipeline = pipeline
        self.meter = ThroughputMeter(ctx.sim)
        self.completed = 0
        self.stop = False

    def run(self):
        """Runs until ``stop`` is set; sender and receiver overlap.

        The receiver signals completions through a credit event so the
        sender never depends on NIC notifications for its own wakeup."""
        ctx = self.ctx
        sock = yield from ctx.connect(self.server_ip, self.port)
        state = {"outstanding": 0, "credit_event": None}
        receiver = ctx.sim.process(self._receiver(sock, state), name="rpc-receiver")
        request = b"Q" * self.request_size
        while not self.stop:
            while state["outstanding"] >= self.pipeline and not self.stop:
                state["credit_event"] = ctx.sim.event()
                yield state["credit_event"]
                state["credit_event"] = None
            if self.stop:
                break
            state["outstanding"] += 1
            yield from ctx.send(sock, request)
        if state["credit_event"] is not None and not state["credit_event"].triggered:
            state["credit_event"].succeed()
        yield receiver

    def _receiver(self, sock, state):
        ctx = self.ctx
        pending = 0
        while not self.stop:
            chunk = yield from ctx.recv(sock, 256 * 1024)
            if not chunk:
                return
            pending += len(chunk)
            while pending >= self.response_size:
                pending -= self.response_size
                state["outstanding"] -= 1
                self.completed += 1
                self.meter.record(nbytes=self.request_size + self.response_size)
                credit = state["credit_event"]
                if credit is not None and not credit.triggered:
                    credit.succeed()
