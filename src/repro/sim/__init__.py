"""Discrete-event simulation kernel.

A small, fast, simpy-style engine: generator-based processes scheduled on
an event heap with integer-nanosecond timestamps. All higher layers of the
FlexTOE reproduction (NIC, host, network) are built on these primitives.
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.resources import PriorityStore, Resource, Store
from repro.sim.clock import Clock, CYCLES_2GHZ, CYCLES_800MHZ, ns_to_us, us_to_ns
from repro.sim.rng import RngPool
from repro.sim.trace import TraceRecorder

__all__ = [
    "AllOf",
    "AnyOf",
    "Clock",
    "CYCLES_2GHZ",
    "CYCLES_800MHZ",
    "RngPool",
    "Event",
    "Interrupt",
    "PriorityStore",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
    "TraceRecorder",
    "ns_to_us",
    "us_to_ns",
]
