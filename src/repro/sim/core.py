"""Event loop, events, and processes for discrete-event simulation.

The design follows simpy's coroutine model: a :class:`Process` wraps a
generator that yields :class:`Event` objects; the process resumes when the
yielded event fires. Time is an integer (nanoseconds by convention).
"""

import heapq

#: Event priorities. Lower sorts earlier at equal timestamps.
URGENT = 0
NORMAL = 1


class SimulationError(Exception):
    """Raised for illegal uses of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* once :meth:`succeed` or :meth:`fail` is called;
    its callbacks then run at the current simulation time.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled")

    def __init__(self, sim):
        self.sim = sim
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self._scheduled = False

    @property
    def triggered(self):
        return self._value is not PENDING

    @property
    def ok(self):
        if self._value is PENDING:
            raise SimulationError("event has not been triggered")
        return self._ok

    @property
    def value(self):
        if self._value is PENDING:
            raise SimulationError("event has not been triggered")
        return self._value

    def succeed(self, value=None):
        """Trigger the event successfully with an optional payload."""
        if self._value is not PENDING:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.sim._post(self, NORMAL)
        return self

    def fail(self, exception):
        """Trigger the event with an exception to throw into waiters."""
        if self._value is not PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._post(self, NORMAL)
        return self

    def __repr__(self):
        state = "triggered" if self.triggered else "pending"
        return "<{} {}>".format(type(self).__name__, state)


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ()

    def __init__(self, sim, delay, value=None):
        if delay < 0:
            raise SimulationError("negative timeout delay: {!r}".format(delay))
        super().__init__(sim)
        self._ok = True
        self._value = value
        sim._post(self, NORMAL, delay=delay)


class Initialize(Event):
    """Internal event used to start a process."""

    __slots__ = ()

    def __init__(self, sim, process):
        super().__init__(sim)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        sim._post(self, URGENT)


class Process(Event):
    """A running generator; also an event that fires when it terminates."""

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, sim, generator, name=None):
        if not hasattr(generator, "throw"):
            raise SimulationError("process requires a generator, got {!r}".format(generator))
        super().__init__(sim)
        self._generator = generator
        self._target = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(sim, self)

    @property
    def is_alive(self):
        return self._value is PENDING

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._value is not PENDING:
            raise SimulationError("cannot interrupt a terminated process")
        target = self._target
        if target is not None and target.callbacks and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        event = Event(self.sim)
        event._ok = False
        event._value = Interrupt(cause)
        event.callbacks.append(self._resume)
        self.sim._post(event, URGENT)

    def _resume(self, event):
        self.sim._active_process = self
        try:
            if event._ok:
                result = self._generator.send(event._value)
            else:
                result = self._generator.throw(event._value)
        except StopIteration as stop:
            self._ok = True
            self._value = getattr(stop, "value", None)
            self.sim._post(self, NORMAL)
            self.sim._active_process = None
            return
        except BaseException as exc:
            if not self.callbacks:
                self.sim._active_process = None
                raise
            self._ok = False
            self._value = exc
            self.sim._post(self, NORMAL)
            self.sim._active_process = None
            return
        finally:
            self.sim._active_process = None
        if not isinstance(result, Event):
            raise SimulationError(
                "process {!r} yielded {!r}; processes must yield events".format(self.name, result)
            )
        if result.callbacks is None:
            # Already-fired, already-drained event: resume immediately.
            event2 = Event(self.sim)
            event2._ok = result._ok
            event2._value = result._value
            event2.callbacks.append(self._resume)
            self.sim._post(event2, URGENT)
            self._target = event2
        else:
            result.callbacks.append(self._resume)
            self._target = result


class Condition(Event):
    """Fires when a boolean combination of sub-events is satisfied."""

    __slots__ = ("_events", "_count", "_done")

    def __init__(self, sim, events, wait_for_all):
        super().__init__(sim)
        self._events = list(events)
        self._done = set()
        need = len(self._events) if wait_for_all else min(1, len(self._events))
        self._count = need
        if need == 0:
            self.succeed({})
            return
        for event in self._events:
            if event.callbacks is None:
                # Already fired and drained.
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect(self):
        return {e: e._value for e in self._events if e in self._done}

    def _check(self, event):
        self._done.add(event)
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._count -= 1
        if self._count <= 0:
            self.succeed(self._collect())


class AllOf(Condition):
    """Fires when every sub-event has fired."""

    __slots__ = ()

    def __init__(self, sim, events):
        super().__init__(sim, events, wait_for_all=True)


class AnyOf(Condition):
    """Fires when at least one sub-event has fired."""

    __slots__ = ()

    def __init__(self, sim, events):
        super().__init__(sim, events, wait_for_all=False)


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(100)

        sim.process(worker(sim))
        sim.run()
    """

    def __init__(self):
        self.now = 0
        self._heap = []
        self._seq = 0
        self._active_process = None
        self._event_count = 0

    # -- scheduling ------------------------------------------------------

    def _post(self, event, priority, delay=0):
        if event._scheduled:
            return
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, priority, self._seq, event))

    # -- factories -------------------------------------------------------

    def event(self):
        return Event(self)

    def timeout(self, delay, value=None):
        return Timeout(self, int(delay), value)

    def process(self, generator, name=None):
        return Process(self, generator, name=name)

    def all_of(self, events):
        return AllOf(self, events)

    def any_of(self, events):
        return AnyOf(self, events)

    # -- running ---------------------------------------------------------

    def peek(self):
        """Timestamp of the next scheduled event, or None if empty."""
        return self._heap[0][0] if self._heap else None

    def step(self):
        """Process one event. Raises IndexError when the heap is empty."""
        when, _priority, _seq, event = heapq.heappop(self._heap)
        if when < self.now:
            raise SimulationError("time went backwards")
        self.now = when
        self._event_count += 1
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)

    def run(self, until=None):
        """Run until the heap drains or simulated time reaches ``until``.

        ``until`` may also be an :class:`Event`; the loop then runs until
        that event fires (its value is returned).
        """
        if isinstance(until, Event):
            stop = until
            while not stop.triggered:
                if not self._heap:
                    raise SimulationError("simulation ran out of events before condition")
                self.step()
            if not stop._ok:
                raise stop._value
            return stop._value
        deadline = None if until is None else int(until)
        while self._heap:
            if deadline is not None and self._heap[0][0] > deadline:
                self.now = deadline
                return None
            self.step()
        if deadline is not None:
            self.now = deadline
        return None

    @property
    def processed_events(self):
        return self._event_count
