"""Event loop, events, and processes for discrete-event simulation.

The design follows simpy's coroutine model: a :class:`Process` wraps a
generator that yields :class:`Event` objects; the process resumes when the
yielded event fires. Time is an integer (nanoseconds by convention).

Hot-path notes (ISSUE 5): millions of heap pushes, generator resumes and
event allocations dominate every experiment, so this module trades a
little plainness for speed where profiles said it matters:

* :meth:`Simulator.run` inlines the :meth:`Simulator.step` body and
  binds heap/pool lookups to locals — one Python frame per run, not one
  per event.
* Single-use events (:class:`Timeout`, and the store put/get events
  registered by :mod:`repro.sim.resources`) are recycled through
  per-simulator free lists. An event is only reclaimed when, after its
  callbacks ran, the dispatch loop holds the *sole* remaining reference
  (``sys.getrefcount == 2``) — so a pool can never hand out an object
  some process, condition, or trace still sees. Recycling preserves
  behaviour exactly: same schedule order, same ``_seq`` assignment, the
  object identity is just reused after death.
* :class:`Condition` results are built directly from the sub-event list
  instead of a tracking set; bound-method callbacks are created once.

Everything observable — event ordering, timestamps, values, error
propagation — is pinned by ``tests/sim`` (including hypothesis
properties) and the golden-digest suite in ``tests/integration``.
"""

from heapq import heappop, heappush
from sys import getrefcount

#: Event priorities. Lower sorts earlier at equal timestamps.
URGENT = 0
NORMAL = 1

#: Per-class cap on recycled events kept around per simulator.
POOL_MAX = 1024


class SimulationError(Exception):
    """Raised for illegal uses of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


PENDING = object()

#: Event classes eligible for free-list recycling. Only single-use leaf
#: events belong here (their class must be exactly the registered one);
#: :func:`register_poolable` is called by :mod:`repro.sim.resources`.
_POOLABLE = set()


def register_poolable(cls):
    """Mark an Event subclass as recyclable through the simulator pools."""
    _POOLABLE.add(cls)
    return cls


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* once :meth:`succeed` or :meth:`fail` is called;
    its callbacks then run at the current simulation time.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled")

    def __init__(self, sim):
        self.sim = sim
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self._scheduled = False

    @property
    def triggered(self):
        return self._value is not PENDING

    @property
    def ok(self):
        if self._value is PENDING:
            raise SimulationError("event has not been triggered")
        return self._ok

    @property
    def value(self):
        if self._value is PENDING:
            raise SimulationError("event has not been triggered")
        return self._value

    def succeed(self, value=None):
        """Trigger the event successfully with an optional payload."""
        if self._value is not PENDING:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        if not self._scheduled:
            self._scheduled = True
            sim = self.sim
            sim._seq += 1
            heappush(sim._heap, (sim.now, NORMAL, sim._seq, self))
        return self

    def fail(self, exception):
        """Trigger the event with an exception to throw into waiters."""
        if self._value is not PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        if not self._scheduled:
            self._scheduled = True
            sim = self.sim
            sim._seq += 1
            heappush(sim._heap, (sim.now, NORMAL, sim._seq, self))
        return self

    def __repr__(self):
        state = "triggered" if self.triggered else "pending"
        return "<{} {}>".format(type(self).__name__, state)


@register_poolable
class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ()

    def __init__(self, sim, delay, value=None):
        if delay < 0:
            raise SimulationError("negative timeout delay: {!r}".format(delay))
        # Inlined Event.__init__ + scheduling: a Timeout is born
        # triggered-and-scheduled, there is no pending intermediate.
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._scheduled = True
        sim._seq += 1
        heappush(sim._heap, (sim.now + delay, NORMAL, sim._seq, self))


class Initialize(Event):
    """Internal event used to start a process."""

    __slots__ = ()

    def __init__(self, sim, process):
        self.sim = sim
        self._value = None
        self._ok = True
        self._scheduled = True
        self.callbacks = [process._resume]
        sim._seq += 1
        heappush(sim._heap, (sim.now, URGENT, sim._seq, self))


class Process(Event):
    """A running generator; also an event that fires when it terminates."""

    __slots__ = ("_generator", "_target", "_resume_cb", "name")

    def __init__(self, sim, generator, name=None):
        if not hasattr(generator, "throw"):
            raise SimulationError("process requires a generator, got {!r}".format(generator))
        super().__init__(sim)
        self._generator = generator
        self._target = None
        self._resume_cb = self._resume  # one bound method for every wait
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(sim, self)

    @property
    def is_alive(self):
        return self._value is PENDING

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._value is not PENDING:
            raise SimulationError("cannot interrupt a terminated process")
        target = self._target
        if target is not None and target.callbacks and self._resume_cb in target.callbacks:
            target.callbacks.remove(self._resume_cb)
        event = Event(self.sim)
        event._ok = False
        event._value = Interrupt(cause)
        event.callbacks.append(self._resume_cb)
        self.sim._post(event, URGENT)

    def _resume(self, event):
        sim = self.sim
        sim._active_process = self
        try:
            if event._ok:
                result = self._generator.send(event._value)
            else:
                result = self._generator.throw(event._value)
        except StopIteration as stop:
            self._ok = True
            self._value = stop.value
            sim._post(self, NORMAL)
            sim._active_process = None
            return
        except BaseException as exc:
            if not self.callbacks:
                sim._active_process = None
                raise
            self._ok = False
            self._value = exc
            sim._post(self, NORMAL)
            sim._active_process = None
            return
        finally:
            sim._active_process = None
        if not isinstance(result, Event):
            raise SimulationError(
                "process {!r} yielded {!r}; processes must yield events".format(self.name, result)
            )
        if result.callbacks is None:
            # Already-fired, already-drained event: resume immediately.
            event2 = Event(sim)
            event2._ok = result._ok
            event2._value = result._value
            event2.callbacks.append(self._resume_cb)
            sim._post(event2, URGENT)
            self._target = event2
        else:
            result.callbacks.append(self._resume_cb)
            self._target = result


class Condition(Event):
    """Fires when a boolean combination of sub-events is satisfied."""

    __slots__ = ("_events", "_count", "_all")

    def __init__(self, sim, events, wait_for_all):
        super().__init__(sim)
        self._events = list(events)
        self._all = wait_for_all
        need = len(self._events) if wait_for_all else min(1, len(self._events))
        self._count = need
        if need == 0:
            self.succeed({})
            return
        check = self._check  # one bound method shared by all sub-events
        for event in self._events:
            if event.callbacks is None:
                # Already fired and drained.
                check(event)
            else:
                event.callbacks.append(check)

    def _check(self, event):
        if self._value is not PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._count -= 1
        if self._count <= 0:
            if self._all:
                self.succeed({e: e._value for e in self._events})
            else:
                self.succeed({event: event._value})


class AllOf(Condition):
    """Fires when every sub-event has fired."""

    __slots__ = ()

    def __init__(self, sim, events):
        super().__init__(sim, events, wait_for_all=True)


class AnyOf(Condition):
    """Fires when at least one sub-event has fired."""

    __slots__ = ()

    def __init__(self, sim, events):
        super().__init__(sim, events, wait_for_all=False)


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(100)

        sim.process(worker(sim))
        sim.run()
    """

    def __init__(self):
        self.now = 0
        self._heap = []
        self._seq = 0
        self._active_process = None
        self._event_count = 0
        #: class -> free list of dead event objects (see module docstring).
        self._pools = {cls: [] for cls in _POOLABLE}

    # -- scheduling ------------------------------------------------------

    def _post(self, event, priority, delay=0):
        if event._scheduled:
            return
        event._scheduled = True
        self._seq += 1
        heappush(self._heap, (self.now + delay, priority, self._seq, event))

    def _recycle(self, event):
        """Return a dispatched event to its free list if it is dead.

        Called by the dispatch loops with the popped event after its
        callbacks ran. ``getrefcount == 2`` (this frame's local + the
        getrefcount argument) proves nothing else references the object,
        so handing it out again can never alias a live event.
        """
        pool = self._pools.get(event.__class__)
        if pool is not None and len(pool) < POOL_MAX and getrefcount(event) == 2:
            pool.append(event)

    # -- factories -------------------------------------------------------

    def event(self):
        return Event(self)

    def timeout(self, delay, value=None):
        delay = int(delay)
        if delay < 0:
            raise SimulationError("negative timeout delay: {!r}".format(delay))
        pool = self._pools[Timeout]
        if pool:
            timeout = pool.pop()
            timeout.callbacks = []
            timeout._value = value
            timeout._ok = True
            self._seq += 1
            heappush(self._heap, (self.now + delay, NORMAL, self._seq, timeout))
            return timeout
        return Timeout(self, delay, value)

    def process(self, generator, name=None):
        return Process(self, generator, name=name)

    def all_of(self, events):
        return AllOf(self, events)

    def any_of(self, events):
        return AnyOf(self, events)

    # -- running ---------------------------------------------------------

    def peek(self):
        """Timestamp of the next scheduled event, or None if empty."""
        return self._heap[0][0] if self._heap else None

    def step(self):
        """Process one event. Raises IndexError when the heap is empty."""
        when, _priority, _seq, event = heappop(self._heap)
        if when < self.now:
            raise SimulationError("time went backwards")
        self.now = when
        self._event_count += 1
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        self._recycle(event)

    def run(self, until=None):
        """Run until the heap drains or simulated time reaches ``until``.

        ``until`` may also be an :class:`Event`; the loop then runs until
        that event fires (its value is returned).

        The loops below are :meth:`step` unrolled with locals bound
        outside the loop; they must stay behaviourally identical to it.
        """
        heap = self._heap
        pools = self._pools
        pool_get = pools.get
        count = 0
        try:
            if isinstance(until, Event):
                stop = until
                while stop._value is PENDING:
                    if not heap:
                        raise SimulationError("simulation ran out of events before condition")
                    when, _priority, _seq, event = heappop(heap)
                    if when < self.now:
                        raise SimulationError("time went backwards")
                    self.now = when
                    count += 1
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    pool = pool_get(event.__class__)
                    if pool is not None and len(pool) < POOL_MAX and getrefcount(event) == 2:
                        pool.append(event)
                if not stop._ok:
                    raise stop._value
                return stop._value
            deadline = None if until is None else int(until)
            while heap:
                when = heap[0][0]
                if deadline is not None and when > deadline:
                    self.now = deadline
                    return None
                event = heappop(heap)[3]
                if when < self.now:
                    raise SimulationError("time went backwards")
                self.now = when
                count += 1
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                pool = pool_get(event.__class__)
                if pool is not None and len(pool) < POOL_MAX and getrefcount(event) == 2:
                    pool.append(event)
            if deadline is not None:
                self.now = deadline
            return None
        finally:
            self._event_count += count

    @property
    def processed_events(self):
        return self._event_count
