"""Lightweight simulation tracing.

A :class:`TraceRecorder` collects (time, source, event, payload) tuples.
Recording is off unless enabled, so the hot path pays one attribute test.
Data-path tracepoints (§5.1 of the paper) are built on this.
"""


class TraceRecorder:
    """Collects trace records; can be filtered by source or event name."""

    __slots__ = ("enabled", "limit", "records", "dropped")

    def __init__(self, enabled=False, limit=None):
        self.enabled = enabled
        self.limit = limit
        self.records = []
        self.dropped = 0

    def emit(self, now, source, event, payload=None):
        if not self.enabled:
            return
        if self.limit is not None and len(self.records) >= self.limit:
            self.dropped += 1
            return
        self.records.append((now, source, event, payload))

    def clear(self):
        self.records.clear()
        self.dropped = 0

    def filter(self, source=None, event=None):
        """Records matching the given source and/or event name."""
        out = []
        for record in self.records:
            if source is not None and record[1] != source:
                continue
            if event is not None and record[2] != event:
                continue
            out.append(record)
        return out

    def count(self, source=None, event=None):
        return len(self.filter(source, event))

    def __len__(self):
        return len(self.records)
