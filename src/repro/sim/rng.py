"""Seeded random-number management.

Every stochastic component (loss injectors, workload generators, jitter)
draws from its own named stream derived from a single experiment seed, so
experiments are reproducible and components do not perturb each other.
"""

import random
import zlib


class RngPool:
    """Derives independent ``random.Random`` streams from one master seed."""

    def __init__(self, seed=0):
        self.seed = int(seed)
        self._streams = {}

    def stream(self, name):
        """Return (creating if needed) the stream for ``name``."""
        if name not in self._streams:
            derived = self.seed ^ zlib.crc32(name.encode("utf-8"))
            self._streams[name] = random.Random(derived)
        return self._streams[name]

    def reset(self):
        self._streams.clear()
