"""Cycle/time conversion helpers.

Simulation time is integer nanoseconds. Hardware components express costs
in clock cycles at their own frequency; a :class:`Clock` converts between
the two domains (always rounding cycle durations up, so that a modeled cost
is never optimistic).
"""

SCALE_NS = 1
SCALE_US = 1_000
SCALE_MS = 1_000_000
SCALE_S = 1_000_000_000


def us_to_ns(us):
    """Convert microseconds (float ok) to integer nanoseconds."""
    return int(round(us * SCALE_US))


def ns_to_us(ns):
    """Convert nanoseconds to float microseconds."""
    return ns / SCALE_US


class Clock:
    """A fixed-frequency clock domain.

    >>> Clock(800_000_000).cycles_to_ns(8)
    10
    """

    __slots__ = ("hz", "_ns_num", "_ns_den", "_ns_cache")

    #: cycles_to_ns memo bound; stage costs and memory latencies are a
    #: small set of constants, so the cache converges within a few events.
    CACHE_MAX = 4096

    def __init__(self, hz):
        if hz <= 0:
            raise ValueError("clock frequency must be positive")
        self.hz = int(hz)
        # cycles -> ns multiplier as a rational: ns = cycles * 1e9 / hz
        self._ns_num = SCALE_S
        self._ns_den = self.hz
        self._ns_cache = {}

    def cycles_to_ns(self, cycles):
        """Duration of ``cycles`` clock cycles, in ns (rounded up).

        Memoized: the hot path converts the same per-stage cycle
        constants (LMEM/CLS/CTM/IMEM/EMEM latencies, stage costs)
        millions of times per run.
        """
        cache = self._ns_cache
        ns = cache.get(cycles)
        if ns is None:
            ns = -(-int(cycles) * self._ns_num // self._ns_den)
            if len(cache) < self.CACHE_MAX:
                cache[cycles] = ns
        return ns

    def ns_to_cycles(self, ns):
        """Number of full cycles elapsing in ``ns`` nanoseconds."""
        return int(ns) * self._ns_den // self._ns_num

    def __repr__(self):
        return "Clock({} MHz)".format(self.hz // 1_000_000)


#: The NFP-4000 flow-processing-core clock (800 MHz).
CYCLES_800MHZ = Clock(800_000_000)

#: The testbed host CPU clock (2 GHz Xeon Gold 6138).
CYCLES_2GHZ = Clock(2_000_000_000)
