"""Shared-resource primitives: FIFO stores, priority stores, semaphores.

These are the communication channels between simulated components: ring
buffers between pipeline stages are bounded :class:`Store` objects, FPC
issue slots are :class:`Resource` objects, and so on.
"""

import heapq
from collections import deque

from repro.sim.core import PENDING, Event, SimulationError, register_poolable


@register_poolable
class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store, item):
        super().__init__(store.sim)
        self.item = item
        store._put_queue.append(self)
        store._trigger()


@register_poolable
class StoreGet(Event):
    __slots__ = ()

    def __init__(self, store):
        super().__init__(store.sim)
        store._get_queue.append(self)
        store._trigger()


def _acquire(cls, sim):
    """Pop a recycled event of ``cls`` from the simulator's free list and
    re-arm it, or return None when the pool is empty. See the pooling
    notes in :mod:`repro.sim.core`."""
    pool = sim._pools[cls]
    if pool:
        event = pool.pop()
        event.callbacks = []
        event._value = PENDING
        event._ok = True
        event._scheduled = False
        return event
    return None


class Store:
    """A FIFO channel with optional bounded capacity.

    ``put(item)`` returns an event that fires once the item is accepted
    (immediately if there is room). ``get()`` returns an event whose value
    is the retrieved item.
    """

    def __init__(self, sim, capacity=None, name=None):
        if capacity is not None and capacity <= 0:
            raise SimulationError("store capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items = deque()
        self._put_queue = deque()
        self._get_queue = deque()
        self.max_occupancy = 0

    def __len__(self):
        return len(self.items)

    @property
    def is_full(self):
        return self.capacity is not None and len(self.items) >= self.capacity

    def set_capacity(self, capacity):
        """Change the bound at runtime (fault injection: backpressure).

        Shrinking never discards queued items — the store just refuses
        new puts until occupancy falls below the new bound. Growing (or
        passing ``None``) releases blocked puts immediately.
        """
        if capacity is not None and capacity <= 0:
            raise SimulationError("store capacity must be positive")
        self.capacity = capacity
        self._trigger()

    def put(self, item):
        put = _acquire(StorePut, self.sim)
        if put is None:
            return StorePut(self, item)
        put.item = item
        self._put_queue.append(put)
        self._trigger()
        return put

    def get(self):
        get = _acquire(StoreGet, self.sim)
        if get is None:
            return StoreGet(self)
        self._get_queue.append(get)
        self._trigger()
        return get

    def try_put(self, item):
        """Non-blocking put. Returns True if the item was accepted."""
        if self.is_full:
            return False
        self._accept(item)
        return True

    def try_get(self):
        """Non-blocking get. Returns (True, item) or (False, None)."""
        if self.items:
            item = self.items.popleft()
            self._drain_puts()
            return True, item
        return False, None

    def force_put(self, item):
        """Insert even when full (capacity overshoot); wakes waiting gets.

        For internal flow-control situations where blocking would
        deadlock (e.g. a reorder buffer draining into a stage ring).
        """
        self._accept(item)

    def _accept(self, item):
        self._insert(item)
        if len(self.items) > self.max_occupancy:
            self.max_occupancy = len(self.items)
        self._serve_gets()

    def _insert(self, item):
        self.items.append(item)

    def _pop(self):
        return self.items.popleft()

    def _serve_gets(self):
        while self.items and self._get_queue:
            get = self._get_queue.popleft()
            get.succeed(self._pop())

    def _drain_puts(self):
        while self._put_queue and not self.is_full:
            put = self._put_queue.popleft()
            self._accept(put.item)
            put.succeed()

    def _trigger(self):
        # Serve pending puts first (space may exist), then gets.
        while True:
            moved = False
            if self._put_queue and not self.is_full:
                put = self._put_queue.popleft()
                self._accept(put.item)
                put.succeed()
                moved = True
            if self.items and self._get_queue:
                get = self._get_queue.popleft()
                get.succeed(self._pop())
                moved = True
            if not moved:
                return


class PriorityStore(Store):
    """A store that yields the smallest item first (heap order).

    Items must be orderable; use ``(priority, seq, payload)`` tuples.
    """

    def __init__(self, sim, capacity=None, name=None):
        super().__init__(sim, capacity, name)
        self.items = []

    def __len__(self):
        return len(self.items)

    def _insert(self, item):
        heapq.heappush(self.items, item)

    def _pop(self):
        return heapq.heappop(self.items)

    def try_get(self):
        if self.items:
            item = heapq.heappop(self.items)
            self._drain_puts()
            return True, item
        return False, None


class ResourceRequest(Event):
    __slots__ = ("resource",)

    def __init__(self, resource):
        super().__init__(resource.sim)
        self.resource = resource
        resource._queue.append(self)
        resource._grant()

    def release(self):
        self.resource.release(self)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.release()
        return False


class Resource:
    """A counting semaphore with FIFO granting.

    ::

        with (yield resource.request()) as grant:
            ... exclusive section ...
    """

    def __init__(self, sim, capacity=1, name=None):
        if capacity <= 0:
            raise SimulationError("resource capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._queue = deque()
        self._users = set()

    @property
    def in_use(self):
        return len(self._users)

    @property
    def queued(self):
        return len(self._queue)

    def request(self):
        return ResourceRequest(self)

    def release(self, request):
        if request in self._users:
            self._users.remove(request)
        elif request in self._queue:
            self._queue.remove(request)
        else:
            raise SimulationError("releasing a grant that is not held")
        self._grant()

    def _grant(self):
        while self._queue and len(self._users) < self.capacity:
            request = self._queue.popleft()
            self._users.add(request)
            request.succeed(request)
