"""Per-connection state, partitioned across pipeline stages (Table 5).

Each stage owns exactly one partition; cross-stage information travels as
metadata on the work item (the module-API rule of §3.3). The partition
sizes reproduce the paper's 108 bytes per connection.

Storage is a single array-of-struct slab (:mod:`repro.flextoe.slab`):
every connection occupies one slot across all columns, and the partition
classes below are flyweight views onto that slot. A class declares its
fields in ``SLAB_FIELDS`` — the statically parseable equivalent of the
old ``__slots__`` tuples, which ``repro.analysis.stagelint`` reads to
build the write-set ownership map — and :func:`~repro.flextoe.slab.attach_fields`
generates one property per field. The attribute API is unchanged, so
stage code, the race sanitizer and existing tests keep working; the
per-connection footprint drops from kilobytes of heap objects to a few
machine words of column storage.

Replicated stage instances of one flow group share their partition, so a
plain read-modify-write from a replicated stage is a lost-update race on
hardware. Fields that are *commutative counters* may instead use the NFP
atomic-add engine; they must be declared in the :func:`atomic` registry,
which the static atomicity lint checks and which :func:`atomic_add` uses
to charge the engine's issue latency in the simulator.
"""

from repro.flextoe.slab import FLAG, INT, OBJ, U8, U16, Slab, SlabView, attach_fields
from repro.nfp.memory import LAT_ATOMIC_ADD
from repro.proto.tcp import seq_add

# field name -> partition, for every declared commutative atomic-add
# counter. Populated by the module-level atomic() declarations below;
# repro.analysis.stagelint parses the same declarations statically.
_ATOMIC_FIELDS = {}


def atomic(partition, *fields):
    """Declare ``fields`` of ``partition`` as atomic-add counters.

    The declaration is a contract: updates are commutative additions
    performed by the memory engine, never read-modify-writes in stage
    code, so replicated stage instances may update them concurrently.
    """
    for field in fields:
        _ATOMIC_FIELDS[field] = partition
    return fields


def atomic_fields():
    """Copy of the registry: ``{field: partition}``."""
    return dict(_ATOMIC_FIELDS)


def atomic_add(target, field, delta, maximum=None):
    """Atomic-engine add of ``delta`` to ``target.field``.

    ``maximum`` models saturating 8-bit counters (``cnt_fretx``).
    Returns the FPC cycles to charge (the engine's issue cost — the
    FPC fires the command and does not wait for the EMEM round trip).
    Only registry-declared fields may be updated this way.
    """
    if field not in _ATOMIC_FIELDS:
        raise ValueError(
            "atomic_add on '{}': not declared in the atomic() registry".format(field)
        )
    value = getattr(target, field) + delta
    if maximum is not None:
        value = min(maximum, value)
    setattr(target, field, value)
    return LAT_ATOMIC_ADD


class PreprocState(SlabView):
    """Pre-processor partition: connection identification (15 B)."""

    __slots__ = ()
    SLAB_FIELDS = ("peer_mac", "peer_ip", "local_port", "remote_port", "flow_group")
    SIZE_BYTES = 15

    def __init__(self, peer_mac, peer_ip, local_port, remote_port, flow_group):
        self._bind()
        self.init(peer_mac, peer_ip, local_port, remote_port, flow_group)

    def init(self, peer_mac, peer_ip, local_port, remote_port, flow_group):
        self.peer_mac = peer_mac
        self.peer_ip = peer_ip
        self.local_port = local_port
        self.remote_port = remote_port
        self.flow_group = flow_group


class ProtocolState(SlabView):
    """Protocol partition: the TCP state machine fields (43 B).

    Positions are *offsets* into the host circular payload buffers; the
    buffer base addresses live in the post-processor partition, which the
    protocol stage cannot read.
    """

    __slots__ = ()
    SLAB_FIELDS = (
        "rx_pos",
        "tx_pos",
        "tx_avail",
        "rx_avail",
        "remote_win",
        "tx_sent",
        "seq",
        "ack",
        "ooo_start",
        "ooo_len",
        "dupack_cnt",
        "next_ts",
        "fin_pending",
        "fin_seq",
        "rx_fin_seq",
        "delack_cnt",
    )
    SIZE_BYTES = 43

    def __init__(self, seq=0, ack=0, rx_avail=0, remote_win=0xFFFF):
        self._bind()
        self.init(seq=seq, ack=ack, rx_avail=rx_avail, remote_win=remote_win)

    def init(self, seq=0, ack=0, rx_avail=0, remote_win=0xFFFF):
        self.rx_pos = 0
        self.tx_pos = 0
        self.tx_avail = 0
        self.rx_avail = rx_avail
        self.remote_win = remote_win
        self.tx_sent = 0
        self.seq = seq
        self.ack = ack
        self.ooo_start = 0
        self.ooo_len = 0
        self.dupack_cnt = 0
        self.next_ts = 0
        self.fin_pending = False
        self.fin_seq = None
        self.rx_fin_seq = None
        self.delack_cnt = 0

    @property
    def has_ooo(self):
        return self.ooo_len > 0

    def flight_limit(self):
        """Bytes currently eligible for transmission."""
        window = min(self.tx_avail, max(0, self.remote_win - self.tx_sent))
        return max(0, window)

    def reset_to_last_ack(self):
        """Go-back-N: rewind transmission to the last acknowledged byte.

        ``tx_pos``/``rx_pos`` are unbounded byte counts (the paper's
        64-bit buffer heads); ``seq`` stays in 32-bit sequence space.
        A sent-but-unacked FIN occupies one unit of ``tx_sent`` sequence
        space but no buffer bytes; it is re-armed for retransmission.
        """
        fin_units = 1 if self.fin_seq is not None else 0
        data_rewound = self.tx_sent - fin_units
        self.tx_pos -= data_rewound
        self.seq = seq_add(self.seq, -self.tx_sent)
        self.tx_avail += data_rewound
        self.tx_sent = 0
        self.dupack_cnt = 0
        if fin_units:
            self.fin_seq = None
            self.fin_pending = True
        return data_rewound


class PostprocState(SlabView):
    """Post-processor partition: app interface + congestion stats (51 B)."""

    __slots__ = ()
    SLAB_FIELDS = (
        "opaque",
        "context_id",
        "rx_base",
        "tx_base",
        "rx_size",
        "tx_size",
        "rx_region",
        "tx_region",
        "cnt_ackb",
        "cnt_ecnb",
        "cnt_fretx",
        "rtt_est",
        "rate",
        "use_timestamps",
        "use_ecn",
    )
    SIZE_BYTES = 51

    def __init__(self, opaque, context_id, rx_base, tx_base, rx_size, tx_size, rx_region=None, tx_region=None):
        self._bind()
        self.init(opaque, context_id, rx_base, tx_base, rx_size, tx_size, rx_region, tx_region)

    def init(self, opaque, context_id, rx_base, tx_base, rx_size, tx_size, rx_region=None, tx_region=None):
        self.opaque = opaque
        self.context_id = context_id
        self.rx_base = rx_base
        self.tx_base = tx_base
        self.rx_size = rx_size
        self.tx_size = tx_size
        self.rx_region = rx_region
        self.tx_region = tx_region
        self.cnt_ackb = 0
        self.cnt_ecnb = 0
        self.cnt_fretx = 0
        self.rtt_est = 0
        self.rate = 0
        self.use_timestamps = True
        self.use_ecn = True

    def take_cc_stats(self):
        """Read-and-reset congestion statistics (control-plane poll)."""
        stats = (self.cnt_ackb, self.cnt_ecnb, self.cnt_fretx, self.rtt_est)
        self.cnt_ackb = 0
        self.cnt_ecnb = 0
        self.cnt_fretx = 0
        return stats

    def fold_rtt_samples(self, total_us, count):
        """Fold a batch of RTT samples into the EWMA estimate.

        Replicated post stages accumulate samples per replica (no shared
        read-modify-write); the drain at context-stage granularity folds
        the batch mean in here, from a single site. No-op when the batch
        is empty.
        """
        if count <= 0:
            return
        mean = total_us // count
        if self.rtt_est == 0:
            self.rtt_est = mean
        else:
            self.rtt_est = (7 * self.rtt_est + mean) // 8


#: Congestion-control counters the replicated post stage updates via the
#: atomic-add engine (paper §3.1: Stats is replicated; Laminar's
#: atomic/aggregate classification of replicated state).
atomic("post", "cnt_ackb", "cnt_ecnb", "cnt_fretx")


class HeartbeatBoard:
    """Per-stage-group heartbeat sequence numbers in CTM/EMEM.

    Each stage group's firmware bumps its own slot (single writer per
    key), so the per-group sequences need no atomicity; the aggregate
    ``hb_beats`` counter is bumped by every group and therefore goes
    through the atomic-add engine. The control plane samples the board
    over MMIO on its watchdog tick and declares the data path failed
    after a configured number of samples with no advancing beat.
    """

    __slots__ = ("groups", "hb_beats")

    def __init__(self):
        self.groups = {}  # (stage_kind, group) -> sequence number
        self.hb_beats = 0

    def publish(self, key):
        """One heartbeat from stage group ``key``; returns FPC cycles."""
        self.groups[key] = self.groups.get(key, 0) + 1
        return atomic_add(self, "hb_beats", 1)

    def snapshot(self):
        """Host-side MMIO read of every group's current sequence."""
        return dict(self.groups)


#: The aggregate heartbeat counter is written by every stage group, so
#: it must go through the atomic-add engine like the post counters.
atomic("heartbeat", "hb_beats")


TOTAL_STATE_BYTES = PreprocState.SIZE_BYTES + ProtocolState.SIZE_BYTES + PostprocState.SIZE_BYTES


class ConnectionRecord(SlabView):
    """One offloaded connection: the three partitions plus identity.

    The record owns one shared slab slot; ``pre``/``proto``/``post`` are
    borrowing views of the same slot, so the whole connection — identity
    included — is a single row across the slab's columns.
    """

    __slots__ = ("index", "_pre", "_proto", "_post")
    SLAB_FIELDS = ("local_mac", "local_ip", "active")

    def __init__(self, index, four_tuple, local_mac, local_ip):
        local_tuple_ip, remote_ip, local_port, remote_port = four_tuple
        if local_tuple_ip != local_ip:
            raise ValueError("four_tuple local ip does not match local_ip")
        self._bind()
        self.index = index
        self.local_mac = local_mac
        self.local_ip = local_ip
        self.active = True
        self._pre = None
        self._proto = None
        self._post = None
        self.pre.init(
            peer_mac=None,
            peer_ip=remote_ip,
            local_port=local_port,
            remote_port=remote_port,
            flow_group=0,
        )

    # The partition views are lazy and cached: actively-processed
    # connections materialize them once and keep them; quiescent
    # connections (bulk installs between bursts) can shed them via
    # compact() so a parked connection costs slab bytes, not objects.

    @property
    def pre(self):
        view = self._pre
        if view is None:
            view = self._pre = PreprocState.view(self.slab_slot)
        return view

    @property
    def proto(self):
        view = self._proto
        if view is None:
            view = self._proto = ProtocolState.view(self.slab_slot)
        return view

    @property
    def post(self):
        view = self._post
        if view is None:
            view = self._post = PostprocState.view(self.slab_slot)
        return view

    def compact(self):
        """Drop the cached partition views (recreated on next access).

        For connections installed quiescent (no traffic in flight) this
        trades three per-connection view objects for a recreate on first
        touch. The race sanitizer keys its ownership registry by slab
        slot, not view identity, so a view recreated after compact()
        reattaches to the same ownership token the control plane
        registered at install."""
        self._pre = None
        self._proto = None
        self._post = None

    @property
    def four_tuple(self):
        pre = self.pre
        return (self.local_ip, pre.peer_ip, pre.local_port, pre.remote_port)


#: Every connection (and every standalone partition instance tests
#: construct) lives in this one module-level slab. Column identity is
#: stable across growth, so the generated properties bind columns once.
_CONN_KINDS = {
    "fin_pending": FLAG,
    "use_timestamps": FLAG,
    "use_ecn": FLAG,
    "active": FLAG,
    "opaque": OBJ,
    "rx_region": OBJ,
    "tx_region": OBJ,
    # Narrow columns (Table 5 stores these as 1-2 hardware bytes):
    # ports are 16-bit by definition, flow groups index a small config
    # table, dupack_cnt is clamped to 15 by the protocol logic and
    # cnt_fretx saturates at 255 via atomic_add(maximum=255).
    "local_port": U16,
    "remote_port": U16,
    "flow_group": U16,
    "dupack_cnt": U8,
    "cnt_fretx": U8,
}

CONN_SLAB = Slab(
    fields=[
        (name, _CONN_KINDS.get(name, INT))
        for name in (
            PreprocState.SLAB_FIELDS
            + ProtocolState.SLAB_FIELDS
            + PostprocState.SLAB_FIELDS
            + ConnectionRecord.SLAB_FIELDS
        )
    ],
    initial=1024,
    name="conn",
)

attach_fields(PreprocState, CONN_SLAB, _CONN_KINDS)
attach_fields(ProtocolState, CONN_SLAB, _CONN_KINDS)
attach_fields(PostprocState, CONN_SLAB, _CONN_KINDS)
attach_fields(ConnectionRecord, CONN_SLAB, _CONN_KINDS)


class ConnectionTable:
    """The data-path connection table, indexed by connection id.

    The control plane installs records at connection setup (paper §3.4)
    and removes them at teardown. Indices are allocated to minimize
    collisions in the direct-mapped CLS cache (paper §4.1) — a simple
    ascending allocator achieves that layout — so the table is a dense
    list: one machine word per installed connection.
    """

    def __init__(self, capacity=1 << 20):
        self.capacity = capacity
        self._records = []  # index -> record (None = free slot)
        self._free_indices = []
        self._next_index = 0
        self._live = 0

    def install(self, record):
        index = record.index
        if index < len(self._records) and self._records[index] is not None:
            raise ValueError("connection index {} already installed".format(index))
        if index >= len(self._records):
            self._records.extend([None] * (index + 1 - len(self._records)))
        self._records[index] = record
        self._live += 1
        # Keep the allocator ahead of externally chosen indices so a
        # table rebuilt during crash recovery (records re-installed with
        # their pre-crash indices) never re-allocates a live index.
        if index >= self._next_index:
            self._next_index = index + 1

    def records(self):
        """Installed records in index order (deterministic iteration)."""
        return [record for record in self._records if record is not None]

    def allocate_index(self):
        if self._free_indices:
            return self._free_indices.pop()
        if self._next_index >= self.capacity:
            raise MemoryError("connection table full")
        index = self._next_index
        self._next_index += 1
        return index

    def remove(self, index):
        record = None
        if 0 <= index < len(self._records):
            record = self._records[index]
            self._records[index] = None
        if record is not None:
            record.active = False
            self._live -= 1
            self._free_indices.append(index)
        return record

    def get(self, index):
        if 0 <= index < len(self._records):
            return self._records[index]
        return None

    def __len__(self):
        return self._live

    def __iter__(self):
        return iter(self.records())
