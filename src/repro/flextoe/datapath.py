"""Data-path assembly: rings, sequencers, FPC assignment (paper Fig. 8).

The full deployment uses four *protocol islands* (one flow-group each:
4 pre FPCs + 1 protocol FPC + 4 post FPCs, 3 FPCs free for extension
modules) and one *service island* (context-queue FPCs ARX/ATX, the flow
scheduler SCH, DMA managers, NBI drain, GRO/BLM sequencing). Reduced
configurations (Table 3 ablation rows) claim proportionally fewer FPCs;
the run-to-completion baseline executes every stage inline on a single
FPC thread.
"""

from collections import deque

from repro.analysis import sanitizer
from repro.flextoe.ctxq import ContextQueuePair
from repro.flextoe.descriptors import SegWork, WORK_RX, WORK_TX
from repro.flextoe.scheduler import CarouselScheduler
from repro.flextoe.seqr import ReorderBuffer, Sequencer
from repro.flextoe.stages import CtxStage, DmaStage, NbiStage, PostStage, PreStage, ProtocolStage
from repro.flextoe.statecache import EmemStateCache, StateCache
from repro.flextoe.state import ConnectionTable, HeartbeatBoard
from repro.flextoe.tracing import TracepointRegistry
from repro.nfp.memory import LAT_IMEM
from repro.proto.ip import ECN_ECT0, ECN_NOT_ECT
from repro.proto.packet import Frame
from repro.sim import Interrupt, Resource, Store
from repro.nfp.queues import ClsRing, WorkQueue


class _ImemLevel:
    __slots__ = ("latency_cycles", "reads", "writes")

    def __init__(self):
        self.latency_cycles = LAT_IMEM
        self.reads = 0
        self.writes = 0


class _TxTriggerAdapter:
    """Presents the pre-stage input ring as the scheduler's TX ring,
    wrapping connection indices into SegWork items."""

    def __init__(self, dp):
        self.dp = dp

    def put(self, conn_index):
        work = SegWork(WORK_TX, born_at=self.dp.sim.now)
        work.conn_index = conn_index
        return self.dp.pre_in.put(work)


class FlexToeDatapath:
    """The wired pipeline on a given NFP chip."""

    #: Static pipeline-model anchors, parsed by repro.analysis.hblint.
    #: Sequencer domain -> the reorder buffer that restores its order.
    SEQR_DOMAINS = {"rx_seqr": "rx_gro", "nbi_seqr": "nbi_gro"}
    #: Rings whose enqueue order is a delivery-order contract, and the
    #: key the contract is per: per-connection for dma_ring (§3.1.3),
    #: per-context for ctx_ring (notification order is libTOE's stream
    #: order). nbi_ring is deliberately absent: wire-level reordering is
    #: TCP-tolerated, and the NBI GRO already restores ticket order.
    ORDERED_RINGS = {"dma_ring": "conn", "ctx_ring": "context"}

    def __init__(self, sim, chip, config, capture=None, ingress_modules=None, egress_modules=None, control_ring=None):
        self.sim = sim
        self.chip = chip
        self.config = config
        self.mac = chip.mac
        self.pcie = chip.pcie
        self.dma = chip.dma
        self.lookup_engine = chip.lookup_engine
        self.conn_table = ConnectionTable()
        self.tracepoints = TracepointRegistry(enabled=config.tracepoints_enabled)
        self.capture = capture
        self.ingress_modules = ingress_modules
        self.egress_modules = egress_modules
        self.contexts = {}
        self.stats = {}
        self.ecn_codepoint = ECN_ECT0 if config.use_ecn else ECN_NOT_ECT
        self.imem_latency_level = _ImemLevel()

        cap = config.ring_capacity
        self.pre_in = WorkQueue(sim, capacity=None, name="pre-in", backing="imem")
        self.proto_rings = [ClsRing(sim, capacity=cap, name="proto-in-%d" % g) for g in range(config.n_flow_groups)]
        self.post_rings = [ClsRing(sim, capacity=cap, name="post-in-%d" % g) for g in range(config.n_flow_groups)]
        self.dma_ring = WorkQueue(sim, capacity=None, name="dma-in", backing="imem")
        self.ctx_ring = WorkQueue(sim, capacity=None, name="ctx-in", backing="imem")
        self.nbi_ring = WorkQueue(sim, capacity=None, name="nbi-in", backing="imem")
        # The control ring lives in host memory: a NIC facade that reboots
        # the datapath passes the same ring so the control plane's RX loop
        # survives the swap.
        self.control_ring = control_ring if control_ring is not None else Store(sim, name="to-control")

        # Sequencing domains (§3.2).
        self.rx_seqr = Sequencer()
        self.rx_gro = ReorderBuffer(sim, output_fn=self._route_to_protocol, name="rx-gro")
        self.nbi_seqr = Sequencer()
        self.nbi_gro = ReorderBuffer(sim, output_ring=self.nbi_ring, name="nbi-gro")

        # Bounded NIC resources.
        self.ctm_pool = Resource(sim, capacity=max(8, 64 * config.n_flow_groups), name="ctm-segments")
        # Run-to-completion baseline: one segment in the whole NIC at a
        # time — service programs contend on this lock (Table 3 row 1).
        self.serial_lock = None if config.pipelined else Resource(sim, capacity=1, name="rtc-serial")
        self.descriptor_pool = Resource(sim, capacity=config.descriptor_pool, name="hc-descriptors")
        self._held_descriptors = deque()

        # conn_index -> completion event of that connection's latest RX
        # DMA work; chains notifications into pipeline order (§3.1.3)
        # even when individual DMA ops complete out of order.
        self.dma_rx_chain = {}
        # conn_index -> completion event of the latest work a post
        # thread popped for that connection; fences replicated post
        # threads so dma_ring preserves per-connection protocol order.
        self.post_chain = {}

        # Flow scheduler (service island SCH FPC).
        self.scheduler = CarouselScheduler(
            sim, _TxTriggerAdapter(self), mss=config.mss, costs=config.costs
        )

        # Stage objects.
        self.emem_state_cache = EmemStateCache(capacity_records=config.emem_cache_records)
        self.pre_stages = []
        self.protocol_stages = []
        self.post_stages = []
        self.dma_stages = []
        self.nbi_stage = NbiStage(self)
        self.ctx_stage = CtxStage(self)

        self.rx_frames_seen = 0
        self.rx_frames_dropped_full = 0

        #: stage kind -> [Fpc, ...]; lets the fault layer (repro.faults)
        #: target "stall a protocol FPC" without groping the islands.
        self.stage_fpcs = {}

        #: Every spawned data-path process (stage threads, GRO delivery,
        #: heartbeat publishers, snapshot DMA). crash() interrupts them all.
        self.processes = []
        self.crashed = False
        self.heartbeats = HeartbeatBoard()

        sanitizer.maybe_install_from_env()
        self._assign_fpcs()
        self._spawn_heartbeats()
        self.hb_monitor = None
        if sanitizer.enabled() and config.pipelined:
            # Differential check of the static happens-before model
            # against observed interleavings (passive ring taps; no sim
            # events, so golden digests are unchanged). RTC mode runs
            # every stage inline on one thread — nothing to order.
            from repro.analysis.hbmonitor import HbMonitor

            self.hb_monitor = HbMonitor(self)
        self.mac.rx_handler = self._on_mac_rx

    # -- construction ------------------------------------------------------

    def _killable(self, generator):
        """Outermost wrapper for every data-path process: a crash()
        interrupt terminates the program cleanly instead of propagating
        out of the simulator loop."""
        try:
            yield from generator
        except Interrupt:
            return

    def _spawn(self, fpc, program, name, stage_kind, flow_group=None):
        """Spawn a stage process, tagging it with ownership context when
        the runtime sanitizer is active (REPRO_SANITIZE=1)."""
        fpcs = self.stage_fpcs.setdefault(stage_kind, [])
        if fpc not in fpcs:
            fpcs.append(fpc)

        def factory(thread, _p=program, _k=stage_kind, _g=flow_group):
            generator = _p(thread)
            if sanitizer.enabled():
                generator = sanitizer.guard_process(generator, _k, _g)
            return self._killable(generator)

        thread = fpc.spawn(factory, name=name)
        self.processes.append(thread.process)
        return thread

    def _spawn_gro_delivery(self, gro, name, stage_kind):
        """Run a reorder buffer's delivery loop as its own sim process.

        The GRO/BLM FPCs are real pipeline actors in the paper (§3.2);
        running their releases inline in whichever stage happened to
        complete the sequence hid them from the runtime sanitizer. The
        dedicated process carries a ``gro``/``seqr`` owner token so
        REPRO_SANITIZE=1 attributes any illegal write it performs.
        """
        gro.use_process_delivery()
        generator = gro.delivery_program()
        if sanitizer.enabled():
            generator = sanitizer.guard_process(generator, stage_kind)
        process = self.sim.process(self._killable(generator), name=name)
        self.processes.append(process)
        return process

    def _spawn_heartbeats(self):
        """One heartbeat publisher per registered stage-group FPC.

        Publishers are zero-cost sim processes (the beat write itself is
        charged via the atomic engine), so they never perturb pipeline
        timing; they die with the data-path on crash(), which is exactly
        what stops the beats and trips the control-plane watchdog."""
        interval = self.config.heartbeat_interval_ns
        for stage_kind in sorted(self.stage_fpcs):
            for slot, _fpc in enumerate(self.stage_fpcs[stage_kind]):
                key = (stage_kind, slot)

                def publisher(_key=key):
                    while True:
                        yield self.sim.timeout(interval)
                        self.heartbeats.publish(_key)

                process = self.sim.process(
                    self._killable(publisher()), name="hb-{}-{}".format(stage_kind, slot)
                )
                self.processes.append(process)

    def enable_state_snapshots(self, writer, interval_ns):
        """Periodically DMA volatile protocol fields to a host shadow.

        ``writer(conn_index, snapshot_dict)`` runs host-side; the shadow
        it fills survives a data-path crash and bounds the staleness of
        the fields recovery cannot derive from descriptor history
        (``remote_win``, timestamp echo state)."""

        def snapshot_loop():
            while True:
                yield self.sim.timeout(interval_ns)
                records = self.conn_table.records()
                if not records:
                    continue
                yield self.dma.issue(0, 16 * len(records))
                now = self.sim.now
                for record in records:
                    proto = record.proto
                    writer(
                        record.index,
                        {
                            "remote_win": proto.remote_win,
                            "next_ts": proto.next_ts,
                            "sampled_at": now,
                        },
                    )

        process = self.sim.process(self._killable(snapshot_loop()), name="state-snapshot")
        self.processes.append(process)
        return process

    def crash(self):
        """Hard-stop the data path (fault injection / recovery quiesce).

        Kills every spawned process and detaches the NBI ingress handler;
        NIC-internal state (rings, caches, connection table) is dead with
        the chip. Host-visible memory — context queue pairs, the control
        ring, payload buffers — is untouched. Idempotent."""
        if self.crashed:
            return
        self.crashed = True
        self.mac.rx_handler = None
        for process in self.processes:
            if process.is_alive:
                process.interrupt("nic-crash")

    def _assign_fpcs(self):
        config = self.config
        chip = self.chip
        if not config.pipelined:
            # Run-to-completion polls the downstream rings synchronously
            # right after offering, so GRO delivery must stay inline.
            self._assign_run_to_completion()
            return
        self._spawn_gro_delivery(self.rx_gro, "rx-gro-deliver", "gro")
        self._spawn_gro_delivery(self.nbi_gro, "nbi-gro-deliver", "seqr")
        threads = config.threads_per_fpc
        # Protocol islands: flow-groups spread over the first N islands.
        for group in range(config.n_flow_groups):
            island = chip.islands[group % max(1, len(chip.islands) - 1)]
            cache = StateCache(
                lmem_entries=config.state_cache_lmem_entries,
                cls_entries=config.state_cache_cls_entries,
                emem_cache=self.emem_state_cache,
            )
            stage = ProtocolStage(self, group, cache)
            self.protocol_stages.append(stage)
            fpc = island.claim_fpc()
            for _ in range(threads):
                self._spawn(fpc, stage.program, "proto-g%d" % group, "proto", group)
            for replica in range(config.pre_replicas):
                pre = PreStage(self, replica_id=replica)
                self.pre_stages.append(pre)
                pre_fpc = island.claim_fpc()
                for _ in range(threads):
                    self._spawn(pre_fpc, pre.program, "pre-g%d-r%d" % (group, replica), "pre")
            for replica in range(config.post_replicas):
                post = PostStage(self, group, replica_id=replica)
                self.post_stages.append(post)
                post_fpc = island.claim_fpc()
                for _ in range(threads):
                    self._spawn(post_fpc, post.program, "post-g%d-r%d" % (group, replica), "post", group)
        # Service island: DMA managers, NBI, context queues, scheduler.
        service = chip.islands[-1]
        for replica in range(config.dma_replicas):
            dma = DmaStage(self, replica_id=replica)
            self.dma_stages.append(dma)
            fpc = service.claim_fpc()
            for _ in range(threads):
                self._spawn(fpc, dma.program, "dma-r%d" % replica, "dma")
        nbi_fpc = service.claim_fpc()
        for _ in range(max(1, threads // 2)):
            self._spawn(nbi_fpc, self.nbi_stage.program, "nbi", "nbi")
        ctx_fpc = service.claim_fpc()
        self._spawn(ctx_fpc, self.ctx_stage.atx_program, "ctx-atx", "ctx")
        for _ in range(max(1, threads - 1)):
            self._spawn(ctx_fpc, self.ctx_stage.arx_program, "ctx-arx", "ctx")
        sched_fpc = service.claim_fpc()
        self._spawn(sched_fpc, self.scheduler.program, "sch", "sch")

    def _assign_run_to_completion(self):
        """Table 3 baseline: the whole TCP data-path on one FPC thread.

        Stage *logic* is reused; only the execution structure changes:
        one worker thread pulls from a single merged queue and runs
        pre/protocol/post/DMA for each item to completion, waiting out
        every memory and PCIe latency inline. Service-infrastructure
        programs (scheduler, doorbell watcher, NBI drain) still run, on
        the same island.
        """
        chip = self.chip
        island = chip.islands[0]
        cache = StateCache(
            lmem_entries=self.config.state_cache_lmem_entries,
            cls_entries=self.config.state_cache_cls_entries,
            emem_cache=self.emem_state_cache,
        )
        pre = PreStage(self)
        proto = ProtocolStage(self, 0, cache)
        post = PostStage(self, 0)
        dma = DmaStage(self)
        self.pre_stages.append(pre)
        self.protocol_stages.append(proto)
        self.post_stages.append(post)
        self.dma_stages.append(dma)

        worker_fpc = island.claim_fpc()

        def worker(thread):
            while True:
                work = yield self.pre_in.get()
                grant = yield self.serial_lock.request()
                try:
                    yield from run_item(thread, work)
                finally:
                    grant.release()

        def run_item(thread, work):
            if work.kind == WORK_RX:
                yield from pre._handle_rx(thread, work)
            elif work.kind == WORK_TX:
                yield from pre._handle_tx(thread, work)
            else:
                yield from pre._handle_hc(thread, work)
            ok, work = self.proto_rings[0].store.try_get()
            if not ok:
                return
            yield from proto._process_one(thread, work)
            ok, work = self.post_rings[0].store.try_get()
            if not ok:
                return
            yield from post._process(thread, work)
            ok, work = self.dma_ring.store.try_get()
            if not ok:
                return
            yield from dma._process(thread, work)

        # The whole data-path runs on this one thread, so it legitimately
        # carries protocol ownership for the single flow group.
        self._spawn(worker_fpc, worker, "run-to-completion", "proto", 0)
        nbi_fpc = island.claim_fpc()
        self._spawn(nbi_fpc, self.nbi_stage.program, "nbi", "nbi")
        ctx_fpc = island.claim_fpc()
        self._spawn(ctx_fpc, self.ctx_stage.atx_program, "ctx-atx", "ctx")
        self._spawn(ctx_fpc, self.ctx_stage.arx_program, "ctx-arx", "ctx")
        sched_fpc = island.claim_fpc()
        self._spawn(sched_fpc, self.scheduler.program, "sch", "sch")

    # -- runtime entry points ----------------------------------------------

    def _on_mac_rx(self, frame):
        self.rx_frames_seen += 1
        work = SegWork(WORK_RX, frame=frame, born_at=self.sim.now)
        self.rx_seqr.assign(work)
        if not self.pre_in.try_put(work):
            self.rx_frames_dropped_full += 1
            self.rx_gro.skip(work.pipeline_seq)

    def _route_to_protocol(self, work):
        ring = self.proto_rings[work.flow_group]
        if not ring.try_put(work):
            ring.force_put(work)

    def make_frame(self, eth, ip, tcp):
        return Frame(eth, ip=ip, tcp=tcp, born_at=self.sim.now)

    def nic_transmit_direct(self, frame):
        """Bypass transmit for XDP_TX and control-plane frames."""
        self.mac.transmit(frame)

    # -- descriptor pool -----------------------------------------------------

    def hold_descriptor(self, grant):
        self._held_descriptors.append(grant)

    def release_descriptor(self):
        if self._held_descriptors:
            self._held_descriptors.popleft().release()

    # -- host/control interfaces ---------------------------------------------

    def register_context(self, context_id, capacity=1024):
        pair = ContextQueuePair(self.sim, context_id, capacity=capacity)
        self.contexts[context_id] = pair
        if self.hb_monitor is not None:
            self.hb_monitor.watch_context(pair)
        return pair

    def adopt_context(self, pair):
        """Re-bind an existing (host-memory) queue pair after a reboot."""
        self.contexts[pair.context_id] = pair
        if self.hb_monitor is not None:
            self.hb_monitor.watch_context(pair)

    def post_hc(self, context_id, descriptor):
        """libTOE helper: append a descriptor and ring the doorbell."""
        pair = self.contexts[context_id]
        if not pair.post_hc(descriptor):
            return False
        self.pcie.ring("hc")
        return True

    def install_connection(self, record):
        self.conn_table.install(record)
        self.lookup_engine.insert(record.four_tuple, record.index)
        if sanitizer.enabled():
            group = record.pre.flow_group
            sanitizer.register(record.pre, group)
            sanitizer.register(record.proto, group)
            sanitizer.register(record.post, group)

    def remove_connection(self, index):
        record = self.conn_table.remove(index)
        self.dma_rx_chain.pop(index, None)
        self.post_chain.pop(index, None)
        if self.hb_monitor is not None:
            self.hb_monitor.forget_conn(index)
        if record is not None:
            self.lookup_engine.remove(record.four_tuple)
            self.scheduler.remove_flow(index)
            if sanitizer.enabled():
                sanitizer.unregister(record.pre)
                sanitizer.unregister(record.proto)
                sanitizer.unregister(record.post)
        for stage in self.protocol_stages:
            stage.state_cache.invalidate(index)
        for stage in self.post_stages:
            stage.take_rtt_samples(index)
        return record

    def drain_rtt(self, index):
        """Aggregate per-replica RTT samples into the connection's EWMA.

        Replicated post instances accumulate (total, count) privately —
        ``rtt_est`` is an EWMA, so a shared read-modify-write would lose
        updates. The fold happens here, at context/control granularity
        (the paper's context stage is the serialization point toward the
        host), from a single site per poll.
        """
        record = self.conn_table.get(index)
        if record is None:
            return
        total = 0
        count = 0
        for stage in self.post_stages:
            stage_total, stage_count = stage.take_rtt_samples(index)
            total += stage_total
            count += stage_count
        record.post.fold_rtt_samples(total, count)
