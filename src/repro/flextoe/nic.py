"""The FlexTOE NIC: chip + data-path + the interfaces the host sees.

:class:`FlexToeNic` is what experiments instantiate: it owns an
:class:`~repro.nfp.Nfp4000`, wires the data-path, and exposes

* the network attachment (``attach_port``),
* the libTOE interface (contexts, doorbells, notifications),
* the control-plane interface (connection install/remove, raw frame
  TX/RX, congestion statistics, scheduler rate programming).
"""

from repro.flextoe.config import PipelineConfig
from repro.flextoe.datapath import FlexToeDatapath
from repro.flextoe.scheduler import rate_to_interval_q8
from repro.flextoe.state import ConnectionRecord
from repro.nfp import Nfp4000
from repro.sim import Store


class FlexToeNic:
    """A FlexTOE-programmed SmartNIC."""

    def __init__(self, sim, config=None, chip=None, capture=None, ingress_modules=None, egress_modules=None):
        self.sim = sim
        self.config = config or PipelineConfig.full()
        self.chip = chip or Nfp4000(sim)
        self._capture = capture
        self._ingress_modules = ingress_modules
        self._egress_modules = egress_modules
        # Host-memory control ring: survives data-path reboots so the
        # control plane's RX loop never has to re-subscribe.
        self._control_ring = Store(sim, name="to-control")
        self.port = None
        self.reboots = 0
        self.control_tx_dropped = 0
        self._snapshot_writer = None
        self._snapshot_interval_ns = None
        self.datapath = self._build_datapath()

    def _build_datapath(self):
        return FlexToeDatapath(
            self.sim,
            self.chip,
            self.config,
            capture=self._capture,
            ingress_modules=self._ingress_modules,
            egress_modules=self._egress_modules,
            control_ring=self._control_ring,
        )

    # -- network ----------------------------------------------------------

    def attach_port(self, port):
        self.port = port
        self.chip.mac.attach_port(port)

    # -- failure / recovery ---------------------------------------------------

    @property
    def crashed(self):
        return self.datapath.crashed

    def crash(self):
        """Hard-stop the data path (see FlexToeDatapath.crash)."""
        self.datapath.crash()

    def reboot(self):
        """Tear down the dead chip and bring up a fresh data path.

        Host shared memory survives: existing context queue pairs are
        re-bound into the new datapath and the control ring is reused.
        All NIC-internal connection state is gone — the control plane
        must re-offload every connection from its shadow."""
        self.crash()  # idempotent quiesce of whatever is still running
        old_contexts = self.datapath.contexts
        self.chip = Nfp4000(self.sim, config=self.chip.config)
        self.datapath = self._build_datapath()
        for pair in old_contexts.values():
            self.datapath.adopt_context(pair)
        if self.port is not None:
            self.attach_port(self.port)
        if self._snapshot_writer is not None:
            self.datapath.enable_state_snapshots(
                self._snapshot_writer, self._snapshot_interval_ns
            )
        self.reboots += 1

    def read_heartbeats(self):
        """Watchdog MMIO sample of the stage-group heartbeat board.

        A crashed chip still returns the (frozen) board — the watchdog
        detects failure by the beats not advancing, not by read errors."""
        return self.datapath.heartbeats.snapshot()

    def enable_state_snapshots(self, writer, interval_ns):
        """Arrange the periodic NIC->host state DMA (survives reboots)."""
        self._snapshot_writer = writer
        self._snapshot_interval_ns = interval_ns
        self.datapath.enable_state_snapshots(writer, interval_ns)

    # -- libTOE interface ----------------------------------------------------

    def register_context(self, context_id, capacity=1024):
        return self.datapath.register_context(context_id, capacity)

    def context_pair(self, context_id):
        """The (host-memory) queue pair for a context, or None."""
        return self.datapath.contexts.get(context_id)

    def post_hc(self, context_id, descriptor):
        return self.datapath.post_hc(context_id, descriptor)

    # -- control-plane interface ----------------------------------------------

    def offload_connection(
        self,
        index,
        four_tuple,
        peer_mac,
        local_mac,
        iss,
        irs,
        context_id,
        opaque,
        rx_buffer,
        tx_buffer,
        remote_win=0xFFFF,
        proto=None,
    ):
        """Install data-path state for an established connection (§3.4).

        ``rx_buffer``/``tx_buffer`` are (region, base_addr, size) triples
        from the host hugepage pool. ``proto`` may carry a pre-built
        ProtocolState (crash recovery re-offloads a reconstructed one);
        by default a fresh post-handshake state is created. Returns the
        ConnectionRecord — one shared slab slot whose ``pre``/``proto``/
        ``post`` views this method populates.
        """
        local_ip, remote_ip, local_port, remote_port = four_tuple
        flow_group = self.config.flow_group_of(four_tuple)
        record = ConnectionRecord(
            index=index,
            four_tuple=four_tuple,
            local_mac=local_mac,
            local_ip=local_ip,
        )
        record.pre.init(
            peer_mac=peer_mac,
            peer_ip=remote_ip,
            local_port=local_port,
            remote_port=remote_port,
            flow_group=flow_group,
        )
        rx_region, rx_base, rx_size = rx_buffer
        tx_region, tx_base, tx_size = tx_buffer
        if proto is None:
            record.proto.init(seq=iss, ack=irs, rx_avail=rx_size, remote_win=remote_win)
        else:
            # Recovery hands in a loose reconstructed state; copy it into
            # the record's slot so the data path sees one coherent row.
            record.proto.copy_from(proto)
        post = record.post
        post.init(
            opaque=opaque,
            context_id=context_id,
            rx_base=rx_base,
            tx_base=tx_base,
            rx_size=rx_size,
            tx_size=tx_size,
            rx_region=rx_region,
            tx_region=tx_region,
        )
        post.use_timestamps = self.config.use_timestamps
        post.use_ecn = self.config.use_ecn
        self.datapath.install_connection(record)
        return record

    def allocate_connection_index(self):
        return self.datapath.conn_table.allocate_index()

    def remove_connection(self, index):
        return self.datapath.remove_connection(index)

    def connection(self, index):
        return self.datapath.conn_table.get(index)

    def control_rx_ring(self):
        """Frames the data-path diverted to the control plane."""
        return self._control_ring

    def control_tx(self, frame):
        """Control-plane raw transmit (handshakes, RST), bypassing the
        data pipeline. A crashed NIC silently eats the frame (posted
        MMIO gives the host no error); recovery routes around this via
        the slow-path shim."""
        if self.datapath.crashed:
            self.control_tx_dropped += 1
            return
        self.datapath.nic_transmit_direct(frame)

    def read_cc_stats(self, index):
        """Control-plane poll of a connection's congestion statistics.

        Folds the replicated post stages' private RTT accumulators into
        the EWMA first, so the estimate reflects samples up to this poll.
        """
        record = self.datapath.conn_table.get(index)
        if record is None:
            return None
        self.datapath.drain_rtt(index)
        return record.post.take_cc_stats()

    def set_flow_rate(self, index, bytes_per_sec):
        """Program the flow scheduler's pacing interval via MMIO."""
        self.datapath.scheduler.set_interval(index, rate_to_interval_q8(bytes_per_sec))

    @property
    def scheduler(self):
        return self.datapath.scheduler

    @property
    def tracepoints(self):
        return self.datapath.tracepoints
