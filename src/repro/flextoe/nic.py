"""The FlexTOE NIC: chip + data-path + the interfaces the host sees.

:class:`FlexToeNic` is what experiments instantiate: it owns an
:class:`~repro.nfp.Nfp4000`, wires the data-path, and exposes

* the network attachment (``attach_port``),
* the libTOE interface (contexts, doorbells, notifications),
* the control-plane interface (connection install/remove, raw frame
  TX/RX, congestion statistics, scheduler rate programming).
"""

from repro.flextoe.config import PipelineConfig
from repro.flextoe.datapath import FlexToeDatapath
from repro.flextoe.scheduler import rate_to_interval_q8
from repro.flextoe.state import ConnectionRecord, PostprocState, PreprocState, ProtocolState
from repro.nfp import Nfp4000


class FlexToeNic:
    """A FlexTOE-programmed SmartNIC."""

    def __init__(self, sim, config=None, chip=None, capture=None, ingress_modules=None, egress_modules=None):
        self.sim = sim
        self.config = config or PipelineConfig.full()
        self.chip = chip or Nfp4000(sim)
        self.datapath = FlexToeDatapath(
            sim,
            self.chip,
            self.config,
            capture=capture,
            ingress_modules=ingress_modules,
            egress_modules=egress_modules,
        )

    # -- network ----------------------------------------------------------

    def attach_port(self, port):
        self.chip.mac.attach_port(port)

    # -- libTOE interface ----------------------------------------------------

    def register_context(self, context_id, capacity=1024):
        return self.datapath.register_context(context_id, capacity)

    def post_hc(self, context_id, descriptor):
        return self.datapath.post_hc(context_id, descriptor)

    # -- control-plane interface ----------------------------------------------

    def offload_connection(
        self,
        index,
        four_tuple,
        peer_mac,
        local_mac,
        iss,
        irs,
        context_id,
        opaque,
        rx_buffer,
        tx_buffer,
        remote_win=0xFFFF,
    ):
        """Install data-path state for an established connection (§3.4).

        ``rx_buffer``/``tx_buffer`` are (region, base_addr, size) triples
        from the host hugepage pool. Returns the ConnectionRecord.
        """
        local_ip, remote_ip, local_port, remote_port = four_tuple
        flow_group = self.config.flow_group_of(four_tuple)
        pre = PreprocState(
            peer_mac=peer_mac,
            peer_ip=remote_ip,
            local_port=local_port,
            remote_port=remote_port,
            flow_group=flow_group,
        )
        rx_region, rx_base, rx_size = rx_buffer
        tx_region, tx_base, tx_size = tx_buffer
        proto = ProtocolState(seq=iss, ack=irs, rx_avail=rx_size, remote_win=remote_win)
        post = PostprocState(
            opaque=opaque,
            context_id=context_id,
            rx_base=rx_base,
            tx_base=tx_base,
            rx_size=rx_size,
            tx_size=tx_size,
            rx_region=rx_region,
            tx_region=tx_region,
        )
        post.use_timestamps = self.config.use_timestamps
        post.use_ecn = self.config.use_ecn
        record = ConnectionRecord(
            index=index,
            four_tuple=four_tuple,
            pre=pre,
            proto=proto,
            post=post,
            local_mac=local_mac,
            local_ip=local_ip,
        )
        self.datapath.install_connection(record)
        return record

    def allocate_connection_index(self):
        return self.datapath.conn_table.allocate_index()

    def remove_connection(self, index):
        return self.datapath.remove_connection(index)

    def connection(self, index):
        return self.datapath.conn_table.get(index)

    def control_rx_ring(self):
        """Frames the data-path diverted to the control plane."""
        return self.datapath.control_ring

    def control_tx(self, frame):
        """Control-plane raw transmit (handshakes, RST), bypassing the
        data pipeline."""
        self.datapath.nic_transmit_direct(frame)

    def read_cc_stats(self, index):
        """Control-plane poll of a connection's congestion statistics.

        Folds the replicated post stages' private RTT accumulators into
        the EWMA first, so the estimate reflects samples up to this poll.
        """
        record = self.datapath.conn_table.get(index)
        if record is None:
            return None
        self.datapath.drain_rtt(index)
        return record.post.take_cc_stats()

    def set_flow_rate(self, index, bytes_per_sec):
        """Program the flow scheduler's pacing interval via MMIO."""
        self.datapath.scheduler.set_interval(index, rate_to_interval_q8(bytes_per_sec))

    @property
    def scheduler(self):
        return self.datapath.scheduler

    @property
    def tracepoints(self):
        return self.datapath.tracepoints
