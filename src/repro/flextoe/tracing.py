"""Data-path tracepoints and statistics (paper §5.1, Table 2).

The paper implements 48 tracepoints covering transport events (drops,
out-of-order segments, retransmissions), inter-module queue occupancies,
and protocol-stage critical-section lengths. Enabling them costs FPC
cycles per segment — Table 2 measures a 24 % throughput hit — so the
registry exposes a per-event cycle cost that stage programs charge when
tracing is on.
"""

from repro.sim import TraceRecorder

#: The tracepoint catalog: event name -> extra FPC cycles when enabled.
TRACEPOINTS = {
    # transport events
    "rx.segment": 24,
    "rx.out_of_order": 32,
    "rx.ooo_drop": 32,
    "rx.duplicate": 24,
    "rx.window_trim": 24,
    "rx.fin": 24,
    "rx.ce_mark": 24,
    "tx.segment": 24,
    "tx.fin": 24,
    "tx.stale_trigger": 24,
    "ack.sent": 20,
    "ack.dup_sent": 24,
    "retransmit.fast": 40,
    "retransmit.timeout": 40,
    # host interface
    "hc.descriptor": 24,
    "hc.doorbell": 20,
    "notify.rx": 20,
    "notify.tx_acked": 20,
    "notify.fin": 20,
    # queues and critical sections
    "queue.pre_in": 28,
    "queue.proto_in": 28,
    "queue.post_in": 28,
    "queue.dma_in": 28,
    "queue.ctx_in": 28,
    "queue.nbi_in": 28,
    "proto.critical_section": 36,
    "proto.state_miss": 28,
    "dma.payload_issue": 24,
    "dma.fetch_issue": 24,
    "sched.trigger": 20,
    "sched.rate_limited": 24,
}


class TracepointRegistry:
    """Holds enablement state and the shared recorder."""

    __slots__ = ("recorder", "enabled", "_active")

    def __init__(self, enabled=False, recorder=None):
        self.recorder = recorder or TraceRecorder(enabled=enabled, limit=200_000)
        self.enabled = enabled
        self._active = set(TRACEPOINTS) if enabled else set()

    def enable_all(self):
        self.enabled = True
        self.recorder.enabled = True
        self._active = set(TRACEPOINTS)

    def disable_all(self):
        self.enabled = False
        self.recorder.enabled = False
        self._active.clear()

    def enable(self, names):
        self.enabled = True
        self.recorder.enabled = True
        self._active.update(names)

    def cost(self, name):
        """Extra cycles the hosting FPC must charge for this event."""
        if name in self._active:
            return TRACEPOINTS.get(name, 20)
        return 0

    def hit(self, now, source, name, payload=None):
        """Record the event (if enabled); returns the cycle cost."""
        if name not in self._active:
            return 0
        self.recorder.emit(now, source, name, payload)
        return TRACEPOINTS.get(name, 20)

    def count(self, name=None, source=None):
        return self.recorder.count(source=source, event=name)

    @property
    def n_tracepoints(self):
        return len(TRACEPOINTS)
