"""Pipeline configuration: parallelism knobs and per-stage cycle costs.

The knobs correspond exactly to the rows of Table 3:

* ``pipelined=False`` — run-to-completion baseline: one FPC thread
  executes every stage (including DMA waits) for one segment at a time.
* ``threads_per_fpc`` — intra-FPC hardware threading (1 vs 8).
* ``pre_replicas``/``post_replicas`` — replicated pre/post stages with
  sequencing + reordering for correctness.
* ``n_flow_groups`` — protocol islands (1 vs 4).

Cycle costs are the model's calibration surface; they are rough NFP
micro-C instruction counts, not measurements, and the benchmarks only
rely on their relative magnitudes.
"""


class StageCosts:
    """Per-operation FPC cycle costs for each pipeline stage."""

    def __init__(
        self,
        pre_validate=95,
        pre_identify=60,
        pre_summary=85,
        pre_steer=25,
        proto_update=115,
        proto_ooo_extra=130,
        proto_fast_retransmit=90,
        post_ack_prepare=150,
        post_stamp=55,
        post_stats=60,
        post_position=70,
        dma_issue=70,
        ctx_notify=80,
        ctx_doorbell_poll=40,
        hc_window_update=70,
        tx_alloc=50,
        tx_header=65,
        tx_seq=85,
        sched_dequeue=45,
    ):
        self.pre_validate = pre_validate
        self.pre_identify = pre_identify
        self.pre_summary = pre_summary
        self.pre_steer = pre_steer
        self.proto_update = proto_update
        self.proto_ooo_extra = proto_ooo_extra
        self.proto_fast_retransmit = proto_fast_retransmit
        self.post_ack_prepare = post_ack_prepare
        self.post_stamp = post_stamp
        self.post_stats = post_stats
        self.post_position = post_position
        self.dma_issue = dma_issue
        self.ctx_notify = ctx_notify
        self.ctx_doorbell_poll = ctx_doorbell_poll
        self.hc_window_update = hc_window_update
        self.tx_alloc = tx_alloc
        self.tx_header = tx_header
        self.tx_seq = tx_seq
        self.sched_dequeue = sched_dequeue


class PipelineConfig:
    """Data-path deployment configuration (replication is static, §3.3)."""

    def __init__(
        self,
        pipelined=True,
        threads_per_fpc=8,
        pre_replicas=4,
        post_replicas=4,
        n_flow_groups=4,
        dma_replicas=4,
        ring_capacity=128,
        descriptor_pool=256,
        mss=1448,
        ack_every_segment=True,
        delayed_ack_segments=1,
        use_timestamps=True,
        use_ecn=True,
        tracepoints_enabled=False,
        tcpdump_enabled=False,
        costs=None,
        xdp_ingress=None,
        extra_trace_overhead_cycles=0,
        state_cache_lmem_entries=16,
        state_cache_cls_entries=512,
        emem_cache_records=16384,
        heartbeat_interval_ns=50_000,
    ):
        if n_flow_groups < 1:
            raise ValueError("need at least one flow group")
        self.pipelined = pipelined
        self.threads_per_fpc = threads_per_fpc
        self.pre_replicas = pre_replicas
        self.post_replicas = post_replicas
        self.n_flow_groups = n_flow_groups
        self.dma_replicas = dma_replicas
        self.ring_capacity = ring_capacity
        self.descriptor_pool = descriptor_pool
        self.mss = mss
        self.ack_every_segment = ack_every_segment
        self.delayed_ack_segments = max(1, delayed_ack_segments)
        self.use_timestamps = use_timestamps
        self.use_ecn = use_ecn
        self.tracepoints_enabled = tracepoints_enabled
        self.tcpdump_enabled = tcpdump_enabled
        self.costs = costs or StageCosts()
        self.xdp_ingress = xdp_ingress
        self.extra_trace_overhead_cycles = extra_trace_overhead_cycles
        self.state_cache_lmem_entries = state_cache_lmem_entries
        self.state_cache_cls_entries = state_cache_cls_entries
        self.emem_cache_records = emem_cache_records
        self.heartbeat_interval_ns = heartbeat_interval_ns

    @classmethod
    def baseline_run_to_completion(cls):
        """Table 3 row 1: everything serial on one FPC thread.

        The monolithic program cannot pin per-stage state in local
        memory, so its connection-state caches are effectively absent
        (every access goes to EMEM), and all NIC service activity
        (descriptor fetch, notifications, NBI) serializes with segment
        processing."""
        return cls(
            pipelined=False,
            threads_per_fpc=1,
            pre_replicas=1,
            post_replicas=1,
            n_flow_groups=1,
            dma_replicas=1,
            state_cache_lmem_entries=1,
            state_cache_cls_entries=1,
        )

    @classmethod
    def pipelined_single_thread(cls):
        """Table 3 row 2: pipeline stages on dedicated FPCs, 1 thread each."""
        return cls(pipelined=True, threads_per_fpc=1, pre_replicas=1, post_replicas=1, n_flow_groups=1, dma_replicas=1)

    @classmethod
    def with_intra_fpc_parallelism(cls):
        """Table 3 row 3: + 8 hardware threads per FPC."""
        return cls(pipelined=True, threads_per_fpc=8, pre_replicas=1, post_replicas=1, n_flow_groups=1, dma_replicas=1)

    @classmethod
    def with_replicated_pre_post(cls):
        """Table 3 row 4: + replicated pre/post stages."""
        return cls(pipelined=True, threads_per_fpc=8, pre_replicas=4, post_replicas=4, n_flow_groups=1, dma_replicas=2)

    @classmethod
    def full(cls):
        """Table 3 row 5: + four flow-group islands (the default)."""
        return cls()

    def flow_group_of(self, four_tuple):
        """hash(4-tuple) % n_flow_groups (paper Table 5: flow_group)."""
        from repro.nfp.cam import crc32_tuple

        return crc32_tuple(*four_tuple) % self.n_flow_groups
