"""Connection-state caching for the protocol stage (paper §4.1).

Three levels: a 16-entry CAM-backed LRU cache in FPC local memory, a
512-entry direct-mapped second level in island CLS, and EMEM (fronted by
its SRAM cache) as the backing store. The cache only models *latency* —
state objects are always coherent Python objects — but the level at which
an access hits determines the cycles charged, which is what produces the
Figure 14 connection-scalability curve.
"""

from repro.nfp.cam import Cam
from repro.nfp.memory import LAT_CLS, LAT_EMEM, LAT_EMEM_CACHE, LAT_LMEM


class EmemStateCache:
    """The chip-wide EMEM SRAM cache, shared by all flow groups.

    Capacity is expressed in connection records (the paper fits ~16K
    records of 108 B in the 3 MB SRAM alongside other EMEM traffic).
    """

    def __init__(self, capacity_records=16384):
        self.cam = Cam(capacity=capacity_records)

    def access(self, conn_index):
        """Returns the access latency in cycles and refreshes residency."""
        hit, _ = self.cam.lookup(conn_index)
        self.cam.insert(conn_index, True)
        return LAT_EMEM_CACHE if hit else LAT_EMEM


class StateCache:
    """Per-protocol-FPC cache hierarchy."""

    def __init__(self, lmem_entries=16, cls_entries=512, emem_cache=None):
        self.lmem = Cam(capacity=lmem_entries)
        self.cls_entries = cls_entries
        self.cls_slots = {}
        self.emem_cache = emem_cache or EmemStateCache()
        self.hits_lmem = 0
        self.hits_cls = 0
        self.misses = 0
        self.forced_flushes = 0

    #: Issue-slot cycles spent *moving* a 108-byte record (read/write
    #: commands, tag checks, eviction bookkeeping). Unlike the wait
    #: latency — which other hardware threads hide — these instructions
    #: occupy the protocol FPC and are what bend the Figure 14 curve
    #: ("a cache miss at every pipeline stage for every segment").
    ISSUE_CLS = 25
    ISSUE_EMEM = 200

    def access(self, conn_index):
        """Charge for bringing ``conn_index``'s state to local memory.

        Returns ``(latency_cycles, issue_cycles)``: the off-slot wait
        and the on-slot instruction cost of the state movement.
        """
        hit, _ = self.lmem.lookup(conn_index)
        if hit:
            self.hits_lmem += 1
            return LAT_LMEM, 0
        latency = 0
        issue = 0
        slot = conn_index % self.cls_entries
        if self.cls_slots.get(slot) == conn_index:
            self.hits_cls += 1
            latency += LAT_CLS
            issue += self.ISSUE_CLS
        else:
            self.misses += 1
            latency += self.emem_cache.access(conn_index)
            issue += self.ISSUE_EMEM
            evicted_slot_owner = self.cls_slots.get(slot)
            if evicted_slot_owner is not None:
                latency += LAT_CLS  # write back the displaced record
            self.cls_slots[slot] = conn_index
            latency += LAT_CLS  # install into CLS
        evicted = self.lmem.insert(conn_index, True)
        if evicted is not None:
            latency += LAT_CLS  # write back from local memory to CLS
        return latency, issue

    def access_latency(self, conn_index):
        """Latency-only view (compatibility for tests/tools)."""
        latency, _issue = self.access(conn_index)
        return latency

    def flush(self):
        """Evict every cached record (fault injection: forced eviction).

        The next access per connection falls through to the EMEM path,
        recreating the cold-cache cost the Figure 14 curve measures.
        """
        self.forced_flushes += 1
        self.lmem.clear()
        self.cls_slots.clear()

    def invalidate(self, conn_index):
        self.lmem.invalidate(conn_index)
        slot = conn_index % self.cls_entries
        if self.cls_slots.get(slot) == conn_index:
            del self.cls_slots[slot]

    @property
    def hit_rate_lmem(self):
        total = self.hits_lmem + self.hits_cls + self.misses
        return self.hits_lmem / total if total else 0.0
