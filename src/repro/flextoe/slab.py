"""Array-of-struct slab storage for per-connection state.

FlexTOE's premise is that data-path connection state is *small and
flat* — Table 5 packs a connection into 108 bytes precisely so a million
of them fit in NIC memory. The original Python model stored each
partition as a heap object (hundreds of bytes of CPython overhead per
connection), which made per-connection cost objects, not bytes. This
module provides the storage layer that restores the paper's O(bytes)
footprint: preallocated column arrays ("slabs") indexed by slot id, with
thin *flyweight* views exposing the exact attribute API the stages, the
sanitizer and the stagelint write-set analysis already use.

Layout
------

A :class:`Slab` is a structure-of-arrays pool. Every declared field is
one column:

* ``INT`` — an ``array('q')`` of signed 64-bit values. Two sentinel
  encodings keep the column total: ``None`` is stored as a reserved
  sentinel, and rare non-integer values (tests pass MAC bytes / dotted
  IP strings) spill into a per-column overflow dict keyed by slot.
  Inline integers must sit above ``_SENT_FLOOR``; anything else spills.
* ``FLAG`` — an ``array('b')`` column read back as real ``bool``.
* ``U8`` / ``U16`` — ``array('B')`` / ``array('H')`` narrow unsigned
  columns for ports, flow groups and small saturating counters. No
  sentinels and no overflow: the declared range *is* the invariant
  (Table 5 stores these as 1–2 hardware bytes), so an out-of-range
  write raises immediately instead of silently widening.
* ``OBJ`` — a plain list column for reference fields (host memory
  regions, opaque app handles, snapshot dicts).

Scalar columns support zero-copy inspection via :meth:`Slab.column_view`
(a ``memoryview``), which the property tests use to check that freed
slots are fully zeroed before reuse.

Flyweights
----------

A :class:`SlabView` subclass declares its fields in a class-level
``SLAB_FIELDS`` tuple (statically parseable, like ``__slots__`` —
``repro.analysis.stagelint`` reads it for partition ownership) and gets
one generated ``property`` per field via :func:`attach_fields`. The
properties close over the column objects themselves (columns grow with
``array.extend`` in place, so identity is stable), making an attribute
access one bound-method call plus one array index.

Because fields are plain data descriptors, attribute *writes* still
dispatch through ``cls.__setattr__`` -> ``object.__setattr__`` ->
``property.__set__`` — the race sanitizer's ``__setattr__``
instrumentation keeps working unchanged, and
``cls.__setattr__ is object.__setattr__`` stays true when it is not
installed.

Ownership: a view constructed normally allocates its own slot and frees
it when garbage collected; :meth:`SlabView.view` binds a borrowing view
onto an existing slot (the three partitions of one
:class:`~repro.flextoe.state.ConnectionRecord` share the record's
slot). Slot reclamation rides CPython's deterministic refcounting, so
slab allocation order — and therefore every simulation that touches it —
stays reproducible.
"""

from array import array

INT = "int"
FLAG = "flag"
U8 = "u8"
U16 = "u16"
OBJ = "obj"

#: array typecode per scalar kind (OBJ columns are plain lists).
_TYPECODES = {INT: "q", FLAG: "b", U8: "B", U16: "H"}

#: storage bytes per slot for one column of each kind. OBJ is charged
#: one machine word (the CPython list cell), matching what a hardware
#: layout would spend on a handle.
_KIND_BYTES = {INT: 8, FLAG: 1, U8: 1, U16: 2, OBJ: 8}

#: Inline int values must be strictly above this floor; the space below
#: is reserved for sentinels. (No protocol field comes near -2**60.)
_SENT_FLOOR = -(1 << 60)
_NONE = -(1 << 62)  # field holds None
_SPILL = -(1 << 62) + 1  # value lives in the column's overflow dict
_INLINE_MAX = (1 << 63) - 1  # top of array('q') range

#: Growth step (slots) once the initial preallocation is full. Linear,
#: not geometric: doubling a million-connection pool would strand up to
#: half the columns as dead capacity, and ``array.extend`` is amortized
#: O(1) per slot either way. Worst-case slack is one chunk.
_GROW_STEP = 4096


class Slab:
    """A preallocated array-of-struct pool indexed by slot id."""

    __slots__ = (
        "name",
        "fields",
        "capacity",
        "live",
        "high_water",
        "columns",
        "overflow",
        "on_free",
        "_free",
        "_next",
    )

    def __init__(self, fields, initial=1024, name="slab"):
        self.name = name
        self.fields = tuple(fields)  # (field_name, kind) pairs
        seen = set()
        for field_name, kind in self.fields:
            if field_name in seen:
                raise ValueError("duplicate slab field {!r}".format(field_name))
            if kind not in _KIND_BYTES:
                raise ValueError("unknown slab kind {!r}".format(kind))
            seen.add(field_name)
        self.capacity = 0
        self.live = 0
        self.high_water = 0
        self.columns = {}
        self.overflow = {}  # INT columns only: slot -> spilled value
        self._free = []  # LIFO, so slot reuse is deterministic
        self._next = 0
        # Optional observer called with the slot id on every free(); the
        # race sanitizer uses it to drop ownership registrations before
        # the slot can be recycled for an unrelated connection.
        self.on_free = None
        for field_name, kind in self.fields:
            self.columns[field_name] = [] if kind == OBJ else array(_TYPECODES[kind])
            if kind == INT:
                self.overflow[field_name] = {}
        self._grow(max(1, initial))

    def _grow(self, count):
        zeros = [0] * count
        nones = [None] * count
        for field_name, kind in self.fields:
            self.columns[field_name].extend(nones if kind == OBJ else zeros)
        self.capacity += count

    def alloc(self):
        """Claim a zeroed slot; grows the pool when exhausted."""
        if self._free:
            slot = self._free.pop()
        else:
            if self._next >= self.capacity:
                self._grow(_GROW_STEP)
            slot = self._next
            self._next += 1
        self.live += 1
        if self.live > self.high_water:
            self.high_water = self.live
        return slot

    def free(self, slot):
        """Release ``slot``, zeroing every column so reuse starts clean."""
        for field_name, kind in self.fields:
            if kind == OBJ:
                self.columns[field_name][slot] = None
            else:
                self.columns[field_name][slot] = 0
            ovf = self.overflow.get(field_name)
            if ovf:
                ovf.pop(slot, None)
        self.live -= 1
        self._free.append(slot)
        if self.on_free is not None:
            self.on_free(slot)

    def column_view(self, field_name):
        """Zero-copy ``memoryview`` of a scalar (INT/FLAG) column."""
        column = self.columns[field_name]
        if isinstance(column, list):
            raise TypeError("{}: OBJ columns have no buffer".format(field_name))
        return memoryview(column)

    def bytes_per_slot(self):
        """Storage cost of one slot across all columns."""
        return sum(_KIND_BYTES[kind] for _name, kind in self.fields)

    def stats(self):
        return {
            "name": self.name,
            "capacity": self.capacity,
            "live": self.live,
            "high_water": self.high_water,
            "bytes_per_slot": self.bytes_per_slot(),
            "overflow_entries": sum(len(ovf) for ovf in self.overflow.values()),
        }


def _int_property(column, overflow):
    def fget(self):
        value = column[self._i]
        if value > _SENT_FLOOR:
            return value
        if value == _NONE:
            return None
        return overflow[self._i]

    def fset(self, value):
        if value is None:
            column[self._i] = _NONE
            if overflow:
                overflow.pop(self._i, None)
        elif type(value) is int and _SENT_FLOOR < value <= _INLINE_MAX:
            column[self._i] = value
            if overflow:
                overflow.pop(self._i, None)
        else:
            # Rare: non-int identity values (MAC bytes, dotted-quad
            # strings) or out-of-range ints spill out of the column.
            column[self._i] = _SPILL
            overflow[self._i] = value

    return property(fget, fset)


def _flag_property(column):
    def fget(self):
        return column[self._i] != 0

    def fset(self, value):
        column[self._i] = 1 if value else 0

    return property(fget, fset)


def _narrow_property(column, field_name):
    def fget(self):
        return column[self._i]

    def fset(self, value):
        # The array enforces the declared range; surface the field name
        # because the OverflowError alone only mentions the typecode.
        try:
            column[self._i] = value
        except (OverflowError, TypeError) as exc:
            raise type(exc)("{}: {}".format(field_name, exc)) from None

    return property(fget, fset)


def _obj_property(column):
    def fget(self):
        return column[self._i]

    def fset(self, value):
        column[self._i] = value

    return property(fget, fset)


class SlabView:
    """Flyweight over one slab slot; subclasses declare ``SLAB_FIELDS``."""

    __slots__ = ("_i", "_own")

    #: Set by attach_fields().
    SLAB = None
    SLAB_FIELDS = ()

    def _bind(self, slot=None):
        """Attach to ``slot``, or allocate (and own) a fresh one."""
        if slot is None:
            self._i = type(self).SLAB.alloc()
            self._own = True
        else:
            self._i = slot
            self._own = False

    @classmethod
    def view(cls, slot):
        """A borrowing view of an existing slot (no init, no ownership)."""
        self = cls.__new__(cls)
        self._i = slot
        self._own = False
        return self

    @property
    def slab_slot(self):
        return self._i

    def copy_from(self, other):
        """Field-wise copy from another view (or any duck-typed object)."""
        for field_name in type(self).SLAB_FIELDS:
            setattr(self, field_name, getattr(other, field_name))

    def __del__(self):
        try:
            if self._own:
                type(self).SLAB.free(self._i)
        except Exception:  # pragma: no cover - interpreter shutdown
            pass


def attach_fields(cls, slab, kinds=None):
    """Install slab-backed properties for ``cls.SLAB_FIELDS`` on ``cls``.

    ``kinds`` maps field name -> INT/FLAG/OBJ (INT is the default). The
    generated properties close over the column objects, so they must be
    attached against the slab instance the class will live on.
    """
    kinds = kinds or {}
    cls.SLAB = slab
    for field_name in cls.SLAB_FIELDS:
        kind = kinds.get(field_name, INT)
        column = slab.columns[field_name]
        if kind == INT:
            prop = _int_property(column, slab.overflow[field_name])
        elif kind == FLAG:
            prop = _flag_property(column)
        elif kind in (U8, U16):
            prop = _narrow_property(column, field_name)
        else:
            prop = _obj_property(column)
        setattr(cls, field_name, prop)
    return cls
