"""Segment sequencing and reordering (paper §3.2).

Parallel pipeline stages may reorder segments; TCP cannot tolerate that.
A :class:`Sequencer` tags work entering the pipeline; a
:class:`ReorderBuffer` (the GRO FPCs) buffers and releases work in tag
order before the protocol stage and before the NBI. A stage dropping a
tagged segment must call :meth:`ReorderBuffer.skip` so the stream does
not stall — exactly the BLM bookkeeping the paper assigns its own FPCs.

Delivery has two modes. By default releases happen inline, in whichever
process called :meth:`offer`/:meth:`skip` (required by the
run-to-completion baseline, whose worker polls the downstream ring
synchronously). The pipelined datapath instead calls
:meth:`use_process_delivery` and spawns :meth:`delivery_program` as a
real sim process, so the GRO's releases run under their own sanitizer
owner token rather than the offering stage's.
"""

from collections import deque


class Sequencer:
    """Issues dense per-domain sequence numbers."""

    def __init__(self):
        self._next = 0

    def assign(self, work):
        work.pipeline_seq = self._next
        self._next += 1
        return work.pipeline_seq

    @property
    def issued(self):
        return self._next


class ReorderBuffer:
    """Releases work items in sequence order into an output ring.

    Out-of-order arrivals are buffered; ``skip()`` advances past dropped
    sequence numbers. The buffer is unbounded in entries but its peak
    occupancy is recorded (inter-module queue occupancy is one of the
    paper's 48 tracepoints).
    """

    def __init__(self, sim, output_ring=None, output_fn=None, name="reorder"):
        self.sim = sim
        self.output_ring = output_ring
        self.output_fn = output_fn
        self.name = name
        self._expected = 0
        self._pending = {}
        self._skipped = set()
        self.released = 0
        self.buffered_peak = 0
        self.out_of_order_arrivals = 0
        self._process_delivery = False
        self._outbox = None
        self._wake = None

    def offer(self, work):
        """Accept a tagged work item; release everything now in order."""
        seq = work.pipeline_seq
        if seq is None:
            raise ValueError("work item was never sequenced")
        if seq < self._expected or seq in self._pending:
            raise ValueError("duplicate pipeline sequence {}".format(seq))
        if seq != self._expected:
            self.out_of_order_arrivals += 1
        self._pending[seq] = work
        if len(self._pending) > self.buffered_peak:
            self.buffered_peak = len(self._pending)
        self._drain()

    def skip(self, seq):
        """Mark a sequence number as dropped mid-pipeline."""
        if seq < self._expected:
            return
        self._skipped.add(seq)
        self._drain()

    def use_process_delivery(self):
        """Switch to asynchronous delivery via :meth:`delivery_program`.

        Must be called before any work is offered; the caller is
        responsible for spawning the program as a sim process.
        """
        self._process_delivery = True
        self._outbox = deque()

    def delivery_program(self):
        """The GRO delivery loop, run as a dedicated sim process."""
        while True:
            while self._outbox:
                self._deliver(self._outbox.popleft())
            self._wake = self.sim.event()
            yield self._wake

    def _notify(self):
        wake = self._wake
        if wake is not None and not wake.triggered:
            self._wake = None
            wake.succeed()

    def _drain(self):
        while True:
            if self._expected in self._skipped:
                self._skipped.discard(self._expected)
                self._expected += 1
                continue
            work = self._pending.pop(self._expected, None)
            if work is None:
                return
            self._expected += 1
            self.released += 1
            if self._process_delivery:
                self._outbox.append(work)
                self._notify()
                continue
            self._deliver(work)

    def _deliver(self, work):
        if self.output_fn is not None:
            self.output_fn(work)
            return
        # Rings between reorder and protocol are sized for the burst;
        # a full ring here would deadlock the drain, so grow instead.
        if not self.output_ring.try_put(work):
            self.output_ring.force_put(work)

    @property
    def buffered(self):
        return len(self._pending)

    @property
    def expected(self):
        return self._expected
