"""tcpdump-style traffic logging on the data-path (paper §5.1).

A :class:`PacketCapture` hooks ingress and egress, applies a header
filter, and logs matching frames; logging a frame costs FPC cycles
(serialization into a capture ring), which is why Table 2 shows up to a
43 % throughput hit with no filter. Captured frames can be written out
in libpcap format for offline inspection.
"""

import struct

#: FPC cycles to copy+log one frame into the capture ring.
CAPTURE_COST_CYCLES = 260
#: Cycles to evaluate the filter on a non-matching frame.
FILTER_COST_CYCLES = 25

PCAP_MAGIC = 0xA1B2C3D4
PCAP_LINKTYPE_ETHERNET = 1


class PacketFilter:
    """A conjunctive header-field filter (tcpdump-expression subset)."""

    def __init__(self, src_ip=None, dst_ip=None, sport=None, dport=None, tcp_flags_any=None):
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self.sport = sport
        self.dport = dport
        self.tcp_flags_any = tcp_flags_any

    def matches(self, frame):
        if self.src_ip is not None and (frame.ip is None or frame.ip.src != self.src_ip):
            return False
        if self.dst_ip is not None and (frame.ip is None or frame.ip.dst != self.dst_ip):
            return False
        if self.sport is not None and (frame.tcp is None or frame.tcp.sport != self.sport):
            return False
        if self.dport is not None and (frame.tcp is None or frame.tcp.dport != self.dport):
            return False
        if self.tcp_flags_any is not None:
            if frame.tcp is None or not (frame.tcp.flags & self.tcp_flags_any):
                return False
        return True


class PacketCapture:
    """Captures (timestamp, direction, wire bytes) for matching frames."""

    def __init__(self, packet_filter=None, snaplen=96, limit=100_000):
        self.filter = packet_filter
        self.snaplen = snaplen
        self.limit = limit
        self.records = []
        self.matched = 0
        self.truncated_drops = 0

    def cost_cycles(self, frame):
        """FPC cycles this frame costs at the capture hook."""
        if self.filter is not None and not self.filter.matches(frame):
            return FILTER_COST_CYCLES
        return CAPTURE_COST_CYCLES

    def capture(self, now_ns, direction, frame):
        """Record the frame if it matches; returns True when captured."""
        if self.filter is not None and not self.filter.matches(frame):
            return False
        self.matched += 1
        if len(self.records) >= self.limit:
            self.truncated_drops += 1
            return True
        wire = frame.pack()[: self.snaplen]
        self.records.append((now_ns, direction, frame.wire_len, wire))
        return True

    def write_pcap(self, path):
        """Dump captured frames as a libpcap file."""
        with open(path, "wb") as out:
            out.write(
                struct.pack(
                    "!IHHiIII",
                    PCAP_MAGIC,
                    2,
                    4,
                    0,
                    0,
                    self.snaplen,
                    PCAP_LINKTYPE_ETHERNET,
                )
            )
            for now_ns, _direction, orig_len, wire in self.records:
                seconds, nanos = divmod(now_ns, 1_000_000_000)
                out.write(struct.pack("!IIII", seconds, nanos // 1000, len(wire), orig_len))
                out.write(wire)

    def __len__(self):
        return len(self.records)


def read_pcap(path):
    """Parse a libpcap file written by :meth:`PacketCapture.write_pcap`.

    Returns a list of (timestamp_ns, captured_bytes, original_length).
    """
    with open(path, "rb") as source:
        header = source.read(24)
        if len(header) < 24:
            raise ValueError("truncated pcap global header")
        magic, major, minor, _zone, _sig, _snaplen, linktype = struct.unpack("!IHHiIII", header)
        if magic != PCAP_MAGIC:
            raise ValueError("bad pcap magic 0x{:08x}".format(magic))
        if linktype != PCAP_LINKTYPE_ETHERNET:
            raise ValueError("unsupported link type {}".format(linktype))
        records = []
        while True:
            record_header = source.read(16)
            if not record_header:
                return records
            if len(record_header) < 16:
                raise ValueError("truncated pcap record header")
            seconds, micros, incl, orig = struct.unpack("!IIII", record_header)
            data = source.read(incl)
            if len(data) < incl:
                raise ValueError("truncated pcap record body")
            records.append((seconds * 1_000_000_000 + micros * 1_000, data, orig))
