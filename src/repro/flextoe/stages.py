"""The five data-path pipeline stages as FPC programs (paper §3.1).

Each stage class is constructed with the shared :class:`FlexToeDatapath`
(rings, tables, engines) and exposes ``program(thread)`` — a generator
run on one FPC hardware thread. Replication = spawning the program on
more FPCs/threads. Stage logic that is pure TCP lives in
:mod:`repro.flextoe.proto_logic`; this module charges cycles, touches
memories, and moves work between rings.
"""

from repro.flextoe import proto_logic
from repro.flextoe.descriptors import (
    NOTIFY_FIN,
    NOTIFY_RX,
    NOTIFY_TX_ACKED,
    HeaderSummary,
    Notification,
    ProtoSnapshot,
    SegWork,
    WORK_HC,
    WORK_RX,
    WORK_TX,
)
from repro.flextoe.module import ACTION_DROP, ACTION_REDIRECT, ACTION_TX
from repro.flextoe.state import atomic_add
from repro.nfp.cam import Cam
from repro.nfp.memory import LAT_LMEM
from repro.proto.ethernet import ETHERTYPE_IPV4, EthernetHeader
from repro.proto.ip import IPPROTO_TCP, Ipv4Header
from repro.proto.tcp import FLAG_ACK, FLAG_ECE, FLAG_FIN, FLAG_PSH, TcpHeader, TcpOptions


def now_us(sim):
    """Timestamp-option clock: microseconds of simulated time."""
    return (sim.now // 1000) & 0xFFFFFFFF


class PreStage:
    """Pre-processing: Val / Id / Sum / Steer, plus TX Alloc/Head and HC
    steering. Replicated freely; RX order restored by the GRO."""

    #: Static pipeline-model anchors, parsed by repro.analysis.hblint.
    STAGE_KIND = "pre"
    REPLICATED = True

    def __init__(self, dp, replica_id=0):
        self.dp = dp
        self.replica_id = replica_id
        self.id_cache = Cam(capacity=128)  # direct-mapped lookup cache (§4.1)
        self.validated = 0
        self.to_control = 0
        self.lookup_misses = 0
        self.csum_drops = 0

    def program(self, thread):
        dp = self.dp
        while True:
            work = yield dp.pre_in.get()
            if work.kind == WORK_RX:
                yield from self._handle_rx(thread, work)
            elif work.kind == WORK_TX:
                yield from self._handle_tx(thread, work)
            else:
                yield from self._handle_hc(thread, work)

    # -- RX ----------------------------------------------------------------

    def _handle_rx(self, thread, work):
        dp = self.dp
        costs = dp.config.costs
        frame = work.frame
        trace = dp.tracepoints
        yield from thread.compute(costs.pre_validate + trace.hit(dp.sim.now, "pre", "rx.segment"))
        if dp.capture is not None:
            yield from thread.compute(dp.capture.cost_cycles(frame))
            dp.capture.capture(dp.sim.now, "rx", frame)
        if dp.ingress_modules is not None and len(dp.ingress_modules):
            yield from thread.compute(dp.ingress_modules.total_cost)
            action = dp.ingress_modules.run(frame, work)
            if action == ACTION_DROP:
                dp.rx_gro.skip(work.pipeline_seq)
                return
            if action == ACTION_TX:
                dp.rx_gro.skip(work.pipeline_seq)
                dp.stats["xdp_tx"] = dp.stats.get("xdp_tx", 0) + 1
                dp.nic_transmit_direct(frame)
                return
            if action == ACTION_REDIRECT:
                dp.rx_gro.skip(work.pipeline_seq)
                yield dp.control_ring.put(frame)
                return
        # Val: the checksum verified by the pre-processor rejects frames
        # whose payload was corrupted in flight (repro.faults marks them
        # ``csum_bad`` instead of recomputing a wrong 16-bit sum).
        if frame.get_meta("csum_bad"):
            self.csum_drops += 1
            dp.rx_gro.skip(work.pipeline_seq)
            return
        # Val: only established-connection data-path segments continue.
        if frame.tcp is None or frame.ip is None or not frame.tcp.is_data_path:
            self.to_control += 1
            dp.rx_gro.skip(work.pipeline_seq)
            yield dp.control_ring.put(frame)
            return
        # Id: connection lookup (local CAM, then the IMEM engine).
        four = (frame.ip.dst, frame.ip.src, frame.tcp.dport, frame.tcp.sport)
        hit, conn_index = self.id_cache.lookup(four)
        if not hit:
            yield from thread.mem_read(dp.imem_latency_level)
            found, conn_index, _probes = dp.lookup_engine.lookup(four)
            yield from thread.compute(costs.pre_identify)
            if not found:
                self.to_control += 1
                dp.rx_gro.skip(work.pipeline_seq)
                yield dp.control_ring.put(frame)
                return
            self.id_cache.insert(four, conn_index)
            self.lookup_misses += 1
        record = dp.conn_table.get(conn_index)
        if record is None or not record.active:
            self.to_control += 1
            dp.rx_gro.skip(work.pipeline_seq)
            yield dp.control_ring.put(frame)
            return
        # Sum: build the header summary; later stages never see headers.
        yield from thread.compute(costs.pre_summary)
        tcp = frame.tcp
        work.summary = HeaderSummary(
            seq=tcp.seq,
            ack=tcp.ack,
            flags=tcp.flags,
            window=tcp.window,
            payload_len=len(frame.payload),
            ts_val=tcp.options.ts_val,
            ts_ecr=tcp.options.ts_ecr,
            ce_marked=frame.ip.ce_marked,
        )
        work.conn_index = conn_index
        work.flow_group = record.pre.flow_group
        self.validated += 1
        # Steer: in pipeline-sequence order through the GRO.
        yield from thread.compute(costs.pre_steer)
        dp.rx_gro.offer(work)

    # -- TX ----------------------------------------------------------------

    def _handle_tx(self, thread, work):
        dp = self.dp
        costs = dp.config.costs
        record = dp.conn_table.get(work.conn_index)
        if record is None or not record.active:
            return
        # Alloc: a segment buffer from the island CTM pool (bounded).
        grant = yield dp.ctm_pool.request()
        yield from thread.compute(costs.tx_alloc)
        # Head: Ethernet and IP headers from pre-processor state.
        yield from thread.compute(costs.tx_header)
        pre = record.pre
        eth = EthernetHeader(dst=pre.peer_mac, src=record.local_mac, ethertype=ETHERTYPE_IPV4)
        ip = Ipv4Header(src=record.local_ip, dst=pre.peer_ip, proto=IPPROTO_TCP, ecn=dp.ecn_codepoint)
        tcp = TcpHeader(sport=pre.local_port, dport=pre.remote_port)
        frame = dp.make_frame(eth, ip, tcp)
        work.frame = frame
        work.frame.set_meta("ctm_grant", grant)
        work.flow_group = pre.flow_group
        yield from thread.compute(costs.pre_steer)
        yield dp.proto_rings[work.flow_group].put(work)

    # -- HC ----------------------------------------------------------------

    def _handle_hc(self, thread, work):
        dp = self.dp
        record = dp.conn_table.get(work.hc.conn_index)
        yield from thread.compute(dp.config.costs.pre_steer + dp.tracepoints.hit(dp.sim.now, "pre", "hc.descriptor"))
        if record is None or not record.active:
            dp.release_descriptor()
            return
        work.conn_index = work.hc.conn_index
        work.flow_group = record.pre.flow_group
        yield dp.proto_rings[work.flow_group].put(work)


class ProtocolStage:
    """The atomic per-connection stage: one FPC per flow-group.

    Multiple hardware threads overlap *different* connections' state
    fetches; per-connection processing order is preserved with a busy
    map, keeping the stage atomic and in-order per connection while
    still hiding memory latency (the paper's design exactly)."""

    STAGE_KIND = "proto"
    REPLICATED = False  # one FPC per flow group
    SERIALIZES_PER_CONN = True  # the _busy map: per-conn program order

    def __init__(self, dp, flow_group, state_cache):
        self.dp = dp
        self.flow_group = flow_group
        self.state_cache = state_cache
        self._busy = {}
        self.processed = {WORK_RX: 0, WORK_TX: 0, WORK_HC: 0}
        self.stale_tx_triggers = 0

    def program(self, thread):
        dp = self.dp
        ring = dp.proto_rings[self.flow_group]
        while True:
            work = yield ring.get()
            conn = work.conn_index
            if conn in self._busy:
                self._busy[conn].append(work)
                continue
            self._busy[conn] = []
            yield from self._process_until_idle(thread, conn, work)

    def _process_until_idle(self, thread, conn, work):
        while True:
            yield from self._process_one(thread, work)
            pending = self._busy[conn]
            if pending:
                work = pending.pop(0)
                continue
            del self._busy[conn]
            return

    def _process_one(self, thread, work):
        dp = self.dp
        costs = dp.config.costs
        trace = dp.tracepoints
        record = dp.conn_table.get(work.conn_index)
        if record is None or not record.active:
            self._abandon(work)
            return
        # Fetch connection state (LMEM/CLS/EMEM hierarchy, §4.1): the
        # wait latency hides behind other hardware threads, but the
        # record-movement instructions occupy this FPC's issue slot.
        latency, issue = self.state_cache.access(work.conn_index)
        if latency > LAT_LMEM:
            yield from thread.mem_read(_LatencyLevel(latency), issue_cycles=2 + issue)
            extra = trace.hit(dp.sim.now, "proto", "proto.state_miss")
            if extra:
                yield from thread.compute(extra)
        state = record.proto
        snapshot = ProtoSnapshot(work.kind)
        if work.kind == WORK_RX:
            yield from self._process_rx(thread, work, record, state, snapshot)
        elif work.kind == WORK_TX:
            done = yield from self._process_tx(thread, work, record, state, snapshot)
            if not done:
                return
        else:
            yield from self._process_hc(thread, work, record, state, snapshot)
        extra = trace.hit(dp.sim.now, "proto", "proto.critical_section")
        if extra:
            yield from thread.compute(extra)
        work.snapshot = snapshot
        self.processed[work.kind] += 1
        yield dp.post_rings[self.flow_group].put(work)

    def _abandon(self, work):
        """Connection disappeared mid-pipeline: free held resources."""
        if work.frame is not None:
            grant = work.frame.get_meta("ctm_grant")
            if grant is not None:
                grant.release()
        if work.kind == WORK_HC:
            self.dp.release_descriptor()

    def _process_rx(self, thread, work, record, state, snapshot):
        dp = self.dp
        costs = dp.config.costs
        trace = dp.tracepoints
        summary = work.summary
        cycles = costs.proto_update
        result = proto_logic.process_rx(state, summary, work.frame.payload, now_us(dp.sim))
        if result.was_ooo:
            cycles += costs.proto_ooo_extra
            cycles += trace.hit(dp.sim.now, "proto", "rx.out_of_order")
        if result.dropped_ooo:
            cycles += trace.hit(dp.sim.now, "proto", "rx.ooo_drop")
        if result.fast_retransmit:
            cycles += costs.proto_fast_retransmit
            cycles += trace.hit(dp.sim.now, "proto", "retransmit.fast")
        yield from thread.compute(cycles)
        send_ack = result.send_ack
        if (
            send_ack
            and dp.config.delayed_ack_segments > 1
            and not result.ack_is_dup
            and not result.was_ooo
            and not result.fin_notified
        ):
            # Optional delayed-ACK variant (ablation only): FPCs lack
            # timers, so coalescing is purely count-based and the
            # default remains ACK-every-segment (paper §5.2).
            state.delack_cnt += 1
            if state.delack_cnt < dp.config.delayed_ack_segments:
                send_ack = False
            else:
                state.delack_cnt = 0
        snapshot.send_ack = send_ack
        snapshot.dup_ack = result.ack_is_dup
        snapshot.ack_seq = state.seq
        snapshot.ack_ack = state.ack
        snapshot.window = proto_logic.advertised_window(state)
        snapshot.echo_ts = result.echo_ts
        snapshot.ece = summary.ce_marked
        snapshot.acked_bytes = result.acked_bytes
        snapshot.notify_rx_pos = result.notify_rx_pos
        snapshot.notify_rx_len = result.notify_rx_len
        snapshot.fin_notified = result.fin_notified
        snapshot.fast_retransmit = result.fast_retransmit
        snapshot.payload_dest_pos = result.payload_dest_pos
        snapshot.payload = result.payload
        snapshot.rtt_sample_ecr = result.rtt_sample_ecr
        # The incoming segment's ECE flag feeds the sender's DCTCP stats.
        if summary.flags & FLAG_ECE:
            snapshot.ece = True
        if result.acked_bytes > 0 or result.fast_retransmit or summary.window is not None:
            snapshot.fs_sendable = state.flight_limit()
        if snapshot.send_ack:
            # The ACK will leave the NIC: take its NBI ordering ticket
            # here, in protocol-processing order (§3.2, example 3).
            snapshot.nbi_seq = dp.nbi_seqr.assign(work)
        # The inbound frame is consumed here; drop the reference so the
        # payload is not retained past the one-shot access.
        work.frame = None

    def _process_tx(self, thread, work, record, state, snapshot):
        dp = self.dp
        costs = dp.config.costs
        trace = dp.tracepoints
        result = proto_logic.process_tx(state, dp.config.mss)
        yield from thread.compute(costs.tx_seq)
        if result is None:
            self.stale_tx_triggers += 1
            extra = trace.hit(dp.sim.now, "proto", "tx.stale_trigger")
            if extra:
                yield from thread.compute(extra)
            self._abandon(work)
            # Refresh the scheduler so it stops triggering a dry flow.
            dp.scheduler.fs_update(work.conn_index, state.flight_limit())
            return False
        tcp = work.frame.tcp
        tcp.seq = result.seq
        tcp.ack = result.ack
        tcp.window = result.window
        tcp.flags = FLAG_ACK | (FLAG_PSH if result.length else 0) | (FLAG_FIN if result.fin else 0)
        snapshot.tx = result
        snapshot.fs_sendable = state.flight_limit()
        snapshot.window = result.window
        # Timestamp echo for the outgoing segment is sampled *here*, in
        # the atomic protocol stage — the DMA stage stamps headers but
        # must not read protocol state (Table 5 partitioning; a read at
        # DMA time would race the next RX's next_ts update).
        snapshot.echo_ts = state.next_ts
        trace.hit(dp.sim.now, "proto", "tx.segment")
        snapshot.nbi_seq = dp.nbi_seqr.assign(work)
        return True

    def _process_hc(self, thread, work, record, state, snapshot):
        dp = self.dp
        costs = dp.config.costs
        result = proto_logic.process_hc(state, work.hc)
        yield from thread.compute(costs.hc_window_update)
        snapshot.fs_sendable = result.fs_sendable
        snapshot.free_descriptor = True
        snapshot.send_window_update = result.send_window_update
        if result.send_window_update:
            snapshot.send_ack = True
            snapshot.ack_seq = state.seq
            snapshot.ack_ack = state.ack
            snapshot.window = proto_logic.advertised_window(state)
            snapshot.echo_ts = state.next_ts
            snapshot.nbi_seq = dp.nbi_seqr.assign(work)


class _LatencyLevel:
    """Adapter presenting a raw latency as a memory level for FpcThread."""

    __slots__ = ("latency_cycles", "reads", "writes")

    def __init__(self, latency_cycles):
        self.latency_cycles = latency_cycles
        self.reads = 0
        self.writes = 0


class PostStage:
    """Post-processing: Ack / Stamp / Stats / Pos, FS updates, and
    notification allocation. Replicated freely (read-only app state)."""

    STAGE_KIND = "post"
    REPLICATED = True

    def __init__(self, dp, flow_group, replica_id=0):
        self.dp = dp
        self.flow_group = flow_group
        self.replica_id = replica_id
        self.acks_built = 0
        # Cumulative (never reset), unlike post.cnt_fretx which the
        # congestion-control stats drain consumes and clears.
        self.fast_retransmits = 0
        # conn_index -> (total_us, count): this replica's private RTT
        # sample accumulator. rtt_est is an EWMA — not commutative — so
        # replicas must not read-modify-write it; the datapath drains
        # these into PostprocState.fold_rtt_samples at poll time.
        self.rtt_samples = {}

    def take_rtt_samples(self, conn_index):
        """Drain this replica's (total_us, count) RTT accumulator."""
        return self.rtt_samples.pop(conn_index, (0, 0))

    def program(self, thread):
        dp = self.dp
        ring = dp.post_rings[self.flow_group]
        while True:
            work = yield ring.get()
            # Per-connection order fence: replicated post threads may
            # finish out of order (variable compute, stalls), but one
            # connection's works must enter dma_ring in protocol order —
            # notification order is delivery order for libTOE (§3.1.3).
            # Register synchronously at pop time; pop order is protocol
            # order because the proto stage serializes per connection.
            prev_chain = dp.post_chain.get(work.conn_index)
            done = dp.sim.event()
            dp.post_chain[work.conn_index] = done
            emit = yield from self._process(thread, work)
            if prev_chain is not None and not prev_chain.triggered:
                yield prev_chain
            if emit:
                yield dp.dma_ring.put(work)
            done.succeed()

    def _process(self, thread, work):
        dp = self.dp
        costs = dp.config.costs
        trace = dp.tracepoints
        record = dp.conn_table.get(work.conn_index)
        snapshot = work.snapshot
        if record is None:
            # The connection was torn down while this work was between
            # the protocol and post stages (rapid connect/close churn
            # makes this race real). Free everything the work still
            # holds — most importantly its NBI ordering ticket, without
            # which the reorder buffer stalls all later egress frames.
            if snapshot.free_descriptor:
                dp.release_descriptor()
            if snapshot.nbi_seq is not None:
                dp.nbi_gro.skip(snapshot.nbi_seq)
            if work.frame is not None:
                grant = work.frame.get_meta("ctm_grant")
                if grant is not None:
                    grant.release()
            return False
        post = record.post
        cycles = costs.post_stats
        # Stats: congestion-control counters, read by the control plane.
        # Counters are commutative and go through the atomic-add engine
        # (declared in state.atomic()); replicated post instances may
        # update them concurrently without losing increments.
        if snapshot.acked_bytes > 0:
            cycles += atomic_add(post, "cnt_ackb", snapshot.acked_bytes)
            if snapshot.ece:
                cycles += atomic_add(post, "cnt_ecnb", snapshot.acked_bytes)
        if snapshot.fast_retransmit:
            cycles += atomic_add(post, "cnt_fretx", 1, maximum=255)
            self.fast_retransmits += 1
        if snapshot.rtt_sample_ecr is not None and post.use_timestamps:
            sample = (now_us(dp.sim) - snapshot.rtt_sample_ecr) & 0xFFFFFFFF
            if sample < 1_000_000:  # discard absurd samples (wrap)
                # EWMA is not commutative: accumulate privately per
                # replica; drained at context-stage granularity.
                total, count = self.rtt_samples.get(work.conn_index, (0, 0))
                self.rtt_samples[work.conn_index] = (total + sample, count + 1)
        # FS: flow-scheduler refresh (NIC-internal memory write).
        if snapshot.fs_sendable is not None:
            dp.scheduler.fs_update(work.conn_index, snapshot.fs_sendable)
        notifications = []
        if snapshot.acked_bytes > 0:
            notifications.append(
                Notification(
                    NOTIFY_TX_ACKED,
                    post.opaque,
                    work.conn_index,
                    context_id=post.context_id,
                    length=snapshot.acked_bytes,
                    created_at=dp.sim.now,
                )
            )
            trace.hit(dp.sim.now, "post", "notify.tx_acked")
        if snapshot.notify_rx_len:
            notifications.append(
                Notification(
                    NOTIFY_RX,
                    post.opaque,
                    work.conn_index,
                    context_id=post.context_id,
                    offset=snapshot.notify_rx_pos % post.rx_size,
                    length=snapshot.notify_rx_len,
                    created_at=dp.sim.now,
                )
            )
            trace.hit(dp.sim.now, "post", "notify.rx")
        if snapshot.fin_notified:
            notifications.append(
                Notification(
                    NOTIFY_FIN, post.opaque, work.conn_index, context_id=post.context_id, created_at=dp.sim.now
                )
            )
            trace.hit(dp.sim.now, "post", "notify.fin")
        work.notify = notifications
        # Ack: build the acknowledgment segment (RX and window updates).
        if snapshot.send_ack:
            cycles += costs.post_ack_prepare
            options = None
            if post.use_timestamps:
                cycles += costs.post_stamp
                options = TcpOptions(ts_val=now_us(dp.sim), ts_ecr=snapshot.echo_ts or 0)
            pre = record.pre
            flags = FLAG_ACK | (FLAG_ECE if (snapshot.ece and post.use_ecn) else 0)
            eth = EthernetHeader(dst=pre.peer_mac, src=record.local_mac, ethertype=ETHERTYPE_IPV4)
            ip = Ipv4Header(src=record.local_ip, dst=pre.peer_ip, proto=IPPROTO_TCP, ecn=dp.ecn_codepoint)
            tcp = TcpHeader(
                sport=pre.local_port,
                dport=pre.remote_port,
                seq=snapshot.ack_seq,
                ack=snapshot.ack_ack,
                flags=flags,
                window=snapshot.window,
                options=options,
            )
            work.ack_frame = dp.make_frame(eth, ip, tcp)
            self.acks_built += 1
            trace.hit(dp.sim.now, "post", "ack.dup_sent" if snapshot.dup_ack else "ack.sent")
        # Pos: physical placement for the DMA stage.
        if work.kind == WORK_RX and snapshot.payload_dest_pos is not None:
            cycles += costs.post_position
            work.rx_offset = snapshot.payload_dest_pos % post.rx_size
            work.rx_trimmed_payload = snapshot.payload
        if work.kind == WORK_TX and snapshot.tx is not None:
            cycles += costs.post_position
            work.tx_offset = snapshot.tx.stream_pos % post.tx_size
            work.tx_len = snapshot.tx.length
        yield from thread.compute(cycles)
        if snapshot.free_descriptor:
            dp.release_descriptor()
        return bool(
            work.kind == WORK_TX or work.rx_trimmed_payload or work.ack_frame is not None or notifications
        )


class DmaStage:
    """Payload movement over PCIe, then NBI/context-queue handoff.

    Ordering rule (§3.1.3): payload DMA completes before either the peer
    ACK leaves the NIC or libTOE sees the notification."""

    STAGE_KIND = "dma"
    REPLICATED = True

    def __init__(self, dp, replica_id=0):
        self.dp = dp
        self.replica_id = replica_id
        self.payload_ops = 0

    def program(self, thread):
        dp = self.dp
        while True:
            work = yield dp.dma_ring.get()
            yield from self._process(thread, work)

    def _split_wrap(self, offset, length, size):
        """Circular-buffer split: one or two (offset, length) chunks."""
        if length <= 0:
            return []
        first = min(length, size - offset)
        chunks = [(offset, first)]
        if first < length:
            chunks.append((0, length - first))
        return chunks

    def _process(self, thread, work):
        dp = self.dp
        costs = dp.config.costs
        record = dp.conn_table.get(work.conn_index)
        if record is None:
            # Torn down mid-pipeline: drop the segment, but release the
            # NBI ordering ticket taken at the protocol stage or every
            # later egress frame stalls in the reorder buffer.
            if work.snapshot is not None and work.snapshot.nbi_seq is not None:
                dp.nbi_gro.skip(work.snapshot.nbi_seq)
            self._release_ctm(work)
            return
        post = record.post
        if work.kind == WORK_RX:
            payload = work.rx_trimmed_payload
            # Per-connection completion chain: a segment's notification
            # (and ACK) may not overtake an earlier segment's still-
            # pending payload DMA — otherwise libTOE would see NOTIFY_RX
            # out of order and stitch the stream wrong (§3.1.3). DMA
            # retries (repro.faults DmaFlake) make this reordering real.
            prev_chain = None
            done = None
            if payload or work.notify or work.ack_frame is not None:
                prev_chain = dp.dma_rx_chain.get(work.conn_index)
                done = dp.sim.event()
                dp.dma_rx_chain[work.conn_index] = done
            if payload:
                yield from thread.compute(costs.dma_issue)
                dp.tracepoints.hit(dp.sim.now, "dma", "dma.payload_issue")
                events = []
                written = 0
                for offset, length in self._split_wrap(work.rx_offset, len(payload), post.rx_size):
                    if post.rx_region is not None:
                        post.rx_region.write(offset, payload[written : written + length])
                    written += length
                    events.append(dp.dma.issue(self.replica_id, length))
                for event in events:
                    yield event
                self.payload_ops += 1
            if prev_chain is not None and not prev_chain.triggered:
                yield prev_chain
            # Payload is in host memory. Write-ahead rule: when the
            # segment carries a notification, its ACK must not reach the
            # wire before the notification is host-visible — otherwise a
            # data-path crash in between leaves the peer believing bytes
            # were delivered that the host-side recovery shadow never saw
            # (and that the peer will therefore never retransmit). The
            # ACK rides the last notification; ARX releases it after
            # nic_deliver. Its NBI ordering ticket was taken at the
            # protocol stage, so wire order is unchanged.
            ack_frame = work.ack_frame
            if ack_frame is not None:
                ack_frame.pipeline_seq = work.pipeline_seq
            notifications = work.notify or ()
            if notifications and ack_frame is not None:
                notifications[-1].piggyback_ack = ack_frame
                ack_frame = None
            for notification in notifications:
                yield dp.ctx_ring.put(notification)
            if ack_frame is not None:
                dp.nbi_gro.offer(ack_frame)
            if done is not None:
                done.succeed()
        elif work.kind == WORK_TX:
            yield from thread.compute(costs.dma_issue)
            parts = []
            events = []
            for offset, length in self._split_wrap(work.tx_offset, work.tx_len, post.tx_size):
                if post.tx_region is not None:
                    parts.append(post.tx_region.read(offset, length))
                else:
                    parts.append(b"\x00" * length)
                events.append(dp.dma.issue(self.replica_id, length))
            for event in events:
                yield event
            frame = work.frame
            frame.payload = b"".join(parts)
            frame.ip.total_len = frame.ip.wire_len + frame.tcp.wire_len + len(frame.payload)
            if dp.config.use_timestamps:
                frame.tcp.options = TcpOptions(
                    ts_val=now_us(dp.sim), ts_ecr=work.snapshot.echo_ts
                )
            frame.pipeline_seq = work.pipeline_seq
            self.payload_ops += 1
            dp.nbi_gro.offer(frame)
        else:
            # HC work carries no payload and — because the protocol
            # stage's HC path never produces acked_bytes/notify_rx/fin —
            # no notifications either; the post stage only forwards it
            # here when a window-update ACK must leave the NIC. Its NBI
            # ordering ticket was taken at the protocol stage.
            ack_frame = work.ack_frame
            if ack_frame is not None:
                ack_frame.pipeline_seq = work.pipeline_seq
                dp.nbi_gro.offer(ack_frame)

    def _release_ctm(self, work):
        if work.frame is not None:
            grant = work.frame.get_meta("ctm_grant")
            if grant is not None:
                grant.release()


class NbiStage:
    """Drains the (reordered) NBI ring onto the wire; runs egress hooks."""

    STAGE_KIND = "nbi"
    REPLICATED = False

    def __init__(self, dp):
        self.dp = dp
        self.transmitted = 0

    def program(self, thread):
        dp = self.dp
        while True:
            frame = yield dp.nbi_ring.get()
            serial = None
            if dp.serial_lock is not None:
                serial = yield dp.serial_lock.request()
            if dp.egress_modules is not None and len(dp.egress_modules):
                yield from thread.compute(dp.egress_modules.total_cost)
                action = dp.egress_modules.run(frame, None)
                if action == ACTION_DROP:
                    self._free(frame)
                    if serial is not None:
                        serial.release()
                    continue
            if dp.capture is not None:
                yield from thread.compute(dp.capture.cost_cycles(frame))
                dp.capture.capture(dp.sim.now, "tx", frame)
            self.transmitted += 1
            dp.mac.transmit(frame)
            self._free(frame)
            if serial is not None:
                serial.release()

    def _free(self, frame):
        grant = frame.get_meta("ctm_grant")
        if grant is not None:
            grant.release()


class CtxStage:
    """Context-queue FPCs: ARX (notifications to host) and ATX (doorbells
    to HC work)."""

    STAGE_KIND = "ctx"
    REPLICATED = True  # several ARX hardware threads drain ctx_ring

    def __init__(self, dp):
        self.dp = dp
        self.notifications_sent = 0
        self.descriptors_fetched = 0
        # context_id -> completion event of the latest ARX delivery:
        # several ARX hardware threads drain ctx_ring concurrently, so
        # without the chain a delayed descriptor DMA (repro.faults
        # DmaFlake) would let a later notification overtake an earlier
        # one within the same context queue.
        self._arx_chain = {}

    def arx_program(self, thread):
        """NIC -> host notification path."""
        dp = self.dp
        costs = dp.config.costs
        while True:
            notification = yield dp.ctx_ring.get()
            prev_chain = self._arx_chain.get(notification.context_id)
            done = dp.sim.event()
            self._arx_chain[notification.context_id] = done
            serial = None
            if dp.serial_lock is not None:
                serial = yield dp.serial_lock.request()
            yield from thread.compute(costs.ctx_notify)
            pair = dp.contexts.get(notification.context_id)
            yield dp.dma.issue(1, 32)
            if prev_chain is not None and not prev_chain.triggered:
                yield prev_chain
            piggyback = notification.piggyback_ack
            notification.piggyback_ack = None
            if pair is not None:
                pair.nic_deliver(notification)
                self.notifications_sent += 1
            if piggyback is not None:
                # Notification is host-visible: the ACK may leave now
                # (write-ahead rule; see the DMA stage).
                dp.nbi_gro.offer(piggyback)
            done.succeed()
            if serial is not None:
                serial.release()

    def atx_program(self, thread):
        """Host -> NIC doorbell/descriptor path."""
        dp = self.dp
        costs = dp.config.costs
        while True:
            yield dp.pcie.wait_doorbell("hc")
            yield from thread.compute(costs.ctx_doorbell_poll)
            dp.tracepoints.hit(dp.sim.now, "ctx", "hc.doorbell")
            # Scan all contexts for outbound descriptors. Multiple
            # updates ride one doorbell, so fetch DMAs are batched
            # (§3.1.1) — one PCIe transaction per up to 16 descriptors.
            progress = True
            while progress:
                progress = False
                for pair in list(dp.contexts.values()):
                    if not pair.has_outbound:
                        continue
                    progress = True
                    # Descriptor buffers come from a bounded NIC pool;
                    # allocation failure pauses fetching (flow control).
                    grants = []
                    while len(grants) < 16 and pair.has_outbound:
                        grant = yield dp.descriptor_pool.request()
                        grants.append(grant)
                        if len(grants) >= len(pair.outbound):
                            break
                    batch = pair.nic_fetch_batch(max_batch=len(grants))
                    for grant in grants[len(batch):]:
                        grant.release()
                    serial = None
                    if dp.serial_lock is not None:
                        serial = yield dp.serial_lock.request()
                    yield dp.dma.issue(1, 32 * len(batch))
                    self.descriptors_fetched += len(batch)
                    for grant in grants[: len(batch)]:
                        dp.hold_descriptor(grant)
                    for descriptor in batch:
                        work = SegWork(WORK_HC, hc=descriptor, born_at=dp.sim.now)
                        yield dp.pre_in.put(work)
                    if serial is not None:
                        serial.release()
