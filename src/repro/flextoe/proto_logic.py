"""Pure protocol-stage logic (paper §3.1.3): the only atomic per-connection
code in the data-path.

Functions here mutate a :class:`~repro.flextoe.state.ProtocolState` and
return result objects describing what later stages must do. They contain
no simulation constructs, so correctness is testable directly (including
hypothesis property tests over loss/reorder/duplication).

Receive-window reassembly follows the paper exactly: one out-of-order
interval, merged in place in the host receive buffer; segments that
cannot merge are dropped and re-ACKed with the expected sequence number.
Loss recovery is go-back-N, with fast retransmit on three duplicate ACKs.
"""

from repro.proto.tcp import FLAG_FIN, seq_add, seq_diff

#: Fixed window-scale shift both FlexTOE endpoints negotiate (control
#: plane sets it in the SYN; the data-path only shifts by it).
WINDOW_SCALE = 7

#: Duplicate-ACK threshold for fast retransmit.
DUPACK_THRESHOLD = 3


class RxResult:
    """What the post/DMA stages must do for one received segment."""

    __slots__ = (
        "payload_dest_pos",
        "payload",
        "send_ack",
        "ack_is_dup",
        "acked_bytes",
        "notify_rx_pos",
        "notify_rx_len",
        "fin_notified",
        "fast_retransmit",
        "dropped_ooo",
        "was_ooo",
        "echo_ts",
        "rtt_sample_ecr",
    )

    def __init__(self):
        self.payload_dest_pos = None  # absolute stream position for DMA
        self.payload = b""
        self.send_ack = False
        self.ack_is_dup = False
        self.acked_bytes = 0
        self.notify_rx_pos = None  # start of newly in-order data
        self.notify_rx_len = 0
        self.fin_notified = False
        self.fast_retransmit = False
        self.dropped_ooo = False
        self.was_ooo = False
        self.echo_ts = None
        self.rtt_sample_ecr = None


class TxResult:
    """A transmit decision: which bytes of the host TX buffer to send."""

    __slots__ = ("seq", "stream_pos", "length", "fin", "ack", "window")

    def __init__(self, seq, stream_pos, length, fin, ack, window):
        self.seq = seq
        self.stream_pos = stream_pos
        self.length = length
        self.fin = fin
        self.ack = ack
        self.window = window


class HcResult:
    """Effect of a host-control descriptor on the window state."""

    __slots__ = ("fs_sendable", "fin_armed", "retransmitted", "send_window_update")

    def __init__(self, fs_sendable, fin_armed=False, retransmitted=0):
        self.fs_sendable = fs_sendable
        self.fin_armed = fin_armed
        self.retransmitted = retransmitted
        self.send_window_update = False


def advertised_window(state):
    """The on-wire (scaled-down) receive window field."""
    return min(0xFFFF, state.rx_avail >> WINDOW_SCALE)


def _process_ack_side(state, summary, result):
    """ACK/window bookkeeping for an incoming segment (sender side).

    ``tx_sent`` counts unacked sequence units including a sent FIN's
    phantom unit; acknowledged *buffer* bytes (what libTOE may reuse)
    exclude it.
    """
    snd_una = seq_add(state.seq, -state.tx_sent)
    acked = seq_diff(summary.ack, snd_una)
    new_remote_win = summary.window << WINDOW_SCALE
    if 0 < acked <= state.tx_sent:
        state.tx_sent -= acked
        state.dupack_cnt = 0
        acked_data = acked
        if state.fin_seq is not None and seq_diff(summary.ack, state.fin_seq) > 0:
            # The FIN's sequence unit was covered by this ACK.
            acked_data -= 1
            state.fin_seq = None
            state.fin_pending = False
        result.acked_bytes = acked_data
        if summary.ts_ecr:
            result.rtt_sample_ecr = summary.ts_ecr
    elif (
        acked == 0
        and summary.payload_len == 0
        and state.tx_sent > 0
        and new_remote_win == state.remote_win
        and not (summary.flags & FLAG_FIN)
    ):
        state.dupack_cnt = min(15, state.dupack_cnt + 1)
        if state.dupack_cnt == DUPACK_THRESHOLD:
            state.reset_to_last_ack()
            result.fast_retransmit = True
    state.remote_win = new_remote_win


def _merge_ooo(state, seg_start, payload):
    """Try to merge [seg_start, seg_start+len) with the single tracked
    out-of-order interval. Returns (accepted, dest_pos, payload).

    ``dest_pos`` is the absolute position in the receive byte stream
    (rx_pos-relative coordinates) where the DMA stage must place the
    payload. A failed merge returns (False, None, b"")."""
    seg_len = len(payload)
    seg_end = seq_add(seg_start, seg_len)
    if not state.has_ooo:
        state.ooo_start = seg_start
        state.ooo_len = seg_len
        dest = state.rx_pos + seq_diff(seg_start, state.ack)
        return True, dest, payload
    ooo_end = seq_add(state.ooo_start, state.ooo_len)
    # Reject segments not overlapping or adjacent to the interval.
    if seq_diff(seg_start, ooo_end) > 0 or seq_diff(seg_end, state.ooo_start) < 0:
        return False, None, b""
    # Extend the interval over the union.
    new_start = state.ooo_start if seq_diff(seg_start, state.ooo_start) >= 0 else seg_start
    new_end = ooo_end if seq_diff(seg_end, ooo_end) <= 0 else seg_end
    state.ooo_start = new_start
    state.ooo_len = seq_diff(new_end, new_start)
    dest = state.rx_pos + seq_diff(seg_start, state.ack)
    return True, dest, payload


def process_rx(state, summary, payload, now_ts=0):
    """The protocol stage's Win step for a received data-path segment.

    Mutates ``state`` and returns an :class:`RxResult`. ``payload`` is the
    segment payload (bytes); ``summary`` is the header summary produced by
    pre-processing. ``now_ts`` is the stage's timestamp counter for echo.
    """
    result = RxResult()
    _process_ack_side(state, summary, result)
    if summary.ts_val is not None:
        state.next_ts = summary.ts_val

    expected = state.ack
    seg_seq = summary.seq
    seg_len = len(payload)
    fin = bool(summary.flags & FLAG_FIN)

    if seg_len == 0 and not fin:
        # Pure ACK: never acknowledged back (no ACK-of-ACK).
        return result

    offset = seq_diff(seg_seq, expected)
    if offset < 0:
        # Stale/partially duplicate data: trim the front.
        trim = min(-offset, seg_len)
        payload = payload[trim:]
        seg_seq = seq_add(seg_seq, trim)
        seg_len -= trim
        offset = 0 if seg_len > 0 else offset + trim
        if seg_len == 0 and not fin:
            result.send_ack = True
            result.ack_is_dup = True
            return result

    # Trim to the receive window.
    in_window = state.rx_avail - max(0, seq_diff(seg_seq, expected))
    if seg_len > in_window:
        payload = payload[: max(0, in_window)]
        seg_len = len(payload)
        fin = False  # the FIN lies beyond what we accepted

    if seg_len == 0 and not fin:
        result.send_ack = True
        result.ack_is_dup = True
        return result

    if offset == 0:
        # In-order data: place at the head and advance the window.
        notify_start = state.rx_pos
        result.payload_dest_pos = state.rx_pos
        result.payload = payload
        state.ack = seq_add(state.ack, seg_len)
        state.rx_pos += seg_len
        state.rx_avail -= seg_len
        # Hole fill: fold in the out-of-order interval when contiguous.
        if state.has_ooo:
            ooo_offset = seq_diff(state.ooo_start, state.ack)
            if ooo_offset < 0:
                # The new data overlapped the interval start; shrink it.
                overlap = min(-ooo_offset, state.ooo_len)
                state.ooo_start = seq_add(state.ooo_start, overlap)
                state.ooo_len -= overlap
                ooo_offset = 0
            if state.ooo_len > 0 and ooo_offset == 0:
                state.ack = seq_add(state.ack, state.ooo_len)
                state.rx_pos += state.ooo_len
                state.rx_avail -= state.ooo_len
                state.ooo_len = 0
                state.ooo_start = 0
        result.notify_rx_pos = notify_start
        result.notify_rx_len = state.rx_pos - notify_start
    else:
        # Out of order: try to merge with the single tracked interval.
        result.was_ooo = True
        accepted, dest, kept = _merge_ooo(state, seg_seq, payload)
        if accepted:
            result.payload_dest_pos = dest
            result.payload = kept
            # rx_avail is NOT consumed for OOO bytes until they become
            # in-order; placement beyond rx_avail was already trimmed.
        else:
            result.dropped_ooo = True
        fin = False  # FIN processing waits until in-order delivery

    if fin:
        state.ack = seq_add(state.ack, 1)
        state.rx_fin_seq = seg_seq
        result.fin_notified = True

    result.send_ack = True
    result.echo_ts = state.next_ts
    return result


def process_tx(state, mss):
    """The protocol stage's Seq step for a TX trigger.

    Returns a :class:`TxResult` or None when nothing is sendable (stale
    scheduler trigger)."""
    limit = state.flight_limit()
    length = min(mss, limit)
    fin = False
    if length <= 0:
        if state.fin_pending and state.tx_avail == 0 and state.fin_seq is None:
            # A bare FIN still fits in a zero remote window.
            fin = True
            length = 0
        else:
            return None
    seq = state.seq
    stream_pos = state.tx_pos
    state.seq = seq_add(state.seq, length)
    state.tx_pos += length
    state.tx_avail -= length
    state.tx_sent += length
    if state.fin_pending and state.tx_avail == 0 and state.fin_seq is None:
        fin = True
    if fin:
        # The FIN consumes one sequence unit; fin_seq records it so ACK
        # processing and go-back-N can account for the phantom byte.
        state.fin_seq = state.seq
        state.seq = seq_add(state.seq, 1)
        state.tx_sent += 1
    return TxResult(
        seq=seq,
        stream_pos=stream_pos,
        length=length,
        fin=fin,
        ack=state.ack,
        window=advertised_window(state),
    )


def process_hc(state, descriptor):
    """Apply a host-control descriptor (Win/Fin/Reset steps, §3.1.1)."""
    from repro.flextoe.descriptors import HC_FIN, HC_PROBE, HC_RETRANSMIT, HC_RX_UPDATE, HC_TX_UPDATE

    if descriptor.kind == HC_TX_UPDATE:
        state.tx_avail += descriptor.value
        if descriptor.fin:
            state.fin_pending = True
        return HcResult(fs_sendable=state.flight_limit(), fin_armed=descriptor.fin)
    if descriptor.kind == HC_RX_UPDATE:
        was_tight = state.rx_avail < 2 * 1448
        state.rx_avail += descriptor.value
        result = HcResult(fs_sendable=state.flight_limit())
        # If the window was nearly closed, the peer may be stalled on it:
        # emit a window-update ACK (classic TCP window update).
        result.send_window_update = was_tight
        return result
    if descriptor.kind == HC_FIN:
        state.fin_pending = True
        # A bare FIN on an idle connection must wake the scheduler.
        sendable = state.flight_limit()
        if sendable == 0 and state.fin_seq is None:
            sendable = 1
        return HcResult(fs_sendable=sendable, fin_armed=True)
    if descriptor.kind == HC_PROBE:
        # Zero-window probe: permit one byte beyond the advertised window
        # so the peer re-announces its window (RFC 9293 §3.8.6.1).
        if state.tx_avail > 0 and state.remote_win - state.tx_sent <= 0:
            state.remote_win = state.tx_sent + 1
        return HcResult(fs_sendable=state.flight_limit())
    if descriptor.kind == HC_RETRANSMIT:
        rewound = state.reset_to_last_ack()
        sendable = state.flight_limit()
        if sendable == 0 and state.fin_pending:
            sendable = 1
        return HcResult(fs_sendable=sendable, retransmitted=rewound)
    raise ValueError("unknown HC descriptor kind {!r}".format(descriptor.kind))
