"""The Carousel-based flow scheduler (paper §3.5, §4).

The scheduler keeps, per connection, the bytes available for transmission
(pushed by the post-processor's FS updates — the protocol stage is the
authority on the true window) and a transmission interval programmed by
the control-plane. Because FPCs cannot divide, the control plane programs
intervals in **ns-per-byte Q8 fixed point** rather than rates; the
scheduler only multiplies.

Uncongested flows (interval 0) bypass the time wheel and are served
round-robin — the work-conserving fast path. Rate-limited flows are
enqueued into time-wheel slots (EMEM hardware queues) by deadline.
"""

from collections import deque

INTERVAL_Q8_SHIFT = 8


def rate_to_interval_q8(bytes_per_sec):
    """Control-plane helper: rate -> ns/byte in Q8 (0 = unlimited)."""
    if bytes_per_sec <= 0:
        return 0
    interval = (1_000_000_000 << INTERVAL_Q8_SHIFT) // int(bytes_per_sec)
    return max(1, interval)


class _FlowEntry:
    __slots__ = ("conn_index", "deficit", "interval_q8", "queued", "next_deadline")

    def __init__(self, conn_index):
        self.conn_index = conn_index
        self.deficit = 0
        self.interval_q8 = 0
        self.queued = False
        self.next_deadline = 0


class CarouselScheduler:
    """Time wheel + round-robin bypass, emitting TX triggers."""

    def __init__(self, sim, tx_trigger_ring, mss=1448, slot_ns=1000, n_slots=4096, costs=None):
        self.sim = sim
        self.tx_trigger_ring = tx_trigger_ring
        self.mss = mss
        self.slot_ns = slot_ns
        self.n_slots = n_slots
        self.costs = costs
        self._flows = {}
        self._rr = deque()
        self._wheel = [deque() for _ in range(n_slots)]
        self._wheel_population = 0
        #: Indices of populated wheel slots. The wheel has 4096 slots but
        #: rarely more than a handful of queued flows; scanning the full
        #: wheel on every idle transition dominated the profile.
        self._wheel_nonempty = set()
        self._wake = None
        self.triggers_issued = 0
        self.rate_limited_enqueues = 0

    # -- control interfaces ------------------------------------------------

    def _entry(self, conn_index):
        entry = self._flows.get(conn_index)
        if entry is None:
            entry = _FlowEntry(conn_index)
            self._flows[conn_index] = entry
        return entry

    def set_interval(self, conn_index, interval_q8):
        """Control-plane MMIO write of the per-flow pacing interval."""
        self._entry(conn_index).interval_q8 = max(0, int(interval_q8))

    def set_rate(self, conn_index, bytes_per_sec):
        self.set_interval(conn_index, rate_to_interval_q8(bytes_per_sec))

    def remove_flow(self, conn_index):
        entry = self._flows.pop(conn_index, None)
        if entry is not None:
            entry.deficit = 0

    def fs_update(self, conn_index, sendable_bytes):
        """Post-processor FS op: absolute sendable-byte refresh."""
        entry = self._entry(conn_index)
        entry.deficit = max(0, int(sendable_bytes))
        if entry.deficit > 0 and not entry.queued:
            self._enqueue(entry)
        self._kick()

    # -- internals -----------------------------------------------------------

    def _enqueue(self, entry):
        entry.queued = True
        if entry.interval_q8 == 0:
            self._rr.append(entry)
            return
        deadline = max(entry.next_deadline, self.sim.now)
        slot = (deadline // self.slot_ns) % self.n_slots
        self._wheel[slot].append((deadline, entry))
        self._wheel_nonempty.add(slot)
        self._wheel_population += 1
        self.rate_limited_enqueues += 1

    def _kick(self):
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    def _pop_due(self):
        """Pop one flow whose deadline has passed (or an RR flow)."""
        if self._rr:
            return self._rr.popleft()
        if self._wheel_population == 0:
            return None
        now = self.sim.now
        slot = (now // self.slot_ns) % self.n_slots
        n_slots = self.n_slots
        # Scan from the current slot backwards over the horizon for due
        # entries. Real hardware pops the slot queue whose deadline
        # passed; a scan is equivalent and keeps the model simple. Only
        # populated slots are visited, in the same backwards order the
        # full sweep would reach them.
        for index in sorted(self._wheel_nonempty, key=lambda s: (slot - s) % n_slots):
            bucket = self._wheel[index]
            if bucket:
                deadline, entry = bucket[0]
                if deadline <= now:
                    bucket.popleft()
                    self._wheel_population -= 1
                    if not bucket:
                        self._wheel_nonempty.discard(index)
                    return entry
        return None

    def _next_wheel_deadline(self):
        if self._wheel_population == 0:
            return None
        wheel = self._wheel
        soonest = None
        for index in self._wheel_nonempty:
            bucket = wheel[index]
            if bucket:
                deadline = bucket[0][0]
                if soonest is None or deadline < soonest:
                    soonest = deadline
        return soonest

    def program(self, thread):
        """The SCH FPC program."""
        sim = self.sim
        dequeue_cost = self.costs.sched_dequeue if self.costs else 45
        while True:
            entry = self._pop_due()
            if entry is None:
                # Idle: sleep until an FS update or the next wheel deadline.
                self._wake = sim.event()
                deadline = self._next_wheel_deadline()
                if deadline is None:
                    yield self._wake
                else:
                    yield sim.any_of([self._wake, sim.timeout(max(0, deadline - sim.now))])
                self._wake = None
                continue
            entry.queued = False
            if entry.deficit <= 0:
                continue
            yield from thread.compute(dequeue_cost)
            burst = min(self.mss, entry.deficit)
            entry.deficit -= burst
            self.triggers_issued += 1
            yield self.tx_trigger_ring.put(entry.conn_index)
            if entry.deficit > 0:
                if entry.interval_q8 > 0:
                    entry.next_deadline = max(entry.next_deadline, sim.now) + (
                        (burst * entry.interval_q8) >> INTERVAL_Q8_SHIFT
                    )
                self._enqueue(entry)

    @property
    def backlog_flows(self):
        return sum(1 for entry in self._flows.values() if entry.queued)
