"""The FlexTOE offloaded TCP data-path (paper §3-4).

The data-path runs entirely on the simulated NFP-4000: a data-parallel
pipeline of pre-processing, protocol, post-processing, DMA, and
context-queue stages, with segment sequencing/reordering, flow-group
islands, a Carousel flow scheduler, and XDP/module extension hooks.
"""

from repro.flextoe.config import PipelineConfig, StageCosts
from repro.flextoe.state import (
    ConnectionRecord,
    ConnectionTable,
    PostprocState,
    PreprocState,
    ProtocolState,
)
from repro.flextoe.descriptors import (
    HC_FIN,
    HC_RETRANSMIT,
    HC_RX_UPDATE,
    HC_TX_UPDATE,
    NOTIFY_FIN,
    NOTIFY_RX,
    NOTIFY_TX_ACKED,
    HostControlDescriptor,
    Notification,
    SegWork,
)
from repro.flextoe.seqr import ReorderBuffer, Sequencer
from repro.flextoe.scheduler import CarouselScheduler
from repro.flextoe.nic import FlexToeNic

__all__ = [
    "CarouselScheduler",
    "ConnectionRecord",
    "ConnectionTable",
    "FlexToeNic",
    "HC_FIN",
    "HC_RETRANSMIT",
    "HC_RX_UPDATE",
    "HC_TX_UPDATE",
    "HostControlDescriptor",
    "NOTIFY_FIN",
    "NOTIFY_RX",
    "NOTIFY_TX_ACKED",
    "Notification",
    "PipelineConfig",
    "PostprocState",
    "PreprocState",
    "ProtocolState",
    "ReorderBuffer",
    "SegWork",
    "Sequencer",
    "StageCosts",
]
