"""Work items and descriptors moving through the data-path.

* :class:`SegWork` — the pipeline's unit of work for RX/TX segments.
* :class:`HostControlDescriptor` — host->NIC context-queue entries
  (transmit window updates, receive window updates, retransmit, FIN).
* :class:`Notification` — NIC->host context-queue entries (received
  payload, acknowledged bytes, peer FIN).
"""

import itertools

# Host-control descriptor kinds (libTOE / control-plane -> NIC).
HC_TX_UPDATE = "tx_update"
HC_RX_UPDATE = "rx_update"
HC_RETRANSMIT = "retransmit"
HC_FIN = "fin"
HC_PROBE = "probe"  # zero-window probe (control-plane persist timer)

# Notification kinds (NIC -> libTOE).
NOTIFY_RX = "rx"
NOTIFY_TX_ACKED = "tx_acked"
NOTIFY_FIN = "fin"
NOTIFY_ERROR = "error"  # control plane -> app: connection died (timeout/RST)

# SegWork kinds.
WORK_RX = "rx"
WORK_TX = "tx"
WORK_HC = "hc"
WORK_ACK = "ack"

_work_ids = itertools.count(1)


class HostControlDescriptor:
    """A context-queue entry from host to NIC (paper §3.1.1).

    ``value`` is the byte count for window updates; descriptors may be
    batched on a queue behind a single doorbell.
    """

    __slots__ = ("kind", "conn_index", "value", "fin", "posted_at")

    def __init__(self, kind, conn_index, value=0, fin=False, posted_at=0):
        self.kind = kind
        self.conn_index = conn_index
        self.value = value
        self.fin = fin
        self.posted_at = posted_at

    def __repr__(self):
        return "<HC {} conn={} value={}{}>".format(
            self.kind, self.conn_index, self.value, " FIN" if self.fin else ""
        )


class Notification:
    """A context-queue entry from NIC to host.

    For ``NOTIFY_RX``: ``offset``/``length`` locate new payload in the
    socket's RX buffer. For ``NOTIFY_TX_ACKED``: ``length`` transmit
    bytes were acknowledged and may be reused by libTOE.
    """

    __slots__ = ("kind", "opaque", "conn_index", "context_id", "offset", "length", "created_at", "error", "piggyback_ack")

    def __init__(self, kind, opaque, conn_index, context_id=0, offset=0, length=0, created_at=0, error=None):
        self.kind = kind
        self.opaque = opaque
        self.conn_index = conn_index
        self.context_id = context_id
        self.offset = offset
        self.length = length
        self.created_at = created_at
        self.error = error  # NOTIFY_ERROR: "timeout" | "reset"
        # NIC-internal (never host-visible): an ACK frame the ARX stage
        # releases to the wire only after this notification is delivered
        # — the write-ahead rule that makes crash recovery sound (a
        # wire-ACKed byte is always reflected in host-visible state).
        self.piggyback_ack = None

    def __repr__(self):
        return "<Notify {} conn={} off={} len={}>".format(self.kind, self.conn_index, self.offset, self.length)


class SegWork:
    """A unit of pipeline work.

    Fields are populated progressively by the stages; per the module API
    (§3.3) stages communicate only through these metadata fields, never
    by reaching into each other's state partitions.
    """

    __slots__ = (
        "kind",
        "work_id",
        "pipeline_seq",
        "frame",
        "conn_index",
        "flow_group",
        "summary",
        "snapshot",
        "hc",
        "tx_len",
        "tx_offset",
        "rx_offset",
        "rx_trimmed_payload",
        "notify",
        "ack_frame",
        "drop",
        "born_at",
    )

    def __init__(self, kind, frame=None, hc=None, born_at=0):
        self.kind = kind
        self.work_id = next(_work_ids)
        self.pipeline_seq = None
        self.frame = frame
        self.conn_index = None
        self.flow_group = None
        self.summary = None
        self.snapshot = None
        self.hc = hc
        self.tx_len = 0
        self.tx_offset = 0
        self.rx_offset = None
        self.rx_trimmed_payload = None
        self.notify = None
        self.ack_frame = None
        self.drop = False
        self.born_at = born_at

    def __repr__(self):
        return "<SegWork#{} {} conn={} seq={}>".format(
            self.work_id, self.kind, self.conn_index, self.pipeline_seq
        )


class ProtoSnapshot:
    """The protocol stage's snapshot of relevant connection state,
    forwarded to post-processing (§3.1.3: stages communicate explicitly,
    never by sharing state)."""

    __slots__ = (
        "kind",
        "ack_seq",
        "ack_ack",
        "window",
        "echo_ts",
        "ece",
        "send_ack",
        "dup_ack",
        "fs_sendable",
        "acked_bytes",
        "notify_rx_pos",
        "notify_rx_len",
        "fin_notified",
        "fast_retransmit",
        "payload_dest_pos",
        "payload",
        "rtt_sample_ecr",
        "tx",
        "free_descriptor",
        "send_window_update",
        "nbi_seq",
    )

    def __init__(self, kind):
        self.kind = kind
        self.ack_seq = 0
        self.ack_ack = 0
        self.window = 0
        self.echo_ts = None
        self.ece = False
        self.send_ack = False
        self.dup_ack = False
        self.fs_sendable = None
        self.acked_bytes = 0
        self.notify_rx_pos = None
        self.notify_rx_len = 0
        self.fin_notified = False
        self.fast_retransmit = False
        self.payload_dest_pos = None
        self.payload = b""
        self.rtt_sample_ecr = None
        self.tx = None
        self.free_descriptor = False
        self.send_window_update = False
        # NBI ordering ticket, when one was taken at the protocol stage.
        # A later stage dropping this work (connection torn down while
        # the segment was in flight) must nbi_gro.skip() it, or the
        # reorder buffer stalls every subsequent egress frame.
        self.nbi_seq = None


class HeaderSummary:
    """The pre-processor's header summary (§3.1.3): just the fields later
    stages need, so the full headers never cross islands."""

    __slots__ = ("seq", "ack", "flags", "window", "payload_len", "ts_val", "ts_ecr", "ce_marked")

    def __init__(self, seq, ack, flags, window, payload_len, ts_val=None, ts_ecr=None, ce_marked=False):
        self.seq = seq
        self.ack = ack
        self.flags = flags
        self.window = window
        self.payload_len = payload_len
        self.ts_val = ts_val
        self.ts_ecr = ts_ecr
        self.ce_marked = ce_marked
