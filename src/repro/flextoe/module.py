"""The FlexTOE module API (paper §3.3).

Data-path extension modules get one-shot access to segments plus
metadata, keep private state, and communicate only by forwarding
metadata. Modules are inserted at named hook points; replicated hooks
are automatically re-sequenced afterwards (§3.2), which the datapath
wiring handles.

Two module flavors:

* Native modules — subclasses of :class:`DatapathModule`; ``handle``
  returns an action and may charge FPC cycles via ``cost_cycles``.
* XDP modules — eBPF-style programs (see :mod:`repro.xdp`) adapted with
  :class:`XdpAdapter`, returning XDP_PASS/DROP/TX/REDIRECT.
"""

ACTION_PASS = "pass"
ACTION_DROP = "drop"
ACTION_TX = "tx"
ACTION_REDIRECT = "redirect"

#: Hook points in the data-path.
HOOK_INGRESS = "ingress"  # raw frames before pre-processing
HOOK_EGRESS = "egress"  # frames on their way to the NBI


class DatapathModule:
    """Base class for native data-path modules.

    ``handle(frame, meta)`` returns one of the ACTION_* constants; the
    frame may be modified in place (one-shot access). ``cost_cycles`` is
    charged on the hosting FPC per invocation.
    """

    name = "module"
    cost_cycles = 30

    def handle(self, frame, meta):
        raise NotImplementedError

    def reset(self):
        """Clear private state (module reload)."""


class NullModule(DatapathModule):
    """Passes every frame; measures raw hook overhead (Table 2's
    'XDP (null)' row is its eBPF twin)."""

    name = "null"
    cost_cycles = 15

    def handle(self, frame, meta):
        return ACTION_PASS


class CountingModule(DatapathModule):
    """Counts frames per TCP flag pattern; a minimal stats example."""

    name = "counter"
    cost_cycles = 20

    def __init__(self):
        self.counts = {}

    def handle(self, frame, meta):
        key = frame.tcp.flags if frame.tcp is not None else -1
        self.counts[key] = self.counts.get(key, 0) + 1
        return ACTION_PASS

    def reset(self):
        self.counts.clear()


class VlanStripModule(DatapathModule):
    """Strips 802.1Q tags on ingress (Table 2's 'XDP (vlan-strip)')."""

    name = "vlan-strip"
    cost_cycles = 25

    def __init__(self):
        self.stripped = 0

    def handle(self, frame, meta):
        if frame.eth.vlan is not None:
            frame.eth.vlan = None
            frame.eth.vlan_pcp = 0
            self.stripped += 1
        return ACTION_PASS


class ModuleChain:
    """An ordered list of modules at one hook point."""

    def __init__(self, modules=None):
        self.modules = list(modules or [])

    def add(self, module):
        self.modules.append(module)

    def remove(self, name):
        self.modules = [m for m in self.modules if m.name != name]

    @property
    def total_cost(self):
        return sum(m.cost_cycles for m in self.modules)

    def run(self, frame, meta):
        """Run the chain; returns the first non-PASS action (or PASS)."""
        for module in self.modules:
            action = module.handle(frame, meta)
            if action != ACTION_PASS:
                return action
        return ACTION_PASS

    def __len__(self):
        return len(self.modules)
