"""Context queues between libTOE and the data-path (paper §3, §4).

Each application thread owns a :class:`ContextQueuePair` in host shared
memory: an outbound queue (host-control descriptors toward the NIC,
flushed with a doorbell) and an inbound queue (notifications from the
NIC). The NIC moves entries with DMA; the host side polls, or blocks on
an eventfd backed by an MSI-X interrupt when it has been idle (paper §4's
context-queue manager)."""

from collections import deque

DESCRIPTOR_BYTES = 32


class ContextQueuePair:
    """One application context's queue pair plus wakeup machinery."""

    def __init__(self, sim, context_id, capacity=1024):
        self.sim = sim
        self.context_id = context_id
        self.capacity = capacity
        self.outbound = deque()  # HostControlDescriptor, host -> NIC
        self.inbound = deque()  # Notification, NIC -> host
        self._waiters = []
        self._taps = []
        self.notifications_delivered = 0
        self.hc_posted = 0
        self.interrupts = 0

    def add_tap(self, fn):
        """Observe queue traffic: ``fn("hc", descriptor)`` on every
        accepted host-control post, ``fn("notify", notification)`` on
        every delivery. The control plane's recovery shadow taps every
        pair to mirror window updates without being on the data path."""
        self._taps.append(fn)

    # -- host side -------------------------------------------------------

    def post_hc(self, descriptor):
        """libTOE appends a descriptor; caller rings the doorbell after
        batching (possibly several descriptors per doorbell)."""
        if len(self.outbound) >= self.capacity:
            return False
        descriptor.posted_at = self.sim.now
        self.outbound.append(descriptor)
        self.hc_posted += 1
        for tap in self._taps:
            tap("hc", descriptor)
        return True

    def poll(self):
        """Host-side non-blocking reap of one notification."""
        if self.inbound:
            return self.inbound.popleft()
        return None

    def wait(self):
        """Event that fires when a notification is available.

        Models the blocking eventfd read; the data-path's context-queue
        manager raises MSI-X when a sleeping context gets traffic."""
        event = self.sim.event()
        if self.inbound:
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    # -- NIC side ----------------------------------------------------------

    def nic_fetch_batch(self, max_batch=16):
        """NIC pops up to ``max_batch`` outbound descriptors (post-DMA)."""
        batch = []
        while self.outbound and len(batch) < max_batch:
            batch.append(self.outbound.popleft())
        return batch

    def nic_deliver(self, notification):
        """NIC appends a notification (post-DMA) and wakes a sleeper."""
        self.inbound.append(notification)
        self.notifications_delivered += 1
        for tap in self._taps:
            tap("notify", notification)
        if self._waiters:
            # Wake every sleeper (one MSI-X/eventfd ping); each re-checks
            # its own socket's state after dispatch.
            waiters = self._waiters
            self._waiters = []
            self.interrupts += 1
            for waiter in waiters:
                if not waiter.triggered:
                    waiter.succeed()

    @property
    def has_outbound(self):
        return bool(self.outbound)
