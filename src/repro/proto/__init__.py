"""Wire-format protocol headers: Ethernet, IPv4, TCP, ARP.

All simulated stacks (FlexTOE, Linux, TAS, Chelsio) exchange
:class:`~repro.proto.packet.Frame` objects carrying these headers, so
interoperability experiments are genuine protocol exchanges. Headers pack
to and unpack from real wire bytes (used by the pcap writer, the XDP VM,
and round-trip property tests).
"""

from repro.proto.checksum import checksum16, checksum_update16, ones_complement_sum
from repro.proto.ethernet import (
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    ETHERTYPE_VLAN,
    EthernetHeader,
    mac_to_str,
    str_to_mac,
)
from repro.proto.ip import IPPROTO_TCP, Ipv4Header, ip_to_str, str_to_ip
from repro.proto.tcp import (
    FLAG_ACK,
    FLAG_CWR,
    FLAG_ECE,
    FLAG_FIN,
    FLAG_PSH,
    FLAG_RST,
    FLAG_SYN,
    FLAG_URG,
    TcpHeader,
    TcpOptions,
    seq_add,
    seq_after,
    seq_between,
    seq_diff,
    seq_lt,
    seq_lte,
)
from repro.proto.arp import ARP_REPLY, ARP_REQUEST, ArpHeader
from repro.proto.packet import Frame, make_tcp_frame

__all__ = [
    "ARP_REPLY",
    "ARP_REQUEST",
    "ArpHeader",
    "ETHERTYPE_ARP",
    "ETHERTYPE_IPV4",
    "ETHERTYPE_VLAN",
    "EthernetHeader",
    "FLAG_ACK",
    "FLAG_CWR",
    "FLAG_ECE",
    "FLAG_FIN",
    "FLAG_PSH",
    "FLAG_RST",
    "FLAG_SYN",
    "FLAG_URG",
    "Frame",
    "IPPROTO_TCP",
    "Ipv4Header",
    "TcpHeader",
    "TcpOptions",
    "checksum16",
    "checksum_update16",
    "ip_to_str",
    "mac_to_str",
    "make_tcp_frame",
    "ones_complement_sum",
    "seq_add",
    "seq_after",
    "seq_between",
    "seq_diff",
    "seq_lt",
    "seq_lte",
    "str_to_ip",
    "str_to_mac",
]
