"""Ethernet II header, with optional 802.1Q VLAN tag.

MAC addresses are stored as 48-bit integers for cheap comparison and
hashing in the simulation hot path; string helpers exist for display.
"""

import struct

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806
ETHERTYPE_VLAN = 0x8100

HEADER_LEN = 14
VLAN_TAG_LEN = 4


def str_to_mac(text):
    """'aa:bb:cc:dd:ee:ff' -> 48-bit integer."""
    parts = text.split(":")
    if len(parts) != 6:
        raise ValueError("malformed MAC address: {!r}".format(text))
    value = 0
    for part in parts:
        value = (value << 8) | int(part, 16)
    return value


def mac_to_str(value):
    """48-bit integer -> 'aa:bb:cc:dd:ee:ff'."""
    return ":".join("{:02x}".format((value >> shift) & 0xFF) for shift in range(40, -8, -8))


class EthernetHeader:
    """An Ethernet II header; ``vlan`` holds a 12-bit VLAN id or None."""

    __slots__ = ("dst", "src", "ethertype", "vlan", "vlan_pcp")

    def __init__(self, dst, src, ethertype=ETHERTYPE_IPV4, vlan=None, vlan_pcp=0):
        self.dst = dst
        self.src = src
        self.ethertype = ethertype
        self.vlan = vlan
        self.vlan_pcp = vlan_pcp

    @property
    def wire_len(self):
        return HEADER_LEN + (VLAN_TAG_LEN if self.vlan is not None else 0)

    def pack(self):
        dst_bytes = self.dst.to_bytes(6, "big")
        src_bytes = self.src.to_bytes(6, "big")
        if self.vlan is None:
            return dst_bytes + src_bytes + struct.pack("!H", self.ethertype)
        tci = ((self.vlan_pcp & 0x7) << 13) | (self.vlan & 0x0FFF)
        return dst_bytes + src_bytes + struct.pack("!HHH", ETHERTYPE_VLAN, tci, self.ethertype)

    @classmethod
    def unpack(cls, data):
        """Parse a header from ``data``; returns (header, bytes_consumed)."""
        if len(data) < HEADER_LEN:
            raise ValueError("truncated Ethernet header")
        dst = int.from_bytes(data[0:6], "big")
        src = int.from_bytes(data[6:12], "big")
        (ethertype,) = struct.unpack_from("!H", data, 12)
        if ethertype != ETHERTYPE_VLAN:
            return cls(dst, src, ethertype), HEADER_LEN
        if len(data) < HEADER_LEN + VLAN_TAG_LEN:
            raise ValueError("truncated VLAN tag")
        tci, inner = struct.unpack_from("!HH", data, 14)
        header = cls(dst, src, inner, vlan=tci & 0x0FFF, vlan_pcp=(tci >> 13) & 0x7)
        return header, HEADER_LEN + VLAN_TAG_LEN

    def copy(self):
        return EthernetHeader(self.dst, self.src, self.ethertype, self.vlan, self.vlan_pcp)

    def __eq__(self, other):
        return (
            isinstance(other, EthernetHeader)
            and self.dst == other.dst
            and self.src == other.src
            and self.ethertype == other.ethertype
            and self.vlan == other.vlan
            and self.vlan_pcp == other.vlan_pcp
        )

    def __repr__(self):
        tag = "" if self.vlan is None else " vlan={}".format(self.vlan)
        return "<Eth {}->{} type=0x{:04x}{}>".format(
            mac_to_str(self.src), mac_to_str(self.dst), self.ethertype, tag
        )
