"""Internet (RFC 1071) checksum with incremental update (RFC 1624).

The incremental form matters for FlexTOE's XDP modules: connection
splicing rewrites addresses/ports/sequence numbers and fixes the checksum
without touching the payload, exactly as the NFP hardware does.
"""

import struct


def ones_complement_sum(data, initial=0):
    """16-bit one's-complement sum of ``data`` (bytes), folded."""
    total = initial
    length = len(data)
    # Sum 16-bit big-endian words.
    if length % 2:
        data = bytes(data) + b"\x00"
    for (word,) in struct.iter_unpack("!H", data):
        total += word
    while total > 0xFFFF:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def checksum16(data, initial=0):
    """The internet checksum: complement of the one's-complement sum."""
    return (~ones_complement_sum(data, initial)) & 0xFFFF


def checksum_update16(old_checksum, old_word, new_word):
    """RFC 1624 incremental update for a single 16-bit field change.

    Given a header whose checksum was ``old_checksum`` when a field held
    ``old_word``, returns the checksum after the field becomes ``new_word``.

    The result may differ from a from-scratch recompute in the two
    one's-complement representations of zero (0x0000 vs 0xFFFF); both
    verify identically under one's-complement addition.
    """
    old_checksum &= 0xFFFF
    old_word &= 0xFFFF
    new_word &= 0xFFFF
    # HC' = ~(~HC + ~m + m')   (RFC 1624 eqn. 3)
    total = (~old_checksum & 0xFFFF) + (~old_word & 0xFFFF) + new_word
    while total > 0xFFFF:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def checksum_update32(old_checksum, old_value, new_value):
    """Incremental update for a 32-bit field (two 16-bit halves)."""
    checksum = checksum_update16(old_checksum, (old_value >> 16) & 0xFFFF, (new_value >> 16) & 0xFFFF)
    return checksum_update16(checksum, old_value & 0xFFFF, new_value & 0xFFFF)
