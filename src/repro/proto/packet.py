"""The simulated network buffer: a parsed frame plus payload bytes.

The simulation hot path passes :class:`Frame` objects (parsed headers, no
repeated byte-level serialization); :meth:`Frame.pack` produces real wire
bytes for the pcap writer, the XDP VM, and round-trip tests.
"""

import itertools

from repro.proto.arp import ArpHeader
from repro.proto.ethernet import ETHERTYPE_ARP, ETHERTYPE_IPV4, EthernetHeader
from repro.proto.ip import IPPROTO_TCP, Ipv4Header
from repro.proto.tcp import TcpHeader

_frame_ids = itertools.count(1)


class Frame:
    """An Ethernet frame in flight.

    ``eth`` is always present. ``ip``/``tcp``/``arp`` are parsed headers or
    None. ``payload`` is the L4 payload as bytes. ``pipeline_seq`` is the
    FlexTOE data-path sequencing tag (§3.2); it is not on the wire.
    """

    __slots__ = ("eth", "ip", "tcp", "arp", "payload", "frame_id", "pipeline_seq", "born_at", "meta")

    def __init__(self, eth, ip=None, tcp=None, arp=None, payload=b"", born_at=0):
        self.eth = eth
        self.ip = ip
        self.tcp = tcp
        self.arp = arp
        self.payload = payload
        self.frame_id = next(_frame_ids)
        self.pipeline_seq = None
        self.born_at = born_at
        self.meta = None

    @property
    def wire_len(self):
        """On-wire length in bytes (without FCS/preamble)."""
        length = self.eth.wire_len
        if self.arp is not None:
            return length + self.arp.wire_len
        if self.ip is not None:
            length += self.ip.wire_len
        if self.tcp is not None:
            length += self.tcp.wire_len
        return length + len(self.payload)

    @property
    def is_tcp(self):
        return self.tcp is not None

    def set_meta(self, key, value):
        """Attach pipeline metadata (FlexTOE module API, §3.3)."""
        if self.meta is None:
            self.meta = {}
        self.meta[key] = value

    def get_meta(self, key, default=None):
        if self.meta is None:
            return default
        return self.meta.get(key, default)

    def pack(self):
        """Serialize to wire bytes, computing IP and TCP checksums."""
        out = bytearray(self.eth.pack())
        if self.arp is not None:
            out += self.arp.pack()
            return bytes(out)
        if self.ip is not None:
            l4 = b""
            if self.tcp is not None:
                self.ip.total_len = self.ip.wire_len + self.tcp.wire_len + len(self.payload)
                pseudo = self.ip.pseudo_header(self.tcp.wire_len + len(self.payload))
                l4 = self.tcp.pack(pseudo_header=pseudo, payload=self.payload)
            out += self.ip.pack()
            out += l4
            out += self.payload
        return bytes(out)

    @classmethod
    def unpack(cls, data):
        """Parse wire bytes back into a Frame."""
        eth, offset = EthernetHeader.unpack(data)
        if eth.ethertype == ETHERTYPE_ARP:
            arp, _ = ArpHeader.unpack(data[offset:])
            return cls(eth, arp=arp)
        if eth.ethertype != ETHERTYPE_IPV4:
            return cls(eth, payload=bytes(data[offset:]))
        ip, ip_len = Ipv4Header.unpack(data[offset:])
        l4_start = offset + ip_len
        l4_end = offset + ip.total_len
        if ip.proto != IPPROTO_TCP:
            return cls(eth, ip=ip, payload=bytes(data[l4_start:l4_end]))
        tcp, tcp_len = TcpHeader.unpack(data[l4_start:l4_end])
        payload = bytes(data[l4_start + tcp_len : l4_end])
        return cls(eth, ip=ip, tcp=tcp, payload=payload)

    def copy(self):
        """Deep-enough copy: headers duplicated, payload shared (immutable)."""
        frame = Frame(
            self.eth.copy(),
            ip=self.ip.copy() if self.ip else None,
            tcp=self.tcp.copy() if self.tcp else None,
            arp=self.arp,
            payload=self.payload,
            born_at=self.born_at,
        )
        frame.pipeline_seq = self.pipeline_seq
        if self.meta:
            frame.meta = dict(self.meta)
        return frame

    def __repr__(self):
        if self.arp is not None:
            return "<Frame#{} {!r}>".format(self.frame_id, self.arp)
        if self.tcp is not None:
            return "<Frame#{} {!r} len={}>".format(self.frame_id, self.tcp, len(self.payload))
        return "<Frame#{} {!r}>".format(self.frame_id, self.eth)


def make_tcp_frame(
    src_mac,
    dst_mac,
    src_ip,
    dst_ip,
    sport,
    dport,
    seq=0,
    ack=0,
    flags=0,
    window=0xFFFF,
    payload=b"",
    options=None,
    ecn=0,
    born_at=0,
):
    """Convenience constructor used throughout stacks and tests."""
    eth = EthernetHeader(dst=dst_mac, src=src_mac, ethertype=ETHERTYPE_IPV4)
    tcp = TcpHeader(sport=sport, dport=dport, seq=seq, ack=ack, flags=flags, window=window, options=options)
    ip = Ipv4Header(src=src_ip, dst=dst_ip, proto=IPPROTO_TCP, ecn=ecn)
    ip.total_len = ip.wire_len + tcp.wire_len + len(payload)
    return Frame(eth, ip=ip, tcp=tcp, payload=payload, born_at=born_at)


__all__ = ["Frame", "make_tcp_frame"]
