"""TCP header, options (MSS, window scale, timestamps, SACK), and the
modulo-2^32 sequence-number arithmetic every stack in the repo shares.
"""

import struct

from repro.proto.checksum import checksum16

FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_PSH = 0x08
FLAG_ACK = 0x10
FLAG_URG = 0x20
FLAG_ECE = 0x40
FLAG_CWR = 0x80

#: Flags a FlexTOE data-path segment may carry (paper §3.1.3); anything
#: else (SYN, RST, URG) is diverted to the control-plane.
DATA_PATH_FLAGS = FLAG_ACK | FLAG_FIN | FLAG_PSH | FLAG_ECE | FLAG_CWR

BASE_HEADER_LEN = 20

_SEQ_MOD = 1 << 32
_SEQ_HALF = 1 << 31


def seq_add(seq, delta):
    """Sequence number ``delta`` bytes after ``seq`` (mod 2^32)."""
    return (seq + delta) % _SEQ_MOD


def seq_diff(a, b):
    """Signed distance a - b in sequence space (positive if a is after b)."""
    diff = (a - b) % _SEQ_MOD
    if diff >= _SEQ_HALF:
        diff -= _SEQ_MOD
    return diff


def seq_lt(a, b):
    """True if ``a`` precedes ``b`` in sequence space."""
    return seq_diff(a, b) < 0


def seq_lte(a, b):
    return seq_diff(a, b) <= 0


def seq_after(a, b):
    """True if ``a`` follows ``b`` in sequence space."""
    return seq_diff(a, b) > 0


def seq_between(low, value, high):
    """True if low <= value < high in sequence space."""
    return seq_lte(low, value) and seq_lt(value, high)


class TcpOptions:
    """The TCP options FlexTOE's data-path understands.

    * ``mss`` — maximum segment size (SYN only).
    * ``wscale`` — window scale shift (SYN only).
    * ``ts_val``/``ts_ecr`` — RFC 7323 timestamps (used by TIMELY).
    * ``sack_blocks`` — list of (start, end) SACK ranges (the Linux
      baseline's recovery uses these; FlexTOE ignores them: go-back-N).
    * ``sack_permitted`` — SACK-permitted option (SYN only).
    """

    __slots__ = ("mss", "wscale", "ts_val", "ts_ecr", "sack_blocks", "sack_permitted")

    def __init__(self, mss=None, wscale=None, ts_val=None, ts_ecr=None, sack_blocks=None, sack_permitted=False):
        self.mss = mss
        self.wscale = wscale
        self.ts_val = ts_val
        self.ts_ecr = ts_ecr
        self.sack_blocks = list(sack_blocks) if sack_blocks else []
        self.sack_permitted = sack_permitted

    @property
    def has_timestamps(self):
        return self.ts_val is not None

    def pack(self):
        out = bytearray()
        if self.mss is not None:
            out += struct.pack("!BBH", 2, 4, self.mss)
        if self.wscale is not None:
            out += struct.pack("!BBB", 3, 3, self.wscale)
        if self.sack_permitted:
            out += struct.pack("!BB", 4, 2)
        if self.ts_val is not None:
            out += struct.pack("!BBII", 8, 10, self.ts_val & 0xFFFFFFFF, (self.ts_ecr or 0) & 0xFFFFFFFF)
        if self.sack_blocks:
            length = 2 + 8 * len(self.sack_blocks)
            out += struct.pack("!BB", 5, length)
            for start, end in self.sack_blocks:
                out += struct.pack("!II", start % _SEQ_MOD, end % _SEQ_MOD)
        while len(out) % 4:
            out += b"\x01"  # NOP padding
        return bytes(out)

    @classmethod
    def unpack(cls, data):
        options = cls()
        i = 0
        n = len(data)
        while i < n:
            kind = data[i]
            if kind == 0:  # end of options
                break
            if kind == 1:  # NOP
                i += 1
                continue
            if i + 1 >= n:
                raise ValueError("truncated TCP option")
            length = data[i + 1]
            if length < 2 or i + length > n:
                raise ValueError("malformed TCP option length")
            body = data[i + 2 : i + length]
            if kind == 2 and length == 4:
                (options.mss,) = struct.unpack("!H", body)
            elif kind == 3 and length == 3:
                options.wscale = body[0]
            elif kind == 4 and length == 2:
                options.sack_permitted = True
            elif kind == 8 and length == 10:
                options.ts_val, options.ts_ecr = struct.unpack("!II", body)
            elif kind == 5:
                count = (length - 2) // 8
                for j in range(count):
                    start, end = struct.unpack_from("!II", body, j * 8)
                    options.sack_blocks.append((start, end))
            i += length
        return options

    @property
    def wire_len(self):
        raw = 0
        if self.mss is not None:
            raw += 4
        if self.wscale is not None:
            raw += 3
        if self.sack_permitted:
            raw += 2
        if self.ts_val is not None:
            raw += 10
        if self.sack_blocks:
            raw += 2 + 8 * len(self.sack_blocks)
        return (raw + 3) // 4 * 4

    def copy(self):
        return TcpOptions(
            self.mss, self.wscale, self.ts_val, self.ts_ecr, list(self.sack_blocks), self.sack_permitted
        )

    def __repr__(self):
        parts = []
        if self.mss is not None:
            parts.append("mss={}".format(self.mss))
        if self.wscale is not None:
            parts.append("wscale={}".format(self.wscale))
        if self.ts_val is not None:
            parts.append("ts={}:{}".format(self.ts_val, self.ts_ecr))
        if self.sack_blocks:
            parts.append("sack={}".format(self.sack_blocks))
        return "<TcpOptions {}>".format(" ".join(parts) or "none")


def flags_to_str(flags):
    names = [
        (FLAG_SYN, "S"),
        (FLAG_FIN, "F"),
        (FLAG_RST, "R"),
        (FLAG_PSH, "P"),
        (FLAG_ACK, "A"),
        (FLAG_URG, "U"),
        (FLAG_ECE, "E"),
        (FLAG_CWR, "C"),
    ]
    return "".join(label for bit, label in names if flags & bit) or "-"


class TcpHeader:
    """A TCP header. ``window`` is the unscaled on-wire window field."""

    __slots__ = ("sport", "dport", "seq", "ack", "flags", "window", "urgent", "options")

    def __init__(self, sport, dport, seq=0, ack=0, flags=0, window=0, urgent=0, options=None):
        self.sport = sport
        self.dport = dport
        self.seq = seq % _SEQ_MOD
        self.ack = ack % _SEQ_MOD
        self.flags = flags
        self.window = window
        self.urgent = urgent
        self.options = options if options is not None else TcpOptions()

    @property
    def wire_len(self):
        return BASE_HEADER_LEN + self.options.wire_len

    @property
    def data_offset(self):
        return self.wire_len // 4

    def has_flags(self, mask):
        return bool(self.flags & mask)

    @property
    def is_data_path(self):
        """True if this segment is eligible for FlexTOE's offloaded
        data-path (only ACK/FIN/PSH/ECE/CWR flags, paper §3.1.3)."""
        return (self.flags & ~DATA_PATH_FLAGS) == 0

    def pack(self, pseudo_header=None, payload=b""):
        opt_bytes = self.options.pack()
        offset_flags = ((BASE_HEADER_LEN + len(opt_bytes)) // 4) << 12 | (self.flags & 0x0FFF)
        header = struct.pack(
            "!HHIIHHHH",
            self.sport,
            self.dport,
            self.seq,
            self.ack,
            offset_flags,
            self.window,
            0,
            self.urgent,
        )
        header += opt_bytes
        if pseudo_header is None:
            return header
        cksum = checksum16(pseudo_header + header + payload)
        return header[:16] + struct.pack("!H", cksum) + header[18:]

    @classmethod
    def unpack(cls, data):
        if len(data) < BASE_HEADER_LEN:
            raise ValueError("truncated TCP header")
        sport, dport, seq, ack, offset_flags, window, _cksum, urgent = struct.unpack_from("!HHIIHHHH", data, 0)
        header_len = ((offset_flags >> 12) & 0xF) * 4
        if header_len < BASE_HEADER_LEN or header_len > len(data):
            raise ValueError("malformed TCP data offset")
        options = TcpOptions.unpack(data[BASE_HEADER_LEN:header_len])
        header = cls(
            sport=sport,
            dport=dport,
            seq=seq,
            ack=ack,
            flags=offset_flags & 0x0FFF,
            window=window,
            urgent=urgent,
            options=options,
        )
        return header, header_len

    def copy(self):
        return TcpHeader(
            self.sport,
            self.dport,
            self.seq,
            self.ack,
            self.flags,
            self.window,
            self.urgent,
            self.options.copy(),
        )

    def __repr__(self):
        return "<TCP {}->{} [{}] seq={} ack={} win={}>".format(
            self.sport, self.dport, flags_to_str(self.flags), self.seq, self.ack, self.window
        )
