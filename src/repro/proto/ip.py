"""IPv4 header (no IP options) with ECN codepoints and header checksum."""

import struct

from repro.proto.checksum import checksum16

IPPROTO_TCP = 6

HEADER_LEN = 20

#: ECN codepoints (RFC 3168) carried in the low 2 bits of the TOS byte.
ECN_NOT_ECT = 0b00
ECN_ECT1 = 0b01
ECN_ECT0 = 0b10
ECN_CE = 0b11


def str_to_ip(text):
    """'10.0.0.1' -> 32-bit integer."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError("malformed IPv4 address: {!r}".format(text))
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError("malformed IPv4 address: {!r}".format(text))
        value = (value << 8) | octet
    return value


def ip_to_str(value):
    """32-bit integer -> dotted quad."""
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


class Ipv4Header:
    """An IPv4 header. ``total_len`` covers header + L4 header + payload."""

    __slots__ = ("src", "dst", "proto", "total_len", "ttl", "ident", "dscp", "ecn", "flags_df")

    def __init__(
        self,
        src,
        dst,
        proto=IPPROTO_TCP,
        total_len=HEADER_LEN,
        ttl=64,
        ident=0,
        dscp=0,
        ecn=ECN_NOT_ECT,
        flags_df=True,
    ):
        self.src = src
        self.dst = dst
        self.proto = proto
        self.total_len = total_len
        self.ttl = ttl
        self.ident = ident
        self.dscp = dscp
        self.ecn = ecn
        self.flags_df = flags_df

    @property
    def wire_len(self):
        return HEADER_LEN

    @property
    def ce_marked(self):
        return self.ecn == ECN_CE

    def mark_ce(self):
        """Apply a Congestion Experienced mark (switch ECN marking)."""
        if self.ecn in (ECN_ECT0, ECN_ECT1, ECN_CE):
            self.ecn = ECN_CE
            return True
        return False

    def pack(self):
        version_ihl = (4 << 4) | 5
        tos = ((self.dscp & 0x3F) << 2) | (self.ecn & 0x3)
        flags_frag = (0x4000 if self.flags_df else 0) | 0
        header = struct.pack(
            "!BBHHHBBHII",
            version_ihl,
            tos,
            self.total_len,
            self.ident,
            flags_frag,
            self.ttl,
            self.proto,
            0,
            self.src,
            self.dst,
        )
        cksum = checksum16(header)
        return header[:10] + struct.pack("!H", cksum) + header[12:]

    @classmethod
    def unpack(cls, data, verify_checksum=False):
        if len(data) < HEADER_LEN:
            raise ValueError("truncated IPv4 header")
        (
            version_ihl,
            tos,
            total_len,
            ident,
            flags_frag,
            ttl,
            proto,
            cksum,
            src,
            dst,
        ) = struct.unpack_from("!BBHHHBBHII", data, 0)
        if version_ihl >> 4 != 4:
            raise ValueError("not an IPv4 packet")
        ihl = (version_ihl & 0xF) * 4
        if ihl != HEADER_LEN:
            raise ValueError("IPv4 options are not supported")
        if verify_checksum and checksum16(data[:HEADER_LEN]) != 0:
            raise ValueError("bad IPv4 header checksum")
        header = cls(
            src=src,
            dst=dst,
            proto=proto,
            total_len=total_len,
            ttl=ttl,
            ident=ident,
            dscp=(tos >> 2) & 0x3F,
            ecn=tos & 0x3,
            flags_df=bool(flags_frag & 0x4000),
        )
        return header, HEADER_LEN

    def pseudo_header(self, l4_len):
        """The TCP/UDP checksum pseudo-header bytes."""
        return struct.pack("!IIBBH", self.src, self.dst, 0, self.proto, l4_len)

    def copy(self):
        return Ipv4Header(
            self.src,
            self.dst,
            self.proto,
            self.total_len,
            self.ttl,
            self.ident,
            self.dscp,
            self.ecn,
            self.flags_df,
        )

    def __repr__(self):
        return "<IPv4 {}->{} proto={} len={} ecn={}>".format(
            ip_to_str(self.src), ip_to_str(self.dst), self.proto, self.total_len, self.ecn
        )
