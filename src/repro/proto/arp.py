"""ARP for IPv4-over-Ethernet: enough for control-plane address resolution."""

import struct

ARP_REQUEST = 1
ARP_REPLY = 2

_FORMAT = "!HHBBH6sI6sI"
WIRE_LEN = struct.calcsize(_FORMAT)


class ArpHeader:
    """An ARP packet for IPv4 over Ethernet."""

    __slots__ = ("op", "sender_mac", "sender_ip", "target_mac", "target_ip")

    def __init__(self, op, sender_mac, sender_ip, target_mac, target_ip):
        self.op = op
        self.sender_mac = sender_mac
        self.sender_ip = sender_ip
        self.target_mac = target_mac
        self.target_ip = target_ip

    @property
    def wire_len(self):
        return WIRE_LEN

    @classmethod
    def request(cls, sender_mac, sender_ip, target_ip):
        return cls(ARP_REQUEST, sender_mac, sender_ip, 0, target_ip)

    def reply(self, responder_mac):
        """Build the reply to this request, from ``responder_mac``."""
        return ArpHeader(ARP_REPLY, responder_mac, self.target_ip, self.sender_mac, self.sender_ip)

    def pack(self):
        return struct.pack(
            _FORMAT,
            1,  # hardware type: Ethernet
            0x0800,  # protocol type: IPv4
            6,
            4,
            self.op,
            self.sender_mac.to_bytes(6, "big"),
            self.sender_ip,
            self.target_mac.to_bytes(6, "big"),
            self.target_ip,
        )

    @classmethod
    def unpack(cls, data):
        if len(data) < WIRE_LEN:
            raise ValueError("truncated ARP packet")
        htype, ptype, hlen, plen, op, smac, sip, tmac, tip = struct.unpack_from(_FORMAT, data, 0)
        if (htype, ptype, hlen, plen) != (1, 0x0800, 6, 4):
            raise ValueError("unsupported ARP encoding")
        header = cls(op, int.from_bytes(smac, "big"), sip, int.from_bytes(tmac, "big"), tip)
        return header, WIRE_LEN

    def __repr__(self):
        kind = "who-has" if self.op == ARP_REQUEST else "is-at"
        return "<ARP {} target_ip={}>".format(kind, self.target_ip)
