"""libTOE error types."""


class ToeError(Exception):
    """Base class for libTOE failures."""


class ConnectionClosedError(ToeError):
    """Operation on a socket whose peer has closed."""


class ConnectRefusedError(ToeError):
    """connect() failed (RST or timeout)."""
