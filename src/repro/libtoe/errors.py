"""libTOE error types."""


class ToeError(Exception):
    """Base class for libTOE failures."""


class ConnectionClosedError(ToeError):
    """Operation on a socket whose peer has closed."""


class ConnectRefusedError(ToeError):
    """connect() failed (RST or timeout)."""


class HandshakeTimeoutError(ConnectRefusedError):
    """connect() gave up after max_syn_retries SYN retransmissions."""


class ConnectionTimeoutError(ToeError):
    """Established connection aborted: retransmissions exhausted with no
    forward progress (the control plane RST the peer and tore down the
    offload state)."""


class PeerResetError(ToeError):
    """Established connection aborted: the peer sent a valid RST."""
