"""Circular payload buffers in host shared memory.

Each socket has an RX and a TX buffer carved from the control plane's
hugepage pool (paper §4). libTOE writes transmit data and reads received
data directly; the NIC DMAs the same region, so the bytes an application
receives really traveled through the simulated DMA engine.
"""


class CircularBuffer:
    """A producer/consumer view over a host Region.

    Positions are unbounded byte counts; the physical offset is
    ``pos % size``. The buffer does not itself track occupancy — flow
    control is the protocol window's job — it only maps positions and
    moves bytes, split across the wrap point when needed.
    """

    __slots__ = ("region", "base_addr", "size")

    def __init__(self, region, size=None):
        self.region = region
        self.base_addr = region.addr
        self.size = size if size is not None else region.length

    def write(self, pos, payload):
        offset = pos % self.size
        first = min(len(payload), self.size - offset)
        self.region.write(offset, payload[:first])
        if first < len(payload):
            self.region.write(0, payload[first:])

    def read(self, pos, length):
        offset = pos % self.size
        first = min(length, self.size - offset)
        data = self.region.read(offset, first)
        if first < length:
            data += self.region.read(0, length - first)
        return data

    def read_at_offset(self, offset, length):
        """Read by physical offset (as notifications report it)."""
        first = min(length, self.size - offset)
        data = self.region.read(offset, first)
        if first < length:
            data += self.region.read(0, length - first)
        return data

    def as_triple(self):
        """(region, base_addr, size) for the NIC's connection state."""
        return (self.region, self.base_addr, self.size)
