"""epoll-style readiness notification over libTOE sockets.

Multi-connection servers (the echo/Memcached applications) register
sockets with an :class:`EventPoll` and sleep until any becomes readable,
mirroring the epoll_wait() loop of the paper's workloads.
"""

from repro.host.cpu import CAT_SOCKETS

COST_EPOLL_WAIT = 120


class EventPoll:
    """Level-triggered readiness over a context's sockets."""

    def __init__(self, ctx):
        self.ctx = ctx
        self.watched = set()
        self._ready = []
        self._ready_set = set()
        ctx.epolls.append(self)

    def register(self, sock):
        self.watched.add(sock)
        if sock.readable:
            self._mark(sock)

    def unregister(self, sock):
        self.watched.discard(sock)
        if sock in self._ready_set:
            self._ready_set.discard(sock)
            self._ready = [s for s in self._ready if s is not sock]

    def on_event(self, sock):
        """Called by the context's dispatch loop."""
        if sock in self.watched and sock.readable:
            self._mark(sock)

    def _mark(self, sock):
        if sock not in self._ready_set:
            self._ready_set.add(sock)
            self._ready.append(sock)

    def wait(self, max_events=64):
        """Block until at least one socket is readable; returns a list."""
        ctx = self.ctx
        cost_fn = getattr(ctx, "epoll_cost_cycles", None)
        cost = cost_fn(len(self.watched)) if cost_fn else COST_EPOLL_WAIT
        yield from ctx.core.run(cost, CAT_SOCKETS)
        ctx.dispatch()
        while not self._ready:
            yield from ctx.wait_any()
        events = self._ready[:max_events]
        remaining = self._ready[max_events:]
        self._ready = remaining
        self._ready_set = set(remaining)
        # Re-arm still-readable sockets (level triggered).
        for sock in events:
            if sock.readable and sock in self.watched:
                self._mark(sock)
        return events
