"""libTOE: the POSIX-style sockets library linked into applications.

libTOE interposes on socket calls and talks to the FlexTOE data-path
through per-thread context queues and per-socket payload buffers in host
shared memory (paper §3). No TCP processing happens here — only buffer
management and notifications — which is why FlexTOE's host profile is
nearly all application time (Table 1).
"""

from repro.libtoe.api import LibToeContext, ToeSocket
from repro.libtoe.buffers import CircularBuffer
from repro.libtoe.epoll import EventPoll
from repro.libtoe.errors import (
    ConnectionClosedError,
    ConnectionTimeoutError,
    ConnectRefusedError,
    HandshakeTimeoutError,
    PeerResetError,
    ToeError,
)

__all__ = [
    "CircularBuffer",
    "ConnectionClosedError",
    "ConnectionTimeoutError",
    "ConnectRefusedError",
    "EventPoll",
    "HandshakeTimeoutError",
    "LibToeContext",
    "PeerResetError",
    "ToeError",
    "ToeSocket",
]
