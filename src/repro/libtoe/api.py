"""The libTOE socket API.

All operations are generator coroutines executed inside an application
process on a host :class:`~repro.host.CpuCore`, charging socket-API
cycles (the only host TCP-related cost left under FlexTOE, Table 1).

Usage pattern::

    ctx = LibToeContext(sim, core, nic, control_plane, context_id=1)
    sock = yield from ctx.connect(remote_ip, remote_port)
    yield from ctx.send(sock, b"hello")
    data = yield from ctx.recv(sock, 4096)
    yield from ctx.close(sock)
"""

from collections import deque

from repro.flextoe.descriptors import (
    HC_FIN,
    HC_RX_UPDATE,
    HC_TX_UPDATE,
    NOTIFY_ERROR,
    NOTIFY_FIN,
    NOTIFY_RX,
    NOTIFY_TX_ACKED,
    HostControlDescriptor,
)
from repro.host.cpu import CAT_SOCKETS
from repro.libtoe.errors import (
    ConnectionClosedError,
    ConnectionTimeoutError,
    PeerResetError,
    ToeError,
)

#: Socket-API cycle costs (calibrated so a request-response pair lands
#: near Table 1's 740 cycles of POSIX-socket time under FlexTOE).
COST_SEND = 300
COST_RECV = 300
COST_POLL = 70
COST_SETUP = 2000
COST_PER_KB_COPY = 60


class ToeSocket:
    """An established, offloaded connection as libTOE sees it."""

    __slots__ = (
        "conn_index",
        "ctx",
        "rx_buffer",
        "tx_buffer",
        "rx_ready",
        "rx_bytes_ready",
        "tx_free",
        "tx_head",
        "peer_fin",
        "fin_sent",
        "four_tuple",
        "bytes_sent",
        "bytes_received",
        "error",
        "token",
    )

    def __init__(self, ctx, conn_index, four_tuple, rx_buffer, tx_buffer, token=None):
        self.ctx = ctx
        self.conn_index = conn_index
        # Establishment generation (mirrors the NIC's opaque handle);
        # used to reject notifications left over from a previous
        # connection that occupied the same index.
        self.token = token
        self.four_tuple = four_tuple
        self.rx_buffer = rx_buffer
        self.tx_buffer = tx_buffer
        self.rx_ready = deque()  # (offset, length) notifications
        self.rx_bytes_ready = 0
        self.tx_free = tx_buffer.size
        self.tx_head = 0
        self.peer_fin = False
        self.fin_sent = False
        self.bytes_sent = 0
        self.bytes_received = 0
        self.error = None  # fatal ToeError delivered by the control plane

    @property
    def readable(self):
        return self.rx_bytes_ready > 0 or self.peer_fin

    def __repr__(self):
        return "<ToeSocket conn={} ready={}B>".format(self.conn_index, self.rx_bytes_ready)


class LibToeContext:
    """A per-application-thread context: queue pair + socket table."""

    def __init__(self, sim, core, nic, control_plane, context_id):
        self.sim = sim
        self.core = core
        self.nic = nic
        self.control_plane = control_plane
        self.context_id = context_id
        self.pair = nic.register_context(context_id)
        self.sockets = {}
        self.epolls = []
        # Notifications that arrived before their connection was adopted
        # (data can land while the connection sits in the accept queue)
        # or after its index was reallocated; keyed by conn_index and
        # drained — generation-filtered — at adoption time.
        self._parked = {}

    # -- connection setup ---------------------------------------------------

    def _adopt(self, established):
        """Wrap control-plane connection info in a ToeSocket."""
        sock = ToeSocket(
            self,
            established.conn_index,
            established.four_tuple,
            established.rx_buffer,
            established.tx_buffer,
            token=getattr(established, "token", None),
        )
        self.sockets[sock.conn_index] = sock
        for notification in self._parked.pop(sock.conn_index, ()):
            if self._matches(sock, notification):
                self._deliver(sock, notification)
        return sock

    def listen(self, port, backlog=128):
        """Register a listener; returns a listener handle (non-blocking)."""
        return self.control_plane.listen(self, port, backlog)

    def accept(self, listener):
        """Wait for and adopt an incoming connection."""
        yield from self.core.run(COST_SETUP, CAT_SOCKETS)
        established = yield from self.control_plane.accept_wait(listener)
        return self._adopt(established)

    def connect(self, remote_ip, remote_port):
        """Open a connection; blocks through the control-plane handshake."""
        yield from self.core.run(COST_SETUP, CAT_SOCKETS)
        established = yield from self.control_plane.connect(self, remote_ip, remote_port)
        return self._adopt(established)

    # -- data path -------------------------------------------------------------

    def _post_hc(self, descriptor):
        if not self.nic.post_hc(self.context_id, descriptor):
            raise ToeError("context queue overflow")

    def send(self, sock, data, blocking=True):
        """Append ``data`` to the socket's TX stream.

        Returns the number of bytes accepted (all of them when
        ``blocking``)."""
        if sock.error is not None:
            raise sock.error
        if sock.peer_fin and not data:
            raise ConnectionClosedError("peer closed")
        total = 0
        view = memoryview(data)
        while view:
            while sock.tx_free == 0:
                if not blocking:
                    return total
                yield from self._wait_and_dispatch()
                if sock.error is not None:
                    raise sock.error
            chunk = view[: sock.tx_free]
            yield from self.core.run(
                COST_SEND + COST_PER_KB_COPY * (len(chunk) // 1024), CAT_SOCKETS
            )
            sock.tx_buffer.write(sock.tx_head, bytes(chunk))
            sock.tx_head += len(chunk)
            sock.tx_free -= len(chunk)
            sock.bytes_sent += len(chunk)
            self._post_hc(
                HostControlDescriptor(HC_TX_UPDATE, sock.conn_index, value=len(chunk))
            )
            total += len(chunk)
            view = view[len(chunk) :]
        return total

    def recv(self, sock, max_bytes, blocking=True):
        """Read up to ``max_bytes`` of in-order payload.

        Returns b"" on a clean peer close."""
        if sock.error is not None:
            raise sock.error
        while sock.rx_bytes_ready == 0:
            if sock.peer_fin:
                return b""
            if not blocking:
                return None
            yield from self._wait_and_dispatch()
            if sock.error is not None:
                raise sock.error
        yield from self.core.run(
            COST_RECV + COST_PER_KB_COPY * (min(max_bytes, sock.rx_bytes_ready) // 1024),
            CAT_SOCKETS,
        )
        chunks = []
        taken = 0
        while sock.rx_ready and taken < max_bytes:
            offset, length = sock.rx_ready[0]
            take = min(length, max_bytes - taken)
            chunks.append(sock.rx_buffer.read_at_offset(offset, take))
            taken += take
            if take == length:
                sock.rx_ready.popleft()
            else:
                sock.rx_ready[0] = ((offset + take) % sock.rx_buffer.size, length - take)
        sock.rx_bytes_ready -= taken
        sock.bytes_received += taken
        # Return the consumed space to the receive window.
        self._post_hc(HostControlDescriptor(HC_RX_UPDATE, sock.conn_index, value=taken))
        return b"".join(chunks)

    def close(self, sock):
        """Half-close: send FIN after pending data; free on completion."""
        yield from self.core.run(COST_SEND, CAT_SOCKETS)
        if not sock.fin_sent:
            sock.fin_sent = True
            self._post_hc(HostControlDescriptor(HC_FIN, sock.conn_index))
        self.control_plane.notify_close(sock.conn_index)

    # -- event handling ------------------------------------------------------

    @staticmethod
    def _matches(sock, notification):
        """False when the notification belongs to a different generation
        of this conn index than the socket (stale after index reuse)."""
        return (
            sock.token is None
            or notification.opaque is None
            or notification.opaque == sock.token
        )

    def _deliver(self, sock, notification):
        if notification.kind == NOTIFY_RX:
            sock.rx_ready.append((notification.offset, notification.length))
            sock.rx_bytes_ready += notification.length
        elif notification.kind == NOTIFY_TX_ACKED:
            sock.tx_free += notification.length
        elif notification.kind == NOTIFY_FIN:
            sock.peer_fin = True
        elif notification.kind == NOTIFY_ERROR:
            if notification.error == "reset":
                sock.error = PeerResetError("connection reset by peer")
            else:
                sock.error = ConnectionTimeoutError("connection timed out")
        for epoll in self.epolls:
            epoll.on_event(sock)

    def dispatch(self):
        """Drain the inbound context queue into socket state; returns the
        number of notifications processed."""
        count = 0
        while True:
            notification = self.pair.poll()
            if notification is None:
                return count
            count += 1
            sock = self.sockets.get(notification.conn_index)
            if sock is not None and self._matches(sock, notification):
                self._deliver(sock, notification)
                continue
            # Either the connection is still in the accept queue (no
            # socket yet) or the index was reallocated to a newer
            # generation: park for the matching adoption, never drop —
            # data may arrive before accept() returns.
            self._parked.setdefault(notification.conn_index, []).append(notification)

    def _wait_and_dispatch(self):
        """Block until the NIC delivers a notification, then dispatch.

        Models the poll-then-eventfd-sleep behavior of §4: the context
        manager raises an MSI-X interrupt for sleeping contexts."""
        yield from self.core.run(COST_POLL, CAT_SOCKETS)
        if not self.pair.inbound:
            yield self.pair.wait()
        self.dispatch()

    def wait_any(self):
        """Public wrapper: wait for any notification on this context."""
        yield from self._wait_and_dispatch()

    def epoll_cost_cycles(self, n_watched):
        """libTOE epoll cost: flat — readiness comes from the context
        queue, so cost does not scale with watched connections."""
        return 120
