"""Opt-in runtime ownership sanitizer for protocol state.

The static race lint proves stage *code* respects the ownership
contract; this sanitizer checks it dynamically for whatever actually
executes, including extension modules and future refactors the lint's
heuristics might miss. With ``REPRO_SANITIZE=1`` (or a programmatic
:func:`install`):

* every :class:`~repro.flextoe.state.ProtocolState` installed in a
  connection table is registered with its owning flow group;
* every data-path stage process runs wrapped so the sanitizer knows
  which stage kind (and flow group) is executing between yields —
  the simulator is single-threaded, so the currently-resumed process
  is exactly the code performing a write;
* instrumented ``ProtocolState.__setattr__`` raises
  :class:`SanitizerError` on any write from a non-protocol stage, or
  from a protocol stage of a *different* flow group.

Writes with no stage context (control-plane setup, tests constructing
state directly) are allowed: the invariant being enforced is data-path
stage ownership, not construction.

The hooks are deliberately cheap no-ops when not installed, so the
production path pays one module-level boolean check at datapath
construction and nothing per packet.
"""

import os

#: Stage kind allowed to mutate protocol state.
PROTO_STAGE = "proto"

_OWNER_STACK = []
# id(state) -> (flow_group, state). The strong reference pins the object
# so ids cannot be recycled while registered; entries are dropped on
# unregister (connection removal) or uninstall.
_REGISTRY = {}
_installed = False
_original_setattr = None


class SanitizerError(AssertionError):
    """A data-path write violated stage or flow-group ownership."""


def enabled():
    return _installed


def maybe_install_from_env():
    """Install when ``REPRO_SANITIZE`` is set to a truthy value."""
    if os.environ.get("REPRO_SANITIZE", "0") not in ("", "0"):
        install()
    return _installed


def install():
    """Instrument ``ProtocolState.__setattr__`` (idempotent)."""
    global _installed, _original_setattr
    if _installed:
        return
    from repro.flextoe.state import ProtocolState

    _original_setattr = ProtocolState.__setattr__

    def _guarded_setattr(self, name, value):
        if _OWNER_STACK:
            entry = _REGISTRY.get(id(self))
            if entry is not None and entry[1] is self:
                stage, group = _OWNER_STACK[-1]
                owning_group = entry[0]
                if stage != PROTO_STAGE:
                    raise SanitizerError(
                        "stage '{}' wrote ProtocolState.{} (flow group {}): only "
                        "the atomic protocol stage may mutate protocol state".format(
                            stage, name, owning_group
                        )
                    )
                if group is not None and group != owning_group:
                    raise SanitizerError(
                        "protocol stage of flow group {} wrote ProtocolState.{} "
                        "owned by flow group {}: cross-flow-group write".format(
                            group, name, owning_group
                        )
                    )
        _original_setattr(self, name, value)

    ProtocolState.__setattr__ = _guarded_setattr
    _installed = True


def uninstall():
    """Remove the instrumentation and forget all registrations."""
    global _installed, _original_setattr
    if not _installed:
        return
    from repro.flextoe.state import ProtocolState

    ProtocolState.__setattr__ = _original_setattr
    _original_setattr = None
    _installed = False
    _REGISTRY.clear()
    del _OWNER_STACK[:]


def register(state, flow_group):
    """Declare ``state`` owned by ``flow_group`` (at connection install)."""
    _REGISTRY[id(state)] = (flow_group, state)


def unregister(state):
    _REGISTRY.pop(id(state), None)


def current_owner():
    """The (stage kind, flow group) currently executing, or None."""
    return _OWNER_STACK[-1] if _OWNER_STACK else None


def guard_process(generator, stage, flow_group=None):
    """Wrap a stage process so its execution carries ownership context.

    The wrapper sets the owner token whenever the inner generator's code
    runs and clears it while the process is suspended on an event, so
    concurrent (interleaved) stage processes never see each other's
    token. Exceptions thrown into the wrapper (e.g. simulator
    interrupts) are forwarded into the inner generator under the token.
    """
    token = (stage, flow_group)
    send_value = None
    thrown = None
    while True:
        _OWNER_STACK.append(token)
        try:
            if thrown is not None:
                exc, thrown = thrown, None
                item = generator.throw(exc)
            else:
                item = generator.send(send_value)
        except StopIteration as stop:
            return getattr(stop, "value", None)
        finally:
            _OWNER_STACK.pop()
        try:
            send_value = yield item
        except BaseException as exc:  # forwarded on the next resume
            thrown = exc
            send_value = None
