"""Opt-in runtime ownership sanitizer for partitioned connection state.

The static race lint proves stage *code* respects the ownership
contract; this sanitizer checks it dynamically for whatever actually
executes, including extension modules and future refactors the lint's
heuristics might miss. With ``REPRO_SANITIZE=1`` (or a programmatic
:func:`install`):

* every partition of a connection installed in a connection table
  (:class:`~repro.flextoe.state.PreprocState`,
  :class:`~repro.flextoe.state.ProtocolState`,
  :class:`~repro.flextoe.state.PostprocState`) is registered with its
  owning flow group;
* every data-path stage process runs wrapped so the sanitizer knows
  which stage kind (and flow group) is executing between yields —
  the simulator is single-threaded, so the currently-resumed process
  is exactly the code performing a write;
* instrumented ``__setattr__`` enforces Table 5 ownership:
  ``PreprocState`` is immutable once registered (the identification
  partition is control-plane-installed); ``ProtocolState`` accepts
  writes only from the atomic protocol stage of the owning flow group;
  ``PostprocState`` accepts writes only from the owning group's post
  stage (or the run-to-completion worker, which executes the post logic
  inline under its ``proto`` token).

Writes to Protocol/Postproc state with no stage context (control-plane
setup and polls, tests constructing state directly) are allowed: the
invariant being enforced is data-path stage ownership, not
construction. Pre-processor state is stricter — after registration any
write raises, stage context or not.

The hooks are deliberately cheap no-ops when not installed, so the
production path pays one module-level boolean check at datapath
construction and nothing per packet.
"""

import os

#: Stage kind allowed to mutate protocol state.
PROTO_STAGE = "proto"
#: Stage kind owning the post-processor partition.
POST_STAGE = "post"

_OWNER_STACK = []
# (partition class, slab slot) -> flow_group. Keyed by storage identity,
# not view identity: partition views are flyweights a
# ConnectionRecord.compact() can shed and lazily recreate, and the
# recreated view must reattach to the same ownership token. Entries are
# dropped on unregister (connection removal) or uninstall. Objects
# without a slab slot (plain duck-typed state in tests) fall back to
# id() keys, pinned by a strong reference in _ID_PINS.
_REGISTRY = {}
_ID_PINS = {}
_MISSING = object()
_installed = False
# class -> original __setattr__, for uninstall.
_original_setattrs = {}


class SanitizerError(AssertionError):
    """A data-path write violated stage or flow-group ownership."""


def enabled():
    return _installed


def maybe_install_from_env():
    """Install when ``REPRO_SANITIZE`` is set to a truthy value."""
    if os.environ.get("REPRO_SANITIZE", "0") not in ("", "0"):
        install()
    return _installed


def _check_pre(self, name, owning_group):
    raise SanitizerError(
        "write to PreprocState.{} (flow group {}): the identification "
        "partition is installed by the control plane and immutable".format(name, owning_group)
    )


def _check_proto(self, name, owning_group):
    if not _OWNER_STACK:
        return  # control plane / construction
    stage, group = _OWNER_STACK[-1]
    if stage != PROTO_STAGE:
        raise SanitizerError(
            "stage '{}' wrote ProtocolState.{} (flow group {}): only "
            "the atomic protocol stage may mutate protocol state".format(
                stage, name, owning_group
            )
        )
    if group is not None and group != owning_group:
        raise SanitizerError(
            "protocol stage of flow group {} wrote ProtocolState.{} "
            "owned by flow group {}: cross-flow-group write".format(
                group, name, owning_group
            )
        )


def _check_post(self, name, owning_group):
    if not _OWNER_STACK:
        return  # control-plane poll (take_cc_stats, fold_rtt_samples)
    stage, group = _OWNER_STACK[-1]
    # The run-to-completion worker executes the post logic inline under
    # its 'proto' token; pipelined mode tags real post threads 'post'.
    if stage not in (POST_STAGE, PROTO_STAGE):
        raise SanitizerError(
            "stage '{}' wrote PostprocState.{} (flow group {}): only the "
            "owning post stage may mutate the app-interface partition".format(
                stage, name, owning_group
            )
        )
    if group is not None and group != owning_group:
        raise SanitizerError(
            "{} stage of flow group {} wrote PostprocState.{} owned by "
            "flow group {}: cross-flow-group write".format(
                stage, group, name, owning_group
            )
        )


def install():
    """Instrument the three partition classes' ``__setattr__`` (idempotent)."""
    global _installed
    if _installed:
        return
    from repro.flextoe.state import PostprocState, PreprocState, ProtocolState

    checks = (
        (PreprocState, _check_pre),
        (ProtocolState, _check_proto),
        (PostprocState, _check_post),
    )
    # Slot-keyed registrations must not outlive the slot: when a
    # connection record is garbage collected its slab slot recycles, and
    # a stale entry would pin the old ownership onto the next tenant.
    from repro.flextoe.state import CONN_SLAB

    CONN_SLAB.on_free = _forget_slot

    for cls, check in checks:
        original = cls.__setattr__
        _original_setattrs[cls] = original

        def _guarded_setattr(self, name, value, _original=original, _check=check):
            # Underscored names are the flyweight binding machinery
            # (_i/_own in SlabView.view()), not partition data.
            if not name.startswith("_"):
                owning_group = _REGISTRY.get(_registry_key(self), _MISSING)
                if owning_group is not _MISSING:
                    _check(self, name, owning_group)
            _original(self, name, value)

        cls.__setattr__ = _guarded_setattr
    _installed = True


def uninstall():
    """Remove the instrumentation and forget all registrations."""
    global _installed
    if not _installed:
        return
    from repro.flextoe.state import CONN_SLAB

    CONN_SLAB.on_free = None
    for cls, original in _original_setattrs.items():
        cls.__setattr__ = original
    _original_setattrs.clear()
    _installed = False
    _REGISTRY.clear()
    _ID_PINS.clear()
    del _OWNER_STACK[:]


def _forget_slot(slot):
    for cls in list(_original_setattrs):
        _REGISTRY.pop((cls, slot), None)


def _registry_key(state):
    slot = getattr(state, "_i", None)
    if slot is None:
        return (type(state), "id", id(state))
    return (type(state), slot)


def register(state, flow_group):
    """Declare ``state`` owned by ``flow_group`` (at connection install).

    Ownership attaches to the slab slot, so every view of that slot —
    including views recreated after :meth:`ConnectionRecord.compact`
    sheds the cached ones — carries the same token.
    """
    key = _registry_key(state)
    _REGISTRY[key] = flow_group
    if key[1] == "id":
        _ID_PINS[key] = state  # keep the id from being recycled


def unregister(state):
    key = _registry_key(state)
    _REGISTRY.pop(key, None)
    _ID_PINS.pop(key, None)


def current_owner():
    """The (stage kind, flow group) currently executing, or None."""
    return _OWNER_STACK[-1] if _OWNER_STACK else None


def guard_process(generator, stage, flow_group=None):
    """Wrap a stage process so its execution carries ownership context.

    The wrapper sets the owner token whenever the inner generator's code
    runs and clears it while the process is suspended on an event, so
    concurrent (interleaved) stage processes never see each other's
    token. Exceptions thrown into the wrapper (e.g. simulator
    interrupts) are forwarded into the inner generator under the token.
    """
    token = (stage, flow_group)
    send_value = None
    thrown = None
    while True:
        _OWNER_STACK.append(token)
        try:
            if thrown is not None:
                exc, thrown = thrown, None
                item = generator.throw(exc)
            else:
                item = generator.send(send_value)
        except StopIteration as stop:
            return getattr(stop, "value", None)
        finally:
            _OWNER_STACK.pop()
        try:
            send_value = yield item
        except BaseException as exc:  # forwarded on the next resume
            thrown = exc
            send_value = None
