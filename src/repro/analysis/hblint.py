"""Whole-program happens-before analyzer for the stage pipeline (§3.1-3.2).

FlexTOE replaces per-connection locks with *structural* ordering: work
items flow through FIFO rings, sequencers hand out per-domain tickets,
replicated stages serialize per-connection emissions behind chain
fences, and the one atomic stage serializes per-connection protocol
updates. That discipline is invisible to a conventional race detector —
nothing is ever locked — so this module checks it statically, from the
AST, as a happens-before model:

* **stage graph** — every class carrying a ``STAGE_KIND`` anchor is a
  pipeline stage; ``REPLICATED`` marks stages whose program runs on
  several FPC threads concurrently. ``FlexToeDatapath.SEQR_DOMAINS``
  and ``ORDERED_RINGS`` name the sequencer→GRO domains and the rings
  whose per-key FIFO order is a delivery contract.
* **hb-race pass** — per connection-state field, the union of stage
  kinds that read or write it (through arbitrary helper call depth,
  reusing :mod:`repro.analysis.stagelint`'s interprocedural
  summaries). Cross-stage HB edges order *adjacent work items*, never
  all instances of two stages (stage T on segment k runs concurrently
  with stage W on segment k+1), so a shared field is safe only when it
  is **immutable** (no stage writes), **owned** (one stage kind), or
  **atomic** (declared commutative in ``state.atomic()``). Anything
  else is an ``hb-race``: cross-stage dataflow must ride the work item.
* **ordering pass** — protocol obligations of the ordering devices:

  - ``unfenced-ordered-emit`` — a replicated stage emitting into an
    ordered ring (or calling ``nic_deliver``) outside a chain fence
    (``prev = chain.get(k); done = sim.event(); chain[k] = done; ...;
    yield prev; <emit>; done.succeed()``). This is exactly the
    NOTIFY_RX reordering bug class: replicas finish out of order and
    libTOE stitches the stream wrong.
  - ``unsequenced-gro-offer`` — a stage offers into a reorder buffer
    whose sequencer ticket is only assigned *downstream* of it (the
    ticket must exist before parallelism can reorder the item).
  - ``ack-before-notify`` — the write-ahead rule (§3.1.3): a region
    that both emits notifications and offers the segment's ACK toward
    the wire must transfer the ACK onto a notification
    (``piggyback_ack``) so ARX releases it only after ``nic_deliver``;
    and an offer of a ``piggyback_ack`` alias must follow the
    ``nic_deliver`` call that made the notification host-visible.

The extracted :class:`HBModel` is also the basis of the commutability
certificate (:mod:`repro.analysis.hbcert`) and of the runtime monitor
(:mod:`repro.analysis.hbmonitor`), which validates observed
interleavings against the same edges under ``REPRO_SANITIZE=1``.
"""

import ast
import os

from repro.analysis import stagelint
from repro.analysis.report import PASS_HB, PASS_ORDER, Finding

#: Bump when the model extraction or the HB rules change meaning; bound
#: into the commutability certificate digest.
MODEL_VERSION = 1

#: Topological index of each stage kind in the pipeline DAG. ``ctx`` and
#: ``nbi`` share an index: both are leaves downstream of ``dma``.
STAGE_ORDER = {"pre": 0, "proto": 1, "post": 2, "dma": 3, "ctx": 4, "nbi": 4}

#: Datapath entry code (``_on_mac_rx``, doorbell handlers) runs before
#: any stage: sequencer tickets assigned there precede the whole DAG.
ENTRY_INDEX = -1

VERDICT_IMMUTABLE = "immutable"
VERDICT_ATOMIC = "atomic"
VERDICT_OWNED = "owned"
VERDICT_RACE = "hb-race"


class StageModel:
    """One pipeline stage class, as declared by its anchors."""

    __slots__ = ("class_name", "kind", "replicated", "serializes_per_conn", "filename")

    def __init__(self, class_name, kind, replicated, serializes_per_conn, filename):
        self.class_name = class_name
        self.kind = kind
        self.replicated = replicated
        self.serializes_per_conn = serializes_per_conn
        self.filename = filename


class HBModel:
    """The static pipeline model: stages + ordering-device anchors."""

    __slots__ = ("stages", "seqr_domains", "ordered_rings")

    def __init__(self, stages, seqr_domains, ordered_rings):
        self.stages = stages  # {class_name: StageModel}
        self.seqr_domains = seqr_domains  # {seqr attr: gro attr}
        self.ordered_rings = ordered_rings  # {ring attr: per-key kind}

    def kind_of(self, class_name):
        stage = self.stages.get(class_name)
        return stage.kind if stage is not None else None

    def to_jsonable(self):
        return {
            "version": MODEL_VERSION,
            "stages": {
                name: {
                    "kind": s.kind,
                    "replicated": bool(s.replicated),
                    "serializes_per_conn": bool(s.serializes_per_conn),
                }
                for name, s in sorted(self.stages.items())
            },
            "seqr_domains": dict(sorted(self.seqr_domains.items())),
            "ordered_rings": dict(sorted(self.ordered_rings.items())),
        }


def _read_sources(paths):
    sources = []
    for path in paths:
        with open(path) as handle:
            sources.append((handle.read(), path))
    return sources


def _const_dict(node):
    """``{str: str}`` from a dict literal of string constants, else None."""
    if not isinstance(node, ast.Dict):
        return None
    out = {}
    for key, value in zip(node.keys, node.values):
        if not (isinstance(key, ast.Constant) and isinstance(value, ast.Constant)):
            return None
        out[key.value] = value.value
    return out


def extract_model(sources, with_fallback=True):
    """Parse stage/anchor declarations out of ``[(source, filename)]``.

    When the provided sources carry no ``SEQR_DOMAINS``/``ORDERED_RINGS``
    anchors (a caller linting a subset, e.g. one fixture file), the real
    ``repro/flextoe/datapath.py`` is consulted for them, so fixtures
    exercise the production ordering model.
    """
    stages = {}
    seqr_domains = {}
    ordered_rings = {}
    for source, filename in sources:
        tree = ast.parse(source, filename=filename)
        for node in tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            attrs = {}
            for statement in node.body:
                if (
                    isinstance(statement, ast.Assign)
                    and len(statement.targets) == 1
                    and isinstance(statement.targets[0], ast.Name)
                ):
                    attrs[statement.targets[0].id] = statement.value
            kind = attrs.get("STAGE_KIND")
            if isinstance(kind, ast.Constant) and isinstance(kind.value, str):

                def _flag(name):
                    value = attrs.get(name)
                    return bool(value.value) if isinstance(value, ast.Constant) else False

                stages[node.name] = StageModel(
                    node.name, kind.value, _flag("REPLICATED"),
                    _flag("SERIALIZES_PER_CONN"), filename,
                )
            for anchor, target in (("SEQR_DOMAINS", seqr_domains), ("ORDERED_RINGS", ordered_rings)):
                parsed = _const_dict(attrs.get(anchor))
                if parsed:
                    target.update(parsed)
    if with_fallback and not (seqr_domains and ordered_rings):
        datapath = stagelint._flextoe_path("datapath.py")
        with open(datapath) as handle:
            fallback = extract_model([(handle.read(), datapath)], with_fallback=False)
        if not seqr_domains:
            seqr_domains = fallback.seqr_domains
        if not ordered_rings:
            ordered_rings = fallback.ordered_rings
    return HBModel(stages, seqr_domains, ordered_rings)


# -- hb-race: cross-stage field footprints ---------------------------------


def _better_site(current, candidate):
    """Prefer the shortest call chain, then the lowest line."""
    if current is None:
        return candidate
    if (len(candidate[3]), candidate[2]) < (len(current[3]), current[2]):
        return candidate
    return current


def stage_field_footprints(program, model, ownership):
    """Per connection-state field, which stage kinds read/write it.

    Returns ``{(partition, attr): {"writes": {kind: site},
    "reads": {kind: site}}}`` where a site is
    ``(qualname, filename, lineno, via)`` — the representative access
    (shortest helper chain) for findings. Only methods of classes
    bearing a ``STAGE_KIND`` anchor contribute: everything else
    (datapath control plane, partition classes, modules) is not a
    concurrent pipeline stage, and the stage-race/module lints already
    police those.
    """
    write_summaries, _cycles = stagelint.summarize(program)
    read_summaries = stagelint.summarize_reads(program)
    fields = {}

    def _bucket(partition, attr, side):
        entry = fields.setdefault((partition, attr), {"writes": {}, "reads": {}})
        return entry[side]

    for qualname, info in program.items():
        kind = model.kind_of(info.class_name)
        if kind is None:
            continue
        for token, attr, line, filename, _rmw, chain in write_summaries[qualname]:
            if token not in stagelint.PARTITIONS or ownership.get(attr) != token:
                continue
            via = (qualname,) + chain if chain else ()
            bucket = _bucket(token, attr, "writes")
            bucket[kind] = _better_site(bucket.get(kind), (qualname, filename, line, via))
        for token, attr, line, filename, chain in read_summaries[qualname]:
            if token not in stagelint.PARTITIONS or ownership.get(attr) != token:
                continue
            via = (qualname,) + chain if chain else ()
            bucket = _bucket(token, attr, "reads")
            bucket[kind] = _better_site(bucket.get(kind), (qualname, filename, line, via))
    return fields


def field_verdicts(paths=None, ownership=None, registry=None):
    """Judge every stage-touched connection-state field.

    Returns ``(model, {(partition, attr): (verdict, footprint)})``.
    """
    sources = _read_sources(paths or stagelint.default_paths())
    model = extract_model(sources)
    if ownership is None:
        ownership = stagelint.partition_ownership()
    if registry is None:
        registry = stagelint.atomic_registry()
    program = stagelint.build_program(sources, ownership)
    fields = stage_field_footprints(program, model, ownership)
    verdicts = {}
    for key, footprint in fields.items():
        partition, attr = key
        writer_kinds = set(footprint["writes"])
        all_kinds = writer_kinds | set(footprint["reads"])
        if not writer_kinds:
            verdict = VERDICT_IMMUTABLE
        elif registry.get(attr) == partition:
            verdict = VERDICT_ATOMIC
        elif len(all_kinds) == 1:
            verdict = VERDICT_OWNED
        else:
            verdict = VERDICT_RACE
        verdicts[key] = (verdict, footprint)
    return model, verdicts


def lint_hb(paths=None, ownership=None, registry=None, verdicts=None):
    """The ``hb-race`` pass: unordered cross-stage shared-field access."""
    if verdicts is None:
        _model, verdicts = field_verdicts(paths, ownership, registry)
    findings = []
    for (partition, attr) in sorted(verdicts):
        verdict, footprint = verdicts[(partition, attr)]
        if verdict != VERDICT_RACE:
            continue
        for writer_kind in sorted(footprint["writes"]):
            writer_site = footprint["writes"][writer_kind]
            accesses = [
                ("writes", kind, site)
                for kind, site in footprint["writes"].items()
                if kind != writer_kind and kind > writer_kind
            ] + [
                ("reads", kind, site)
                for kind, site in footprint["reads"].items()
                if kind != writer_kind
            ]
            for verb, other_kind, site in sorted(accesses, key=lambda a: (a[1], a[0])):
                qualname, filename, line, via = site
                findings.append(
                    Finding(
                        PASS_HB,
                        filename,
                        line,
                        "hb-race",
                        "stage '{}' {} {}.{} which stage '{}' writes "
                        "(e.g. {}:{}): no happens-before edge orders the "
                        "access — queue FIFOs and seqr tickets order only "
                        "adjacent work items, so cross-stage data must ride "
                        "the work item, or the field must be owned, "
                        "immutable, or atomic()".format(
                            other_kind,
                            verb,
                            partition,
                            attr,
                            writer_kind,
                            os.path.basename(writer_site[1]),
                            writer_site[2],
                        ),
                        via=via,
                    )
                )
    findings.sort(key=lambda f: (f.path, f.line, f.code, f.message))
    return findings


# -- ordering: fence / sequencer / write-ahead obligations ------------------


def _receiver_attr(node):
    """Last attribute of a call receiver: ``dp.dma_ring`` -> ``dma_ring``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _collect_fences(function):
    """Chain-fence spans ``(yield_line, succeed_line)`` in one function.

    The fence idiom: ``prev = <chain>.get(key)``, ``done =
    sim.event()``, ``<chain>[key] = done``, later ``yield prev`` and
    finally ``done.succeed()``. Emissions strictly between the yield
    and the succeed are ordered per key. An attribute is a chain when
    its name contains ``chain`` (``post_chain``, ``dma_rx_chain``,
    ``_arx_chain``) — the naming convention is part of the contract the
    anchors establish.
    """
    prev_vars = {}
    event_vars = set()
    chain_stored = set()
    yield_lines = {}
    succeed_lines = {}
    for node in ast.walk(function):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            value = node.value
            if isinstance(target, ast.Name):
                if (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and value.func.attr == "get"
                    and "chain" in (_receiver_attr(value.func.value) or "")
                ):
                    prev_vars[target.id] = True
                elif (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and value.func.attr == "event"
                ):
                    event_vars.add(target.id)
            elif (
                isinstance(target, ast.Subscript)
                and "chain" in (_receiver_attr(target.value) or "")
                and isinstance(value, ast.Name)
            ):
                chain_stored.add(value.id)
        elif isinstance(node, ast.Yield):
            if isinstance(node.value, ast.Name) and node.value.id in prev_vars:
                yield_lines[node.value.id] = node.lineno
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "succeed"
            and isinstance(node.func.value, ast.Name)
        ):
            succeed_lines[node.func.value.id] = node.lineno
    fences = []
    for done_var in event_vars & chain_stored:
        succeed = succeed_lines.get(done_var)
        if succeed is None:
            continue
        for _prev, line in yield_lines.items():
            if line < succeed:
                fences.append((line, succeed))
    return fences


def _iter_calls(node):
    for call in ast.walk(node):
        if isinstance(call, ast.Call) and isinstance(call.func, ast.Attribute):
            yield call


def _collect_ordered_emissions(function, ordered_rings):
    """``(lineno, label)`` for emissions whose per-key order is contractual."""
    emissions = []
    for call in _iter_calls(function):
        method = call.func.attr
        if method in ("put", "force_put", "try_put"):
            ring = _receiver_attr(call.func.value)
            if ring in ordered_rings:
                emissions.append((call.lineno, ring))
        elif method == "nic_deliver":
            emissions.append((call.lineno, "nic_deliver"))
    return emissions


def _is_ack_value(node, ack_aliases):
    if isinstance(node, ast.Name):
        return node.id in ack_aliases
    return isinstance(node, ast.Attribute) and node.attr == "ack_frame"


def _kind_regions(function):
    """Bodies of the top-level ``work.kind`` dispatch, else the whole body.

    The write-ahead obligation is per work-kind: an RX segment's region
    moves notifications *and* the ACK, a TX region moves neither.
    """
    for statement in function.body:
        if not isinstance(statement, ast.If):
            continue
        mentions_kind = any(
            isinstance(node, ast.Attribute) and node.attr == "kind"
            for node in ast.walk(statement.test)
        )
        if not mentions_kind:
            continue
        regions = []
        node = statement
        while True:
            regions.append(node.body)
            orelse = node.orelse
            if len(orelse) == 1 and isinstance(orelse[0], ast.If):
                node = orelse[0]
                continue
            if orelse:
                regions.append(orelse)
            break
        return regions
    return [function.body]


def _write_ahead_findings(function, filename, model):
    """``ack-before-notify``: the §3.1.3 write-ahead rule, both halves."""
    findings = []
    notification_rings = {
        ring for ring, key in model.ordered_rings.items() if key == "context"
    }
    gro_attrs = set(model.seqr_domains.values())
    # O1: a region emitting notifications and offering the segment's ACK
    # must piggyback the ACK on a notification instead.
    for region in _kind_regions(function):
        ack_aliases = set()
        piggy_transfer = False
        notif_put = False
        ack_offers = []
        for statement in region:
            for node in ast.walk(statement):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if (
                        isinstance(target, ast.Name)
                        and isinstance(node.value, ast.Attribute)
                        and node.value.attr == "ack_frame"
                    ):
                        ack_aliases.add(target.id)
                    elif (
                        isinstance(target, ast.Attribute)
                        and target.attr == "piggyback_ack"
                        and _is_ack_value(node.value, ack_aliases)
                    ):
                        piggy_transfer = True
                elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                    method = node.func.attr
                    receiver = _receiver_attr(node.func.value)
                    if method in ("put", "force_put") and receiver in notification_rings:
                        notif_put = True
                    elif (
                        method == "offer"
                        and receiver in gro_attrs
                        and node.args
                        and _is_ack_value(node.args[0], ack_aliases)
                    ):
                        ack_offers.append(node.lineno)
        if notif_put and ack_offers and not piggy_transfer:
            for line in ack_offers:
                findings.append(
                    Finding(
                        PASS_ORDER,
                        filename,
                        line,
                        "ack-before-notify",
                        "ACK offered toward the wire in a region that also "
                        "emits notifications: the write-ahead rule (§3.1.3) "
                        "requires the ACK to ride piggyback_ack so it is "
                        "released only after nic_deliver — a crash between "
                        "wire ACK and host notification loses delivered "
                        "bytes the peer will never retransmit",
                    )
                )
    # O1b: releasing a piggybacked ACK must happen after nic_deliver.
    piggy_aliases = set()
    deliver_lines = []
    release_offers = []
    for node in ast.walk(function):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if (
                isinstance(target, ast.Name)
                and isinstance(node.value, ast.Attribute)
                and node.value.attr == "piggyback_ack"
            ):
                piggy_aliases.add(target.id)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr == "nic_deliver":
                deliver_lines.append(node.lineno)
            elif (
                node.func.attr == "offer"
                and node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id in piggy_aliases
            ):
                release_offers.append(node.lineno)
    for line in release_offers:
        if not any(deliver < line for deliver in deliver_lines):
            findings.append(
                Finding(
                    PASS_ORDER,
                    filename,
                    line,
                    "ack-before-notify",
                    "piggybacked ACK released before any nic_deliver call: "
                    "the notification it rides is not yet host-visible "
                    "(write-ahead rule, §3.1.3)",
                )
            )
    return findings


def lint_ordering(paths=None):
    """The ``ordering`` pass: fence, sequencer, and write-ahead checks."""
    sources = _read_sources(paths or stagelint.default_paths())
    model = extract_model(sources)
    findings = []

    # Gather sequencer assign/offer sites across all sources first: the
    # unsequenced-gro-offer check is whole-program (the ticket may be
    # taken in a different stage than the offer).
    gro_to_seqr = {gro: seqr for seqr, gro in model.seqr_domains.items()}
    assign_indices = {seqr: set() for seqr in model.seqr_domains}
    offer_sites = []  # (seqr, stage index, kind, filename, lineno)
    stage_functions = []  # (StageModel, FunctionDef, filename)

    for source, filename in sources:
        tree = ast.parse(source, filename=filename)
        for node in tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            stage = model.stages.get(node.name)
            for function in node.body:
                if not isinstance(function, ast.FunctionDef):
                    continue
                if stage is not None:
                    stage_functions.append((stage, function, filename))
                for call in _iter_calls(function):
                    receiver = _receiver_attr(call.func.value)
                    if call.func.attr == "assign" and receiver in assign_indices:
                        index = (
                            STAGE_ORDER.get(stage.kind, ENTRY_INDEX)
                            if stage is not None
                            else ENTRY_INDEX
                        )
                        assign_indices[receiver].add(index)
                    elif (
                        call.func.attr == "offer"
                        and receiver in gro_to_seqr
                        and stage is not None
                    ):
                        offer_sites.append(
                            (
                                gro_to_seqr[receiver],
                                STAGE_ORDER.get(stage.kind, ENTRY_INDEX),
                                receiver,
                                filename,
                                call.lineno,
                            )
                        )

    for seqr, index, gro, filename, lineno in offer_sites:
        indices = assign_indices.get(seqr, set())
        if not indices or index < min(indices):
            findings.append(
                Finding(
                    PASS_ORDER,
                    filename,
                    lineno,
                    "unsequenced-gro-offer",
                    "offer into {} at a stage upstream of every {}.assign "
                    "site: the reorder ticket must be taken before "
                    "parallelism can reorder the item (§3.2)".format(gro, seqr),
                )
            )

    # Per-function obligations: chain fences and the write-ahead rule.
    for stage, function, filename in stage_functions:
        if stage.replicated:
            fences = _collect_fences(function)
            for lineno, label in _collect_ordered_emissions(function, model.ordered_rings):
                if not any(start < lineno < end for start, end in fences):
                    findings.append(
                        Finding(
                            PASS_ORDER,
                            filename,
                            lineno,
                            "unfenced-ordered-emit",
                            "replicated stage '{}' emits into {} outside a "
                            "per-key chain fence: replicas finishing out of "
                            "order would break the ring's per-{} delivery "
                            "contract (§3.1.3)".format(
                                stage.kind,
                                label,
                                model.ordered_rings.get(label, "key"),
                            ),
                        )
                    )
        findings.extend(_write_ahead_findings(function, filename, model))

    findings.sort(key=lambda f: (f.path, f.line, f.code, f.message))
    return findings
