"""Static and runtime safety analysis for the FlexTOE data-path.

FlexTOE's correctness argument rests on two mechanical invariants
(paper §3.1/§3.3): extension modules are one-shot and verified before
load, and only the atomic protocol stage mutates per-connection
protocol state while replicated pre/post stages stay read-only. This
package makes both checkable:

* :mod:`repro.analysis.cfg` — control-flow graphs over XDP VM programs.
* :mod:`repro.analysis.dataflow` — the abstract domain (register typing,
  stack initialization, verified packet bounds) and its meet operator.
* :mod:`repro.analysis.verifier` — the CFG/worklist program verifier
  backing :func:`repro.xdp.verify`.
* :mod:`repro.analysis.stagelint` — AST race lint extracting per-stage
  read/write sets of connection-state partitions and flagging writes
  that violate stage ownership (Table 5).
* :mod:`repro.analysis.simlint` — lint for simulation processes
  (wall-clock and global-RNG use that bypasses :mod:`repro.sim`,
  yielding non-events).
* :mod:`repro.analysis.sanitizer` — opt-in runtime ownership sanitizer
  (``REPRO_SANITIZE=1``) instrumenting protocol-state writes.
* :mod:`repro.analysis.report`/:mod:`repro.analysis.cli` — findings,
  machine-readable reports, and ``python -m repro lint``.

This module deliberately imports only the dependency-light submodules;
:mod:`repro.analysis.verifier` pulls in :mod:`repro.xdp` and is imported
lazily by its users to keep package import cycles impossible.
"""

from repro.analysis.report import Finding, render_json, render_text

__all__ = ["Finding", "render_json", "render_text"]
