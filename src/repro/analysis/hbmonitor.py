"""Runtime validation of the static happens-before model (REPRO_SANITIZE).

:mod:`repro.analysis.hblint` proves, from the AST, that the pipeline's
per-connection ordering devices (queue FIFO order, sequencer tickets,
chain fences, the notification-before-ACK write-ahead rule) order every
cross-stage access. This monitor closes the loop at runtime: under
``REPRO_SANITIZE=1`` the pipelined datapath attaches passive taps to the
inter-stage rings and context queues and checks every *observed*
interleaving against the same model, so the analysis and the simulator
differentially test each other — a fence deleted from the code fails the
lint, and a fence that exists in the code but not in fact (a logic bug
the AST extraction believed) fails here.

The monitor is strictly passive: taps fire synchronously inside existing
puts/deliveries, create no simulation events and charge no cycles, so
golden wire digests are byte-identical with it enabled.

Checks
------

* **model edges** — every ring enqueue must come from a producer stage
  the static stage graph names for that ring (owner tokens come from the
  ownership sanitizer's process wrapping).
* **per-connection protocol order** — works enter ``dma_ring`` in the
  same per-connection order the protocol stage emitted them (the
  ``post_chain`` fence's contract, §3.1.3).
* **notification order** — notifications enter ``ctx_ring`` in the
  per-connection order the DMA stage received them (``dma_rx_chain``),
  and reach ``nic_deliver`` in per-context ``ctx_ring`` order
  (``_arx_chain``).
* **write-ahead rule** — an ACK frame recorded as riding a segment with
  notifications is never offered to the NBI sequencer before every one
  of those notifications is host-visible.
"""

from repro.analysis import sanitizer


class HBViolationError(sanitizer.SanitizerError):
    """An observed interleaving contradicts the static HB model."""


#: ring attribute -> owner tokens allowed to enqueue (stage kinds from
#: the static stage graph; ``gro``/``seqr`` are the reorder-buffer
#: delivery processes). ``None`` owners (control plane, test scaffolding)
#: are never checked — the invariant is about data-path stages.
EDGE_PRODUCERS = {
    "proto": ("pre", "gro"),
    "post": ("proto",),
    "dma": ("post",),
    "ctx": ("dma",),
    "nbi": ("seqr",),
}


class _OrderBook:
    """Per-key expected FIFO order with search-pop semantics.

    ``expect(key, item)`` records that ``item`` should eventually arrive
    for ``key``; ``arrive(key, item)`` pops entries until ``item`` is
    found (entries popped on the way were legitimately filtered out of
    the stream — e.g. works that produced nothing to emit). An arriving
    item *not* in the book means an earlier arrival already consumed
    past it: the stream was reordered.
    """

    __slots__ = ("_queues",)

    def __init__(self):
        self._queues = {}

    def expect(self, key, item):
        self._queues.setdefault(key, []).append(item)

    def arrive(self, key, item):
        queue = self._queues.get(key)
        if queue is None:
            return False
        for index, entry in enumerate(queue):
            if entry is item:
                del queue[: index + 1]
                if not queue:
                    del self._queues[key]
                return True
        # Not found: either reordered past, or never expected (e.g. a
        # control-plane notification). Leave the book untouched so one
        # stray arrival cannot poison later checks.
        return False

    def forget(self, key):
        self._queues.pop(key, None)


class HbMonitor:
    """Taps a pipelined datapath and validates interleavings live."""

    def __init__(self, dp):
        self.dp = dp
        self.checked_puts = 0
        # Protocol-order book: post_rings put (proto order, the proto
        # stage serializes per connection) -> dma_ring put.
        self._proto_order = _OrderBook()
        # Notification books: dma_ring put -> ctx_ring put (per conn),
        # ctx_ring put -> nic_deliver (per context).
        self._notif_order = _OrderBook()
        self._ctx_order = _OrderBook()
        # Write-ahead rule: id(ack frame) -> (frame, [notifications]);
        # the entry pins the objects so ids stay valid until checked.
        self._ack_requirements = {}
        self._awaited = set()  # notification ids some ACK waits on
        self._delivered = set()
        self._install()

    # -- wiring --------------------------------------------------------------

    def _install(self):
        dp = self.dp
        for ring in dp.post_rings:
            ring.tap = self._make_tap("post", self._on_post_put)
        dp.dma_ring.tap = self._make_tap("dma", self._on_dma_put)
        dp.ctx_ring.tap = self._make_tap("ctx", self._on_ctx_put)
        dp.nbi_ring.tap = self._make_tap("nbi", None)
        for ring in dp.proto_rings:
            ring.tap = self._make_tap("proto", None)
        for pair in dp.contexts.values():
            self.watch_context(pair)
        # The NBI sequencer's offer is the wire-commit point for ACKs
        # (the ticket decides wire order); wrap it for the write-ahead
        # check. Instance attribute shadows the bound method.
        original_offer = dp.nbi_gro.offer

        def checked_offer(frame, _orig=original_offer):
            self._on_wire_commit(frame)
            return _orig(frame)

        dp.nbi_gro.offer = checked_offer

    def _make_tap(self, edge, handler):
        allowed = EDGE_PRODUCERS[edge]

        def tap(item):
            if self.dp.crashed:
                return
            self.checked_puts += 1
            owner = sanitizer.current_owner()
            if owner is not None and owner[0] not in allowed:
                raise HBViolationError(
                    "hb-monitor: stage '{}' enqueued into the {} ring; the "
                    "static stage graph allows only {}".format(
                        owner[0], edge, "/".join(allowed)
                    )
                )
            if handler is not None:
                handler(item)

        return tap

    def watch_context(self, pair):
        pair.add_tap(self._on_ctx_event)

    def forget_conn(self, conn_index):
        self._proto_order.forget(conn_index)
        self._notif_order.forget(conn_index)

    # -- checks --------------------------------------------------------------

    def _on_post_put(self, work):
        if work.conn_index is not None:
            self._proto_order.expect(work.conn_index, work)

    def _on_dma_put(self, work):
        conn = work.conn_index
        if conn is None:
            return
        if not self._proto_order.arrive(conn, work):
            raise HBViolationError(
                "hb-monitor: {!r} entered dma_ring out of per-connection "
                "protocol order (conn {}): the post_chain fence contract "
                "(§3.1.3) was violated".format(work, conn)
            )
        notifications = work.notify or ()
        for notification in notifications:
            self._notif_order.expect(conn, notification)
        if notifications and work.ack_frame is not None:
            self._ack_requirements[id(work.ack_frame)] = (
                work.ack_frame,
                list(notifications),
            )
            for notification in notifications:
                self._awaited.add(id(notification))

    def _on_ctx_put(self, notification):
        if not self._notif_order.arrive(notification.conn_index, notification):
            raise HBViolationError(
                "hb-monitor: {!r} entered ctx_ring out of per-connection "
                "DMA-completion order (conn {}): the dma_rx_chain fence "
                "(§3.1.3) was violated".format(notification, notification.conn_index)
            )
        self._ctx_order.expect(notification.context_id, notification)

    def _on_ctx_event(self, kind, item):
        if kind != "notify" or self.dp.crashed:
            return
        # Control-plane notifications (NOTIFY_ERROR from the recovery
        # timers) bypass the pipeline and its ordering contract.
        if not self._ctx_order.arrive(item.context_id, item):
            if item.error is not None:
                return
            raise HBViolationError(
                "hb-monitor: {!r} delivered out of per-context ctx_ring "
                "order (context {}): the ARX chain fence was violated".format(
                    item, item.context_id
                )
            )
        if id(item) in self._awaited:
            self._delivered.add(id(item))

    def _on_wire_commit(self, frame):
        if self.dp.crashed:
            return
        entry = self._ack_requirements.pop(id(frame), None)
        if entry is None:
            return
        _frame, notifications = entry
        for notification in notifications:
            key = id(notification)
            if key not in self._delivered:
                # A context that was never registered cannot deliver;
                # the rule is about host-visible notifications.
                if self.dp.contexts.get(notification.context_id) is not None:
                    raise HBViolationError(
                        "hb-monitor: ACK frame committed to the wire before "
                        "its segment's {!r} was host-visible: write-ahead "
                        "rule violated (crash recovery unsound)".format(notification)
                    )
            self._awaited.discard(key)
            self._delivered.discard(key)
