"""Findings and report rendering for the analysis passes.

Every pass produces :class:`Finding` records; the CLI renders them as
human-readable text or a machine-readable JSON document (stable field
names, so CI and tooling can gate on them). Findings produced through
call-graph summaries carry a ``via`` call chain (caller first, writer
last) so a store attributed through helper indirection names the path
that reaches it.

:func:`diff_findings` implements the ``--baseline`` mode: compare a
fresh run against a stored report and keep only *new* findings, so CI
can gate on regressions without pre-existing accepted findings blocking
unrelated changes.
"""

import json

PASS_XDP = "xdp-verifier"
PASS_STAGE = "stage-race"
PASS_SIM = "sim-process"
PASS_ATOMIC = "atomicity"
PASS_DEADCODE = "xdp-deadcode"
PASS_HB = "hb-race"
PASS_ORDER = "ordering"

# v3: adds the hb-race and ordering passes and the deterministic
# finding sort (pass, path, line, code, message) within the document.
REPORT_VERSION = 3


class Finding:
    """One analysis diagnostic, anchored to a file location."""

    __slots__ = ("pass_name", "path", "line", "code", "message", "via")

    def __init__(self, pass_name, path, line, code, message, via=()):
        self.pass_name = pass_name
        self.path = path
        self.line = int(line)
        self.code = code
        self.message = message
        # Call chain for summary-attributed findings: caller-qualname
        # first, writer-qualname last; empty for direct findings.
        self.via = tuple(via)

    def to_dict(self):
        return {
            "pass": self.pass_name,
            "path": self.path,
            "line": self.line,
            "code": self.code,
            "message": self.message,
            "via": list(self.via),
        }

    def __repr__(self):
        return "<Finding {} {}:{} {}>".format(self.code, self.path, self.line, self.message)

    def __eq__(self, other):
        return isinstance(other, Finding) and self.to_dict() == other.to_dict()


def finding_sort_key(finding):
    """Deterministic report order: (pass, path, line, code, message).

    Line alone is not a total order — two passes can anchor distinct
    findings to the same line — and an unstable tail order would make
    baseline regeneration churn. CI asserts regeneration is a no-op.
    """
    return (finding.pass_name, finding.path, finding.line, finding.code, finding.message)


def render_text(findings):
    """Human-readable report, one line per finding."""
    if not findings:
        return "repro lint: clean (0 findings)"
    lines = []
    for finding in findings:
        via = " [via {}]".format(" -> ".join(finding.via)) if finding.via else ""
        lines.append(
            "{}:{}: [{}] {}{} ({})".format(
                finding.path, finding.line, finding.pass_name, finding.message, via, finding.code
            )
        )
    lines.append("repro lint: {} finding{}".format(len(findings), "" if len(findings) == 1 else "s"))
    return "\n".join(lines)


def render_json(findings, checked=None, certificates=None):
    """Machine-readable report. ``checked`` maps pass name -> unit count.

    ``certificates`` (``--certify``) embeds each builtin program's
    proof-carrying compilation certificate under its name.
    """
    by_pass = {}
    for finding in findings:
        by_pass[finding.pass_name] = by_pass.get(finding.pass_name, 0) + 1
    document = {
        "version": REPORT_VERSION,
        "findings": [finding.to_dict() for finding in findings],
        "summary": {"total": len(findings), "by_pass": by_pass, "checked": dict(checked or {})},
    }
    if certificates is not None:
        document["certificates"] = certificates
    return json.dumps(document, indent=2, sort_keys=True)


def render_github(findings):
    """GitHub Actions workflow commands: one ``::warning`` per finding,
    so lint results surface inline on pull requests."""
    lines = []
    for finding in findings:
        via = " [via {}]".format(" -> ".join(finding.via)) if finding.via else ""
        # The message segment must keep newlines/percent escaped per the
        # workflow-command syntax; our messages are single-line already.
        lines.append(
            "::warning file={},line={},title={}::{}{} ({})".format(
                finding.path, finding.line, finding.pass_name, finding.message, via, finding.code
            )
        )
    lines.append(
        "repro lint: {} finding{}".format(len(findings), "" if len(findings) == 1 else "s")
        if findings
        else "repro lint: clean (0 findings)"
    )
    return "\n".join(lines)


def _baseline_key(pass_name, path, code, message):
    """Identity of a finding across runs and checkouts.

    Line numbers drift with unrelated edits and absolute paths differ
    between machines, so the key is (pass, repo-relative path, code,
    message): stable for CI baselines.
    """
    path = path.replace("\\", "/")
    marker = "/repro/"
    cut = path.rfind(marker)
    if cut >= 0:
        path = "repro/" + path[cut + len(marker):]
    return (pass_name, path, code, message)


def load_report(path):
    """Parse a JSON report produced by :func:`render_json`."""
    with open(path) as handle:
        return json.load(handle)


def diff_findings(findings, baseline_document):
    """Findings not present in the baseline report (new regressions)."""
    accepted = {
        _baseline_key(f.get("pass", ""), f.get("path", ""), f.get("code", ""), f.get("message", ""))
        for f in baseline_document.get("findings", [])
    }
    return [
        finding
        for finding in findings
        if _baseline_key(finding.pass_name, finding.path, finding.code, finding.message)
        not in accepted
    ]
