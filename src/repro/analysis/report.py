"""Findings and report rendering for the analysis passes.

Every pass produces :class:`Finding` records; the CLI renders them as
human-readable text or a machine-readable JSON document (stable field
names, so CI and tooling can gate on them).
"""

import json

PASS_XDP = "xdp-verifier"
PASS_STAGE = "stage-race"
PASS_SIM = "sim-process"


class Finding:
    """One analysis diagnostic, anchored to a file location."""

    __slots__ = ("pass_name", "path", "line", "code", "message")

    def __init__(self, pass_name, path, line, code, message):
        self.pass_name = pass_name
        self.path = path
        self.line = int(line)
        self.code = code
        self.message = message

    def to_dict(self):
        return {
            "pass": self.pass_name,
            "path": self.path,
            "line": self.line,
            "code": self.code,
            "message": self.message,
        }

    def __repr__(self):
        return "<Finding {} {}:{} {}>".format(self.code, self.path, self.line, self.message)

    def __eq__(self, other):
        return isinstance(other, Finding) and self.to_dict() == other.to_dict()


def render_text(findings):
    """Human-readable report, one line per finding."""
    if not findings:
        return "repro lint: clean (0 findings)"
    lines = []
    for finding in findings:
        lines.append(
            "{}:{}: [{}] {} ({})".format(
                finding.path, finding.line, finding.pass_name, finding.message, finding.code
            )
        )
    lines.append("repro lint: {} finding{}".format(len(findings), "" if len(findings) == 1 else "s"))
    return "\n".join(lines)


def render_json(findings, checked=None):
    """Machine-readable report. ``checked`` maps pass name -> unit count."""
    by_pass = {}
    for finding in findings:
        by_pass[finding.pass_name] = by_pass.get(finding.pass_name, 0) + 1
    document = {
        "version": 1,
        "findings": [finding.to_dict() for finding in findings],
        "summary": {"total": len(findings), "by_pass": by_pass, "checked": dict(checked or {})},
    }
    return json.dumps(document, indent=2, sort_keys=True)
