"""The abstract domain for the CFG verifier.

Scalars are tracked with a reduced product of two abstractions, the same
pair the kernel eBPF verifier uses:

* an unsigned 64-bit **interval** ``[lo, hi]`` — value-range facts from
  branches and size-bounded loads;
* a **tnum** ("tracked number"): a ``(value, mask)`` pair where mask
  bits are unknown and the rest are known equal to ``value`` — bit-level
  facts from masking and shifting.

The two refine each other after every operation (``ScalarVal.make``), so
``ldxb r5, [r2+14]; and r5, 0x0f; lsh r5, 2`` yields a scalar proven in
``[0, 60]`` with the low two bits known zero — enough to bound a
variable-length IP header offset.

Pointers carry a constant offset plus, for packet pointers, an optional
bounded *variable* part tagged with an id (``vid``). A bounds comparison
against ``data_end`` through one pointer proves access through any other
pointer sharing the same ``vid`` (the unknown variable cancels), which
is how ``pkt + hdr_len + k`` accesses are verified.

``meet`` combines states at control-flow joins and is sound by
construction: a fact holds after the join only if it held on *every*
incoming path. ``widen`` additionally jumps interval endpoints to a
small threshold set so chains of joins converge quickly.
"""

STACK_SIZE = 512

U64 = (1 << 64) - 1
U32 = (1 << 32) - 1

#: A scalar may be folded into a packet pointer's variable part only when
#: its maximum is at most this, so base + variable can never wrap 64 bits
#: (mirrors the kernel's bounded-packet-offset rule).
PKT_VAR_BOUND = 1 << 16

#: Widening thresholds: natural load/mask widths, so widened bounds stay
#: meaningful for bounds checks instead of jumping straight to top.
_WIDEN_HI = (0xFF, 0xFFFF, U32, U64)

# Register kinds.
UNINIT = "uninit"
SCALAR = "scalar"
CTX_PTR = "ctx_ptr"  # pointer into the 16-byte xdp context
PKT_PTR = "pkt_ptr"  # pointer into packet data
PKT_END = "pkt_end"  # the data_end sentinel
STACK_PTR = "stack_ptr"  # pointer relative to the frame pointer (r10)
MAP_VALUE = "map_value"  # non-NULL pointer into a map value
MAP_VALUE_OR_NULL = "map_value_or_null"  # lookup result before the null check

_POINTER_KINDS = frozenset((CTX_PTR, PKT_PTR, STACK_PTR, MAP_VALUE))

_ALL_KINDS = frozenset(
    (UNINIT, SCALAR, CTX_PTR, PKT_PTR, PKT_END, STACK_PTR, MAP_VALUE, MAP_VALUE_OR_NULL)
)


def _ceil_mask(x):
    """Smallest all-ones value >= x (0 for 0)."""
    return (1 << x.bit_length()) - 1


class Interval:
    """An unsigned 64-bit value range ``[lo, hi]`` (inclusive)."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo, hi):
        if not (0 <= lo <= hi <= U64):
            raise ValueError("bad interval [{}, {}]".format(lo, hi))
        self.lo = lo
        self.hi = hi

    @classmethod
    def const(cls, value):
        value &= U64
        return cls(value, value)

    @classmethod
    def top(cls):
        return cls(0, U64)

    @property
    def is_const(self):
        return self.lo == self.hi

    def contains(self, value):
        return self.lo <= value <= self.hi

    # -- lattice -----------------------------------------------------------

    def join(self, other):
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def widen(self, other):
        """Accelerated join: endpoints that moved jump to a threshold."""
        lo = self.lo if other.lo >= self.lo else 0
        if other.hi <= self.hi:
            hi = self.hi
        else:
            hi = next(t for t in _WIDEN_HI if t >= other.hi)
        return Interval(lo, hi)

    def intersect(self, other):
        lo, hi = max(self.lo, other.lo), min(self.hi, other.hi)
        return Interval(lo, hi) if lo <= hi else None

    def entails(self, other):
        """True when this range is contained in ``other`` (self => other)."""
        return other.lo <= self.lo and self.hi <= other.hi

    def to_jsonable(self):
        return [self.lo, self.hi]

    @classmethod
    def from_jsonable(cls, data):
        lo, hi = data
        return cls(int(lo), int(hi))

    # -- wrapping unsigned 64-bit arithmetic -------------------------------
    # Each op returns a sound over-approximation of the concrete result
    # set under mod-2^64 semantics: exact when no endpoint wraps or when
    # the whole range wraps together, top when the range straddles the
    # wrap point.

    def add(self, other):
        lo, hi = self.lo + other.lo, self.hi + other.hi
        if hi <= U64:
            return Interval(lo, hi)
        if lo > U64:
            return Interval(lo - (U64 + 1), hi - (U64 + 1))
        return Interval.top()

    def sub(self, other):
        lo, hi = self.lo - other.hi, self.hi - other.lo
        if lo >= 0:
            return Interval(lo, hi)
        if hi < 0:
            return Interval(lo + U64 + 1, hi + U64 + 1)
        return Interval.top()

    def mul(self, other):
        hi = self.hi * other.hi
        if hi <= U64:
            return Interval(self.lo * other.lo, hi)
        return Interval.top()

    def udiv(self, other):
        # BPF runtime semantics: division by zero yields 0, it does not
        # fault — a possibly-zero divisor must keep 0 in the result.
        lo = 0 if other.lo == 0 else self.lo // other.hi
        return Interval(lo, self.hi // max(1, other.lo))

    def umod(self, other):
        if other.lo > 0 and self.hi < other.lo:
            return Interval(self.lo, self.hi)  # dividend smaller than any divisor
        if other.lo > 0:
            return Interval(0, min(self.hi, other.hi - 1))
        return Interval(0, self.hi)  # divisor may be 0: x % 0 = x

    def lsh(self, n):
        if self.hi << n <= U64:
            return Interval(self.lo << n, self.hi << n)
        return Interval.top()

    def rsh(self, n):
        return Interval(self.lo >> n, self.hi >> n)

    def arsh(self, n):
        if self.hi < 1 << 63:  # signed-non-negative: same as logical shift
            return self.rsh(n)
        return Interval.top()

    def and_(self, other):
        # a & b <= a and <= b, so the max is bounded by both maxima.
        return Interval(0, min(self.hi, other.hi))

    def or_(self, other):
        # a | b >= max(a, b) and cannot set bits above either operand's.
        return Interval(max(self.lo, other.lo), _ceil_mask(self.hi | other.hi))

    def xor_(self, other):
        return Interval(0, _ceil_mask(self.hi | other.hi))

    def __eq__(self, other):
        return isinstance(other, Interval) and self.lo == other.lo and self.hi == other.hi

    def __repr__(self):
        return "[{}, {}]".format(self.lo, self.hi)


class Tnum:
    """Known-bits abstraction: mask bits unknown, the rest equal value."""

    __slots__ = ("value", "mask")

    def __init__(self, value, mask):
        if value & mask:
            raise ValueError("tnum value overlaps mask")
        self.value = value & U64
        self.mask = mask & U64

    @classmethod
    def const(cls, value):
        return cls(value & U64, 0)

    @classmethod
    def top(cls):
        return cls(0, U64)

    @classmethod
    def unknown(cls, mask):
        """Low bits under ``mask`` unknown, the rest known zero."""
        return cls(0, mask)

    @property
    def is_const(self):
        return self.mask == 0

    @property
    def min(self):
        return self.value

    @property
    def max(self):
        return self.value | self.mask

    def contains(self, x):
        return (x & ~self.mask) & U64 == self.value

    # -- lattice -----------------------------------------------------------

    def join(self, other):
        mu = self.mask | other.mask | (self.value ^ other.value)
        return Tnum(self.value & other.value & ~mu, mu)

    def intersect(self, other):
        """Combine known bits from both; None when they contradict."""
        known = ~self.mask & ~other.mask & U64
        if (self.value ^ other.value) & known:
            return None
        mask = self.mask & other.mask
        return Tnum((self.value | other.value) & ~mask & U64, mask)

    def entails(self, other):
        """True when every value this tnum admits, ``other`` admits too:
        each bit ``other`` knows, we know as well, with the same value."""
        if ~other.mask & self.mask & U64:
            return False  # other claims a bit we leave unknown
        return (self.value ^ other.value) & ~other.mask & U64 == 0

    def to_jsonable(self):
        return [self.value, self.mask]

    @classmethod
    def from_jsonable(cls, data):
        value, mask = data
        return cls(int(value), int(mask))

    # -- transfer (the kernel tnum_* algebra, masked to 64 bits) -----------

    def add(self, other):
        sm = self.mask + other.mask
        sv = self.value + other.value
        sigma = sm + sv
        chi = sigma ^ sv
        mu = (chi | self.mask | other.mask) & U64
        return Tnum(sv & ~mu & U64, mu)

    def sub(self, other):
        dv = self.value - other.value
        alpha = dv + self.mask
        beta = dv - other.mask
        chi = alpha ^ beta
        mu = (chi | self.mask | other.mask) & U64
        return Tnum(dv & ~mu & U64, mu)

    def and_(self, other):
        alpha = self.value | self.mask
        beta = other.value | other.mask
        v = self.value & other.value
        return Tnum(v, alpha & beta & ~v & U64)

    def or_(self, other):
        v = self.value | other.value
        mu = self.mask | other.mask
        return Tnum(v, mu & ~v & U64)

    def xor_(self, other):
        v = self.value ^ other.value
        mu = self.mask | other.mask
        return Tnum(v & ~mu & U64, mu)

    def mul(self, other):
        if self.is_const and other.is_const:
            return Tnum.const(self.value * other.value)
        if (self.is_const and self.value == 0) or (other.is_const and other.value == 0):
            return Tnum.const(0)
        return Tnum.top()

    def lsh(self, n):
        return Tnum((self.value << n) & U64 & ~((self.mask << n) & U64), (self.mask << n) & U64)

    def rsh(self, n):
        return Tnum(self.value >> n, self.mask >> n)

    def trunc(self, bits):
        m = (1 << bits) - 1
        return Tnum(self.value & m, self.mask & m)

    def __eq__(self, other):
        return isinstance(other, Tnum) and self.value == other.value and self.mask == other.mask

    def __repr__(self):
        if self.is_const:
            return "tnum({:#x})".format(self.value)
        return "tnum(v={:#x}, m={:#x})".format(self.value, self.mask)


class ScalarVal:
    """Reduced product of an interval and a tnum for one scalar."""

    __slots__ = ("interval", "tnum")

    def __init__(self, interval, tnum):
        self.interval = interval
        self.tnum = tnum

    @classmethod
    def make(cls, interval, tnum):
        """Construct with mutual reduction of the two components."""
        lo = max(interval.lo, tnum.min)
        hi = min(interval.hi, tnum.max)
        if lo > hi:
            # The components contradict (an infeasible path the caller
            # chose not to prune); trust the tnum.
            lo, hi = tnum.min, tnum.max
        if lo == hi:
            tnum = Tnum.const(lo)
        return cls(Interval(lo, hi), tnum)

    @classmethod
    def const(cls, value):
        value &= U64
        return cls(Interval.const(value), Tnum.const(value))

    @classmethod
    def top(cls):
        return cls(Interval.top(), Tnum.top())

    @classmethod
    def bounded(cls, hi_mask):
        """Unknown value within ``[0, hi_mask]`` with high bits known 0."""
        return cls(Interval(0, hi_mask), Tnum.unknown(hi_mask))

    @property
    def const_value(self):
        return self.interval.lo if self.interval.is_const else None

    @property
    def lo(self):
        return self.interval.lo

    @property
    def hi(self):
        return self.interval.hi

    def contains(self, x):
        return self.interval.contains(x) and self.tnum.contains(x)

    # -- lattice -----------------------------------------------------------

    def join(self, other):
        return ScalarVal.make(self.interval.join(other.interval), self.tnum.join(other.tnum))

    def widen(self, other):
        return ScalarVal.make(self.interval.widen(other.interval), self.tnum.join(other.tnum))

    def entails(self, other):
        """self => other: every admitted value of self is admitted by other."""
        return self.interval.entails(other.interval) and self.tnum.entails(other.tnum)

    def to_jsonable(self):
        return {"i": self.interval.to_jsonable(), "t": self.tnum.to_jsonable()}

    @classmethod
    def from_jsonable(cls, data):
        # Deliberately not ``make``: the certificate must round-trip
        # exactly; reduction happened when the value was first built.
        return cls(Interval.from_jsonable(data["i"]), Tnum.from_jsonable(data["t"]))

    # -- transfer ----------------------------------------------------------

    def add(self, other):
        return ScalarVal.make(self.interval.add(other.interval), self.tnum.add(other.tnum))

    def sub(self, other):
        return ScalarVal.make(self.interval.sub(other.interval), self.tnum.sub(other.tnum))

    def mul(self, other):
        return ScalarVal.make(self.interval.mul(other.interval), self.tnum.mul(other.tnum))

    def udiv(self, other):
        return ScalarVal.make(self.interval.udiv(other.interval), Tnum.top())

    def umod(self, other):
        return ScalarVal.make(self.interval.umod(other.interval), Tnum.top())

    def and_(self, other):
        return ScalarVal.make(self.interval.and_(other.interval), self.tnum.and_(other.tnum))

    def or_(self, other):
        return ScalarVal.make(self.interval.or_(other.interval), self.tnum.or_(other.tnum))

    def xor_(self, other):
        return ScalarVal.make(self.interval.xor_(other.interval), self.tnum.xor_(other.tnum))

    def lsh(self, other):
        shift = other.const_value
        if shift is None:
            return ScalarVal.top()
        shift &= 63
        return ScalarVal.make(self.interval.lsh(shift), self.tnum.lsh(shift))

    def rsh(self, other):
        shift = other.const_value
        if shift is None:
            # Shifting right never grows the value.
            return ScalarVal.make(Interval(0, self.interval.hi), Tnum.top())
        shift &= 63
        return ScalarVal.make(self.interval.rsh(shift), self.tnum.rsh(shift))

    def arsh(self, other):
        shift = other.const_value
        if shift is None:
            return ScalarVal.top()
        shift &= 63
        return ScalarVal.make(self.interval.arsh(shift), Tnum.top())

    def neg(self):
        value = self.const_value
        if value is not None:
            return ScalarVal.const(-value)
        return ScalarVal.top()

    def bswap(self, width):
        # A byte swap of a width-bit quantity stays within width bits.
        return ScalarVal.bounded((1 << width) - 1)

    def trunc32(self):
        interval = self.interval
        if interval.hi <= U32:
            truncated = interval
        elif interval.lo >> 32 == interval.hi >> 32:
            truncated = Interval(interval.lo & U32, interval.hi & U32)
        else:
            truncated = Interval(0, U32)
        return ScalarVal.make(truncated, self.tnum.trunc(32))

    def __eq__(self, other):
        return (
            isinstance(other, ScalarVal)
            and self.interval == other.interval
            and self.tnum == other.tnum
        )

    def __repr__(self):
        if self.interval.is_const:
            return "scalar({})".format(self.interval.lo)
        return "scalar({}, {})".format(self.interval, self.tnum)


_SCALAR_TOP = None


def _scalar_top():
    global _SCALAR_TOP
    if _SCALAR_TOP is None:
        _SCALAR_TOP = ScalarVal.top()
    return _SCALAR_TOP


class RegVal:
    """Abstract value of one register.

    Scalars carry a :class:`ScalarVal`. Pointers carry a constant offset
    ``off`` from the region base (``None`` when unknown, e.g. after a
    join of differing offsets) plus — packet pointers only — an optional
    bounded variable part ``var`` tagged with an identity ``vid``; ``fd``
    is the map file descriptor for map-value pointers.
    """

    __slots__ = ("kind", "off", "val", "fd", "vid", "var")

    def __init__(self, kind, off=None, const=None, fd=None, val=None, vid=None, var=None):
        self.kind = kind
        self.off = off
        self.fd = fd
        self.vid = vid
        self.var = var
        if kind == SCALAR and val is None:
            val = ScalarVal.const(const) if const is not None else _scalar_top()
        self.val = val if kind == SCALAR else None

    # -- constructors ------------------------------------------------------

    @classmethod
    def uninit(cls):
        return cls(UNINIT)

    @classmethod
    def scalar(cls, const=None):
        return cls(SCALAR, const=const)

    @classmethod
    def scalar_val(cls, val):
        return cls(SCALAR, val=val)

    @classmethod
    def pointer(cls, kind, off=0, fd=None, vid=None, var=None):
        return cls(kind, off=off, fd=fd, vid=vid, var=var)

    # -- predicates --------------------------------------------------------

    @property
    def is_pointer(self):
        return self.kind in _POINTER_KINDS

    @property
    def is_uninit(self):
        return self.kind == UNINIT

    @property
    def const(self):
        """Known integer value, for scalars whose range is a singleton."""
        if self.kind == SCALAR:
            return self.val.const_value
        return None

    # -- lattice -----------------------------------------------------------

    def _combine(self, other, scalar_op):
        if self == other:
            return self
        a, b = self.kind, other.kind
        if a == b:
            if a == SCALAR:
                return RegVal.scalar_val(scalar_op(self.val, other.val))
            fd = self.fd if self.fd == other.fd else None
            if (
                self.off == other.off
                and self.vid == other.vid
                and (self.var is None) == (other.var is None)
            ):
                var = None
                if self.var is not None:
                    var = scalar_op(self.var, other.var)
                return RegVal(a, off=self.off, fd=fd, vid=self.vid, var=var)
            return RegVal(a, off=None, fd=fd)
        # A checked and an unchecked map value meet to the unchecked form.
        if {a, b} == {MAP_VALUE, MAP_VALUE_OR_NULL}:
            off = self.off if self.off == other.off else None
            fd = self.fd if self.fd == other.fd else None
            return RegVal(MAP_VALUE_OR_NULL, off=off, fd=fd)
        return RegVal.uninit()

    def meet(self, other):
        """Greatest lower bound: keep only facts true on both paths."""
        return self._combine(other, lambda a, b: a.join(b))

    def widen(self, other):
        """Join with interval endpoints jumped to thresholds."""
        return self._combine(other, lambda a, b: a.widen(b))

    def entails(self, other):
        """self => other: ``other`` is a weaker-or-equal description.

        ``UNINIT`` is the weakest claim (no fact at all), so anything
        entails it; conversely an uninit value entails only uninit.
        Pointer claims are exact on kind/offset/vid (the facts bounds
        checks consume) and interval-ordered on the variable part.
        """
        if other.kind == UNINIT:
            return True
        if self.kind != other.kind:
            # A known-non-null map value is a strengthening of the
            # maybe-null lookup result.
            if not (self.kind == MAP_VALUE and other.kind == MAP_VALUE_OR_NULL):
                return False
        if self.kind == SCALAR:
            return self.val.entails(other.val)
        if other.fd is not None and self.fd != other.fd:
            return False
        if other.off is None:
            return True  # "somewhere in the region": weakest pointer claim
        if self.off != other.off:
            return False
        if other.var is None:
            return self.var is None
        if self.var is None or self.vid != other.vid:
            return False
        return self.var.entails(other.var)

    def to_jsonable(self):
        if self.kind == UNINIT:
            return {"k": UNINIT}
        if self.kind == SCALAR:
            return {"k": SCALAR, "v": self.val.to_jsonable()}
        data = {"k": self.kind, "off": self.off}
        if self.fd is not None:
            data["fd"] = self.fd
        if self.var is not None:
            data["vid"] = self.vid
            data["var"] = self.var.to_jsonable()
        return data

    @classmethod
    def from_jsonable(cls, data):
        kind = data["k"]
        if kind not in _ALL_KINDS:
            raise ValueError("unknown register kind {!r}".format(kind))
        if kind == UNINIT:
            return cls.uninit()
        if kind == SCALAR:
            return cls.scalar_val(ScalarVal.from_jsonable(data["v"]))
        off = data.get("off")
        var = data.get("var")
        return cls(
            kind,
            off=None if off is None else int(off),
            fd=data.get("fd"),
            vid=data.get("vid"),
            var=None if var is None else ScalarVal.from_jsonable(var),
        )

    def __eq__(self, other):
        return (
            isinstance(other, RegVal)
            and self.kind == other.kind
            and self.off == other.off
            and self.fd == other.fd
            and self.vid == other.vid
            and self.var == other.var
            and self.val == other.val
        )

    def __repr__(self):
        extra = ""
        if self.kind == SCALAR:
            if self.const is not None:
                extra = "={}".format(self.const)
            elif self.val is not None and self.val != _scalar_top():
                extra = "={!r}".format(self.val)
        elif self.is_pointer or self.kind == MAP_VALUE_OR_NULL:
            extra = "+{}".format(self.off)
            if self.var is not None:
                extra += "+v{}{}".format(self.vid, self.var.interval)
            if self.fd is not None:
                extra += " fd={}".format(self.fd)
        return "<{}{}>".format(self.kind, extra)


class AbsState:
    """Abstract machine state on entry to one instruction."""

    __slots__ = ("regs", "stack_init", "pkt_valid", "pkt_checked")

    def __init__(self, regs=None, stack_init=0, pkt_valid=0, pkt_checked=None):
        if regs is None:
            regs = [RegVal.uninit() for _ in range(11)]
            regs[1] = RegVal.pointer(CTX_PTR, 0)
            regs[10] = RegVal.pointer(STACK_PTR, 0)
        self.regs = regs
        # Bit i set <=> stack byte at r10 - STACK_SIZE + i was written.
        self.stack_init = stack_init
        # Packet bytes [0, pkt_valid) proven accessible on this path.
        self.pkt_valid = pkt_valid
        # vid -> constant byte count proven accessible past that
        # variable-offset pointer's base (branch proofs where the
        # unknown variable part cancels).
        self.pkt_checked = {} if pkt_checked is None else pkt_checked

    def copy(self):
        return AbsState(list(self.regs), self.stack_init, self.pkt_valid, dict(self.pkt_checked))

    def _combine(self, other, combine_reg):
        checked = {
            vid: min(self.pkt_checked[vid], other.pkt_checked[vid])
            for vid in self.pkt_checked.keys() & other.pkt_checked.keys()
        }
        return AbsState(
            [combine_reg(a, b) for a, b in zip(self.regs, other.regs)],
            self.stack_init & other.stack_init,
            min(self.pkt_valid, other.pkt_valid),
            checked,
        )

    def meet(self, other):
        """Join-point combination: the intersection of path facts."""
        return self._combine(other, lambda a, b: a.meet(b))

    def widen(self, other):
        return self._combine(other, lambda a, b: a.widen(b))

    def entails(self, other):
        """self => other: every concrete state self admits, other admits.

        The certificate checker's ordering test: a transfer output
        entails the certified invariant at its successor exactly when
        the invariant is a sound (weaker-or-equal) description of every
        state flowing along that edge.
        """
        for mine, claimed in zip(self.regs, other.regs):
            if not mine.entails(claimed):
                return False
        # Claimed-initialized stack bytes must be initialized here too.
        if other.stack_init & ~self.stack_init:
            return False
        if other.pkt_valid > self.pkt_valid:
            return False
        for vid, claimed in other.pkt_checked.items():
            mine = self.pkt_checked.get(vid)
            if mine is None or mine < claimed:
                return False
        return True

    def to_jsonable(self):
        return {
            "regs": [reg.to_jsonable() for reg in self.regs],
            # stack_init is a 512-bit bitmap; hex keeps the JSON compact.
            "stack_init": "{:x}".format(self.stack_init),
            "pkt_valid": self.pkt_valid,
            "pkt_checked": {str(vid): n for vid, n in self.pkt_checked.items()},
        }

    @classmethod
    def from_jsonable(cls, data):
        regs = [RegVal.from_jsonable(reg) for reg in data["regs"]]
        if len(regs) != 11:
            raise ValueError("state must describe 11 registers")
        return cls(
            regs,
            stack_init=int(data.get("stack_init", "0"), 16),
            pkt_valid=int(data.get("pkt_valid", 0)),
            pkt_checked={int(vid): int(n) for vid, n in data.get("pkt_checked", {}).items()},
        )

    def __eq__(self, other):
        return (
            isinstance(other, AbsState)
            and self.regs == other.regs
            and self.stack_init == other.stack_init
            and self.pkt_valid == other.pkt_valid
            and self.pkt_checked == other.pkt_checked
        )

    def __repr__(self):
        live = {
            "r{}".format(i): reg for i, reg in enumerate(self.regs) if not reg.is_uninit
        }
        return "<AbsState {} pkt_valid={}>".format(live, self.pkt_valid)
