"""The abstract domain for the CFG verifier.

Each register holds a :class:`RegVal` — a type tag plus, where known, a
constant (scalars) or a fixed offset from the region base (pointers).
The per-path machine state (:class:`AbsState`) adds a stack-byte
initialization bitmap and the number of packet bytes proven in bounds.

``meet`` combines states at control-flow joins and is sound by
construction: a fact holds after the join only if it held on *every*
incoming path. Registers initialized on one arm only therefore meet to
``UNINIT`` — the unsoundness of the old straight-line verifier.
"""

STACK_SIZE = 512

# Register kinds.
UNINIT = "uninit"
SCALAR = "scalar"
CTX_PTR = "ctx_ptr"  # pointer into the 16-byte xdp context
PKT_PTR = "pkt_ptr"  # pointer into packet data
PKT_END = "pkt_end"  # the data_end sentinel
STACK_PTR = "stack_ptr"  # pointer relative to the frame pointer (r10)
MAP_VALUE = "map_value"  # non-NULL pointer into a map value
MAP_VALUE_OR_NULL = "map_value_or_null"  # lookup result before the null check

_POINTER_KINDS = frozenset((CTX_PTR, PKT_PTR, STACK_PTR, MAP_VALUE))


class RegVal:
    """Abstract value of one register.

    ``off`` is the constant offset from the region base for pointers
    (``None`` when unknown, e.g. after a join of differing offsets);
    ``const`` is the known integer value for scalars; ``fd`` is the map
    file descriptor for map-value pointers.
    """

    __slots__ = ("kind", "off", "const", "fd")

    def __init__(self, kind, off=None, const=None, fd=None):
        self.kind = kind
        self.off = off
        self.const = const
        self.fd = fd

    # -- constructors ------------------------------------------------------

    @classmethod
    def uninit(cls):
        return cls(UNINIT)

    @classmethod
    def scalar(cls, const=None):
        return cls(SCALAR, const=const)

    @classmethod
    def pointer(cls, kind, off=0, fd=None):
        return cls(kind, off=off, fd=fd)

    # -- predicates --------------------------------------------------------

    @property
    def is_pointer(self):
        return self.kind in _POINTER_KINDS

    @property
    def is_uninit(self):
        return self.kind == UNINIT

    # -- lattice -----------------------------------------------------------

    def meet(self, other):
        """Greatest lower bound: keep only facts true on both paths."""
        if self == other:
            return self
        a, b = self.kind, other.kind
        if a == b:
            off = self.off if self.off == other.off else None
            fd = self.fd if self.fd == other.fd else None
            if a == SCALAR:
                return RegVal.scalar(self.const if self.const == other.const else None)
            return RegVal(a, off=off, fd=fd)
        # A checked and an unchecked map value meet to the unchecked form.
        if {a, b} == {MAP_VALUE, MAP_VALUE_OR_NULL}:
            off = self.off if self.off == other.off else None
            fd = self.fd if self.fd == other.fd else None
            return RegVal(MAP_VALUE_OR_NULL, off=off, fd=fd)
        return RegVal.uninit()

    def __eq__(self, other):
        return (
            isinstance(other, RegVal)
            and self.kind == other.kind
            and self.off == other.off
            and self.const == other.const
            and self.fd == other.fd
        )

    def __repr__(self):
        extra = ""
        if self.kind == SCALAR and self.const is not None:
            extra = "={}".format(self.const)
        elif self.is_pointer or self.kind == MAP_VALUE_OR_NULL:
            extra = "+{}".format(self.off)
            if self.fd is not None:
                extra += " fd={}".format(self.fd)
        return "<{}{}>".format(self.kind, extra)


class AbsState:
    """Abstract machine state on entry to one instruction."""

    __slots__ = ("regs", "stack_init", "pkt_valid")

    def __init__(self, regs=None, stack_init=0, pkt_valid=0):
        if regs is None:
            regs = [RegVal.uninit() for _ in range(11)]
            regs[1] = RegVal.pointer(CTX_PTR, 0)
            regs[10] = RegVal.pointer(STACK_PTR, 0)
        self.regs = regs
        # Bit i set <=> stack byte at r10 - STACK_SIZE + i was written.
        self.stack_init = stack_init
        # Packet bytes [0, pkt_valid) proven accessible on this path.
        self.pkt_valid = pkt_valid

    def copy(self):
        return AbsState(list(self.regs), self.stack_init, self.pkt_valid)

    def meet(self, other):
        """Join-point combination: the intersection of path facts."""
        return AbsState(
            [a.meet(b) for a, b in zip(self.regs, other.regs)],
            self.stack_init & other.stack_init,
            min(self.pkt_valid, other.pkt_valid),
        )

    def __eq__(self, other):
        return (
            isinstance(other, AbsState)
            and self.regs == other.regs
            and self.stack_init == other.stack_init
            and self.pkt_valid == other.pkt_valid
        )

    def __repr__(self):
        live = {
            "r{}".format(i): reg for i, reg in enumerate(self.regs) if not reg.is_uninit
        }
        return "<AbsState {} pkt_valid={}>".format(live, self.pkt_valid)
