"""CFG/worklist verification of XDP VM programs.

The load-time guarantees the NFP offload needs (paper §3.3), made
path-sensitive:

* programs terminate — bounded length, no back-edges;
* every path reaches ``exit`` — no jump or fallthrough leaves the
  program, including targets one past the end;
* no unreachable code;
* registers are initialized on *every* path before use (facts meet at
  control-flow joins, so one-arm initialization does not survive);
* scalars and pointers are distinguished; loads and stores through
  context, stack, packet, and map-value pointers are bounds-checked
  against their region, packet accesses additionally against the
  bounds comparisons performed on that path;
* scalar values are tracked as interval × tnum ranges
  (:mod:`repro.analysis.dataflow`), refined by conditional branches, so
  a packet offset *computed from loaded data* (e.g. a masked and
  shifted IHL byte) can still be proven in bounds: the variable offset
  folds into the packet pointer under a fresh id, and a single
  ``data_end`` comparison through any pointer sharing the id covers
  them all;
* map-value pointers must be null-checked before dereference;
* helper calls name known helpers, pass a compile-time map fd, pass
  initialized key/value buffers of the map's sizes, and clobber r1-r5.

Run-time checks in :mod:`repro.xdp.vm` remain as defense in depth.
"""

from repro.analysis.cfg import JUMP_BASES, insn_base, insn_successors
from repro.analysis.dataflow import (
    CTX_PTR,
    MAP_VALUE,
    MAP_VALUE_OR_NULL,
    PKT_END,
    PKT_PTR,
    PKT_VAR_BOUND,
    SCALAR,
    STACK_PTR,
    STACK_SIZE,
    U64,
    AbsState,
    Interval,
    RegVal,
    ScalarVal,
    Tnum,
)
from repro.xdp.vm import HELPER_MAP_DELETE, HELPER_MAP_LOOKUP, HELPER_MAP_UPDATE

MAX_PROGRAM_LEN = 4096
CTX_SIZE = 16

#: In-state updates per instruction before the merge switches from meet
#: to widen. The CFG is a DAG (back-edges are rejected structurally), so
#: this is convergence acceleration for long join chains, not a
#: termination requirement.
WIDEN_AFTER = 16

VALID_HELPERS = {HELPER_MAP_LOOKUP, HELPER_MAP_UPDATE, HELPER_MAP_DELETE}

#: Registers each helper reads (r1 = map fd, r2 = key, ...).
HELPER_ARG_COUNT = {
    HELPER_MAP_LOOKUP: 2,
    HELPER_MAP_UPDATE: 3,
    HELPER_MAP_DELETE: 2,
}

_SIZES = {"b": 1, "h": 2, "w": 4, "dw": 8}

_ALU_BASES = frozenset(
    ("add", "sub", "mul", "div", "mod", "and", "or", "xor", "lsh", "rsh", "arsh", "neg")
)

# (jump base, branch taken?) pairs proving pkt + N <= data_end when the
# packet pointer is the dst operand / the src operand respectively.
_PKT_DST_PROOFS = {("jgt", False), ("jge", False), ("jle", True), ("jlt", True)}
_PKT_SRC_PROOFS = {("jlt", False), ("jle", False), ("jge", True), ("jgt", True)}

#: Unsigned compares refinable against a constant. Signed compares are
#: left unrefined (sound: refinement only ever narrows).
_REFINABLE = frozenset(("jeq", "jne", "jgt", "jge", "jlt", "jle", "jset"))

#: dst-op equivalent when a constant appears on the *dst* side instead.
_SWAPPED = {"jgt": "jlt", "jlt": "jgt", "jge": "jle", "jle": "jge", "jeq": "jeq", "jne": "jne"}


def _to_signed(value):
    value &= U64
    return value - (1 << 64) if value >= 1 << 63 else value


class VerifierError(Exception):
    pass


def verify(program, maps=None):
    """Raise :class:`VerifierError` if the program is unacceptable."""
    _Verifier(program, maps).run()
    return True


def verify_states(program, maps=None):
    """Verify and return the per-instruction entry-state fixpoint.

    The returned list is the verifier's invariant: ``states[i]`` is a
    sound description of every concrete machine state that can reach
    instruction ``i``. :mod:`repro.analysis.certificate` exports it as
    the proof-carrying compilation certificate.
    """
    checker = _Verifier(program, maps)
    checker.run()
    return checker.in_states


def transfer_step(program, index, state, maps=None):
    """Apply one instruction's abstract transfer to ``state``.

    The certificate checker's single-step interface: no worklist, no
    widening, no merge policy — just ``program[index]`` against the
    given state. Returns ``[(successor index, out state), ...]``;
    raises :class:`VerifierError` when the state cannot justify the
    instruction (the claimed invariant is too weak for its accesses).
    Deterministic: variable-part ids are derived from the instruction
    index, so re-running a step always reproduces the same facts.
    """
    return _Verifier(program, maps).transfer(index, state)


class _Verifier:
    def __init__(self, program, maps):
        self.program = program
        self.maps = maps
        self.in_states = None

    def err(self, index, message):
        raise VerifierError("insn {}: {}".format(index, message))

    # -- driver ------------------------------------------------------------

    def run(self):
        program = self.program
        if not program:
            raise VerifierError("empty program")
        if len(program) > MAX_PROGRAM_LEN:
            raise VerifierError("program too long ({} insns)".format(len(program)))
        self.structural_checks()
        self.in_states = self.dataflow()
        for index, state in enumerate(self.in_states):
            if state is None:
                self.err(index, "unreachable code")

    def structural_checks(self):
        """Range/termination checks that need no dataflow.

        Rejecting every control transfer that leaves ``[0, n)`` — which
        includes the fallthrough of the final instruction — makes
        "every path reaches exit" a structural corollary: the program
        is a DAG (no back-edges) whose only terminators are ``exit``.
        """
        program = self.program
        n = len(program)
        for index, insn in enumerate(program):
            base = insn_base(insn)
            if base == "exit":
                continue
            if base == "call" and insn.imm not in VALID_HELPERS:
                self.err(index, "unknown helper {}".format(insn.imm))
            if base == "ja" or base in JUMP_BASES:
                if insn.off < 0:
                    self.err(index, "backward jump (loops rejected)")
                target = index + 1 + insn.off
                if target >= n:
                    self.err(
                        index,
                        "jump target {} leaves the program: "
                        "control would fall off the end without reaching exit".format(target),
                    )
            for succ in insn_successors(program, index):
                if succ >= n:
                    self.err(
                        index,
                        "control falls off the end of the program: "
                        "this path never reaches exit",
                    )

    def dataflow(self):
        """Worklist fixpoint over per-instruction entry states."""
        program = self.program
        in_states = [None] * len(program)
        in_states[0] = AbsState()
        updates = [0] * len(program)
        worklist = [0]
        while worklist:
            index = worklist.pop()
            state = in_states[index]
            for succ, out in self.transfer(index, state.copy()):
                if in_states[succ] is None:
                    merged = out
                elif updates[succ] >= WIDEN_AFTER:
                    merged = in_states[succ].widen(out)
                else:
                    merged = in_states[succ].meet(out)
                if in_states[succ] is None or merged != in_states[succ]:
                    in_states[succ] = merged
                    updates[succ] += 1
                    worklist.append(succ)
        return in_states

    # -- transfer ----------------------------------------------------------

    def transfer(self, index, state):
        """Apply ``program[index]`` to ``state``.

        Returns ``(successor index, out state)`` pairs, one per CFG
        edge, with branch facts (packet bounds, null checks, scalar
        ranges) refined per edge.
        """
        insn = self.program[index]
        base, _, mode = insn.op.partition(".")
        if base == "exit":
            return []
        if base == "call":
            self.apply_call(index, insn, state)
            return [(index + 1, state)]
        if base == "ja":
            return [(index + 1 + insn.off, state)]
        if base in JUMP_BASES:
            self.check_read(index, state, insn.dst, "jump")
            if mode == "reg":
                self.check_read(index, state, insn.src, "jump")
            fall = self.refine_branch(state, insn, base, mode, taken=False)
            taken = self.refine_branch(state, insn, base, mode, taken=True)
            return [(index + 1, fall), (index + 1 + insn.off, taken)]
        if base in ("mov", "mov32"):
            self.apply_mov(index, insn, state, base, mode)
        elif base == "lddw":
            state.regs[insn.dst] = RegVal.scalar(insn.imm & U64)
        elif base.startswith("ldx"):
            self.apply_load(index, insn, state, _SIZES[base[3:]])
        elif base.startswith("stx"):
            self.check_read(index, state, insn.src, "store")
            self.apply_store(index, insn, state, _SIZES[base[3:]])
        elif base.startswith("st"):
            self.apply_store(index, insn, state, _SIZES[base[2:]])
        else:
            self.apply_alu(index, insn, state, base, mode)
        return [(index + 1, state)]

    def check_read(self, index, state, reg, what):
        if state.regs[reg].is_uninit:
            self.err(index, "{} reads uninitialized r{}".format(what, reg))

    def apply_mov(self, index, insn, state, base, mode):
        if mode == "reg":
            self.check_read(index, state, insn.src, "mov")
            value = state.regs[insn.src]
            if base == "mov32":
                # Truncation destroys pointer provenance.
                if value.kind == SCALAR:
                    value = RegVal.scalar_val(value.val.trunc32())
                else:
                    value = RegVal.scalar_val(ScalarVal.bounded((1 << 32) - 1))
            state.regs[insn.dst] = value
        else:
            imm = insn.imm & (0xFFFFFFFF if base == "mov32" else U64)
            state.regs[insn.dst] = RegVal.scalar(imm)

    def apply_alu(self, index, insn, state, base, mode):
        alu32 = base.endswith("32")
        op = base[:-2] if alu32 else base
        unary = op in ("neg",) or base[:2] in ("be", "le")
        self.check_read(index, state, insn.dst, "ALU")
        if mode == "reg" and not unary:
            self.check_read(index, state, insn.src, "ALU")
        dst = state.regs[insn.dst]
        if unary:
            if base[:2] in ("be", "le") and base[2:].isdigit():
                width = int(base[2:])
                state.regs[insn.dst] = RegVal.scalar_val(ScalarVal.bounded((1 << width) - 1))
            elif op == "neg" and dst.kind == SCALAR and not alu32:
                state.regs[insn.dst] = RegVal.scalar_val(dst.val.neg())
            else:
                state.regs[insn.dst] = RegVal.scalar()
            return
        if op not in _ALU_BASES and base[:2] not in ("be", "le"):
            # Unknown mnemonic: treat as an opaque scalar-producing ALU op
            # (the VM will fault on it anyway).
            state.regs[insn.dst] = RegVal.scalar()
            return
        src = state.regs[insn.src] if mode == "reg" else RegVal.scalar(insn.imm & U64)
        if not alu32 and op in ("add", "sub") and dst.is_pointer and src.kind == SCALAR:
            state.regs[insn.dst] = self.pointer_math(op, dst, src, index)
            return
        if not alu32 and op == "add" and src.is_pointer and dst.kind == SCALAR:
            state.regs[insn.dst] = self.pointer_math(op, src, dst, index)
            return
        if dst.kind == SCALAR and src.kind == SCALAR:
            state.regs[insn.dst] = RegVal.scalar_val(_scalar_alu(op, dst.val, src.val, alu32))
            return
        # 32-bit ops on pointers and pointer-pointer math degrade to an
        # unknown scalar (provenance destroyed).
        state.regs[insn.dst] = RegVal.scalar()

    def pointer_math(self, op, pointer, scalar, index):
        """``pointer ± scalar``: constant deltas adjust the offset; a
        bounded unknown folds into a packet pointer's variable part
        under a fresh id (any prior bounds proof no longer applies).

        The fresh id is the folding instruction's index: programs are
        DAGs, so one instruction produces at most one variable part per
        packet and the id is both unique and deterministic — which is
        what lets the certificate checker re-run a single transfer step
        and land on the same ids the exported fixpoint used.
        """
        delta = scalar.const
        if delta is not None:
            if pointer.off is None:
                return RegVal(pointer.kind, off=None, fd=pointer.fd)
            delta = _to_signed(delta)
            off = pointer.off + delta if op == "add" else pointer.off - delta
            return RegVal(pointer.kind, off=off, fd=pointer.fd, vid=pointer.vid, var=pointer.var)
        if (
            op == "add"
            and pointer.kind == PKT_PTR
            and pointer.off is not None
            and scalar.val.hi <= PKT_VAR_BOUND
        ):
            var = scalar.val if pointer.var is None else pointer.var.add(scalar.val)
            if var.hi <= 4 * PKT_VAR_BOUND:
                return RegVal(PKT_PTR, off=pointer.off, vid=index, var=var)
        return RegVal(pointer.kind, off=None, fd=pointer.fd)

    # -- memory ------------------------------------------------------------

    def region_check(self, index, state, pointer, extra_off, size, writing):
        """Validate one access through ``pointer``; returns the region kind."""
        kind = pointer.kind
        if kind == MAP_VALUE_OR_NULL:
            self.err(index, "map value may be NULL: null-check the lookup result first")
        if not pointer.is_pointer:
            self.err(index, "memory access through non-pointer ({})".format(kind))
        if pointer.off is None:
            self.err(index, "pointer offset unknown after join; access cannot be bounded")
        var = pointer.var
        var_lo = var.lo if var is not None else 0
        var_hi = var.hi if var is not None else 0
        lo = pointer.off + var_lo + extra_off
        hi = pointer.off + var_hi + extra_off
        if kind == CTX_PTR:
            if writing:
                self.err(index, "store to read-only context")
            if var is not None:
                self.err(index, "context access requires a constant offset")
            if lo < 0 or lo + size > CTX_SIZE:
                self.err(index, "context access [{}, {}) out of bounds".format(lo, lo + size))
        elif kind == STACK_PTR:
            if var is not None:
                self.err(index, "variable stack offset cannot be tracked")
            off = lo
            if off < -STACK_SIZE or off + size > 0:
                self.err(index, "stack access [{}, {}) out of bounds".format(off, off + size))
            mask = ((1 << size) - 1) << (STACK_SIZE + off)
            if writing:
                state.stack_init |= mask
            elif state.stack_init & mask != mask:
                self.err(index, "read of uninitialized stack bytes at r10{:+d}".format(off))
        elif kind == PKT_PTR:
            if lo < 0:
                self.err(
                    index,
                    "packet access [{}, {}) outside verified bounds "
                    "(negative offset)".format(lo, lo + size),
                )
            if var is None:
                if lo + size > state.pkt_valid:
                    self.err(
                        index,
                        "packet access [{}, {}) outside verified bounds "
                        "({} bytes checked against data_end on this path)".format(
                            lo, lo + size, state.pkt_valid
                        ),
                    )
            else:
                # A data_end comparison through a pointer sharing this
                # vid proved base' + var <= data; the variable part
                # cancels, so base + k + size <= base' suffices.
                checked = state.pkt_checked.get(pointer.vid)
                if checked is not None and pointer.off + extra_off + size <= checked:
                    pass
                elif hi + size <= state.pkt_valid:
                    pass
                else:
                    self.err(
                        index,
                        "packet access [{}, {}) outside verified bounds "
                        "(variable offset in {}; {} bytes checked on this path)".format(
                            lo,
                            hi + size,
                            var.interval,
                            state.pkt_valid if checked is None else checked,
                        ),
                    )
        elif kind == MAP_VALUE:
            if lo < 0:
                self.err(index, "negative map-value offset {}".format(lo))
            value_size = self.map_value_size(pointer.fd)
            if value_size is not None and hi + size > value_size:
                self.err(
                    index,
                    "map-value access [{}, {}) exceeds value size {}".format(
                        lo, hi + size, value_size
                    ),
                )
        else:  # PKT_END and anything else is never dereferenceable
            self.err(index, "memory access through {}".format(kind))
        return kind

    def map_value_size(self, fd):
        if self.maps is None or fd is None:
            return None
        bpf_map = self.maps.get(fd)
        return None if bpf_map is None else bpf_map.value_size

    def apply_load(self, index, insn, state, size):
        self.check_read(index, state, insn.src, "load")
        pointer = state.regs[insn.src]
        self.region_check(index, state, pointer, insn.off, size, writing=False)
        if size < 8:
            # A size-bounded load: the interval and the tnum both know
            # the high bits are zero (this is what lets ldxb-derived
            # header offsets stay bounded through masks and shifts).
            result = RegVal.scalar_val(ScalarVal.bounded((1 << (8 * size)) - 1))
        else:
            result = RegVal.scalar()
        if pointer.kind == CTX_PTR and size == 8:
            off = pointer.off + insn.off
            if off == 0:
                result = RegVal.pointer(PKT_PTR, 0)
            elif off == 8:
                result = RegVal(PKT_END, off=0)
        state.regs[insn.dst] = result

    def apply_store(self, index, insn, state, size):
        self.check_read(index, state, insn.dst, "store")
        self.region_check(index, state, state.regs[insn.dst], insn.off, size, writing=True)

    # -- helpers -----------------------------------------------------------

    def apply_call(self, index, insn, state):
        helper = insn.imm
        for reg in range(1, 1 + HELPER_ARG_COUNT[helper]):
            self.check_read(index, state, reg, "helper")
        if self.maps is not None:
            fd_val = state.regs[1]
            if fd_val.kind != SCALAR or fd_val.const is None:
                self.err(index, "helper r1 must be a compile-time map fd")
            bpf_map = self.maps.get(fd_val.const)
            if bpf_map is None:
                self.err(index, "unknown map fd {}".format(fd_val.const))
            self.buffer_arg_check(index, state, 2, bpf_map.key_size, "key")
            if helper == HELPER_MAP_UPDATE:
                self.buffer_arg_check(index, state, 3, bpf_map.value_size, "value")
            fd = fd_val.const
        else:
            for reg in range(2, 1 + HELPER_ARG_COUNT[helper]):
                if not state.regs[reg].is_pointer:
                    self.err(index, "helper r{} must be a pointer".format(reg))
            fd = None
        if helper == HELPER_MAP_LOOKUP:
            state.regs[0] = RegVal(MAP_VALUE_OR_NULL, off=0, fd=fd)
        else:
            state.regs[0] = RegVal.scalar()
        for reg in range(1, 6):
            state.regs[reg] = RegVal.uninit()

    def buffer_arg_check(self, index, state, reg, size, what):
        """The helper reads ``size`` bytes through r``reg``."""
        pointer = state.regs[reg]
        if not pointer.is_pointer:
            self.err(index, "helper {} argument r{} must be a pointer".format(what, reg))
        self.region_check(index, state, pointer, 0, size, writing=False)

    # -- branch refinement -------------------------------------------------

    def refine_branch(self, state, insn, base, mode, taken):
        """Facts a conditional branch proves on one outgoing edge."""
        state = state.copy()
        if mode == "reg":
            dst, src = state.regs[insn.dst], state.regs[insn.src]
            proven = None
            if dst.kind == PKT_PTR and src.kind == PKT_END and dst.off is not None:
                if (base, taken) in _PKT_DST_PROOFS:
                    proven = dst
            elif dst.kind == PKT_END and src.kind == PKT_PTR and src.off is not None:
                if (base, taken) in _PKT_SRC_PROOFS:
                    proven = src
            if proven is not None:
                self._record_pkt_proof(state, proven)
            if dst.kind == SCALAR and src.kind == SCALAR:
                if src.const is not None and base in _REFINABLE:
                    state.regs[insn.dst] = _refine_scalar(dst, base, src.const, taken)
                elif dst.const is not None and base in _SWAPPED:
                    state.regs[insn.src] = _refine_scalar(
                        src, _SWAPPED[base], dst.const, taken
                    )
        else:
            reg = state.regs[insn.dst]
            if insn.imm == 0 and base in ("jeq", "jne") and reg.kind == MAP_VALUE_OR_NULL:
                null_edge = (base == "jeq") == taken
                if null_edge:
                    state.regs[insn.dst] = RegVal.scalar(0)
                else:
                    state.regs[insn.dst] = RegVal.pointer(MAP_VALUE, reg.off or 0, fd=reg.fd)
            elif reg.kind == SCALAR and base in _REFINABLE:
                state.regs[insn.dst] = _refine_scalar(reg, base, insn.imm & U64, taken)
        return state

    def _record_pkt_proof(self, state, pointer):
        """``pointer <= data_end`` holds on this edge."""
        if pointer.var is None:
            if pointer.off > state.pkt_valid:
                state.pkt_valid = pointer.off
            return
        # Variable pointer: record the constant part under the vid (the
        # variable part cancels against same-vid accesses), and bump the
        # unconditional bound by what the variable's minimum guarantees.
        current = state.pkt_checked.get(pointer.vid)
        if current is None or pointer.off > current:
            state.pkt_checked[pointer.vid] = pointer.off
        floor = pointer.off + pointer.var.lo
        if floor > state.pkt_valid:
            state.pkt_valid = floor


def _scalar_alu(op, a, b, alu32):
    """Interval × tnum transfer for one scalar ALU op."""
    if alu32:
        a, b = a.trunc32(), b.trunc32()
    if op == "add":
        result = a.add(b)
    elif op == "sub":
        result = a.sub(b)
    elif op == "mul":
        result = a.mul(b)
    elif op == "div":
        result = a.udiv(b)
    elif op == "mod":
        result = a.umod(b)
    elif op == "and":
        result = a.and_(b)
    elif op == "or":
        result = a.or_(b)
    elif op == "xor":
        result = a.xor_(b)
    elif op == "lsh":
        result = a.lsh(b)
    elif op == "rsh":
        result = a.rsh(b)
    elif op == "arsh" and not alu32:
        result = a.arsh(b)
    else:
        result = ScalarVal.top()
    if alu32:
        result = result.trunc32()
    return result


def _refine_scalar(reg, base, const, taken):
    """Narrow ``reg`` by an unsigned compare against ``const`` on one edge.

    Refinements that would empty the range (infeasible edges) leave the
    register unchanged — sound, merely imprecise.
    """
    val = reg.val
    interval = val.interval
    tnum = val.tnum
    lo, hi = interval.lo, interval.hi
    const &= U64
    # Normalize to the predicate that holds on this edge.
    if base == "jne":
        base, taken = "jeq", not taken
    if base == "jeq":
        if taken:
            if not val.contains(const):
                return reg  # infeasible edge
            return RegVal.scalar(const)
        # != const: trim a matching endpoint.
        if lo == const and lo < hi:
            lo += 1
        elif hi == const and lo < hi:
            hi -= 1
    elif base == "jset":
        if not taken:
            # (reg & const) == 0: every bit of const is known zero.
            narrowed = tnum.intersect(Tnum(0, ~const & U64))
            if narrowed is not None:
                tnum = narrowed
    elif base == "jgt":
        if taken:
            lo = max(lo, const + 1) if const < U64 else lo
        else:
            hi = min(hi, const)
    elif base == "jge":
        if taken:
            lo = max(lo, const)
        elif const > 0:
            hi = min(hi, const - 1)
    elif base == "jlt":
        if taken:
            hi = min(hi, const - 1) if const > 0 else hi
        else:
            lo = max(lo, const)
    elif base == "jle":
        if taken:
            hi = min(hi, const)
        else:
            lo = max(lo, const + 1) if const < U64 else lo
    if lo > hi:
        return reg  # infeasible edge: no refinement
    return RegVal.scalar_val(ScalarVal.make(Interval(lo, hi), tnum))
