"""CFG/worklist verification of XDP VM programs.

The load-time guarantees the NFP offload needs (paper §3.3), made
path-sensitive:

* programs terminate — bounded length, no back-edges;
* every path reaches ``exit`` — no jump or fallthrough leaves the
  program, including targets one past the end;
* no unreachable code;
* registers are initialized on *every* path before use (facts meet at
  control-flow joins, so one-arm initialization does not survive);
* scalars and pointers are distinguished; loads and stores through
  context, stack, packet, and map-value pointers are bounds-checked
  against their region, packet accesses additionally against the
  bounds comparisons performed on that path;
* map-value pointers must be null-checked before dereference;
* helper calls name known helpers, pass a compile-time map fd, pass
  initialized key/value buffers of the map's sizes, and clobber r1-r5.

Run-time checks in :mod:`repro.xdp.vm` remain as defense in depth.
"""

from repro.analysis.cfg import JUMP_BASES, insn_base, insn_successors
from repro.analysis.dataflow import (
    CTX_PTR,
    MAP_VALUE,
    MAP_VALUE_OR_NULL,
    PKT_END,
    PKT_PTR,
    SCALAR,
    STACK_PTR,
    STACK_SIZE,
    AbsState,
    RegVal,
)
from repro.xdp.vm import HELPER_MAP_DELETE, HELPER_MAP_LOOKUP, HELPER_MAP_UPDATE

MAX_PROGRAM_LEN = 4096
CTX_SIZE = 16

VALID_HELPERS = {HELPER_MAP_LOOKUP, HELPER_MAP_UPDATE, HELPER_MAP_DELETE}

#: Registers each helper reads (r1 = map fd, r2 = key, ...).
HELPER_ARG_COUNT = {
    HELPER_MAP_LOOKUP: 2,
    HELPER_MAP_UPDATE: 3,
    HELPER_MAP_DELETE: 2,
}

_SIZES = {"b": 1, "h": 2, "w": 4, "dw": 8}

_ALU_BASES = frozenset(
    ("add", "sub", "mul", "div", "mod", "and", "or", "xor", "lsh", "rsh", "arsh", "neg")
)
_CONST_OPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
}

# (jump base, branch taken?) pairs proving pkt + N <= data_end when the
# packet pointer is the dst operand / the src operand respectively.
_PKT_DST_PROOFS = {("jgt", False), ("jge", False), ("jle", True), ("jlt", True)}
_PKT_SRC_PROOFS = {("jlt", False), ("jle", False), ("jge", True), ("jgt", True)}


class VerifierError(Exception):
    pass


def verify(program, maps=None):
    """Raise :class:`VerifierError` if the program is unacceptable."""
    _Verifier(program, maps).run()
    return True


class _Verifier:
    def __init__(self, program, maps):
        self.program = program
        self.maps = maps

    def err(self, index, message):
        raise VerifierError("insn {}: {}".format(index, message))

    # -- driver ------------------------------------------------------------

    def run(self):
        program = self.program
        if not program:
            raise VerifierError("empty program")
        if len(program) > MAX_PROGRAM_LEN:
            raise VerifierError("program too long ({} insns)".format(len(program)))
        self.structural_checks()
        in_states = self.dataflow()
        for index, state in enumerate(in_states):
            if state is None:
                self.err(index, "unreachable code")

    def structural_checks(self):
        """Range/termination checks that need no dataflow.

        Rejecting every control transfer that leaves ``[0, n)`` — which
        includes the fallthrough of the final instruction — makes
        "every path reaches exit" a structural corollary: the program
        is a DAG (no back-edges) whose only terminators are ``exit``.
        """
        program = self.program
        n = len(program)
        for index, insn in enumerate(program):
            base = insn_base(insn)
            if base == "exit":
                continue
            if base == "call" and insn.imm not in VALID_HELPERS:
                self.err(index, "unknown helper {}".format(insn.imm))
            if base == "ja" or base in JUMP_BASES:
                if insn.off < 0:
                    self.err(index, "backward jump (loops rejected)")
                target = index + 1 + insn.off
                if target >= n:
                    self.err(
                        index,
                        "jump target {} leaves the program: "
                        "control would fall off the end without reaching exit".format(target),
                    )
            for succ in insn_successors(program, index):
                if succ >= n:
                    self.err(
                        index,
                        "control falls off the end of the program: "
                        "this path never reaches exit",
                    )

    def dataflow(self):
        """Worklist fixpoint over per-instruction entry states."""
        program = self.program
        in_states = [None] * len(program)
        in_states[0] = AbsState()
        worklist = [0]
        while worklist:
            index = worklist.pop()
            state = in_states[index]
            for succ, out in self.transfer(index, state.copy()):
                merged = out if in_states[succ] is None else in_states[succ].meet(out)
                if in_states[succ] is None or merged != in_states[succ]:
                    in_states[succ] = merged
                    worklist.append(succ)
        return in_states

    # -- transfer ----------------------------------------------------------

    def transfer(self, index, state):
        """Apply ``program[index]`` to ``state``.

        Returns ``(successor index, out state)`` pairs, one per CFG
        edge, with branch facts (packet bounds, null checks) refined
        per edge.
        """
        insn = self.program[index]
        base, _, mode = insn.op.partition(".")
        if base == "exit":
            return []
        if base == "call":
            self.apply_call(index, insn, state)
            return [(index + 1, state)]
        if base == "ja":
            return [(index + 1 + insn.off, state)]
        if base in JUMP_BASES:
            self.check_read(index, state, insn.dst, "jump")
            if mode == "reg":
                self.check_read(index, state, insn.src, "jump")
            fall = self.refine_branch(state, insn, base, mode, taken=False)
            taken = self.refine_branch(state, insn, base, mode, taken=True)
            return [(index + 1, fall), (index + 1 + insn.off, taken)]
        if base in ("mov", "mov32"):
            self.apply_mov(index, insn, state, base, mode)
        elif base == "lddw":
            state.regs[insn.dst] = RegVal.scalar(insn.imm)
        elif base.startswith("ldx"):
            self.apply_load(index, insn, state, _SIZES[base[3:]])
        elif base.startswith("stx"):
            self.check_read(index, state, insn.src, "store")
            self.apply_store(index, insn, state, _SIZES[base[3:]])
        elif base.startswith("st"):
            self.apply_store(index, insn, state, _SIZES[base[2:]])
        else:
            self.apply_alu(index, insn, state, base, mode)
        return [(index + 1, state)]

    def check_read(self, index, state, reg, what):
        if state.regs[reg].is_uninit:
            self.err(index, "{} reads uninitialized r{}".format(what, reg))

    def apply_mov(self, index, insn, state, base, mode):
        if mode == "reg":
            self.check_read(index, state, insn.src, "mov")
            value = state.regs[insn.src]
            if base == "mov32":
                # Truncation destroys pointer provenance.
                const = value.const & 0xFFFFFFFF if value.const is not None else None
                value = RegVal.scalar(const if value.kind == SCALAR else None)
            state.regs[insn.dst] = value
        else:
            imm = insn.imm & (0xFFFFFFFF if base == "mov32" else (1 << 64) - 1)
            state.regs[insn.dst] = RegVal.scalar(imm)

    def apply_alu(self, index, insn, state, base, mode):
        alu32 = base.endswith("32")
        op = base[:-2] if alu32 else base
        unary = op in ("neg",) or base[:2] in ("be", "le")
        self.check_read(index, state, insn.dst, "ALU")
        if mode == "reg" and not unary:
            self.check_read(index, state, insn.src, "ALU")
        dst = state.regs[insn.dst]
        src = state.regs[insn.src] if mode == "reg" else RegVal.scalar(insn.imm)
        if unary:
            state.regs[insn.dst] = RegVal.scalar()
            return
        if op not in _ALU_BASES and base[:2] not in ("be", "le"):
            # Unknown mnemonic: treat as an opaque scalar-producing ALU op
            # (the VM will fault on it anyway).
            state.regs[insn.dst] = RegVal.scalar()
            return
        if not alu32 and op in ("add", "sub") and dst.is_pointer and src.kind == SCALAR:
            delta = src.const
            if delta is not None and dst.off is not None:
                new_off = dst.off + delta if op == "add" else dst.off - delta
            else:
                new_off = None
            state.regs[insn.dst] = RegVal(dst.kind, off=new_off, fd=dst.fd)
            return
        if not alu32 and op == "add" and src.is_pointer and dst.kind == SCALAR:
            off = src.off + dst.const if src.off is not None and dst.const is not None else None
            state.regs[insn.dst] = RegVal(src.kind, off=off, fd=src.fd)
            return
        if dst.kind == SCALAR and src.kind == SCALAR and op in _CONST_OPS and not alu32:
            if dst.const is not None and src.const is not None:
                state.regs[insn.dst] = RegVal.scalar(_CONST_OPS[op](dst.const, src.const))
                return
        # Pointer arithmetic beyond +/- constant, 32-bit ops on pointers,
        # and unknown-operand math all degrade to an unknown scalar.
        state.regs[insn.dst] = RegVal.scalar()

    # -- memory ------------------------------------------------------------

    def region_check(self, index, state, pointer, extra_off, size, writing):
        """Validate one access through ``pointer``; returns the region kind."""
        kind = pointer.kind
        if kind == MAP_VALUE_OR_NULL:
            self.err(index, "map value may be NULL: null-check the lookup result first")
        if not pointer.is_pointer:
            self.err(index, "memory access through non-pointer ({})".format(kind))
        if pointer.off is None:
            self.err(index, "pointer offset unknown after join; access cannot be bounded")
        off = pointer.off + extra_off
        if kind == CTX_PTR:
            if writing:
                self.err(index, "store to read-only context")
            if off < 0 or off + size > CTX_SIZE:
                self.err(index, "context access [{}, {}) out of bounds".format(off, off + size))
        elif kind == STACK_PTR:
            if off < -STACK_SIZE or off + size > 0:
                self.err(index, "stack access [{}, {}) out of bounds".format(off, off + size))
            mask = ((1 << size) - 1) << (STACK_SIZE + off)
            if writing:
                state.stack_init |= mask
            elif state.stack_init & mask != mask:
                self.err(index, "read of uninitialized stack bytes at r10{:+d}".format(off))
        elif kind == PKT_PTR:
            if off < 0 or off + size > state.pkt_valid:
                self.err(
                    index,
                    "packet access [{}, {}) outside verified bounds "
                    "({} bytes checked against data_end on this path)".format(
                        off, off + size, state.pkt_valid
                    ),
                )
        elif kind == MAP_VALUE:
            if off < 0:
                self.err(index, "negative map-value offset {}".format(off))
            value_size = self.map_value_size(pointer.fd)
            if value_size is not None and off + size > value_size:
                self.err(
                    index,
                    "map-value access [{}, {}) exceeds value size {}".format(
                        off, off + size, value_size
                    ),
                )
        else:  # PKT_END and anything else is never dereferenceable
            self.err(index, "memory access through {}".format(kind))
        return kind

    def map_value_size(self, fd):
        if self.maps is None or fd is None:
            return None
        bpf_map = self.maps.get(fd)
        return None if bpf_map is None else bpf_map.value_size

    def apply_load(self, index, insn, state, size):
        self.check_read(index, state, insn.src, "load")
        pointer = state.regs[insn.src]
        self.region_check(index, state, pointer, insn.off, size, writing=False)
        result = RegVal.scalar()
        if pointer.kind == CTX_PTR and size == 8:
            off = pointer.off + insn.off
            if off == 0:
                result = RegVal.pointer(PKT_PTR, 0)
            elif off == 8:
                result = RegVal(PKT_END, off=0)
        state.regs[insn.dst] = result

    def apply_store(self, index, insn, state, size):
        self.check_read(index, state, insn.dst, "store")
        self.region_check(index, state, state.regs[insn.dst], insn.off, size, writing=True)

    # -- helpers -----------------------------------------------------------

    def apply_call(self, index, insn, state):
        helper = insn.imm
        for reg in range(1, 1 + HELPER_ARG_COUNT[helper]):
            self.check_read(index, state, reg, "helper")
        if self.maps is not None:
            fd_val = state.regs[1]
            if fd_val.kind != SCALAR or fd_val.const is None:
                self.err(index, "helper r1 must be a compile-time map fd")
            bpf_map = self.maps.get(fd_val.const)
            if bpf_map is None:
                self.err(index, "unknown map fd {}".format(fd_val.const))
            self.buffer_arg_check(index, state, 2, bpf_map.key_size, "key")
            if helper == HELPER_MAP_UPDATE:
                self.buffer_arg_check(index, state, 3, bpf_map.value_size, "value")
            fd = fd_val.const
        else:
            for reg in range(2, 1 + HELPER_ARG_COUNT[helper]):
                if not state.regs[reg].is_pointer:
                    self.err(index, "helper r{} must be a pointer".format(reg))
            fd = None
        if helper == HELPER_MAP_LOOKUP:
            state.regs[0] = RegVal(MAP_VALUE_OR_NULL, off=0, fd=fd)
        else:
            state.regs[0] = RegVal.scalar()
        for reg in range(1, 6):
            state.regs[reg] = RegVal.uninit()

    def buffer_arg_check(self, index, state, reg, size, what):
        """The helper reads ``size`` bytes through r``reg``."""
        pointer = state.regs[reg]
        if not pointer.is_pointer:
            self.err(index, "helper {} argument r{} must be a pointer".format(what, reg))
        self.region_check(index, state, pointer, 0, size, writing=False)

    # -- branch refinement -------------------------------------------------

    def refine_branch(self, state, insn, base, mode, taken):
        """Facts a conditional branch proves on one outgoing edge."""
        state = state.copy()
        if mode == "reg":
            dst, src = state.regs[insn.dst], state.regs[insn.src]
            proven = None
            if dst.kind == PKT_PTR and src.kind == PKT_END and dst.off is not None:
                if (base, taken) in _PKT_DST_PROOFS:
                    proven = dst.off
            elif dst.kind == PKT_END and src.kind == PKT_PTR and src.off is not None:
                if (base, taken) in _PKT_SRC_PROOFS:
                    proven = src.off
            if proven is not None and proven > state.pkt_valid:
                state.pkt_valid = proven
        elif insn.imm == 0 and base in ("jeq", "jne"):
            reg = state.regs[insn.dst]
            if reg.kind == MAP_VALUE_OR_NULL:
                null_edge = (base == "jeq") == taken
                if null_edge:
                    state.regs[insn.dst] = RegVal.scalar(0)
                else:
                    state.regs[insn.dst] = RegVal.pointer(MAP_VALUE, reg.off or 0, fd=reg.fd)
        return state
