"""``python -m repro lint`` / ``repro-lint``: run all analysis passes.

Five passes over the tree, one exit code:

1. **xdp-verifier** — every builtin XDP assembly program must pass the
   CFG dataflow verifier (:mod:`repro.analysis.verifier`);
2. **xdp-deadcode** — no refinement-unreachable instructions or
   never-observed stack stores in the builtins
   (:mod:`repro.analysis.deadcode`);
3. **stage-race** — the data-path stage modules must respect the
   connection-state ownership partition, including writes reached
   through helper calls (:mod:`repro.analysis.stagelint`);
4. **atomicity** — read-modify-writes by replicated stage instances
   must be declared commutative atomic-add counters
   (:func:`repro.analysis.stagelint.lint_atomicity`);
5. **sim-process** — no wall-clock time, global RNG, or non-event
   yields in simulation code (:mod:`repro.analysis.simlint`).

Exit status 0 when clean, 1 when any pass reports findings, so CI can
gate on it directly. ``--json`` (or ``--format=json``) emits the stable
machine-readable report from :mod:`repro.analysis.report`;
``--format=github`` prints GitHub Actions ``::warning`` annotations;
``--baseline report.json`` compares against a stored report and fails
only on *new* findings. ``--certify`` additionally exports each builtin
program's proof-carrying compilation certificate
(:mod:`repro.analysis.certificate`) into the JSON report.
"""

import argparse
import sys

from repro.analysis.report import (
    PASS_ATOMIC,
    PASS_DEADCODE,
    PASS_HB,
    PASS_ORDER,
    PASS_XDP,
    Finding,
    diff_findings,
    finding_sort_key,
    load_report,
    render_github,
    render_json,
    render_text,
)


def _builtin_factories():
    from repro.xdp.builtins import ASM_BUILTINS

    return sorted(ASM_BUILTINS.items())


def _verify_builtins():
    """Run the CFG verifier over the builtin assembly programs."""
    from repro.analysis.verifier import VerifierError
    from repro.xdp.verifier import verify

    factories = _builtin_factories()
    findings = []
    for name, factory in factories:
        program, maps = factory()
        try:
            verify(program, maps)
        except VerifierError as exc:
            findings.append(
                Finding(
                    PASS_XDP,
                    "repro/xdp/builtins/{}".format(name),
                    0,
                    "verifier-reject",
                    str(exc),
                )
            )
    return findings, len(factories)


def _deadcode_builtins():
    """Dead-code/dead-store lint over the builtin assembly programs."""
    from repro.analysis import deadcode

    findings = []
    factories = _builtin_factories()
    for name, factory in factories:
        program, maps = factory()
        for code, index, message in deadcode.lint_program(name, program, maps):
            findings.append(
                Finding(PASS_DEADCODE, "repro/xdp/builtins/{}".format(name), index, code, message)
            )
    return findings, len(factories)


def certify_builtins():
    """Export + re-check a certificate per builtin; returns
    ``(findings, {name: certificate jsonable})``."""
    from repro.analysis.certificate import CertificateError, check_certificate, export_certificate
    from repro.analysis.verifier import VerifierError

    findings = []
    certificates = {}
    for name, factory in _builtin_factories():
        program, maps = factory()
        try:
            cert = export_certificate(program, maps)
            check_certificate(program, cert, maps)
        except (VerifierError, CertificateError) as exc:
            findings.append(
                Finding(
                    PASS_XDP,
                    "repro/xdp/builtins/{}".format(name),
                    0,
                    "certify-fail",
                    str(exc),
                )
            )
            continue
        certificates[name] = cert.to_jsonable()
    return findings, certificates


#: Key the pipeline commutability certificate is exported under; not a
#: builtin XDP program, so the per-builtin stat lines skip it.
COMMUTE_CERT_KEY = "pipeline-commute"


def certify_pipeline():
    """Export + re-check the pipeline commutability certificate."""
    from repro.analysis.hbcert import (
        CommuteCertError,
        check_commute_certificate,
        export_commute_certificate,
    )

    findings = []
    cert = None
    try:
        cert = export_commute_certificate()
        check_commute_certificate(cert)
    except CommuteCertError as exc:
        findings.append(
            Finding(PASS_ORDER, "repro/flextoe/stages.py", 0, "certify-fail", str(exc))
        )
    return findings, cert


def run_all(root=None):
    """Run every pass; returns ``(findings, checked)``."""
    from repro.analysis import simlint, stagelint

    findings, n_programs = _verify_builtins()
    checked = {PASS_XDP: n_programs}

    dead_findings, n_dead = _deadcode_builtins()
    findings.extend(dead_findings)
    checked[PASS_DEADCODE] = n_dead

    stage_paths = stagelint.default_paths()
    findings.extend(stagelint.lint_stages(stage_paths))
    checked["stage-race"] = len(stage_paths)

    findings.extend(stagelint.lint_atomicity(stage_paths))
    checked[PASS_ATOMIC] = len(stage_paths)

    from repro.analysis import hblint

    hb_model, hb_verdicts = hblint.field_verdicts(stage_paths)
    findings.extend(hblint.lint_hb(verdicts=hb_verdicts))
    checked[PASS_HB] = len(hb_verdicts)

    findings.extend(hblint.lint_ordering(stage_paths))
    checked[PASS_ORDER] = len(hb_model.stages)

    sim_findings = simlint.lint_tree(root)
    findings.extend(sim_findings)
    checked["sim-process"] = _count_py_files(root)
    return findings, checked


def _count_py_files(root):
    import os

    if root is None:
        import repro

        root = os.path.dirname(repro.__file__)
    count = 0
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        count += sum(1 for f in filenames if f.endswith(".py"))
    return count


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Data-path safety analyzer: XDP verifier, stage race lint, "
            "replicated-state atomicity lint, sim-process lint."
        ),
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON report (same as --format=json)"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default=None,
        dest="fmt",
        help="output format: text (default), json, or github workflow annotations",
    )
    parser.add_argument(
        "--certify",
        action="store_true",
        help=(
            "export + re-check a proof-carrying compilation certificate per "
            "builtin XDP program; embedded in the JSON report"
        ),
    )
    parser.add_argument(
        "--root",
        default=None,
        help="directory tree for the sim-process pass (default: the installed repro package)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="REPORT_JSON",
        help="fail only on findings not present in this stored JSON report",
    )
    args = parser.parse_args(argv)
    fmt = args.fmt or ("json" if args.json else "text")

    findings, checked = run_all(args.root)
    certificates = None
    if args.certify:
        cert_findings, certificates = certify_builtins()
        findings.extend(cert_findings)
        commute_findings, commute_cert = certify_pipeline()
        findings.extend(commute_findings)
        if commute_cert is not None:
            certificates[COMMUTE_CERT_KEY] = commute_cert
    findings.sort(key=finding_sort_key)
    gating = findings
    if args.baseline is not None:
        gating = diff_findings(findings, load_report(args.baseline))
        gating.sort(key=finding_sort_key)
    if fmt == "json":
        print(render_json(findings, checked, certificates=certificates))
    elif fmt == "github":
        print(render_github(gating))
        if args.certify and certificates is not None:
            for name in sorted(certificates):
                if name == COMMUTE_CERT_KEY:
                    cert = certificates[name]
                    print(
                        "::notice title=hb-certify::pipeline: {}/{} stage pairs, "
                        "{}/{} HC-op pairs proven commutable".format(
                            sum(1 for p in cert["stage_pairs"] if p["commute"]),
                            len(cert["stage_pairs"]),
                            sum(1 for p in cert["hc_pairs"] if p["commute"]),
                            len(cert["hc_pairs"]),
                        )
                    )
                    continue
                stats = certificates[name].get("stats", {})
                print(
                    "::notice title=xdp-certify::{}: {} insns, {}/{} memory guards elided".format(
                        name,
                        stats.get("insns", 0),
                        stats.get("mem_elided", 0),
                        stats.get("mem_elided", 0) + stats.get("mem_retained", 0),
                    )
                )
    else:
        print(render_text(gating))
        if args.baseline is not None and len(findings) != len(gating):
            print(
                "repro lint: {} baseline-accepted finding{} suppressed".format(
                    len(findings) - len(gating), "" if len(findings) - len(gating) == 1 else "s"
                )
            )
        if args.certify and certificates is not None:
            for name in sorted(certificates):
                if name == COMMUTE_CERT_KEY:
                    cert = certificates[name]
                    print(
                        "certified pipeline: {}/{} stage pairs and {}/{} HC-op "
                        "pairs commutable, {} fields judged".format(
                            sum(1 for p in cert["stage_pairs"] if p["commute"]),
                            len(cert["stage_pairs"]),
                            sum(1 for p in cert["hc_pairs"] if p["commute"]),
                            len(cert["hc_pairs"]),
                            len(cert["fields"]),
                        )
                    )
                    continue
                stats = certificates[name].get("stats", {})
                total = stats.get("mem_elided", 0) + stats.get("mem_retained", 0)
                print(
                    "certified {}: {} insns, {}/{} memory guards elided, "
                    "{}/{} division guards elided".format(
                        name,
                        stats.get("insns", 0),
                        stats.get("mem_elided", 0),
                        total,
                        stats.get("div_elided", 0),
                        stats.get("div_elided", 0) + stats.get("div_retained", 0),
                    )
                )
    return 1 if gating else 0


if __name__ == "__main__":
    sys.exit(main())
