"""``python -m repro lint`` / ``repro-lint``: run all analysis passes.

Four passes over the tree, one exit code:

1. **xdp-verifier** — every builtin XDP assembly program must pass the
   CFG dataflow verifier (:mod:`repro.analysis.verifier`);
2. **stage-race** — the data-path stage modules must respect the
   connection-state ownership partition, including writes reached
   through helper calls (:mod:`repro.analysis.stagelint`);
3. **atomicity** — read-modify-writes by replicated stage instances
   must be declared commutative atomic-add counters
   (:func:`repro.analysis.stagelint.lint_atomicity`);
4. **sim-process** — no wall-clock time, global RNG, or non-event
   yields in simulation code (:mod:`repro.analysis.simlint`).

Exit status 0 when clean, 1 when any pass reports findings, so CI can
gate on it directly. ``--json`` emits the stable machine-readable
report from :mod:`repro.analysis.report`; ``--baseline report.json``
compares against a stored report and fails only on *new* findings.
"""

import argparse
import sys

from repro.analysis.report import (
    PASS_ATOMIC,
    PASS_XDP,
    Finding,
    diff_findings,
    load_report,
    render_json,
    render_text,
)


def _verify_builtins():
    """Run the CFG verifier over the builtin assembly programs."""
    from repro.analysis.verifier import VerifierError
    from repro.xdp import builtins
    from repro.xdp.verifier import verify

    factories = [
        ("null", builtins.null_asm_program),
        ("firewall", builtins.firewall_asm_program),
        ("classifier", builtins.classifier_asm_program),
    ]
    findings = []
    for name, factory in factories:
        program, maps = factory()
        try:
            verify(program, maps)
        except VerifierError as exc:
            findings.append(
                Finding(
                    PASS_XDP,
                    "repro/xdp/builtins/{}".format(name),
                    0,
                    "verifier-reject",
                    str(exc),
                )
            )
    return findings, len(factories)


def run_all(root=None):
    """Run every pass; returns ``(findings, checked)``."""
    from repro.analysis import simlint, stagelint

    findings, n_programs = _verify_builtins()
    checked = {PASS_XDP: n_programs}

    stage_paths = stagelint.default_paths()
    findings.extend(stagelint.lint_stages(stage_paths))
    checked["stage-race"] = len(stage_paths)

    findings.extend(stagelint.lint_atomicity(stage_paths))
    checked[PASS_ATOMIC] = len(stage_paths)

    sim_findings = simlint.lint_tree(root)
    findings.extend(sim_findings)
    checked["sim-process"] = _count_py_files(root)
    return findings, checked


def _count_py_files(root):
    import os

    if root is None:
        import repro

        root = os.path.dirname(repro.__file__)
    count = 0
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        count += sum(1 for f in filenames if f.endswith(".py"))
    return count


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Data-path safety analyzer: XDP verifier, stage race lint, "
            "replicated-state atomicity lint, sim-process lint."
        ),
    )
    parser.add_argument("--json", action="store_true", help="emit machine-readable JSON report")
    parser.add_argument(
        "--root",
        default=None,
        help="directory tree for the sim-process pass (default: the installed repro package)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="REPORT_JSON",
        help="fail only on findings not present in this stored JSON report",
    )
    args = parser.parse_args(argv)

    findings, checked = run_all(args.root)
    findings.sort(key=lambda f: (f.pass_name, f.path, f.line))
    gating = findings
    if args.baseline is not None:
        gating = diff_findings(findings, load_report(args.baseline))
        gating.sort(key=lambda f: (f.pass_name, f.path, f.line))
    if args.json:
        print(render_json(findings, checked))
    elif args.baseline is not None:
        print(render_text(gating))
        if len(findings) != len(gating):
            print(
                "repro lint: {} baseline-accepted finding{} suppressed".format(
                    len(findings) - len(gating), "" if len(findings) - len(gating) == 1 else "s"
                )
            )
    else:
        print(render_text(findings))
    return 1 if gating else 0


if __name__ == "__main__":
    sys.exit(main())
