"""Digest-bound commutability certificate for the pipeline (§3.1-3.2).

The happens-before analyzer (:mod:`repro.analysis.hblint`) proves which
stage pairs and which host-control operations *commute* — the facts
that justify FlexTOE's parallelism: replicated stages may interleave
freely because their shared-state footprints never conflict, and
window-update descriptors may be applied in any batch order because
their state effects are commutative deltas. This module exports those
facts as a machine-checkable certificate in the proof-carrying style of
:mod:`repro.analysis.certificate`:

* the certificate is **digest-bound** to the exact analyzed sources
  (SHA-256 per file + the model version), so facts proven about one
  tree are never applied to another;
* :func:`check_commute_certificate` independently re-validates it:
  base facts (field verdicts, per-op write classifications) are
  recomputed from the sources and compared for exact equality, and the
  derived pair facts are re-derived *from the certificate's own base
  facts* with the checker's own rules — so a tampered ``commute`` bit
  is rejected even when the base facts still match.

Fact language
-------------

* **field facts** — per connection-state field touched by any stage:
  the verdict (``immutable``/``owned``/``atomic``/``hb-race``) and the
  stage kinds reading/writing it.
* **stage-pair facts** — two stage kinds commute when no shared field
  is an unresolved ``hb-race`` between them: their interleaving order
  cannot be observed through connection state (ring/fence ordering is
  a separate obligation, checked by the ordering pass).
* **HC-op facts** — per host-control descriptor kind, the protocol
  state writes of its :func:`repro.flextoe.proto_logic.process_hc`
  branch, classified **delta** (``+=`` of descriptor-carried values),
  **const** (a literal store, idempotent), or **absolute** (anything
  whose value or guard depends on protocol state, including writes
  absorbed from mutating ``state`` method calls). An op self-commutes
  iff it has no absolute writes; two ops commute iff every field both
  write is delta/delta or an equal const, and neither's absolute
  writes intersect state the other reads or writes.
"""

import ast
import hashlib
import json
import os

from repro.analysis import hblint, stagelint

#: Certificate format version; also bound into the digest.
CERT_VERSION = hblint.MODEL_VERSION

#: Host-control descriptor constant names recognized as op tags.
_HC_PREFIX = "HC_"


class CommuteCertError(Exception):
    """The certificate does not match this tree's proven facts."""


def _analyzed_paths(paths=None):
    covered = list(paths or stagelint.default_paths())
    state_path = stagelint._flextoe_path("state.py")
    if state_path not in covered:
        covered.append(state_path)
    return covered


def sources_digest(sources):
    """SHA-256 binding the certificate to the exact analyzed sources."""
    hasher = hashlib.sha256()
    hasher.update("commute-cert v{}\n".format(CERT_VERSION).encode())
    for source, filename in sorted(sources, key=lambda s: os.path.basename(s[1])):
        file_sha = hashlib.sha256(source.encode()).hexdigest()
        hasher.update("{} {}\n".format(os.path.basename(filename), file_sha).encode())
    return hasher.hexdigest()


# -- HC operation extraction ------------------------------------------------


def _protocol_state_methods(state_source):
    """``{method: (reads, writes)}`` over ``self.<attr>`` for ProtocolState.

    Method-absorbed writes are always treated as absolute by the HC
    classification: the callee's stores depend on state it read.
    """
    tree = ast.parse(state_source)
    methods = {}
    for node in tree.body:
        if not (isinstance(node, ast.ClassDef) and node.name == "ProtocolState"):
            continue
        for function in node.body:
            if not isinstance(function, ast.FunctionDef):
                continue
            reads = set()
            writes = set()
            for sub in ast.walk(function):
                if (
                    isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == "self"
                ):
                    if isinstance(sub.ctx, ast.Load):
                        reads.add(sub.attr)
                    else:
                        writes.add(sub.attr)
            methods[function.name] = (reads, writes)
    return methods


def _state_reads(node, state_name):
    reads = set()
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == state_name
            and isinstance(sub.ctx, ast.Load)
        ):
            reads.add(sub.attr)
    return reads


def extract_hc_ops(proto_logic_source=None, state_source=None):
    """Per-HC-op state-write classification from ``process_hc``.

    Returns ``[{"op", "delta", "const", "absolute", "reads",
    "self_commutes"}, ...]`` sorted by op name.
    """
    if proto_logic_source is None:
        with open(stagelint._flextoe_path("proto_logic.py")) as handle:
            proto_logic_source = handle.read()
    if state_source is None:
        with open(stagelint._flextoe_path("state.py")) as handle:
            state_source = handle.read()
    methods = _protocol_state_methods(state_source)
    tree = ast.parse(proto_logic_source)
    process_hc = None
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == "process_hc":
            process_hc = node
            break
    if process_hc is None:
        raise CommuteCertError("proto_logic has no process_hc to certify")
    state_name = process_hc.args.args[0].arg

    ops = []
    for statement in ast.walk(process_hc):
        if not isinstance(statement, ast.If):
            continue
        test = statement.test
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
            and isinstance(test.left, ast.Attribute)
            and test.left.attr == "kind"
            and len(test.comparators) == 1
            and isinstance(test.comparators[0], ast.Name)
            and test.comparators[0].id.startswith(_HC_PREFIX)
        ):
            continue
        op = test.comparators[0].id
        delta = set()
        const = {}
        absolute = set()
        reads = set()
        for node in statement.body:
            for sub in ast.walk(node):
                if isinstance(sub, ast.AugAssign):
                    target = sub.target
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == state_name
                    ):
                        # A += whose operand reads protocol state is
                        # order-sensitive; descriptor-carried deltas
                        # are not.
                        if _state_reads(sub.value, state_name):
                            absolute.add(target.attr)
                        else:
                            delta.add(target.attr)
                elif isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == state_name
                        ):
                            if isinstance(sub.value, ast.Constant):
                                const[target.attr] = sub.value.value
                            else:
                                absolute.add(target.attr)
                elif (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and isinstance(sub.func.value, ast.Name)
                    and sub.func.value.id == state_name
                ):
                    callee_reads, callee_writes = methods.get(sub.func.attr, (set(), {"?"}))
                    reads |= callee_reads
                    absolute |= callee_writes
                elif (
                    isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == state_name
                    and isinstance(sub.ctx, ast.Load)
                ):
                    reads.add(sub.attr)
        # A method-call's func expression is itself an Attribute Load;
        # keep only real field reads in the fact.
        reads -= set(methods)
        ops.append(
            {
                "op": op,
                "delta": sorted(delta),
                "const": {field: const[field] for field in sorted(const)},
                "absolute": sorted(absolute),
                "reads": sorted(reads),
                "self_commutes": not absolute,
            }
        )
    ops.sort(key=lambda entry: entry["op"])
    return ops


def _hc_pair_commutes(a, b):
    """Write-effect commutativity of two HC ops (checker's own rule)."""
    writes_a = set(a["delta"]) | set(a["const"]) | set(a["absolute"])
    writes_b = set(b["delta"]) | set(b["const"]) | set(b["absolute"])
    for field in writes_a & writes_b:
        if field in a["delta"] and field in b["delta"]:
            continue
        if field in a["const"] and field in b["const"] and a["const"][field] == b["const"][field]:
            continue
        return False
    # An op with absolute writes computed *from* state must not see the
    # other op's writes (order would change its stored values/guards).
    if a["absolute"] and (set(a["reads"]) & writes_b):
        return False
    if b["absolute"] and (set(b["reads"]) & writes_a):
        return False
    return True


def _hc_pair_facts(ops):
    pairs = []
    for i, a in enumerate(ops):
        for b in ops[i + 1:]:
            pairs.append({"a": a["op"], "b": b["op"], "commute": _hc_pair_commutes(a, b)})
    return pairs


# -- stage facts ------------------------------------------------------------


def _field_facts(verdicts):
    facts = []
    for (partition, attr) in sorted(verdicts):
        verdict, footprint = verdicts[(partition, attr)]
        facts.append(
            {
                "partition": partition,
                "field": attr,
                "verdict": verdict,
                "writers": sorted(footprint["writes"]),
                "readers": sorted(footprint["reads"]),
            }
        )
    return facts


def _stage_pair_facts(model, field_facts):
    """Commutability per stage-kind pair, derived from the field facts."""
    kinds = sorted({stage.kind for stage in model.stages.values()})
    pairs = []
    for i, a in enumerate(kinds):
        for b in kinds[i + 1:]:
            conflicts = []
            for fact in field_facts:
                if fact["verdict"] != hblint.VERDICT_RACE:
                    continue
                touched = set(fact["writers"]) | set(fact["readers"])
                if a in touched and b in touched and {a, b} & set(fact["writers"]):
                    conflicts.append("{}.{}".format(fact["partition"], fact["field"]))
            pairs.append({"a": a, "b": b, "commute": not conflicts, "conflicts": conflicts})
    return pairs


# -- export + check ---------------------------------------------------------


def export_commute_certificate(paths=None):
    """Prove and export the commutability facts for the given sources."""
    covered = _analyzed_paths(paths)
    sources = []
    for path in covered:
        with open(path) as handle:
            sources.append((handle.read(), path))
    by_name = {os.path.basename(filename): source for source, filename in sources}
    model, verdicts = hblint.field_verdicts(
        [path for path in covered if os.path.basename(path) != "state.py"]
    )
    field_facts = _field_facts(verdicts)
    ops = extract_hc_ops(by_name.get("proto_logic.py"), by_name.get("state.py"))
    return {
        "version": CERT_VERSION,
        "digest": sources_digest(sources),
        "files": {
            os.path.basename(filename): hashlib.sha256(source.encode()).hexdigest()
            for source, filename in sources
        },
        "model": model.to_jsonable(),
        "fields": field_facts,
        "stage_pairs": _stage_pair_facts(model, field_facts),
        "hc_ops": ops,
        "hc_pairs": _hc_pair_facts(ops),
    }


def check_commute_certificate(cert, paths=None):
    """Independently re-validate a commutability certificate.

    Three layers, any failure raises :class:`CommuteCertError`:

    1. **binding** — version and source digest must match this tree;
    2. **base facts** — field verdicts and HC-op classifications are
       recomputed from the sources and compared for exact equality;
    3. **derivations** — the pair facts are re-derived from the
       *certificate's own* base facts with the checker's rules, so a
       flipped ``commute`` bit fails even alongside intact base facts.
    """
    fresh = export_commute_certificate(paths)
    if cert.get("version") != CERT_VERSION:
        raise CommuteCertError(
            "certificate version {!r} != {}".format(cert.get("version"), CERT_VERSION)
        )
    if cert.get("digest") != fresh["digest"]:
        raise CommuteCertError("certificate was proven about different sources (digest mismatch)")
    for section in ("files", "model", "fields", "hc_ops"):
        if cert.get(section) != fresh[section]:
            raise CommuteCertError(
                "certificate {} facts do not match the analyzed sources".format(section)
            )
    rederived_pairs = _stage_pair_facts(
        hblint.extract_model(
            [
                (source, path)
                for path, source in (
                    (p, open(p).read())
                    for p in _analyzed_paths(paths)
                    if os.path.basename(p) != "state.py"
                )
            ]
        ),
        cert["fields"],
    )
    if cert.get("stage_pairs") != rederived_pairs:
        raise CommuteCertError("stage-pair commutability facts do not follow from the field facts")
    if cert.get("hc_pairs") != _hc_pair_facts(cert["hc_ops"]):
        raise CommuteCertError("HC-pair commutability facts do not follow from the op facts")
    return True


def certificate_json(cert):
    """Canonical JSON rendering (the CI artifact)."""
    return json.dumps(cert, indent=2, sort_keys=True)
