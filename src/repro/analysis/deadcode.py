"""Dead-code and dead-store lint for XDP programs.

Two diagnostics on top of the verifier's dataflow:

* **dead-insn** — instructions unreachable once branch refinement is
  taken into account. The verifier rejects *structurally* unreachable
  code, but an edge whose refinement would empty a register's range
  (``jeq r5, 7`` when r5 is proven ``[0, 3]``) can never be taken; code
  reachable only through such edges is dead.
* **dead-store** — stack stores never observed before ``exit``: no
  later load and no helper key/value buffer reads the bytes on any
  path. Packet and map-value stores are always observable (they outlive
  the program) and are never flagged.

Both are lint findings, not verification errors: dead code is safe,
just wasted FPC cycles on the data path.
"""

from repro.analysis.cfg import JUMP_BASES, insn_base
from repro.analysis.dataflow import SCALAR, STACK_PTR, STACK_SIZE, U64, AbsState
from repro.analysis.verifier import (
    HELPER_ARG_COUNT,
    VerifierError,
    _Verifier,
)
from repro.xdp.vm import HELPER_MAP_UPDATE

_SIZES = {"b": 1, "h": 2, "w": 4, "dw": 8}

_ALL_BYTES = (1 << STACK_SIZE) - 1


def _edge_feasible(state, insn, base, mode, taken):
    """Can this branch edge be taken under the entry state's facts?

    Only constant unsigned compares are judged; everything else is
    conservatively feasible.
    """
    if mode == "reg":
        return True
    reg = state.regs[insn.dst]
    if reg.kind != SCALAR:
        return True
    val = reg.val
    const = insn.imm & U64
    lo, hi = val.interval.lo, val.interval.hi
    if base == "jne":
        base, taken = "jeq", not taken
    if base == "jeq":
        if taken:
            return val.contains(const)
        return not (lo == hi == const)
    if base == "jgt":
        return hi > const if taken else lo <= const
    if base == "jge":
        return hi >= const if taken else lo < const
    if base == "jlt":
        return lo < const if taken else hi >= const
    if base == "jle":
        return lo <= const if taken else hi > const
    if base == "jset":
        if taken:  # some bit of const may be set
            return (val.tnum.value | val.tnum.mask) & const != 0
        return val.tnum.value & const == 0  # all known bits of const clear
    return True  # signed compares: unjudged


def _refined_reachability(program, maps):
    """Per-instruction entry states with infeasible edges pruned.

    Same worklist/meet as the verifier, but a branch edge whose entry
    facts contradict the condition contributes no state — instructions
    left with no state are dead.
    """
    checker = _Verifier(program, maps)
    in_states = [None] * len(program)
    in_states[0] = AbsState()
    worklist = [0]
    iterations = 0
    budget = 64 * max(1, len(program)) ** 2
    while worklist:
        iterations += 1
        if iterations > budget:  # convergence backstop; keep it sound
            return None
        index = worklist.pop()
        insn = program[index]
        base, _, mode = insn.op.partition(".")
        outs = checker.transfer(index, in_states[index].copy())
        if base in JUMP_BASES:
            # transfer returns the fallthrough edge first, taken second.
            outs = [
                (succ, out)
                for position, (succ, out) in enumerate(outs)
                if _edge_feasible(in_states[index], insn, base, mode, taken=position == 1)
            ]
        for succ, out in outs:
            merged = out if in_states[succ] is None else in_states[succ].meet(out)
            if in_states[succ] is None or merged != in_states[succ]:
                in_states[succ] = merged
                worklist.append(succ)
    return in_states


def _stack_bytes(pointer, extra_off, size):
    """Bitmask of stack bytes touched, or None when not stack/unknown."""
    if pointer.kind != STACK_PTR or pointer.off is None or pointer.var is not None:
        return None
    off = pointer.off + extra_off
    lo = STACK_SIZE + off
    if lo < 0 or lo + size > STACK_SIZE:
        return None
    return ((1 << size) - 1) << lo


def _uses_and_kill(insn, state, maps):
    """(read mask, killed mask) of stack bytes for one instruction.

    Unknown pointer arguments conservatively read everything.
    """
    base = insn_base(insn)
    if base.startswith("ldx"):
        mask = _stack_bytes(state.regs[insn.src], insn.off, _SIZES[base[3:]])
        if mask is None and state.regs[insn.src].kind == STACK_PTR:
            return _ALL_BYTES, 0
        return (mask or 0), 0
    if base.startswith("stx") or base.startswith("st"):
        reg = insn.dst
        size = _SIZES[base[3:] if base.startswith("stx") else base[2:]]
        mask = _stack_bytes(state.regs[reg], insn.off, size)
        if mask is None:
            if state.regs[reg].kind == STACK_PTR:
                return _ALL_BYTES, 0  # unbounded stack store: assume read
            return 0, 0  # packet/map store: observable, reads nothing
        return 0, mask
    if base == "call":
        reads = 0
        bpf_map = None
        if maps is not None and state.regs[1].kind == SCALAR:
            bpf_map = maps.get(state.regs[1].const)
        args = HELPER_ARG_COUNT.get(insn.imm, 0)
        for reg, attr in ((2, "key_size"), (3, "value_size")):
            if reg > args or (reg == 3 and insn.imm != HELPER_MAP_UPDATE):
                continue
            pointer = state.regs[reg]
            if pointer.kind != STACK_PTR:
                continue
            # The helper reads the map's key/value size through the
            # buffer; without a known map, any length.
            mask = None
            if bpf_map is not None:
                mask = _stack_bytes(pointer, 0, getattr(bpf_map, attr))
            reads |= _ALL_BYTES if mask is None else mask
        return reads, 0
    return 0, 0


def lint_program(name, program, maps=None):
    """Findings for one program: (code, insn index, message) tuples."""
    findings = []
    try:
        states = _refined_reachability(program, maps)
    except VerifierError:
        return []  # unverifiable programs are the verifier pass's report
    if states is None:
        return []
    for index, state in enumerate(states):
        if state is None:
            findings.append(
                (
                    "dead-insn",
                    index,
                    "insn {} ({}) is unreachable under branch refinement".format(
                        index, program[index].op
                    ),
                )
            )

    # Backward stack-byte liveness. Programs are forward-only DAGs, so
    # descending index order is a reverse topological order.
    n = len(program)
    live_in = [0] * n
    for index in range(n - 1, -1, -1):
        state = states[index]
        if state is None:
            continue
        base = insn_base(program[index])
        live_out = 0
        if base == "exit":
            live_out = 0
        elif base == "ja":
            target = index + 1 + program[index].off
            live_out = live_in[target]
        elif base in JUMP_BASES:
            live_out = live_in[index + 1] | live_in[index + 1 + program[index].off]
        elif index + 1 < n:
            live_out = live_in[index + 1]
        reads, kill = _uses_and_kill(program[index], state, maps)
        live_in[index] = (live_out & ~kill) | reads
        if kill and not (kill & live_out):
            findings.append(
                (
                    "dead-store",
                    index,
                    "insn {} ({}) stores stack bytes never read before exit".format(
                        index, program[index].op
                    ),
                )
            )
    findings.sort(key=lambda item: item[1])
    return findings
