"""Proof-carrying compilation certificates for XDP programs.

The CFG verifier (:mod:`repro.analysis.verifier`) computes a fixpoint:
for every instruction, an abstract state (:class:`AbsState`) that
soundly describes every concrete machine state reaching it. A
:class:`ProofTable` exports that fixpoint — per-instruction invariants
plus the derived *facts* the JIT consumes (pointer region and offset
bounds for each load/store, nonzero-divisor proofs, resolved jump
targets, helper fds) — as a machine-checkable certificate.

:func:`check_certificate` independently re-validates a certificate
without re-running the verifier. Its trust argument:

* **structure** — own pass: non-empty DAG, all control transfers land
  forward and in range (termination and the JIT's forward-only
  code layout follow);
* **induction** — the claimed invariants are closed under single
  instruction steps: the entry state entails the certified state at
  instruction 0, and for every instruction, one application of the
  abstract transfer to its certified state *entails* the certified
  state of each successor (:meth:`AbsState.entails`, a pointwise
  weaker-or-equal test). No worklist, no widening, no merge policy is
  trusted — those only influenced *which* fixpoint the verifier found,
  not whether this one is valid;
* **obligations** — every fact is recomputed here from the certified
  states with :func:`derive_facts`' own bounds arithmetic and compared
  for exact equality, so a tampered ``elide`` bit or bound never
  reaches the JIT.

The single shared component is the transfer function itself (via
:func:`repro.analysis.verifier.transfer_step`), which is deterministic
by construction (variable-part ids derive from instruction indices).

Tampering with any single instruction's entry — claiming more packet
bytes, an initialized stack byte, a narrower scalar, a non-null map
value — breaks the induction step from its predecessors (or the entry
check at instruction 0) and is rejected.
"""

import hashlib

from repro.analysis.dataflow import (
    CTX_PTR,
    MAP_VALUE,
    PKT_PTR,
    SCALAR,
    STACK_PTR,
    STACK_SIZE,
    AbsState,
)
from repro.analysis.verifier import (
    CTX_SIZE,
    MAX_PROGRAM_LEN,
    VALID_HELPERS,
    VerifierError,
    transfer_step,
    verify_states,
)

CERT_VERSION = 1

_SIZES = {"b": 1, "h": 2, "w": 4, "dw": 8}

_DEREF_KINDS = frozenset((CTX_PTR, PKT_PTR, STACK_PTR, MAP_VALUE))


class CertificateError(Exception):
    """The certificate does not prove this program safe."""


def program_digest(program):
    """Canonical SHA-256 of an instruction list.

    Binds a certificate to one exact program: the checker refuses to
    apply facts proven about different code.
    """
    hasher = hashlib.sha256()
    for insn in program:
        hasher.update(
            "{} {} {} {} {}\n".format(insn.op, insn.dst, insn.src, insn.off, insn.imm).encode()
        )
    return hasher.hexdigest()


class ProofTable:
    """A verifier certificate: per-instruction invariants + derived facts."""

    __slots__ = ("digest", "states", "facts")

    def __init__(self, digest, states, facts):
        self.digest = digest
        self.states = states  # list[AbsState]
        self.facts = facts  # list[dict or None], parallel to the program

    def elision_stats(self):
        """Counts of run-time checks the facts allow the JIT to drop."""
        stats = {
            "mem_elided": 0,
            "mem_retained": 0,
            "div_elided": 0,
            "div_retained": 0,
            "insns": len(self.facts),
        }
        for fact in self.facts:
            if fact is None:
                continue
            if fact["type"] == "mem":
                stats["mem_elided" if fact["elide"] else "mem_retained"] += 1
            elif fact["type"] == "div":
                stats["div_elided" if fact["nonzero"] else "div_retained"] += 1
        return stats

    def to_jsonable(self):
        return {
            "version": CERT_VERSION,
            "digest": self.digest,
            "states": [state.to_jsonable() for state in self.states],
            "facts": self.facts,
            "stats": self.elision_stats(),
        }

    @classmethod
    def from_jsonable(cls, data):
        if data.get("version") != CERT_VERSION:
            raise CertificateError("unsupported certificate version {!r}".format(data.get("version")))
        states = [AbsState.from_jsonable(state) for state in data["states"]]
        return cls(data["digest"], states, list(data["facts"]))


# -- fact derivation (the checker's own bounds arithmetic) -----------------


def _map_value_size(maps, fd):
    if maps is None or fd is None:
        return None
    bpf_map = maps.get(fd)
    return None if bpf_map is None else bpf_map.value_size


def _mem_fact(index, insn, state, access, ptr_reg, size, maps):
    """Region + resolved bounds for one load/store; raises when the
    certified state cannot justify the access."""

    def err(message):
        raise CertificateError("insn {}: {}".format(index, message))

    ptr = state.regs[ptr_reg]
    kind = ptr.kind
    if kind not in _DEREF_KINDS:
        err("memory access through {}".format(kind))
    if ptr.off is None:
        err("pointer offset unknown; access cannot be bounded")
    var_lo = ptr.var.lo if ptr.var is not None else 0
    var_hi = ptr.var.hi if ptr.var is not None else 0
    lo = ptr.off + var_lo + insn.off
    hi = ptr.off + var_hi + insn.off + size
    elide = False
    if kind == CTX_PTR:
        if access == "store":
            err("store to read-only context")
        if ptr.var is not None:
            err("context access requires a constant offset")
        if lo < 0 or hi > CTX_SIZE:
            err("context access [{}, {}) out of bounds".format(lo, hi))
        elide = True
    elif kind == STACK_PTR:
        if ptr.var is not None:
            err("variable stack offset cannot be tracked")
        if lo < -STACK_SIZE or hi > 0:
            err("stack access [{}, {}) out of bounds".format(lo, hi))
        if access == "load":
            mask = ((1 << size) - 1) << (STACK_SIZE + lo)
            if state.stack_init & mask != mask:
                err("read of uninitialized stack bytes at r10{:+d}".format(lo))
        elide = True
    elif kind == PKT_PTR:
        if lo < 0:
            err("packet access [{}, {}) has a negative offset".format(lo, hi))
        if ptr.var is None:
            if hi > state.pkt_valid:
                err(
                    "packet access [{}, {}) exceeds the {} bytes proven on this path".format(
                        lo, hi, state.pkt_valid
                    )
                )
        else:
            checked = state.pkt_checked.get(ptr.vid)
            if not (
                (checked is not None and ptr.off + insn.off + size <= checked)
                or hi <= state.pkt_valid
            ):
                err(
                    "variable packet access [{}, {}) not covered by any data_end proof".format(
                        lo, hi
                    )
                )
        elide = True
    else:  # MAP_VALUE
        if lo < 0:
            err("negative map-value offset {}".format(lo))
        value_size = _map_value_size(maps, ptr.fd)
        if value_size is not None:
            if hi > value_size:
                err("map-value access [{}, {}) exceeds value size {}".format(lo, hi, value_size))
            elide = True
        # Unknown value size: the verifier admits the access, but it is
        # unproven — the JIT must keep the run-time guard.
    return {
        "type": "mem",
        "access": access,
        "ptr": ptr_reg,
        "size": size,
        "region": kind,
        "lo": lo,
        "hi": hi,
        "elide": elide,
    }


def _div_fact(insn, state, mode):
    """Nonzero-divisor proof. The VM checks the *full 64-bit* source
    register even for 32-bit division, so the proof must too."""
    if mode == "imm":
        nonzero = (insn.imm & ((1 << 64) - 1)) != 0
    else:
        src = state.regs[insn.src]
        if src.kind == SCALAR:
            nonzero = not src.val.contains(0)
        else:
            # Pointer divisors are bizarre but legal; keep the guard.
            nonzero = False
    return {"type": "div", "nonzero": nonzero}


def derive_facts(program, states, maps=None):
    """Per-instruction facts implied by the certified invariants.

    Pure and deterministic: the exporter calls it to build the
    certificate and the checker calls it again to confirm the stored
    facts match, so both sides share one definition of what is proven.
    """
    facts = []
    for index, insn in enumerate(program):
        state = states[index]
        base, _, mode = insn.op.partition(".")
        fact = None
        if base.startswith("ldx"):
            fact = _mem_fact(index, insn, state, "load", insn.src, _SIZES[base[3:]], maps)
        elif base.startswith("stx"):
            fact = _mem_fact(index, insn, state, "store", insn.dst, _SIZES[base[3:]], maps)
        elif base.startswith("st") and base != "st32":  # st{b,h,w,dw}
            fact = _mem_fact(index, insn, state, "store", insn.dst, _SIZES[base[2:]], maps)
        elif base in ("div", "mod", "div32", "mod32"):
            fact = _div_fact(insn, state, mode)
        elif base == "call":
            fd_val = state.regs[1]
            fd = fd_val.const if fd_val.kind == SCALAR else None
            fact = {"type": "call", "helper": insn.imm, "fd": fd}
        elif base == "ja" or (base.startswith("j") and base != "ja"):
            fact = {"type": "jump", "target": index + 1 + insn.off}
        elif base == "exit":
            fact = {"type": "exit"}
        facts.append(fact)
    return facts


# -- export / check --------------------------------------------------------


def export_certificate(program, maps=None):
    """Verify ``program`` and export the proof as a :class:`ProofTable`."""
    states = verify_states(program, maps)
    facts = derive_facts(program, states, maps)
    return ProofTable(program_digest(program), states, facts)


def _structural_check(program):
    """Own DAG pass: every control transfer lands strictly forward and
    inside the program; only ``exit`` terminates. Termination and the
    JIT's forward-only code layout both rest on this."""
    n = len(program)
    if n == 0:
        raise CertificateError("empty program")
    if n > MAX_PROGRAM_LEN:
        raise CertificateError("program too long ({} insns)".format(n))
    for index, insn in enumerate(program):
        base = insn.op.partition(".")[0]
        if base == "exit":
            continue
        if base == "call" and insn.imm not in VALID_HELPERS:
            raise CertificateError("insn {}: unknown helper {}".format(index, insn.imm))
        succs = [index + 1]
        if base == "ja":
            succs = [index + 1 + insn.off]
        elif base.startswith("j"):
            succs = [index + 1, index + 1 + insn.off]
        for succ in succs:
            if succ <= index:
                raise CertificateError("insn {}: backward control transfer to {}".format(index, succ))
            if succ >= n:
                raise CertificateError("insn {}: control leaves the program ({})".format(index, succ))


def check_certificate(program, cert, maps=None):
    """Re-validate ``cert`` against ``program``; raises
    :class:`CertificateError` unless every claim is justified.

    This is the JIT's entire trust base — a linear pass over the
    program, one abstract step per instruction.
    """
    if not isinstance(cert, ProofTable):
        raise CertificateError("not a ProofTable")
    if cert.digest != program_digest(program):
        raise CertificateError("certificate does not match this program")
    _structural_check(program)
    if len(cert.states) != len(program) or len(cert.facts) != len(program):
        raise CertificateError(
            "certificate covers {} instructions, program has {}".format(
                len(cert.states), len(program)
            )
        )
    for index, state in enumerate(cert.states):
        if not isinstance(state, AbsState):
            raise CertificateError("insn {}: missing certified state".format(index))
    # Induction base: the concrete entry state is described by states[0].
    if not AbsState().entails(cert.states[0]):
        raise CertificateError("entry state is not entailed by the certified invariant")
    # Induction step: invariants are closed under single transfers.
    for index in range(len(program)):
        try:
            outs = transfer_step(program, index, cert.states[index].copy(), maps)
        except VerifierError as exc:
            raise CertificateError(
                "certified state does not justify insn {}: {}".format(index, exc)
            )
        for succ, out in outs:
            # _structural_check proved succ is in range and forward.
            if not out.entails(cert.states[succ]):
                raise CertificateError(
                    "step {} -> {}: transfer output not entailed by the certified "
                    "invariant".format(index, succ)
                )
    # Obligations: stored facts must be exactly what the states prove.
    if derive_facts(program, cert.states, maps) != cert.facts:
        raise CertificateError("stored facts disagree with the certified states")
    return True
