"""Lint for discrete-event simulation processes.

The simulator owns time and randomness: every timestamp comes from
``sim.now`` / :mod:`repro.sim.clock` and every random draw from a named
:class:`repro.sim.rng.RngPool` stream, so experiments are deterministic
and reproducible. Code that reaches for the wall clock or the global
``random`` module silently breaks both. Generator processes must yield
:class:`repro.sim.core.Event` objects — yielding anything else kills
the process at run time with a :class:`SimulationError`.

Statically flagged:

* ``time.time()`` / ``monotonic()`` / ``perf_counter()`` / ``sleep()``
  and friends — wall-clock use bypassing the simulated clock
  (``wall-clock``);
* module-level ``random.*`` calls (``random.random()``,
  ``random.randint()``, ...) — the process-global RNG bypassing seeded
  streams; constructing private ``random.Random(seed)`` instances is
  allowed (``global-rng``);
* ``yield`` of a literal constant and bare ``yield`` inside generator
  functions — non-events a sim process would die on (``yield-non-event``).

A line may opt out with a ``# sim-lint: allow`` comment (e.g. harness
code legitimately measuring wall time).
"""

import ast
import os

from repro.analysis.report import PASS_SIM, Finding

PRAGMA = "sim-lint: allow"

#: time.<attr>() calls that read or spend wall-clock time.
WALLCLOCK_CALLS = frozenset(
    (
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "sleep",
    )
)

#: random.<attr> calls that are fine: private, seedable generators.
GLOBAL_RNG_ALLOWED = frozenset(("Random", "SystemRandom"))


def _pragma_lines(source):
    return {
        number
        for number, line in enumerate(source.splitlines(), start=1)
        if PRAGMA in line
    }


class _SimLintVisitor(ast.NodeVisitor):
    def __init__(self, filename, allowed_lines):
        self.filename = filename
        self.allowed = allowed_lines
        self.findings = []

    def _add(self, node, code, message):
        if node.lineno in self.allowed:
            return
        self.findings.append(Finding(PASS_SIM, self.filename, node.lineno, code, message))

    def visit_Call(self, node):
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            module, attr = func.value.id, func.attr
            if module == "time" and attr in WALLCLOCK_CALLS:
                self._add(
                    node,
                    "wall-clock",
                    "time.{}() bypasses the simulated clock; use sim.now / "
                    "repro.sim.clock".format(attr),
                )
            elif module == "random" and attr not in GLOBAL_RNG_ALLOWED:
                self._add(
                    node,
                    "global-rng",
                    "random.{}() uses the process-global RNG; draw from a "
                    "named repro.sim.rng stream".format(attr),
                )
        self.generic_visit(node)

    def _check_yields(self, function):
        # Walk this function's own body only; nested defs are separate
        # scopes and get their own visit_FunctionDef pass.
        stack = list(function.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.extend(ast.iter_child_nodes(node))
            if isinstance(node, ast.Yield):
                if node.value is None:
                    self._add(
                        node,
                        "yield-non-event",
                        "bare yield in a sim process yields None, not an Event",
                    )
                elif isinstance(node.value, ast.Constant):
                    self._add(
                        node,
                        "yield-non-event",
                        "yield of literal {!r}: sim processes must yield "
                        "Event objects".format(node.value.value),
                    )

    def visit_FunctionDef(self, node):
        self._check_yields(node)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef


def lint_source(source, filename):
    """Lint one file's source text; returns findings."""
    tree = ast.parse(source, filename=filename)
    visitor = _SimLintVisitor(filename, _pragma_lines(source))
    visitor.visit(tree)
    visitor.findings.sort(key=lambda f: f.line)
    return visitor.findings


def lint_tree(root=None):
    """Lint every ``.py`` file under ``root`` (default: the repro package)."""
    if root is None:
        import repro

        root = os.path.dirname(repro.__file__)
    findings = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            with open(path) as handle:
                findings.extend(lint_source(handle.read(), path))
    return findings
