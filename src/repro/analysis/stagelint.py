"""Static race lint for the fine-grained pipeline (paper §3.1, Table 5).

Connection state is partitioned across stages — the pre-processor owns
identification state, the protocol stage owns the TCP machine, the
post-processor owns the app interface — and only the *atomic* protocol
stage may mutate protocol state. Replicated stages (pre, post, GRO,
DMA) and one-shot extension modules must treat it as read-only; a write
from any of them is a data race the moment stages run on separate FPCs.

The lint is **interprocedural**: it builds a call graph over every
data-path module it covers and computes bottom-up read/write-set
summaries per function (memoized, with cycle detection), substituting
argument bindings at call sites. A store buried in a helper —
``statecache`` writeback, ``seqr`` delivery — is therefore attributed
to the *calling* stage through arbitrary call depth, and the resulting
finding carries the ``via`` call chain. Helpers themselves have no
stage identity (``ROLE_HELPER``): whether their writes are legal
depends on who calls them.

Ownership findings (``stage-race`` pass):

* writes to protocol-owned attributes outside ``ProtocolStage`` /
  :mod:`repro.flextoe.proto_logic` (``stage-writes-proto``);
* writes to the pre-processor partition anywhere in the data-path —
  it is installed by the control plane and immutable after
  (``stage-writes-pre``);
* writes to the post partition from stages other than the post stage
  (``stage-writes-post``);
* any connection-partition write from a ``DatapathModule.handle`` —
  modules get one-shot segment + metadata access only, never
  connection state (``module-writes-state``).

Atomicity findings (``atomicity`` pass, :func:`lint_atomicity`):
replicated stage instances of one flow group share their partition, so
a read-modify-write (``x += ...`` or ``x = f(x)``) is lost-update-racy
unless the field is declared in the ``atomic()`` registry of
:mod:`repro.flextoe.state` — the declaration asserts the field is a
commutative counter implemented with the NFP atomic-add engine (whose
latency :func:`repro.flextoe.state.atomic_add` charges in the sim).
Undeclared replicated RMWs are ``replicated-unatomic-rmw``; an
``atomic_add`` call naming an undeclared field is
``atomic-undeclared-add``.

Attribute ownership comes from the ``__slots__`` declarations in
:mod:`repro.flextoe.state`, parsed statically, so the lint needs no
imports of the code under analysis.
"""

import ast
import os

from repro.analysis.report import PASS_ATOMIC, PASS_STAGE, Finding

#: Partition accessor attributes on a ConnectionRecord.
PARTITIONS = ("pre", "proto", "post")

_STATE_CLASSES = {
    "PreprocState": "pre",
    "ProtocolState": "proto",
    "PostprocState": "post",
}

ROLE_PROTOCOL = "protocol"  # the atomic stage: may write proto state
ROLE_STAGE = "stage"  # replicated/read-only pipeline code
ROLE_MODULE = "module"  # one-shot extension modules
ROLE_PROTO_LOGIC = "proto-logic"  # pure functions called by the protocol stage
ROLE_HELPER = "helper"  # no stage identity; judged at the call site

#: Roles that are data-path entry points: their (direct + transitive)
#: writes are judged against the ownership rules.
_ENTRY_ROLES = frozenset((ROLE_PROTOCOL, ROLE_STAGE, ROLE_MODULE, ROLE_PROTO_LOGIC))

#: Longest call chain a summary entry is propagated through.
MAX_CHAIN_DEPTH = 8

_PARAM_PREFIX = "param:"


def _flextoe_path(name):
    import repro.flextoe

    return os.path.join(os.path.dirname(repro.flextoe.__file__), name)


def default_paths():
    """The data-path modules the race lint covers."""
    return [
        _flextoe_path("stages.py"),
        _flextoe_path("proto_logic.py"),
        _flextoe_path("module.py"),
        _flextoe_path("seqr.py"),
        _flextoe_path("statecache.py"),
        _flextoe_path("datapath.py"),
    ]


def partition_ownership(state_source=None):
    """Parse ``repro/flextoe/state.py`` field declarations into ownership
    sets.

    Partition classes declare their fields as a class-level string tuple:
    historically ``__slots__``, now ``SLAB_FIELDS`` (the slab-backed
    flyweights keep real slots empty and declare columns instead). Both
    spellings are parsed; underscore-prefixed names are implementation
    slots, not state fields. Returns ``{attr_name: partition}`` for every
    field of the three partition classes.
    """
    if state_source is None:
        with open(_flextoe_path("state.py")) as handle:
            state_source = handle.read()
    ownership = {}
    tree = ast.parse(state_source)
    for node in tree.body:
        if not isinstance(node, ast.ClassDef) or node.name not in _STATE_CLASSES:
            continue
        partition = _STATE_CLASSES[node.name]
        for statement in node.body:
            if not isinstance(statement, ast.Assign):
                continue
            targets = [t.id for t in statement.targets if isinstance(t, ast.Name)]
            if "__slots__" not in targets and "SLAB_FIELDS" not in targets:
                continue
            if isinstance(statement.value, (ast.Tuple, ast.List)):
                for element in statement.value.elts:
                    if (
                        isinstance(element, ast.Constant)
                        and isinstance(element.value, str)
                        and not element.value.startswith("_")
                    ):
                        ownership[element.value] = partition
    return ownership


def atomic_registry(state_source=None):
    """Parse the ``atomic(partition, field, ...)`` declarations in
    ``repro/flextoe/state.py``.

    Returns ``{field: partition}`` for every declared commutative
    atomic-add counter.
    """
    if state_source is None:
        with open(_flextoe_path("state.py")) as handle:
            state_source = handle.read()
    registry = {}
    tree = ast.parse(state_source)
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
            continue
        if node.func.id != "atomic":
            continue
        literals = [
            a.value for a in node.args if isinstance(a, ast.Constant) and isinstance(a.value, str)
        ]
        if len(literals) >= 2:
            partition = literals[0]
            for field in literals[1:]:
                registry[field] = partition
    return registry


def _role_of_class(node):
    method_names = {n.name for n in node.body if isinstance(n, ast.FunctionDef)}
    if "Protocol" in node.name:
        return ROLE_PROTOCOL
    if "handle" in method_names and "program" not in method_names:
        return ROLE_MODULE
    if node.name.endswith("Stage") or any(
        m == "program" or m.endswith("_program") for m in method_names
    ):
        return ROLE_STAGE
    return ROLE_HELPER


def _partition_of_value(node):
    """Partition tag if ``node`` is an expression ending in ``.pre/.proto/.post``."""
    if isinstance(node, ast.Attribute) and node.attr in PARTITIONS:
        return node.attr
    return None


class FunctionInfo:
    """One function's accesses, call sites, and identity."""

    __slots__ = (
        "qualname",
        "name",
        "class_name",
        "role",
        "filename",
        "params",
        "reads",
        "reads_at",
        "writes",
        "calls",
    )

    def __init__(self, qualname, name, class_name, role, filename, params):
        self.qualname = qualname
        self.name = name
        self.class_name = class_name
        self.role = role
        self.filename = filename
        self.params = params  # positional parameter names, 'self' excluded
        self.reads = set()  # (token, attr)
        self.reads_at = set()  # (token, attr, lineno) — hblint needs sites
        self.writes = set()  # (token, attr, lineno, rmw)
        self.calls = []  # (lineno, callee name, arg tokens, is_self_call)


class _FunctionAccess(ast.NodeVisitor):
    """Collects partition/parameter reads, writes, and call sites inside
    one function body.

    Tokens are either a partition name (``pre``/``proto``/``post``) or
    ``param:<name>`` for stores through a formal parameter, resolved to
    the caller's binding during summarization.
    """

    def __init__(self, ownership, role, state_params=(), param_names=()):
        self.ownership = ownership
        self.role = role
        self.reads = set()  # (token, attr)
        self.reads_at = set()  # (token, attr, lineno)
        self.writes = set()  # (token, attr, lineno, rmw)
        self.calls = []  # (lineno, name, args, is_self_call)
        # Local names currently aliasing a partition object or parameter.
        self.aliases = {}
        for param in param_names:
            if param not in ("self", "thread"):
                self.aliases[param] = _PARAM_PREFIX + param
        # Codebase convention: a parameter named ``state`` is the
        # connection's ProtocolState (see ProtocolStage._process_*).
        for param in state_params:
            self.aliases[param] = "proto"

    def _token_of_value(self, node):
        """Token of the object an attribute access dereferences."""
        if isinstance(node, ast.Name):
            return self.aliases.get(node.id)
        return _partition_of_value(node)

    def _record(self, target, store, rmw=False):
        if not isinstance(target, ast.Attribute):
            return
        token = self._token_of_value(target.value)
        if token is None:
            return
        if store:
            self.writes.add((token, target.attr, target.lineno, rmw))
        else:
            self.reads.add((token, target.attr))
            self.reads_at.add((token, target.attr, target.lineno))

    def _reads_back(self, value, token, attr):
        """Does ``value`` read ``token.attr`` (an in-place update)?"""
        for node in ast.walk(value):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and node.attr == attr
                and self._token_of_value(node.value) == token
            ):
                return True
        return False

    def visit_Assign(self, node):
        # visit (not generic_visit): the value may itself be a partition
        # attribute read (group = record.pre.flow_group).
        self.visit(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                # Track/clear aliases: state = record.proto, post = record.post
                self.aliases.pop(target.id, None)
                token = self._token_of_value(node.value)
                if token is not None:
                    self.aliases[target.id] = token
            elif isinstance(target, ast.Attribute):
                token = self._token_of_value(target.value)
                rmw = token is not None and self._reads_back(node.value, token, target.attr)
                self._record(target, store=True, rmw=rmw)
                self.generic_visit(target.value)
            else:
                self._record(target, store=True)

    def visit_AugAssign(self, node):
        self.visit(node.value)
        self._record(node.target, store=True, rmw=True)
        if isinstance(node.target, ast.Attribute):
            self.generic_visit(node.target.value)

    def visit_Attribute(self, node):
        if isinstance(node.ctx, ast.Load):
            self._record(node, store=False)
        elif isinstance(node.ctx, ast.Store):
            self._record(node, store=True)
        self.generic_visit(node)

    def visit_Call(self, node):
        func = node.func
        name = None
        is_self_call = False
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
            is_self_call = isinstance(func.value, ast.Name) and func.value.id == "self"
        if name is not None:
            args = []
            for arg in node.args:
                token = self._token_of_value(arg)
                if token is None and isinstance(arg, ast.Constant):
                    token = ("lit", arg.value)
                args.append(token)
            self.calls.append((node.lineno, name, tuple(args), is_self_call))
        self.generic_visit(node)


def _iter_functions(class_node):
    for node in class_node.body:
        if isinstance(node, ast.FunctionDef):
            yield node


def _collect_function(function, role, ownership, qualname, class_name, filename):
    positional = [a.arg for a in function.args.args if a.arg != "self"]
    state_params = [p for p in positional if p == "state"]
    collector = _FunctionAccess(
        ownership, role, state_params=state_params, param_names=positional
    )
    for statement in function.body:
        collector.visit(statement)
    info = FunctionInfo(qualname, function.name, class_name, role, filename, positional)
    info.reads = collector.reads
    info.reads_at = collector.reads_at
    info.writes = collector.writes
    info.calls = collector.calls
    return info


def build_program(sources, ownership=None):
    """Parse ``[(source, filename), ...]`` into ``{qualname: FunctionInfo}``."""
    if ownership is None:
        ownership = partition_ownership()
    program = {}
    for source, filename in sources:
        tree = ast.parse(source, filename=filename)
        is_proto_logic = os.path.basename(filename) == "proto_logic.py"
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                role = _role_of_class(node)
                for function in _iter_functions(node):
                    qualname = "{}.{}".format(node.name, function.name)
                    program[qualname] = _collect_function(
                        function, role, ownership, qualname, node.name, filename
                    )
            elif isinstance(node, ast.FunctionDef):
                role = ROLE_PROTO_LOGIC if is_proto_logic else ROLE_HELPER
                program[node.name] = _collect_function(
                    node, role, ownership, node.name, None, filename
                )
    return program


def _resolve_call(program, caller, name, is_self_call):
    """Candidate callees for one call site, by method/function name.

    ``self.m()`` prefers a method of the caller's own class; otherwise
    every parsed function or method with that name is a candidate (the
    lint has no type information, so it over-approximates).
    """
    if is_self_call and caller.class_name is not None:
        own = program.get("{}.{}".format(caller.class_name, name))
        if own is not None:
            return [own]
    matches = [info for info in program.values() if info.name == name]
    return matches


def summarize(program):
    """Bottom-up transitive write summaries per function.

    Returns ``({qualname: frozenset(entry)}, cycle_qualnames)`` where an
    entry is ``(token, attr, lineno, filename, rmw, chain)`` — ``chain``
    the tuple of callee qualnames the write was inlined through (empty
    for the function's own writes). Summaries are memoized per callee;
    recursion is cut at the back edge (cycle members still contribute
    every write reachable without re-entering the cycle).
    """
    memo = {}
    on_stack = []
    cycles = set()

    def summary(qualname):
        cached = memo.get(qualname)
        if cached is not None:
            return cached
        if qualname in on_stack:
            cycles.add(qualname)
            return frozenset()
        info = program[qualname]
        on_stack.append(qualname)
        try:
            entries = {
                (token, attr, lineno, info.filename, rmw, ())
                for token, attr, lineno, rmw in info.writes
            }
            for _lineno, name, args, is_self_call in info.calls:
                for callee in _resolve_call(program, info, name, is_self_call):
                    if callee.qualname == qualname:
                        cycles.add(qualname)
                        continue
                    for token, attr, wline, wfile, rmw, chain in summary(callee.qualname):
                        if len(chain) >= MAX_CHAIN_DEPTH:
                            continue
                        if isinstance(token, str) and token.startswith(_PARAM_PREFIX):
                            # Substitute the callee's formal with the
                            # caller-side binding at this call site.
                            formal = token[len(_PARAM_PREFIX):]
                            if formal not in callee.params:
                                continue
                            position = callee.params.index(formal)
                            token = args[position] if position < len(args) else None
                        if not isinstance(token, str):
                            continue  # literal or untracked binding
                        entries.add((token, attr, wline, wfile, rmw, (callee.qualname,) + chain))
        finally:
            on_stack.pop()
        result = frozenset(entries)
        memo[qualname] = result
        return result

    for qualname in program:
        summary(qualname)
    return memo, cycles


def summarize_reads(program):
    """Bottom-up transitive *read* summaries per function.

    Mirrors :func:`summarize` for load sites: returns
    ``{qualname: frozenset((token, attr, lineno, filename, chain))}``
    with the same param-binding substitution and cycle cuts. The
    happens-before lint (:mod:`repro.analysis.hblint`) needs read
    footprints — a stale read through a helper is as racy as a write.
    """
    memo = {}
    on_stack = []

    def summary(qualname):
        cached = memo.get(qualname)
        if cached is not None:
            return cached
        if qualname in on_stack:
            return frozenset()
        info = program[qualname]
        on_stack.append(qualname)
        try:
            entries = {
                (token, attr, lineno, info.filename, ())
                for token, attr, lineno in info.reads_at
            }
            for _lineno, name, args, is_self_call in info.calls:
                for callee in _resolve_call(program, info, name, is_self_call):
                    if callee.qualname == qualname:
                        continue
                    for token, attr, rline, rfile, chain in summary(callee.qualname):
                        if len(chain) >= MAX_CHAIN_DEPTH:
                            continue
                        if isinstance(token, str) and token.startswith(_PARAM_PREFIX):
                            formal = token[len(_PARAM_PREFIX):]
                            if formal not in callee.params:
                                continue
                            position = callee.params.index(formal)
                            token = args[position] if position < len(args) else None
                        if not isinstance(token, str):
                            continue
                        entries.add((token, attr, rline, rfile, (callee.qualname,) + chain))
        finally:
            on_stack.pop()
        result = frozenset(entries)
        memo[qualname] = result
        return result

    for qualname in program:
        summary(qualname)
    return memo


def _ownership_rule(qualname, role, class_name, partition, attr):
    """(code, message) when a write violates partition ownership."""
    if role == ROLE_MODULE:
        # Modules never touch connection state, whichever partition.
        return (
            "module-writes-state",
            "{} writes connection state '{}': modules get one-shot "
            "segment+metadata access only (paper §3.3)".format(qualname, attr),
        )
    if partition == "proto" and role not in (ROLE_PROTOCOL, ROLE_PROTO_LOGIC):
        return (
            "stage-writes-proto",
            "{} writes protocol-owned state '{}': only the atomic "
            "ProtocolStage may mutate the TCP machine".format(qualname, attr),
        )
    if partition == "pre":
        return (
            "stage-writes-pre",
            "{} writes pre-processor state '{}': the identification "
            "partition is control-plane-installed and immutable".format(qualname, attr),
        )
    if partition == "post" and not (
        role == ROLE_STAGE and class_name is not None and "Post" in class_name
    ):
        return (
            "stage-writes-post",
            "{} writes post-processor state '{}': only the post "
            "stage owns the app-interface partition".format(qualname, attr),
        )
    return None


def _direct_violations(info, ownership):
    """Findings for one function's own partition writes."""
    findings = []
    flagged = set()  # (filename, lineno, partition, attr) judged illegal here
    for token, attr, lineno, _rmw in sorted(info.writes, key=lambda w: (w[2], w[1])):
        if not isinstance(token, str) or token.startswith(_PARAM_PREFIX):
            continue
        partition = token
        if ownership and ownership.get(attr) != partition:
            findings.append(
                Finding(
                    PASS_STAGE,
                    info.filename,
                    lineno,
                    "unknown-state-attr",
                    "{} writes '{}' which is not a declared slot of the "
                    "{} partition".format(info.qualname, attr, partition),
                )
            )
            flagged.add((info.filename, lineno, partition, attr))
            continue
        if info.role not in _ENTRY_ROLES:
            continue  # helpers are judged at their call sites
        rule = _ownership_rule(info.qualname, info.role, info.class_name, partition, attr)
        if rule is not None:
            code, message = rule
            findings.append(Finding(PASS_STAGE, info.filename, lineno, code, message))
            flagged.add((info.filename, lineno, partition, attr))
    return findings, flagged


def _transitive_violations(program, summaries, ownership, flagged):
    """Findings for writes reaching an entry-role function via calls.

    A write already judged illegal at the function that performs it
    (``flagged``) is not re-reported for every caller; what remains are
    stores that are only illegal because of *who* reached them.
    """
    findings = []
    for qualname, info in program.items():
        if info.role not in _ENTRY_ROLES:
            continue
        best = {}  # (filename, lineno, partition, attr, code) -> shortest chain entry
        for token, attr, wline, wfile, _rmw, chain in summaries[qualname]:
            if not chain or not isinstance(token, str) or token.startswith(_PARAM_PREFIX):
                continue
            partition = token
            if partition not in PARTITIONS:
                continue
            if (wfile, wline, partition, attr) in flagged:
                continue
            if ownership and ownership.get(attr) != partition:
                continue  # unknown attrs are reported at the writer
            rule = _ownership_rule(info.qualname, info.role, info.class_name, partition, attr)
            if rule is None:
                continue
            key = (wfile, wline, partition, attr, rule[0])
            if key not in best or len(chain) < len(best[key][1]):
                best[key] = (rule, chain)
        for (wfile, wline, _partition, _attr, _code), (rule, chain) in sorted(
            best.items(), key=lambda item: (item[0][0], item[0][1], item[0][4])
        ):
            code, message = rule
            findings.append(
                Finding(
                    PASS_STAGE,
                    wfile,
                    wline,
                    code,
                    "{} via {}".format(message, " -> ".join(chain)),
                    via=(qualname,) + chain,
                )
            )
    return findings


def extract_access_sets(source, filename, ownership=None):
    """Per-function partition read/write sets (compat view).

    Returns ``{qualname: {"role": role, "reads": set, "writes": set}}``
    where set members are ``"partition.attr"`` strings; parameter-token
    accesses are excluded (they have no partition until a call site
    binds them).
    """
    if ownership is None:
        ownership = partition_ownership()
    program = build_program([(source, filename)], ownership)
    access = {}
    for qualname, info in program.items():
        access[qualname] = {
            "role": info.role,
            "reads": {
                "{}.{}".format(t, a)
                for t, a in info.reads
                if isinstance(t, str) and t in PARTITIONS
            },
            "writes": {
                "{}.{}".format(t, a)
                for t, a, _l, _r in info.writes
                if isinstance(t, str) and t in PARTITIONS
            },
            "_raw_writes": {
                (t, a, l) for t, a, l, _r in info.writes if isinstance(t, str) and t in PARTITIONS
            },
        }
    return access


def lint_program(program, ownership):
    """Ownership findings (direct + summary-attributed) for a program."""
    summaries, _cycles = summarize(program)
    findings = []
    flagged = set()
    for info in program.values():
        direct, direct_flagged = _direct_violations(info, ownership)
        findings.extend(direct)
        flagged |= direct_flagged
    findings.extend(_transitive_violations(program, summaries, ownership, flagged))
    findings.sort(key=lambda f: (f.path, f.line, f.code))
    return findings


def lint_source(source, filename, ownership=None):
    """Lint one module's source; returns (access_sets, findings)."""
    if ownership is None:
        ownership = partition_ownership()
    access = extract_access_sets(source, filename, ownership)
    findings = lint_program(build_program([(source, filename)], ownership), ownership)
    return access, findings


def _read_sources(paths):
    sources = []
    for path in paths:
        with open(path) as handle:
            sources.append((handle.read(), path))
    return sources


def lint_stages(paths=None, ownership=None):
    """Run the race lint over the data-path modules; returns findings."""
    if ownership is None:
        ownership = partition_ownership()
    program = build_program(_read_sources(paths or default_paths()), ownership)
    return lint_program(program, ownership)


# -- atomicity of replicated-state writes ---------------------------------


def lint_atomicity(paths=None, ownership=None, registry=None, state_source=None):
    """Classify partition writes reachable from replicated stages.

    Replicated stage instances of a flow group share their partition
    concurrently, so any read-modify-write they perform — directly or
    through helpers — must be a declared commutative atomic-add counter
    (the ``atomic()`` registry in :mod:`repro.flextoe.state`); anything
    else is a lost-update race on hardware (``replicated-unatomic-rmw``).
    ``atomic_add`` calls naming undeclared fields are flagged too
    (``atomic-undeclared-add``).
    """
    if ownership is None:
        ownership = partition_ownership(state_source)
    if registry is None:
        registry = atomic_registry(state_source)
    program = build_program(_read_sources(paths or default_paths()), ownership)
    return lint_atomicity_program(program, ownership, registry)


def lint_atomicity_program(program, ownership, registry):
    summaries, _cycles = summarize(program)
    findings = []
    seen = set()
    for qualname, info in program.items():
        # Only replicated stages race against their own instances; the
        # protocol stage is serialized per flow group and modules are
        # already barred from state entirely.
        if info.role != ROLE_STAGE:
            continue
        for token, attr, wline, wfile, rmw, chain in sorted(
            summaries[qualname], key=lambda e: (e[3], e[2], str(e[0]))
        ):
            if not rmw or token not in PARTITIONS:
                continue
            if registry.get(attr) == token:
                continue  # declared commutative atomic-add counter
            key = (wfile, wline, token, attr)
            if key in seen:
                continue
            seen.add(key)
            writer = chain[-1] if chain else qualname
            via = (qualname,) + chain if chain else ()
            findings.append(
                Finding(
                    PASS_ATOMIC,
                    wfile,
                    wline,
                    "replicated-unatomic-rmw",
                    "{} read-modify-writes {}.{} from a replicated stage: "
                    "concurrent replicas lose updates; declare it atomic() "
                    "or aggregate per-replica".format(writer, token, attr),
                    via=via,
                )
            )
        # atomic_add(obj, "field", ...) must name a declared field.
        for lineno, name, args, _self_call in info.calls:
            if name != "atomic_add" or len(args) < 2:
                continue
            field = args[1]
            if not (isinstance(field, tuple) and field[0] == "lit" and isinstance(field[1], str)):
                continue
            if field[1] not in registry:
                findings.append(
                    Finding(
                        PASS_ATOMIC,
                        info.filename,
                        lineno,
                        "atomic-undeclared-add",
                        "{} calls atomic_add on '{}' which is not in the "
                        "atomic() registry of repro.flextoe.state".format(qualname, field[1]),
                    )
                )
    findings.sort(key=lambda f: (f.path, f.line, f.code))
    return findings
