"""Static race lint for the fine-grained pipeline (paper §3.1, Table 5).

Connection state is partitioned across stages — the pre-processor owns
identification state, the protocol stage owns the TCP machine, the
post-processor owns the app interface — and only the *atomic* protocol
stage may mutate protocol state. Replicated stages (pre, post, GRO,
DMA) and one-shot extension modules must treat it as read-only; a write
from any of them is a data race the moment stages run on separate FPCs.

This pass extracts per-stage read/write sets of connection-state
attributes from the AST and flags:

* writes to protocol-owned attributes outside ``ProtocolStage`` /
  :mod:`repro.flextoe.proto_logic` (``stage-writes-proto``);
* writes to the pre-processor partition anywhere in the data-path —
  it is installed by the control plane and immutable after
  (``stage-writes-pre``);
* writes to the post partition from stages other than the post stage
  (``stage-writes-post``);
* any connection-partition write from a ``DatapathModule.handle`` —
  modules get one-shot segment + metadata access only, never
  connection state (``module-writes-state``).

Attribute ownership comes from the ``__slots__`` declarations in
:mod:`repro.flextoe.state`, parsed statically, so the lint needs no
imports of the code under analysis.
"""

import ast
import os

from repro.analysis.report import PASS_STAGE, Finding

#: Partition accessor attributes on a ConnectionRecord.
PARTITIONS = ("pre", "proto", "post")

_STATE_CLASSES = {
    "PreprocState": "pre",
    "ProtocolState": "proto",
    "PostprocState": "post",
}

ROLE_PROTOCOL = "protocol"  # the atomic stage: may write proto state
ROLE_STAGE = "stage"  # replicated/read-only pipeline code
ROLE_MODULE = "module"  # one-shot extension modules
ROLE_PROTO_LOGIC = "proto-logic"  # pure functions called by the protocol stage


def _flextoe_path(name):
    import repro.flextoe

    return os.path.join(os.path.dirname(repro.flextoe.__file__), name)


def default_paths():
    """The data-path modules the race lint covers."""
    return [
        _flextoe_path("stages.py"),
        _flextoe_path("proto_logic.py"),
        _flextoe_path("module.py"),
        _flextoe_path("seqr.py"),
    ]


def partition_ownership(state_source=None):
    """Parse ``repro/flextoe/state.py`` ``__slots__`` into ownership sets.

    Returns ``{attr_name: partition}`` for every slot of the three
    partition classes.
    """
    if state_source is None:
        with open(_flextoe_path("state.py")) as handle:
            state_source = handle.read()
    ownership = {}
    tree = ast.parse(state_source)
    for node in tree.body:
        if not isinstance(node, ast.ClassDef) or node.name not in _STATE_CLASSES:
            continue
        partition = _STATE_CLASSES[node.name]
        for statement in node.body:
            if not isinstance(statement, ast.Assign):
                continue
            targets = [t.id for t in statement.targets if isinstance(t, ast.Name)]
            if "__slots__" not in targets:
                continue
            if isinstance(statement.value, (ast.Tuple, ast.List)):
                for element in statement.value.elts:
                    if isinstance(element, ast.Constant) and isinstance(element.value, str):
                        ownership[element.value] = partition
    return ownership


def _role_of_class(node):
    method_names = {n.name for n in node.body if isinstance(n, ast.FunctionDef)}
    if "Protocol" in node.name:
        return ROLE_PROTOCOL
    if "handle" in method_names and "program" not in method_names:
        return ROLE_MODULE
    return ROLE_STAGE


def _partition_of_value(node):
    """Partition tag if ``node`` is an expression ending in ``.pre/.proto/.post``."""
    if isinstance(node, ast.Attribute) and node.attr in PARTITIONS:
        return node.attr
    return None


class _FunctionAccess(ast.NodeVisitor):
    """Collects partition reads/writes inside one function body."""

    def __init__(self, ownership, role, self_partition=None, state_params=()):
        self.ownership = ownership
        self.role = role
        self.reads = set()  # (partition, attr)
        self.writes = set()  # (partition, attr, lineno)
        # Local names currently aliasing a partition object.
        self.aliases = {}
        for param in state_params:
            self.aliases[param] = "proto"
        self.self_partition = self_partition

    def _base_partition(self, node):
        """Partition of the object an attribute access dereferences."""
        if isinstance(node, ast.Name):
            return self.aliases.get(node.id)
        return _partition_of_value(node)

    def _record(self, target, store):
        if not isinstance(target, ast.Attribute):
            return
        partition = self._base_partition(target.value)
        if partition is None:
            return
        if store:
            self.writes.add((partition, target.attr, target.lineno))
        else:
            self.reads.add((partition, target.attr))

    def visit_Assign(self, node):
        # visit (not generic_visit): the value may itself be a partition
        # attribute read (group = record.pre.flow_group).
        self.visit(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                # Track/clear aliases: state = record.proto, post = record.post
                self.aliases.pop(target.id, None)
                partition = _partition_of_value(node.value)
                if partition is not None:
                    self.aliases[target.id] = partition
            else:
                self._record(target, store=True)
                if isinstance(target, ast.Attribute):
                    self.generic_visit(target.value)

    def visit_AugAssign(self, node):
        self.visit(node.value)
        self._record(node.target, store=True)
        if isinstance(node.target, ast.Attribute):
            self.generic_visit(node.target.value)

    def visit_Attribute(self, node):
        if isinstance(node.ctx, ast.Load):
            self._record(node, store=False)
        elif isinstance(node.ctx, ast.Store):
            self._record(node, store=True)
        self.generic_visit(node)


def _iter_functions(class_node):
    for node in class_node.body:
        if isinstance(node, ast.FunctionDef):
            yield node


def extract_access_sets(source, filename, ownership=None):
    """Per-function partition read/write sets.

    Returns ``{qualname: {"role": role, "reads": set, "writes": set}}``
    where set members are ``"partition.attr"`` strings.
    """
    if ownership is None:
        ownership = partition_ownership()
    tree = ast.parse(source, filename=filename)
    is_proto_logic = os.path.basename(filename) == "proto_logic.py"
    access = {}
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            role = _role_of_class(node)
            for function in _iter_functions(node):
                # Codebase convention: a parameter named ``state`` is the
                # connection's ProtocolState (see ProtocolStage._process_*).
                params = [a.arg for a in function.args.args if a.arg == "state"]
                collector = _FunctionAccess(ownership, role, state_params=params)
                for statement in function.body:
                    collector.visit(statement)
                access["{}.{}".format(node.name, function.name)] = {
                    "role": role,
                    "reads": {"{}.{}".format(p, a) for p, a in collector.reads},
                    "writes": {"{}.{}".format(p, a) for p, a, _ in collector.writes},
                    "_raw_writes": collector.writes,
                }
        elif isinstance(node, ast.FunctionDef) and is_proto_logic:
            # proto_logic convention: the mutable ProtocolState parameter
            # is named ``state``.
            params = [a.arg for a in node.args.args if a.arg == "state"]
            collector = _FunctionAccess(ownership, ROLE_PROTO_LOGIC, state_params=params)
            for statement in node.body:
                collector.visit(statement)
            access[node.name] = {
                "role": ROLE_PROTO_LOGIC,
                "reads": {"{}.{}".format(p, a) for p, a in collector.reads},
                "writes": {"{}.{}".format(p, a) for p, a, _ in collector.writes},
                "_raw_writes": collector.writes,
            }
    return access


def _violations_for(qualname, info, filename, ownership):
    findings = []
    role = info["role"]
    class_name = qualname.split(".")[0]
    for partition, attr, lineno in info["_raw_writes"]:
        code = None
        if ownership and ownership.get(attr) != partition:
            findings.append(
                Finding(
                    PASS_STAGE,
                    filename,
                    lineno,
                    "unknown-state-attr",
                    "{} writes '{}' which is not a declared slot of the "
                    "{} partition".format(qualname, attr, partition),
                )
            )
            continue
        if role == ROLE_MODULE:
            # Modules never touch connection state, whichever partition.
            code = "module-writes-state"
            message = (
                "{} writes connection state '{}': modules get one-shot "
                "segment+metadata access only (paper §3.3)".format(qualname, attr)
            )
        elif partition == "proto" and role not in (ROLE_PROTOCOL, ROLE_PROTO_LOGIC):
            code = "stage-writes-proto"
            message = (
                "{} writes protocol-owned state '{}': only the atomic "
                "ProtocolStage may mutate the TCP machine".format(qualname, attr)
            )
        elif partition == "pre":
            code = "stage-writes-pre"
            message = (
                "{} writes pre-processor state '{}': the identification "
                "partition is control-plane-installed and immutable".format(qualname, attr)
            )
        elif partition == "post" and not (role == ROLE_STAGE and "Post" in class_name):
            code = "stage-writes-post"
            message = (
                "{} writes post-processor state '{}': only the post "
                "stage owns the app-interface partition".format(qualname, attr)
            )
        if code is not None:
            findings.append(Finding(PASS_STAGE, filename, lineno, code, message))
    return findings


def lint_source(source, filename, ownership=None):
    """Lint one module's source; returns (access_sets, findings)."""
    if ownership is None:
        ownership = partition_ownership()
    access = extract_access_sets(source, filename, ownership)
    findings = []
    for qualname, info in access.items():
        findings.extend(_violations_for(qualname, info, filename, ownership))
    findings.sort(key=lambda f: (f.path, f.line))
    return access, findings


def lint_stages(paths=None, ownership=None):
    """Run the race lint over the data-path modules; returns findings."""
    if ownership is None:
        ownership = partition_ownership()
    findings = []
    for path in paths or default_paths():
        with open(path) as handle:
            source = handle.read()
        findings.extend(lint_source(source, path, ownership)[1])
    return findings
