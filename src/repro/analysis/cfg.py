"""Control-flow graphs over XDP VM programs.

A program (list of :class:`repro.xdp.vm.Insn`) is partitioned into
basic blocks at jump targets and after terminators; the verifier's
worklist runs over per-instruction successors, while the block view
supports unreachable-code reporting and tests.

The CFG builder is purely structural: it does not judge whether targets
are sane (the verifier's pre-pass does), it only refuses to build edges
that leave the program, reporting them as ``None`` successors.
"""

JUMP_BASES = frozenset(
    ("jeq", "jne", "jgt", "jge", "jlt", "jle", "jset", "jsgt", "jsge", "jslt", "jsle")
)


def insn_base(insn):
    """Mnemonic family of an instruction (``jeq.imm`` -> ``jeq``)."""
    return insn.op.partition(".")[0]


def insn_successors(program, index):
    """Indices control may flow to after ``program[index]``.

    Fallthrough comes first. Successors outside ``[0, len(program))``
    are included as-is so callers can detect fall-off-the-end targets.
    """
    insn = program[index]
    base = insn_base(insn)
    if base == "exit":
        return []
    if base == "ja":
        return [index + 1 + insn.off]
    if base in JUMP_BASES:
        return [index + 1, index + 1 + insn.off]
    return [index + 1]


class BasicBlock:
    """A maximal straight-line run of instructions."""

    __slots__ = ("index", "start", "end", "successors")

    def __init__(self, index, start, end):
        self.index = index
        self.start = start  # first instruction index
        self.end = end  # one past the last instruction index
        self.successors = []  # block indices; None marks an edge leaving the program

    @property
    def terminator(self):
        return self.end - 1

    def __repr__(self):
        return "<block {} [{}:{}) -> {}>".format(self.index, self.start, self.end, self.successors)


class Cfg:
    """Basic blocks plus entry/reachability queries."""

    def __init__(self, program, blocks, block_of):
        self.program = program
        self.blocks = blocks
        self._block_of = block_of  # instruction index -> block index

    def block_at(self, insn_index):
        """The block containing instruction ``insn_index``."""
        return self.blocks[self._block_of[insn_index]]

    def reachable_blocks(self):
        """Block indices reachable from the entry block."""
        seen = set()
        stack = [0] if self.blocks else []
        while stack:
            index = stack.pop()
            if index in seen or index is None:
                continue
            seen.add(index)
            for succ in self.blocks[index].successors:
                if succ is not None and succ not in seen:
                    stack.append(succ)
        return seen

    def unreachable_blocks(self):
        reachable = self.reachable_blocks()
        return [block for block in self.blocks if block.index not in reachable]


def build_cfg(program):
    """Partition ``program`` into basic blocks and wire successor edges."""
    n = len(program)
    if n == 0:
        return Cfg(program, [], [])
    leaders = {0}
    for index in range(n):
        succs = insn_successors(program, index)
        base = insn_base(program[index])
        if base == "exit" or base == "ja" or base in JUMP_BASES:
            # Instruction ends a block: its in-range successors lead blocks.
            for succ in succs:
                if 0 <= succ < n:
                    leaders.add(succ)
            if index + 1 < n:
                leaders.add(index + 1)
    ordered = sorted(leaders)
    block_of = [0] * n
    blocks = []
    for block_index, start in enumerate(ordered):
        end = ordered[block_index + 1] if block_index + 1 < len(ordered) else n
        block = BasicBlock(block_index, start, end)
        blocks.append(block)
        for insn_index in range(start, end):
            block_of[insn_index] = block_index
    leader_to_block = {block.start: block.index for block in blocks}
    for block in blocks:
        for succ in insn_successors(program, block.terminator):
            block.successors.append(leader_to_block.get(succ) if 0 <= succ < n else None)
    return Cfg(program, blocks, block_of)
