"""Data-path failure recovery: watchdog, shadow snapshot, re-offload.

FlexTOE's split — host control plane owns everything exceptional, NIC
data path owns the common case — only pays off if the host can *recover*
the data path when it dies. This module adds the three pieces:

* **Watchdog** — FPC stage groups publish heartbeat sequence numbers
  into CTM/EMEM (:class:`repro.flextoe.state.HeartbeatBoard`); the
  :class:`RecoveryManager` samples the board over MMIO on its own tick
  and declares the data path failed after ``watchdog_miss_threshold``
  consecutive samples with no advancing beat.

* **Connection-state shadow + re-offload** — the control plane cannot
  read a dead chip, so every connection's recoverable state must be
  derivable from host-visible memory. :class:`ConnShadow` mirrors each
  flow from the context-queue traffic itself (taps on
  :class:`~repro.flextoe.ctxq.ContextQueuePair`): posted/acked TX bytes,
  delivered/consumed RX bytes, FIN posts and peer-FIN notifications. A
  periodic NIC->host state DMA adds staleness-bounded *hints*
  (``remote_win``, ``next_ts``) that improve convergence but are never
  load-bearing. On failure the manager quiesces, reboots the datapath
  (host shared memory — queue pairs, payload buffers, control ring —
  survives), reconstructs each flow's
  :class:`~repro.flextoe.state.ProtocolState` from its shadow, and
  re-offloads every connection; the peer sees only a retransmission gap.

  Soundness leans on the data path's *write-ahead rule* (see the DMA/ARX
  stages): a segment's ACK reaches the wire only after its notification
  is host-visible, so the shadow's ``rcv_nxt`` is always >= anything the
  peer believes was delivered — the peer never discards bytes recovery
  still needs.

* **Graceful degradation** — while the NIC is down a
  :class:`SlowPathShim` takes over the station port and answers the
  peer's data and probe segments with zero-window pure ACKs, built the
  same way :class:`repro.baselines.engine.HostTcpEngine` builds its ACK
  replies. Peers park in persist state (zero-window probing never aborts
  a connection) instead of RTO-aborting, and hand back cleanly when the
  re-offloaded data path answers the next probe with a real window.
"""

from repro.flextoe.descriptors import (
    HC_FIN,
    HC_RETRANSMIT,
    HC_RX_UPDATE,
    HC_TX_UPDATE,
    NOTIFY_FIN,
    NOTIFY_RX,
    NOTIFY_TX_ACKED,
    HostControlDescriptor,
)
from repro.flextoe.slab import FLAG, INT, OBJ, Slab, SlabView, attach_fields
from repro.flextoe.state import ProtocolState
from repro.nfp.cam import pack_four_tuple
from repro.proto import FLAG_ACK, FLAG_FIN, FLAG_RST, FLAG_SYN, make_tcp_frame
from repro.proto.tcp import seq_add


class ConnShadow(SlabView):
    """Host-visible mirror of one offloaded connection's protocol state.

    Counters are *derived from context-queue traffic* (authoritative,
    crash-consistent); ``nic_snapshot`` holds the latest periodic NIC
    state DMA (hints only, staleness bounded by the snapshot interval).

    Shadows live in their own host-memory slab (one slot per tracked
    connection — this is exactly the memory a crash must not take down),
    and carry everything re-offload needs: identity, initial sequence
    numbers, queue-derived counters, and the host buffer geometry. A
    shadow is therefore self-sufficient — the manager can reinstall a
    connection from its shadow alone, without the (dead) old record.
    """

    __slots__ = ()
    SLAB_FIELDS = (
        "index",
        "local_ip",
        "remote_ip",
        "local_port",
        "remote_port",
        "context_id",
        "snd_iss",
        "rcv_irs",
        "tx_posted",
        "tx_acked",
        "rx_delivered",
        "rx_consumed",
        "fin_posted",
        "peer_fin_seen",
        "rx_size",
        "tx_size",
        "rx_base",
        "tx_base",
        "rx_region",
        "tx_region",
        "opaque",
        "peer_mac",
        "local_mac",
        "nic_snapshot",
    )

    def __init__(self, index, four_tuple, context_id, snd_iss, rcv_irs, rx_size, tx_size, peer_mac):
        self._bind()
        self.index = index
        local_ip, remote_ip, local_port, remote_port = four_tuple
        self.local_ip = local_ip
        self.remote_ip = remote_ip
        self.local_port = local_port
        self.remote_port = remote_port
        self.context_id = context_id
        self.snd_iss = snd_iss  # first data byte's sequence number
        self.rcv_irs = rcv_irs  # first expected peer data byte
        self.tx_posted = 0  # bytes the app posted via HC_TX_UPDATE
        self.tx_acked = 0  # bytes NOTIFY_TX_ACKED returned to the app
        self.rx_delivered = 0  # bytes NOTIFY_RX handed to the app
        self.rx_consumed = 0  # bytes the app returned via HC_RX_UPDATE
        self.fin_posted = False
        self.peer_fin_seen = False
        self.rx_size = rx_size
        self.tx_size = tx_size
        self.rx_base = 0
        self.tx_base = 0
        self.rx_region = None
        self.tx_region = None
        self.opaque = None
        self.peer_mac = peer_mac
        self.local_mac = None
        self.nic_snapshot = None

    @property
    def four_tuple(self):
        return (self.local_ip, self.remote_ip, self.local_port, self.remote_port)

    @property
    def snd_una(self):
        """32-bit sequence of the oldest unacknowledged byte."""
        return seq_add(self.snd_iss, self.tx_acked)

    @property
    def rcv_nxt(self):
        """32-bit sequence the host-visible stream expects next."""
        nxt = seq_add(self.rcv_irs, self.rx_delivered)
        if self.peer_fin_seen:
            nxt = seq_add(nxt, 1)
        return nxt


#: The host-side shadow slab: one slot per tracked connection. This is
#: the memory recovery reads after a crash, so it lives outside the NIC
#: object graph entirely — ``crash()``/``reboot()`` never touch it.
SHADOW_SLAB = Slab(
    fields=[
        (
            name,
            FLAG
            if name in ("fin_posted", "peer_fin_seen")
            else OBJ
            if name in ("rx_region", "tx_region", "opaque", "nic_snapshot")
            else INT,
        )
        for name in ConnShadow.SLAB_FIELDS
    ],
    initial=1024,
    name="shadow",
)

attach_fields(
    ConnShadow,
    SHADOW_SLAB,
    kinds={
        "fin_posted": FLAG,
        "peer_fin_seen": FLAG,
        "rx_region": OBJ,
        "tx_region": OBJ,
        "opaque": OBJ,
        "nic_snapshot": OBJ,
    },
)


def reconstruct_protocol_state(shadow):
    """Rebuild a flow's :class:`ProtocolState` from its host shadow.

    The reconstruction is deliberately conservative: transmission rewinds
    to ``snd_una`` (anything in flight at the crash is retransmitted —
    go-back-N, which the peer resolves via trim/dup-ACK), the receive
    side resumes at the host-visible ``rcv_nxt`` (the write-ahead rule
    guarantees the peer holds everything beyond it for retransmission),
    and a posted-but-unconfirmed FIN is re-armed (a duplicate FIN is
    acknowledged idempotently by the peer).
    """
    proto = ProtocolState()
    proto.seq = seq_add(shadow.snd_iss, shadow.tx_acked)
    proto.tx_pos = shadow.tx_acked
    proto.tx_avail = shadow.tx_posted - shadow.tx_acked
    proto.tx_sent = 0
    proto.ack = seq_add(shadow.rcv_irs, shadow.rx_delivered)
    proto.rx_pos = shadow.rx_delivered
    proto.rx_avail = shadow.rx_size - (shadow.rx_delivered - shadow.rx_consumed)
    if shadow.peer_fin_seen:
        proto.rx_fin_seq = proto.ack
        proto.ack = seq_add(proto.ack, 1)
    if shadow.fin_posted:
        proto.fin_pending = True
    snap = shadow.nic_snapshot
    if snap is not None:
        # Staleness-bounded hints: a wrong remote_win self-corrects on
        # the first ACK, a missing next_ts just skips one RTT sample.
        proto.remote_win = snap.get("remote_win", proto.remote_win)
        proto.next_ts = snap.get("next_ts", 0)
    return proto


class SlowPathShim:
    """Host slow path answering for offloaded connections while the NIC
    is down.

    Installed on the station port in place of the (dead) MAC. It answers
    the peer's data/FIN/probe segments with zero-window pure ACKs at the
    shadow's ``rcv_nxt`` — enough to park peers in persist state (which
    never aborts) without accepting payload the dead datapath could not
    deliver. ARP and RST still reach the control plane so address
    resolution and teardown work throughout the outage; handshake
    segments are dropped (SYN retransmission spans the outage).
    """

    def __init__(self, plane, recovery, port):
        self.plane = plane
        self.recovery = recovery
        self.port = port
        self._saved_receiver = None
        self.installed = False
        self.acks_sent = 0
        self.frames_seen = 0
        self.frames_dropped = 0

    def install(self):
        self._saved_receiver = self.port.receiver
        self.port.receiver = self._on_frame
        self.installed = True

    def uninstall(self):
        # A reboot re-attaches the port to the new MAC; only restore if
        # nothing displaced us (e.g. recovery aborted before reboot).
        if self.port.receiver == self._on_frame:
            self.port.receiver = self._saved_receiver
        self._saved_receiver = None
        self.installed = False

    def raw_send(self, frame):
        """Control-plane TX while the NIC cannot transmit."""
        self.port.send(frame)

    def _on_frame(self, frame):
        self.frames_seen += 1
        if frame.tcp is None:
            # ARP keeps working through the outage.
            self.plane.handle_frame(frame)
            return
        tcp = frame.tcp
        if tcp.flags & FLAG_RST:
            self.plane.handle_frame(frame)
            return
        if tcp.flags & FLAG_SYN:
            # No datapath to offload onto; the peer's SYN retransmission
            # outlives the outage.
            self.frames_dropped += 1
            return
        four = (frame.ip.dst, frame.ip.src, tcp.dport, tcp.sport)
        shadow = self.recovery.shadow_for_tuple(four)
        if shadow is None:
            self.frames_dropped += 1
            return
        if not frame.payload and not (tcp.flags & FLAG_FIN):
            # Pure ACK: never acknowledged back (no ACK-of-ACK), and the
            # shadow cannot absorb its effects anyway.
            return
        reply = make_tcp_frame(
            self.plane.local_mac,
            frame.eth.src,
            frame.ip.dst,
            frame.ip.src,
            tcp.dport,
            tcp.sport,
            seq=shadow.snd_una,
            ack=shadow.rcv_nxt,
            flags=FLAG_ACK,
            window=0,
            born_at=self.plane.sim.now,
        )
        self.acks_sent += 1
        self.port.send(reply)


class RecoveryManager:
    """Watchdog + shadow + re-offload orchestration for one control plane."""

    def __init__(self, plane, station=None):
        self.plane = plane
        self.sim = plane.sim
        self.nic = plane.nic
        self.config = plane.config
        self.shadows = {}  # conn_index -> ConnShadow
        # pack_four_tuple(four_tuple) -> ConnShadow, built lazily on the
        # first tuple lookup (the slow-path shim during an outage) and
        # maintained incrementally afterwards. Steady-state tracking —
        # including million-connection adopts — pays nothing for it.
        self._by_tuple = None
        self._tapped_contexts = set()
        self.degraded = False
        self.recoveries = 0
        self.watchdog_fired = 0
        self.last_detect_ns = None
        self.last_recovery_ns = None
        self.last_outage_ns = None
        self.reoffloaded_connections = 0
        self.purged_descriptors = 0
        self.shim = SlowPathShim(plane, self, station.port) if station is not None else None
        if self.config.snapshot_interval_ns:
            self.nic.enable_state_snapshots(self._write_snapshot, self.config.snapshot_interval_ns)
        if self.config.watchdog_enabled:
            self.sim.process(self._watchdog_loop(), name="cp-watchdog")

    # -- shadow maintenance --------------------------------------------------

    def track(self, index, record, snd_iss, rcv_irs):
        """Start shadowing a freshly established connection."""
        post = record.post
        shadow = ConnShadow(
            index,
            record.four_tuple,
            post.context_id,
            snd_iss,
            rcv_irs,
            post.rx_size,
            post.tx_size,
            record.pre.peer_mac,
        )
        shadow.rx_base = post.rx_base
        shadow.tx_base = post.tx_base
        shadow.rx_region = post.rx_region
        shadow.tx_region = post.tx_region
        shadow.opaque = post.opaque
        shadow.local_mac = record.local_mac
        self.shadows[index] = shadow
        if self._by_tuple is not None:
            self._by_tuple[pack_four_tuple(record.four_tuple)] = shadow
        if post.context_id not in self._tapped_contexts:
            pair = self.nic.context_pair(post.context_id)
            if pair is not None:
                pair.add_tap(self._on_pair_event)
                self._tapped_contexts.add(post.context_id)
        return shadow

    def adopt_offloaded(
        self,
        four_tuple,
        peer_mac,
        local_mac,
        iss,
        irs,
        context_id,
        opaque,
        rx_buffer,
        tx_buffer,
    ):
        """Install a quiescent pre-established connection: NIC state plus
        shadow, but no control-plane directory entry.

        This is the million-connection scale-out path: adopted flows are
        fully offloaded (lookup, scheduler admission, crash recovery via
        the shadow-only re-offload pass) but skip the per-tick timer and
        congestion scans, whose cost is proportional to directory size.
        Returns ``(index, record)``.
        """
        index = self.nic.allocate_connection_index()
        record = self.nic.offload_connection(
            index=index,
            four_tuple=four_tuple,
            peer_mac=peer_mac,
            local_mac=local_mac,
            iss=iss,
            irs=irs,
            context_id=context_id,
            opaque=opaque,
            rx_buffer=rx_buffer,
            tx_buffer=tx_buffer,
        )
        self.track(index, record, snd_iss=iss, rcv_irs=irs)
        record.compact()  # quiescent: shed the cached partition views
        return index, record

    def forget(self, index):
        shadow = self.shadows.pop(index, None)
        if shadow is not None and self._by_tuple is not None:
            self._by_tuple.pop(pack_four_tuple(shadow.four_tuple), None)

    def shadow_for_tuple(self, four_tuple):
        if self._by_tuple is None:
            self._by_tuple = {
                pack_four_tuple(shadow.four_tuple): shadow
                for shadow in self.shadows.values()
            }
        return self._by_tuple.get(pack_four_tuple(four_tuple))

    def _on_pair_event(self, kind, item):
        shadow = self.shadows.get(item.conn_index)
        if shadow is None:
            return
        if kind == "hc":
            if item.kind == HC_TX_UPDATE:
                shadow.tx_posted += item.value
                if item.fin:
                    shadow.fin_posted = True
            elif item.kind == HC_RX_UPDATE:
                shadow.rx_consumed += item.value
            elif item.kind == HC_FIN:
                shadow.fin_posted = True
        elif kind == "notify":
            if item.kind == NOTIFY_TX_ACKED:
                shadow.tx_acked += item.length
            elif item.kind == NOTIFY_RX:
                shadow.rx_delivered += item.length
            elif item.kind == NOTIFY_FIN:
                shadow.peer_fin_seen = True

    def _write_snapshot(self, index, snapshot):
        shadow = self.shadows.get(index)
        if shadow is not None:
            shadow.nic_snapshot = snapshot

    # -- watchdog ------------------------------------------------------------

    def _watchdog_loop(self):
        config = self.config
        last_total = None
        misses = 0
        while True:
            yield self.sim.timeout(config.watchdog_interval_ns)
            if self.degraded:
                continue
            total = sum(self.nic.read_heartbeats().values())
            if last_total is not None and total == last_total:
                misses += 1
                if misses >= config.watchdog_miss_threshold:
                    misses = 0
                    last_total = None
                    self.watchdog_fired += 1
                    yield from self._recover()
                    continue
            else:
                misses = 0
            last_total = total

    # -- recovery ------------------------------------------------------------

    def _recover(self):
        """Quiesce, reboot, re-offload. Runs inside the watchdog process."""
        self.degraded = True
        self.last_detect_ns = self.sim.now
        if not self.nic.crashed:
            # Watchdog-declared failure (e.g. wedged firmware): force the
            # quiesce so no half-alive stage races the reconstruction.
            self.nic.crash()
        if self.shim is not None:
            self.shim.install()
        yield self.sim.timeout(self.config.reboot_delay_ns)
        self.nic.reboot()
        if self.shim is not None:
            self.shim.uninstall()
        self._reoffload_all()
        self.degraded = False
        self.recoveries += 1
        self.last_recovery_ns = self.sim.now
        self.last_outage_ns = self.sim.now - self.last_detect_ns

    def _reoffload_all(self):
        """Reinstall every directory connection on the fresh datapath.

        Synchronous on purpose: between the descriptor purge, the shadow
        read, and the re-offload nothing may yield — a context-queue
        event in between would double-count into the rebuilt state.
        """
        from repro.analysis import sanitizer
        from repro.control.plane import CONTROL_CONTEXT

        # Stale outbound HC descriptors died with the chip: anything
        # still queued is already folded into the shadow (taps fire at
        # post time), so the new datapath must never fetch it.
        for pair in self.nic.datapath.contexts.values():
            self.purged_descriptors += len(pair.outbound)
            pair.outbound.clear()
        reinstalled = set()
        for entry in list(self.plane.directory):
            shadow = self.shadows.get(entry.index)
            if shadow is None:
                continue
            old = entry.record
            if sanitizer.enabled():
                sanitizer.unregister(old.pre)
                sanitizer.unregister(old.proto)
                sanitizer.unregister(old.post)
            proto = reconstruct_protocol_state(shadow)
            record = self.nic.offload_connection(
                index=entry.index,
                four_tuple=shadow.four_tuple,
                peer_mac=shadow.peer_mac,
                local_mac=old.local_mac,
                iss=proto.seq,
                irs=proto.ack,
                context_id=shadow.context_id,
                opaque=old.post.opaque,
                rx_buffer=(old.post.rx_region, old.post.rx_base, old.post.rx_size),
                tx_buffer=(old.post.tx_region, old.post.tx_base, old.post.tx_size),
                proto=proto,
            )
            entry.record = record
            entry.last_snd_una = None
            entry.stalled_since = None
            entry.reset_backoff()
            self.plane.reprogram_rate(entry)
            self.reoffloaded_connections += 1
            reinstalled.add(entry.index)
            # Kick the new doorbell so ATX re-drains the context, and
            # re-announce our receive window so a peer parked against
            # the shim's zero window wakes up even if it has nothing
            # in flight to retransmit.
            if proto.tx_avail > 0 or proto.fin_pending:
                self.nic.post_hc(
                    CONTROL_CONTEXT, HostControlDescriptor(HC_RETRANSMIT, entry.index)
                )
            self.plane.announce_window(record)
        # Shadow-only connections (bulk adoptions with no directory
        # entry — the control plane's timers never service them, but
        # their data-path state must survive a crash all the same). The
        # shadow is self-sufficient, so reinstall straight from it.
        for index in sorted(self.shadows):
            if index in reinstalled:
                continue
            shadow = self.shadows[index]
            proto = reconstruct_protocol_state(shadow)
            self.nic.offload_connection(
                index=shadow.index,
                four_tuple=shadow.four_tuple,
                peer_mac=shadow.peer_mac,
                local_mac=shadow.local_mac,
                iss=proto.seq,
                irs=proto.ack,
                context_id=shadow.context_id,
                opaque=shadow.opaque,
                rx_buffer=(shadow.rx_region, shadow.rx_base, shadow.rx_size),
                tx_buffer=(shadow.tx_region, shadow.tx_base, shadow.tx_size),
                proto=proto,
            )
            self.reoffloaded_connections += 1
            if proto.tx_avail > 0 or proto.fin_pending:
                self.nic.post_hc(
                    CONTROL_CONTEXT, HostControlDescriptor(HC_RETRANSMIT, shadow.index)
                )
