"""The FlexTOE control plane (paper §3.4).

Runs in its own protection domain (host cores or SmartNIC control CPUs)
and owns everything the one-shot data-path cannot do: ARP, the TCP
connection state machine (handshake/teardown), retransmission timeouts,
zero-window probes, per-flow congestion control (DCTCP / TIMELY), and
policy (per-connection rate limits, per-application connection limits,
port partitioning).
"""

from repro.control.cc import CongestionControl, Dctcp, Timely
from repro.control.plane import ControlPlane, ControlPlaneConfig
from repro.control.policy import PolicyConfig
from repro.control.recovery import ConnShadow, RecoveryManager, SlowPathShim, reconstruct_protocol_state
from repro.control.splice import SpliceError, SpliceManager

__all__ = [
    "CongestionControl",
    "ConnShadow",
    "ControlPlane",
    "ControlPlaneConfig",
    "Dctcp",
    "PolicyConfig",
    "RecoveryManager",
    "SpliceError",
    "SpliceManager",
    "SlowPathShim",
    "Timely",
    "reconstruct_protocol_state",
]
