"""Control-plane connection splicing (paper §3.3 / Listing 1 / AccelTCP).

The XDP module does the per-segment work; this is the other half: a
proxy that has terminated two connections asks the control plane to
splice them. The control plane reads both connections' live data-path
state, computes the sequence/acknowledgment translation deltas, installs
both directions into the splice module's BPF map, and withdraws the
connections from the host — from then on segments bounce between client
and backend entirely on the NIC.

Splicing requires both connections to be quiescent (no unacknowledged
in-flight data), which a proxy achieves by draining before splicing.
"""

from repro.xdp.builtins.splice import SpliceEntry, splice_key


class SpliceError(Exception):
    pass


class SpliceManager:
    """Owns the splice module's table on one FlexTOE NIC."""

    def __init__(self, control_plane, splice_program):
        self.control_plane = control_plane
        self.program = splice_program
        self.active = {}  # frozenset of conn indices -> (key_ab, key_ba)
        splice_program.control_plane_cb = self._on_closed
        self._closed_keys = []

    def splice(self, index_a, index_b):
        """Splice connection ``index_a`` (client side) with ``index_b``
        (backend side). Both must be established, offloaded, and idle."""
        nic = self.control_plane.nic
        record_a = nic.connection(index_a)
        record_b = nic.connection(index_b)
        if record_a is None or record_b is None:
            raise SpliceError("both connections must be offloaded")
        for record in (record_a, record_b):
            if record.proto.tx_sent:
                raise SpliceError("connection {} has in-flight data".format(record.index))

        a = record_a.proto
        b = record_b.proto
        mod = 1 << 32
        # client->backend: seq moves from A's receive stream to B's send
        # stream; ack moves from A's send stream to B's receive stream.
        entry_ab = SpliceEntry(
            remote_mac=record_b.pre.peer_mac,
            remote_ip=record_b.pre.peer_ip,
            local_port=record_b.pre.local_port,
            remote_port=record_b.pre.remote_port,
            seq_delta=(b.seq - a.ack) % mod,
            ack_delta=(b.ack - a.seq) % mod,
        )
        # backend->client: the inverse translation.
        entry_ba = SpliceEntry(
            remote_mac=record_a.pre.peer_mac,
            remote_ip=record_a.pre.peer_ip,
            local_port=record_a.pre.local_port,
            remote_port=record_a.pre.remote_port,
            seq_delta=(a.seq - b.ack) % mod,
            ack_delta=(a.ack - b.seq) % mod,
        )
        key_ab = self._incoming_key(record_a)
        key_ba = self._incoming_key(record_b)
        self.program.install(key_ab, entry_ab)
        self.program.install(key_ba, entry_ba)
        # The host is out of the loop: withdraw data-path state and
        # control-plane tracking for both connections.
        for index in (index_a, index_b):
            self.control_plane.directory.remove(index)
            nic.remove_connection(index)
        self.active[frozenset((index_a, index_b))] = (key_ab, key_ba)
        return key_ab, key_ba

    @staticmethod
    def _incoming_key(record):
        """BPF-map key matching segments *arriving* on this connection:
        (src=peer_ip, dst=local_ip, sport=remote_port, dport=local_port)."""
        return splice_key(
            record.pre.peer_ip,
            record.local_ip,
            record.pre.remote_port,
            record.pre.local_port,
        )

    def unsplice(self, index_a, index_b):
        """Remove both map entries (connection handed back / torn down)."""
        keys = self.active.pop(frozenset((index_a, index_b)), None)
        if keys is None:
            return False
        for key in keys:
            self.program.remove(key)
        return True

    def _on_closed(self, key, frame):
        """The XDP module saw a control flag and removed one direction;
        record it so the pair can be garbage collected."""
        self._closed_keys.append(key)
        for pair, keys in list(self.active.items()):
            if key in keys:
                for other in keys:
                    if other != key:
                        self.program.remove(other)
                self.active.pop(pair, None)

    @property
    def spliced_pairs(self):
        return len(self.active)
