"""Control-plane policies (paper §3.4 / [50]): per-connection rate
limits, per-application connection limits, and port partitioning."""


class PolicyConfig:
    """Admission and rate policies enforced at connection setup."""

    def __init__(
        self,
        max_connections_per_app=None,
        rate_limit_bps=None,
        port_ranges=None,
    ):
        self.max_connections_per_app = max_connections_per_app
        self.rate_limit_bps = rate_limit_bps
        #: {app_label: (low_port, high_port)} exclusive port partitions.
        self.port_ranges = port_ranges or {}

    def port_allowed(self, app_label, port):
        if not self.port_ranges:
            return True
        owned = self.port_ranges.get(app_label)
        if owned is None:
            # Apps without a partition may not use partitioned ports.
            return not any(low <= port <= high for low, high in self.port_ranges.values())
        low, high = owned
        return low <= port <= high

    def admit(self, app_connection_count):
        if self.max_connections_per_app is None:
            return True
        return app_connection_count < self.max_connections_per_app
