"""Connection-control objects: listeners, pending handshakes, teardown.

The data-path only ever sees established connections; everything before
(SYN exchange) and after (state removal) lives here (paper §3.4).
"""

# Handshake states.
SYN_SENT = "syn-sent"
SYN_RCVD = "syn-rcvd"
ESTABLISHED = "established"
CLOSING = "closing"


class EstablishedInfo:
    """What the control plane hands libTOE when a connection is ready."""

    __slots__ = ("conn_index", "four_tuple", "rx_buffer", "tx_buffer", "token")

    def __init__(self, conn_index, four_tuple, rx_buffer, tx_buffer, token=None):
        self.conn_index = conn_index
        self.four_tuple = four_tuple
        self.rx_buffer = rx_buffer
        self.tx_buffer = tx_buffer
        # Per-establishment generation token (the NIC's ``opaque``):
        # connection indices are reused after teardown, and a
        # notification already queued for the previous tenant of an
        # index must not be delivered to its successor's socket.
        self.token = token


class Listener:
    """A listening port: backlog of established connections + waiters."""

    def __init__(self, ctx, port, backlog):
        self.ctx = ctx
        self.port = port
        self.backlog = backlog
        self.ready = []
        self.waiters = []
        self.dropped_overflow = 0
        # SYNs refused because the backlog (ready + embryonic) was full.
        self.syn_dropped = 0
        # Server-side handshakes in SYN_RCVD charged against this
        # listener's backlog (only under the deferred-accept defense).
        self.embryonic = 0

    def backlog_full(self):
        """True when a new SYN may not be admitted: no accept() waiter
        is parked and the accept queue plus half-open handshakes already
        fill the backlog."""
        if self.waiters:
            return False
        return len(self.ready) + self.embryonic >= self.backlog

    def deliver(self, info):
        if self.waiters:
            self.waiters.pop(0).succeed(info)
            return True
        if len(self.ready) >= self.backlog:
            self.dropped_overflow += 1
            return False
        self.ready.append(info)
        return True


class PendingConnection:
    """A handshake in progress (client SYN_SENT or server SYN_RCVD)."""

    __slots__ = (
        "state",
        "four_tuple",
        "iss",
        "irs",
        "peer_mac",
        "ctx",
        "listener",
        "waiter",
        "last_sent_at",
        "attempts",
        "remote_win",
        "created_at",
        "embryonic",
    )

    def __init__(self, state, four_tuple, iss, ctx=None, listener=None, waiter=None):
        self.state = state
        self.four_tuple = four_tuple
        self.iss = iss
        self.irs = None
        self.peer_mac = None
        self.ctx = ctx
        self.listener = listener
        self.waiter = waiter
        self.last_sent_at = 0
        self.attempts = 0
        self.remote_win = 0xFFFF
        self.created_at = 0
        # True while counted against the embryonic budget (server-side
        # deferred accept only); cleared when the pending goes away.
        self.embryonic = False


class ConnectionDirectory:
    """Control-plane view of offloaded connections (for timers/CC)."""

    def __init__(self):
        self.entries = {}
        self.by_tuple = {}

    class Entry:
        __slots__ = (
            "index",
            "record",
            "cc_flow",
            "last_snd_una",
            "stalled_since",
            "closing",
            "close_requested_at",
            "retry_attempts",
            "rto_multiplier",
        )

        def __init__(self, index, record, cc_flow):
            self.index = index
            self.record = record
            self.cc_flow = cc_flow
            self.last_snd_una = None
            self.stalled_since = None
            self.closing = False
            self.close_requested_at = None
            self.retry_attempts = 0
            self.rto_multiplier = 1

        def reset_backoff(self):
            self.retry_attempts = 0
            self.rto_multiplier = 1

    def add(self, index, record, cc_flow):
        entry = self.Entry(index, record, cc_flow)
        self.entries[index] = entry
        self.by_tuple[record.four_tuple] = entry
        return entry

    def remove(self, index):
        entry = self.entries.pop(index, None)
        if entry is not None:
            self.by_tuple.pop(entry.record.four_tuple, None)
        return entry

    def get(self, index):
        return self.entries.get(index)

    def lookup(self, four_tuple):
        """Established-connection lookup by four-tuple (RST matching)."""
        return self.by_tuple.get(four_tuple)

    def __iter__(self):
        return iter(list(self.entries.values()))

    def __len__(self):
        return len(self.entries)
