"""DCTCP-style rate control (Alizadeh et al., adapted to a rate loop).

The data-path's post-processor counts acknowledged and ECN-marked bytes
(paper Table 5: cnt_ackb/cnt_ecnb); the control plane computes the
marked fraction F per interval, maintains the EWMA alpha, and adjusts
the flow's rate multiplicatively on congestion / additively otherwise —
the same structure TAS uses for its rate-based DCTCP (paper §3.4).
"""

from repro.control.cc.base import CongestionControl


class DctcpState:
    __slots__ = ("alpha", "slow_start")

    def __init__(self):
        self.alpha = 0.0
        self.slow_start = True


class Dctcp(CongestionControl):
    """Rate-based DCTCP: alpha-EWMA over the ECN-marked byte fraction."""

    def __init__(self, g=1.0 / 16.0, additive_bps=20_000_000, **kwargs):
        super().__init__(**kwargs)
        self.g = g
        self.additive_bps = additive_bps

    def update(self, flow, stats):
        if flow.algo_state is None:
            flow.algo_state = DctcpState()
        state = flow.algo_state
        rate = flow.rate_bps
        if stats.fast_retransmits > 0:
            # Loss: halve, leave slow start.
            state.slow_start = False
            return self.clamp(rate / 2)
        if stats.acked_bytes == 0:
            return self.clamp(rate)  # no feedback this interval
        fraction = min(1.0, stats.ecn_bytes / stats.acked_bytes)
        state.alpha = (1.0 - self.g) * state.alpha + self.g * fraction
        if fraction > 0.0:
            state.slow_start = False
            rate = rate * (1.0 - state.alpha / 2.0)
        elif state.slow_start:
            rate = rate * 2
        else:
            rate = rate + self.additive_bps
        return self.clamp(rate)
