"""Congestion-control algorithms for the control-plane rate loop."""

from repro.control.cc.base import CongestionControl, FlowCcState
from repro.control.cc.dctcp import Dctcp
from repro.control.cc.timely import Timely

__all__ = ["CongestionControl", "Dctcp", "FlowCcState", "Timely"]
