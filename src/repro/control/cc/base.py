"""Congestion-control framework (paper §3.4).

The control plane iterates over active flows roughly once per RTT,
reads the data-path's per-flow statistics (acked bytes, ECN bytes,
fast-retransmit count, RTT estimate), asks the algorithm for a new rate,
and programs the flow scheduler. Algorithms subclass
:class:`CongestionControl` and implement :meth:`update`.
"""


class FlowCcState:
    """Per-flow algorithm state plus the currently programmed rate."""

    __slots__ = ("rate_bps", "algo_state", "last_rtt_us")

    def __init__(self, rate_bps):
        self.rate_bps = rate_bps
        self.algo_state = None
        self.last_rtt_us = 0


class CcStats:
    """One control-interval's data-path statistics for a flow."""

    __slots__ = ("acked_bytes", "ecn_bytes", "fast_retransmits", "rtt_us")

    def __init__(self, acked_bytes, ecn_bytes, fast_retransmits, rtt_us):
        self.acked_bytes = acked_bytes
        self.ecn_bytes = ecn_bytes
        self.fast_retransmits = fast_retransmits
        self.rtt_us = rtt_us


class CongestionControl:
    """Base class: algorithms compute a new rate from interval stats."""

    #: Flows at or above this rate bypass the rate limiter entirely
    #: (work-conserving round-robin in the scheduler, §3.5).
    uncongested_bps = 39_000_000_000

    def __init__(self, init_rate_bps=10_000_000_000, min_rate_bps=1_000_000, max_rate_bps=40_000_000_000):
        self.init_rate_bps = init_rate_bps
        self.min_rate_bps = min_rate_bps
        self.max_rate_bps = max_rate_bps

    def new_flow(self):
        return FlowCcState(self.init_rate_bps)

    def update(self, flow, stats):
        """Return the new rate in bits per second."""
        raise NotImplementedError

    def clamp(self, rate_bps):
        return max(self.min_rate_bps, min(self.max_rate_bps, int(rate_bps)))

    def scheduler_rate(self, flow):
        """Rate to program: 0 means unlimited (bypass)."""
        if flow.rate_bps >= self.uncongested_bps:
            return 0
        return flow.rate_bps // 8  # scheduler paces in bytes/sec
