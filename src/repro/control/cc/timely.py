"""TIMELY RTT-gradient congestion control (Mittal et al., SIGCOMM'15).

Uses the data-path's timestamp-derived RTT estimate (paper §3.1.3: the
post-processor computes accurate RTT estimates for exactly this). Rates
adapt on the normalized RTT gradient, with low/high RTT thresholds for
the hyperactive/additive regions.
"""

from repro.control.cc.base import CongestionControl


class TimelyState:
    __slots__ = ("prev_rtt_us", "rtt_diff_us")

    def __init__(self):
        self.prev_rtt_us = 0.0
        self.rtt_diff_us = 0.0


class Timely(CongestionControl):
    def __init__(
        self,
        t_low_us=50,
        t_high_us=500,
        ewma_alpha=0.46,
        beta=0.8,
        additive_bps=40_000_000,
        **kwargs
    ):
        super().__init__(**kwargs)
        self.t_low_us = t_low_us
        self.t_high_us = t_high_us
        self.ewma_alpha = ewma_alpha
        self.beta = beta
        self.additive_bps = additive_bps

    def update(self, flow, stats):
        if flow.algo_state is None:
            flow.algo_state = TimelyState()
        state = flow.algo_state
        rate = flow.rate_bps
        if stats.fast_retransmits > 0:
            return self.clamp(rate * self.beta)
        rtt = stats.rtt_us
        if rtt <= 0:
            return self.clamp(rate)
        if state.prev_rtt_us == 0:
            state.prev_rtt_us = rtt
            return self.clamp(rate)
        new_diff = rtt - state.prev_rtt_us
        state.prev_rtt_us = rtt
        state.rtt_diff_us = (1 - self.ewma_alpha) * state.rtt_diff_us + self.ewma_alpha * new_diff
        # min-RTT normalization: use t_low as the minimum-RTT proxy.
        gradient = state.rtt_diff_us / max(1.0, self.t_low_us)
        if rtt < self.t_low_us:
            rate = rate + self.additive_bps
        elif rtt > self.t_high_us:
            rate = rate * (1.0 - self.beta * (1.0 - self.t_high_us / rtt))
        elif gradient <= 0:
            rate = rate + self.additive_bps
        else:
            rate = rate * (1.0 - self.beta * min(1.0, gradient))
        return self.clamp(rate)
