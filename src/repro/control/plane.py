"""The control plane proper: ARP, handshakes, timers, congestion control.

One :class:`ControlPlane` serves one host's FlexTOE NIC. It drains the
frames the data-path diverts (SYN/SYN-ACK/RST/ARP), runs the TCP
connection state machine, installs/removes data-path state, retransmits
on timeout (go-back-N via HC descriptors), sends zero-window probes, and
runs the congestion-control rate loop.

Simplification vs. a production stack (documented in DESIGN.md): the
server side completes accept() when the SYN-ACK is sent rather than on
the final handshake ACK — the data-path state is installed alongside the
SYN-ACK so early data is handled; a lost SYN-ACK is covered by the
client's SYN retransmission.

That simplification is also the SYN-flood attack surface: every SYN
buys 512KB of host buffers plus a CONN_SLAB slot before the peer has
proven liveness. ``ControlPlaneConfig(syn_defense_enabled=True)``
switches the server side to overload-safe three-way handshakes: SYNs
park in a bounded embryonic table (half-open reaper, backlog charge)
and the data path is installed only on the final handshake ACK; past
the embryonic budget the plane answers with stateless SYN cookies so
legitimate clients still connect while the flood costs us nothing.
"""

import struct
import zlib

from repro.control.cc.dctcp import Dctcp
from repro.control.cc.base import CcStats
from repro.control.connection import (
    ConnectionDirectory,
    EstablishedInfo,
    Listener,
    PendingConnection,
    SYN_RCVD,
    SYN_SENT,
)
from repro.control.policy import PolicyConfig
from repro.control.recovery import RecoveryManager
from repro.flextoe.descriptors import (
    HC_PROBE,
    HC_RETRANSMIT,
    HostControlDescriptor,
    NOTIFY_ERROR,
    Notification,
)
from repro.flextoe.proto_logic import WINDOW_SCALE, advertised_window
from repro.libtoe.buffers import CircularBuffer
from repro.libtoe.errors import ConnectRefusedError, HandshakeTimeoutError
from repro.proto import (
    ARP_REPLY,
    ARP_REQUEST,
    ArpHeader,
    ETHERTYPE_ARP,
    EthernetHeader,
    Frame,
    make_tcp_frame,
)
from repro.proto.tcp import FLAG_ACK, FLAG_RST, FLAG_SYN, TcpOptions

BROADCAST_MAC = (1 << 48) - 1

#: Control-plane context-queue id (reserved; app contexts start at 1).
CONTROL_CONTEXT = 0


class ControlPlaneConfig:
    def __init__(
        self,
        rx_buffer_size=256 * 1024,
        tx_buffer_size=256 * 1024,
        rto_ns=250_000,
        syn_rto_ns=1_000_000,
        timer_tick_ns=50_000,
        cc_interval_ns=50_000,
        linger_ns=2_000_000,
        mss=1448,
        max_syn_retries=8,
        max_data_retries=10,
        rto_max_ns=4_000_000,
        recovery_enabled=True,
        watchdog_enabled=True,
        watchdog_interval_ns=100_000,
        watchdog_miss_threshold=3,
        snapshot_interval_ns=250_000,
        reboot_delay_ns=100_000,
        syn_defense_enabled=False,
        embryonic_limit=64,
        half_open_timeout_ns=4_000_000,
        syn_cookie_secret=0x5EED_CAFE,
        challenge_ack_limit=3,
        challenge_ack_interval_ns=1_000_000,
    ):
        self.rx_buffer_size = rx_buffer_size
        self.tx_buffer_size = tx_buffer_size
        self.rto_ns = rto_ns
        self.syn_rto_ns = syn_rto_ns
        self.timer_tick_ns = timer_tick_ns
        self.cc_interval_ns = cc_interval_ns
        self.linger_ns = linger_ns
        self.mss = mss
        self.max_syn_retries = max_syn_retries
        self.max_data_retries = max_data_retries
        self.rto_max_ns = rto_max_ns
        self.recovery_enabled = recovery_enabled
        self.watchdog_enabled = watchdog_enabled
        self.watchdog_interval_ns = watchdog_interval_ns
        self.watchdog_miss_threshold = watchdog_miss_threshold
        self.snapshot_interval_ns = snapshot_interval_ns
        self.reboot_delay_ns = reboot_delay_ns
        # Overload defense (off by default: the legacy accept-on-SYN-ACK
        # fast path stays byte-identical unless a host opts in).
        self.syn_defense_enabled = syn_defense_enabled
        self.embryonic_limit = embryonic_limit
        self.half_open_timeout_ns = half_open_timeout_ns
        self.syn_cookie_secret = syn_cookie_secret
        # RFC 5961 challenge-ACK rate limit (responses per interval,
        # shared with RSTs answering segments for unknown connections).
        self.challenge_ack_limit = challenge_ack_limit
        self.challenge_ack_interval_ns = challenge_ack_interval_ns


class ControlPlane:
    """Connection and congestion control for one FlexTOE NIC."""

    def __init__(
        self,
        sim,
        nic,
        machine,
        local_mac,
        local_ip,
        cc=None,
        cc_enabled=True,
        config=None,
        policy=None,
    ):
        self.sim = sim
        self.nic = nic
        self.machine = machine
        self.local_mac = local_mac
        self.local_ip = local_ip
        self.cc = cc if cc is not None else Dctcp()
        self.cc_enabled = cc_enabled
        self.config = config or ControlPlaneConfig()
        self.policy = policy or PolicyConfig()
        self.nic.register_context(CONTROL_CONTEXT)
        self.arp_table = {}
        self._arp_waiters = {}
        self.listeners = {}
        self.pending = {}  # four_tuple -> PendingConnection
        self.directory = ConnectionDirectory()
        self._iss_counter = 10_000
        self._ephemeral_port = 40_000
        self._conn_token = 0
        self.retransmits_posted = 0
        self.probes_posted = 0
        self.syn_retransmits = 0
        self.aborts = 0
        self.resets_received = 0
        # Overload-defense counters.
        self.syn_dropped = 0
        self.cookies_sent = 0
        self.cookies_validated = 0
        self.embryonic_reaped = 0
        self.challenge_acks = 0
        self.challenge_acks_limited = 0
        #: server-side handshakes currently parked in SYN_RCVD.
        self.embryonic = 0
        self._challenge_window_start = 0
        self._challenge_window_count = 0
        self.recovery = None
        sim.process(self._rx_loop(), name="cp-rx")
        sim.process(self._timer_loop(), name="cp-timer")
        sim.process(self._cc_loop(), name="cp-cc")

    # -- failure recovery ----------------------------------------------------

    def enable_recovery(self, station=None):
        """Arm the data-path recovery subsystem (watchdog, connection
        shadow, slow-path shim on ``station``'s port). Idempotent; no-op
        when ``config.recovery_enabled`` is False."""
        if not self.config.recovery_enabled:
            return None
        if self.recovery is None:
            self.recovery = RecoveryManager(self, station=station)
        return self.recovery

    def reprogram_rate(self, entry):
        """Re-program a flow's scheduler rate (after re-offload)."""
        self._program_rate(entry.index, entry.cc_flow)

    def announce_window(self, record):
        """Send a pure ACK advertising the current receive window.

        Used after re-offload: a peer parked against the slow-path
        shim's zero window may have nothing in flight to retransmit, so
        nothing would ever reopen its window without this."""
        proto = record.proto
        frame = self._tcp_frame(
            record.pre.peer_mac,
            record.four_tuple,
            seq=proto.seq,
            ack=proto.ack,
            flags=FLAG_ACK,
            window=advertised_window(proto),
        )
        self._control_tx(frame)

    def _control_tx(self, frame):
        """Raw TX that survives degraded mode: while the NIC is down the
        slow-path shim owns the port and transmits for us."""
        if self.recovery is not None and self.recovery.degraded and self.recovery.shim is not None:
            if self.recovery.shim.installed:
                self.recovery.shim.raw_send(frame)
                return
        self.nic.control_tx(frame)

    # -- small helpers -----------------------------------------------------

    def seed_arp(self, ip, mac):
        """Static ARP entry (used by the testbed builder for speed)."""
        self.arp_table[ip] = mac

    def _next_iss(self):
        self._iss_counter += 64_000
        return self._iss_counter & 0xFFFFFFFF

    def _next_port(self):
        self._ephemeral_port += 1
        if self._ephemeral_port > 60_000:
            self._ephemeral_port = 40_000
        return self._ephemeral_port

    def _syn_options(self):
        return TcpOptions(mss=self.config.mss, wscale=WINDOW_SCALE, sack_permitted=False)

    def _alloc_buffers(self):
        rx_region = self.machine.memory.alloc(self.config.rx_buffer_size)
        tx_region = self.machine.memory.alloc(self.config.tx_buffer_size)
        return CircularBuffer(rx_region), CircularBuffer(tx_region)

    def _tcp_frame(self, peer_mac, four_tuple, **kwargs):
        local_ip, remote_ip, local_port, remote_port = four_tuple
        return make_tcp_frame(
            self.local_mac,
            peer_mac,
            local_ip,
            remote_ip,
            local_port,
            remote_port,
            born_at=self.sim.now,
            **kwargs
        )

    # -- public API toward libTOE -------------------------------------------

    def listen(self, ctx, port, backlog=128):
        if port in self.listeners:
            raise ValueError("port {} already bound".format(port))
        listener = Listener(ctx, port, backlog)
        self.listeners[port] = listener
        return listener

    def accept_wait(self, listener):
        """Generator: wait for an established incoming connection."""
        if listener.ready:
            return listener.ready.pop(0)
        waiter = self.sim.event()
        listener.waiters.append(waiter)
        info = yield waiter
        return info

    def connect(self, ctx, remote_ip, remote_port):
        """Generator: active open; returns EstablishedInfo."""
        peer_mac = yield from self._resolve(remote_ip)
        local_port = self._next_port()
        four = (self.local_ip, remote_ip, local_port, remote_port)
        iss = self._next_iss()
        pending = PendingConnection(SYN_SENT, four, iss, ctx=ctx, waiter=self.sim.event())
        pending.peer_mac = peer_mac
        self.pending[four] = pending
        self._send_syn(pending)
        info = yield pending.waiter
        if info is None:
            raise ConnectRefusedError("connect to {}:{} failed".format(remote_ip, remote_port))
        return info

    def notify_close(self, conn_index):
        """libTOE close(): begin teardown monitoring for the connection."""
        entry = self.directory.get(conn_index)
        if entry is not None:
            entry.closing = True
            entry.close_requested_at = self.sim.now

    # -- frame handling -----------------------------------------------------

    def _rx_loop(self):
        ring = self.nic.control_rx_ring()
        while True:
            frame = yield ring.get()
            self._handle_frame(frame)

    def handle_frame(self, frame):
        """Synchronous frame entry point (used by the slow-path shim)."""
        self._handle_frame(frame)

    def _handle_frame(self, frame):
        if frame.arp is not None:
            self._handle_arp(frame)
            return
        if frame.tcp is None:
            return
        tcp = frame.tcp
        if tcp.flags & FLAG_RST:
            self._handle_rst(frame)
            return
        if tcp.flags & FLAG_SYN and not (tcp.flags & FLAG_ACK):
            self._handle_syn(frame)
            return
        if tcp.flags & FLAG_SYN and tcp.flags & FLAG_ACK:
            self._handle_syn_ack(frame)
            return
        if tcp.flags & FLAG_ACK and not frame.payload:
            if self._complete_handshake(frame):
                return
            # Bare duplicate handshake ACK for a live connection: ignore.
            four = (self.local_ip, frame.ip.src, tcp.dport, tcp.sport)
            if self.directory.lookup(four) is not None:
                return
            if self.config.syn_defense_enabled:
                # RFC 793: an ACK for a connection we know nothing about
                # gets RST(seq=SEG.ACK) — but through the RFC 5961 rate
                # limiter, so an ACK storm cannot make us amplify it.
                if self._challenge_allowed():
                    self.challenge_acks += 1
                    self._send_rst(frame)
                return
            return
        # Stray data-path segment for an unknown connection: RST it so
        # the peer tears down. Under the deferred-accept defense the
        # final handshake ACK may ride on the first data segment (or the
        # data may simply outrun it through the slow path) — complete
        # the handshake and let the peer's RTO resend the payload.
        if self._complete_handshake(frame):
            return
        self._send_rst(frame)

    def _handle_arp(self, frame):
        arp = frame.arp
        if arp.op == ARP_REQUEST and arp.target_ip == self.local_ip:
            reply = arp.reply(self.local_mac)
            eth = EthernetHeader(dst=arp.sender_mac, src=self.local_mac, ethertype=ETHERTYPE_ARP)
            self._control_tx(Frame(eth, arp=reply, born_at=self.sim.now))
            self.arp_table[arp.sender_ip] = arp.sender_mac
        elif arp.op == ARP_REPLY:
            self.arp_table[arp.sender_ip] = arp.sender_mac
            for waiter in self._arp_waiters.pop(arp.sender_ip, []):
                waiter.succeed(arp.sender_mac)

    def _resolve(self, ip):
        """Generator: ARP resolution with one retry."""
        if ip in self.arp_table:
            return self.arp_table[ip]
        waiter = self.sim.event()
        self._arp_waiters.setdefault(ip, []).append(waiter)
        request = ArpHeader.request(self.local_mac, self.local_ip, ip)
        eth = EthernetHeader(dst=BROADCAST_MAC, src=self.local_mac, ethertype=ETHERTYPE_ARP)
        self._control_tx(Frame(eth, arp=request, born_at=self.sim.now))
        result = yield self.sim.any_of([waiter, self.sim.timeout(5_000_000)])
        if ip in self.arp_table:
            return self.arp_table[ip]
        # Retry once, then fail.
        self._control_tx(Frame(eth.copy(), arp=request, born_at=self.sim.now))
        yield self.sim.timeout(5_000_000)
        if ip in self.arp_table:
            return self.arp_table[ip]
        raise ConnectRefusedError("ARP resolution failed for {}".format(ip))

    def _handle_syn(self, frame):
        port = frame.tcp.dport
        listener = self.listeners.get(port)
        if listener is None:
            self._send_rst(frame)
            return
        four = (self.local_ip, frame.ip.src, port, frame.tcp.sport)
        if four in self.pending:
            # SYN retransmission: resend our SYN-ACK.
            self._send_syn_ack(self.pending[four])
            return
        if not self.policy.admit(len(self.directory)):
            self._send_rst(frame)
            return
        if listener.backlog_full():
            # listen(backlog=...) means what it says: past the bound,
            # excess SYNs are silently dropped (the peer's SYN
            # retransmission retries once accept() drains the queue).
            listener.syn_dropped += 1
            self.syn_dropped += 1
            return
        config = self.config
        if config.syn_defense_enabled and self.embryonic >= config.embryonic_limit:
            # Embryonic budget spent: fall back to a stateless SYN
            # cookie. The SYN-ACK encodes the four-tuple in its ISN; no
            # pending entry, no buffers, no slab slot until the peer
            # echoes the cookie back in its handshake ACK.
            self.cookies_sent += 1
            irs = (frame.tcp.seq + 1) & 0xFFFFFFFF
            self.arp_table.setdefault(frame.ip.src, frame.eth.src)
            syn_ack = make_tcp_frame(
                self.local_mac,
                frame.eth.src,
                self.local_ip,
                frame.ip.src,
                port,
                frame.tcp.sport,
                seq=self._syn_cookie(four, irs),
                ack=irs,
                flags=FLAG_SYN | FLAG_ACK,
                window=0xFFFF,
                options=self._syn_options(),
                born_at=self.sim.now,
            )
            self._control_tx(syn_ack)
            return
        pending = PendingConnection(SYN_RCVD, four, self._next_iss(), listener=listener)
        pending.irs = (frame.tcp.seq + 1) & 0xFFFFFFFF
        pending.peer_mac = frame.eth.src
        pending.remote_win = frame.tcp.window
        self.arp_table.setdefault(frame.ip.src, frame.eth.src)
        self.pending[four] = pending
        if config.syn_defense_enabled:
            # Overload-safe path: park in the embryonic table and wait
            # for the final handshake ACK before installing any
            # data-path state. The half-open reaper bounds how long a
            # silent peer can hold the slot.
            pending.created_at = self.sim.now
            pending.embryonic = True
            self.embryonic += 1
            listener.embryonic += 1
            self._send_syn_ack(pending)
            return
        self._send_syn_ack(pending)
        # Install the data-path state now (see module docstring).
        self._establish(pending)

    def _handle_syn_ack(self, frame):
        four = (self.local_ip, frame.ip.src, frame.tcp.dport, frame.tcp.sport)
        pending = self.pending.get(four)
        if pending is None or pending.state != SYN_SENT:
            return
        pending.irs = (frame.tcp.seq + 1) & 0xFFFFFFFF
        pending.remote_win = frame.tcp.window
        # Final handshake ACK.
        ack = self._tcp_frame(
            pending.peer_mac,
            four,
            seq=(pending.iss + 1) & 0xFFFFFFFF,
            ack=pending.irs,
            flags=FLAG_ACK,
            window=0xFFFF,
        )
        self._control_tx(ack)
        self._establish(pending)

    def _handle_rst(self, frame):
        four = (self.local_ip, frame.ip.src, frame.tcp.dport, frame.tcp.sport)
        pending = self.pending.pop(four, None)
        if pending is not None:
            self._note_pending_gone(pending)
            if pending.waiter is not None and not pending.waiter.triggered:
                pending.waiter.fail(
                    ConnectRefusedError(
                        "connection to {}:{} refused".format(frame.ip.src, frame.tcp.sport)
                    )
                )
            return
        # RST against an *established* connection: validate the sequence
        # against our receive window (blind-RST hardening, RFC 5961).
        entry = self.directory.lookup(four)
        if entry is None:
            return
        proto = entry.record.proto
        offset = (frame.tcp.seq - proto.ack) & 0xFFFFFFFF
        if offset >= max(1, proto.rx_avail):
            return
        if offset != 0:
            # In-window but not an exact rcv_nxt match: RFC 5961 §3.2
            # says challenge-ACK instead of tearing down, so a blind RST
            # storm has to hit one exact sequence number per connection.
            self._send_challenge_ack(entry)
            return
        self.resets_received += 1
        self._teardown_entry(entry, "reset")

    def _teardown_entry(self, entry, reason):
        """Remove directory + NIC state and surface a typed error."""
        self.directory.remove(entry.index)
        self.nic.remove_connection(entry.index)
        if self.recovery is not None:
            self.recovery.forget(entry.index)
        post = entry.record.post
        pair = self.nic.context_pair(post.context_id)
        if pair is not None:
            pair.nic_deliver(
                Notification(
                    NOTIFY_ERROR,
                    post.opaque,
                    entry.index,
                    context_id=post.context_id,
                    created_at=self.sim.now,
                    error=reason,
                )
            )

    def _abort_connection(self, entry):
        """Max-retry abort: RST the peer, tear down, surface a timeout."""
        record = entry.record
        rst = self._tcp_frame(
            record.pre.peer_mac,
            record.four_tuple,
            seq=record.proto.seq,
            ack=record.proto.ack,
            flags=FLAG_RST | FLAG_ACK,
        )
        self._control_tx(rst)
        self.aborts += 1
        self._teardown_entry(entry, "timeout")

    def _send_rst(self, frame):
        rst = make_tcp_frame(
            self.local_mac,
            frame.eth.src,
            self.local_ip,
            frame.ip.src,
            frame.tcp.dport,
            frame.tcp.sport,
            seq=frame.tcp.ack,
            ack=(frame.tcp.seq + len(frame.payload)) & 0xFFFFFFFF,
            flags=FLAG_RST | FLAG_ACK,
            born_at=self.sim.now,
        )
        self._control_tx(rst)

    # -- overload defense ---------------------------------------------------

    def _challenge_allowed(self):
        """RFC 5961 §7 ACK-throttling: at most ``challenge_ack_limit``
        challenge responses per ``challenge_ack_interval_ns`` window."""
        config = self.config
        now = self.sim.now
        if now - self._challenge_window_start >= config.challenge_ack_interval_ns:
            self._challenge_window_start = now
            self._challenge_window_count = 0
        if self._challenge_window_count >= config.challenge_ack_limit:
            self.challenge_acks_limited += 1
            return False
        self._challenge_window_count += 1
        return True

    def _send_challenge_ack(self, entry):
        if not self._challenge_allowed():
            return
        self.challenge_acks += 1
        proto = entry.record.proto
        frame = self._tcp_frame(
            entry.record.pre.peer_mac,
            entry.record.four_tuple,
            seq=proto.seq,
            ack=proto.ack,
            flags=FLAG_ACK,
            window=advertised_window(proto),
        )
        self._control_tx(frame)

    def _syn_cookie(self, four_tuple, irs):
        """Stateless SYN-cookie ISN for ``four_tuple``: everything the
        final handshake ACK echoes back (its ack-1) plus a secret, so we
        can validate it without having kept any per-SYN state."""
        local_ip, remote_ip, local_port, remote_port = four_tuple
        material = struct.pack(
            ">IIHHII",
            local_ip & 0xFFFFFFFF,
            remote_ip & 0xFFFFFFFF,
            local_port & 0xFFFF,
            remote_port & 0xFFFF,
            irs & 0xFFFFFFFF,
            self.config.syn_cookie_secret & 0xFFFFFFFF,
        )
        return zlib.crc32(material) & 0xFFFFFFFF

    def _note_pending_gone(self, pending):
        """Release the embryonic charge when a SYN_RCVD pending leaves
        the table for any reason (established, reset, reaped, retried
        out)."""
        if not pending.embryonic:
            return
        pending.embryonic = False
        self.embryonic -= 1
        if pending.listener is not None:
            pending.listener.embryonic -= 1

    def _complete_handshake(self, frame):
        """Final handshake ACK at the server: establish a parked
        embryonic connection, or validate a stateless SYN cookie.

        Returns True when the frame was consumed. With the defense off
        this never fires — SYN_RCVD pendings are established on the
        SYN-ACK and the cookie path is gated on the config flag."""
        tcp = frame.tcp
        if not tcp.flags & FLAG_ACK:
            return False
        four = (self.local_ip, frame.ip.src, tcp.dport, tcp.sport)
        pending = self.pending.get(four)
        if pending is not None and pending.state == SYN_RCVD:
            if tcp.ack != ((pending.iss + 1) & 0xFFFFFFFF):
                return False
            pending.remote_win = tcp.window
            self._establish(pending)
            return True
        if not self.config.syn_defense_enabled:
            return False
        if self.directory.lookup(four) is not None:
            return False
        listener = self.listeners.get(tcp.dport)
        if listener is None:
            return False
        # Cookie validation: the peer's ack is our SYN-ACK ISN + 1 and
        # its seq is the irs the cookie was minted over.
        irs = tcp.seq & 0xFFFFFFFF
        iss = (tcp.ack - 1) & 0xFFFFFFFF
        if iss != self._syn_cookie(four, irs):
            return False
        if listener.backlog_full():
            listener.syn_dropped += 1
            self.syn_dropped += 1
            return True
        pending = PendingConnection(SYN_RCVD, four, iss, listener=listener)
        pending.irs = irs
        pending.peer_mac = frame.eth.src
        pending.remote_win = tcp.window
        self.arp_table.setdefault(frame.ip.src, frame.eth.src)
        self.cookies_validated += 1
        self._establish(pending)
        return True

    def _send_syn(self, pending):
        syn = self._tcp_frame(
            pending.peer_mac,
            pending.four_tuple,
            seq=pending.iss,
            flags=FLAG_SYN,
            window=0xFFFF,
            options=self._syn_options(),
        )
        pending.last_sent_at = self.sim.now
        pending.attempts += 1
        self._control_tx(syn)

    def _send_syn_ack(self, pending):
        syn_ack = self._tcp_frame(
            pending.peer_mac,
            pending.four_tuple,
            seq=pending.iss,
            ack=pending.irs,
            flags=FLAG_SYN | FLAG_ACK,
            window=0xFFFF,
            options=self._syn_options(),
        )
        pending.last_sent_at = self.sim.now
        pending.attempts += 1
        self._control_tx(syn_ack)

    # -- establishment -----------------------------------------------------

    def _establish(self, pending):
        self.pending.pop(pending.four_tuple, None)
        self._note_pending_gone(pending)
        rx_buffer, tx_buffer = self._alloc_buffers()
        index = self.nic.allocate_connection_index()
        ctx = pending.ctx if pending.ctx is not None else pending.listener.ctx
        # The NIC's opaque handle doubles as a generation token: unique
        # per establishment, so libTOE can discard notifications still
        # queued for an earlier connection that used the same index.
        self._conn_token += 1
        token = self._conn_token
        record = self.nic.offload_connection(
            index=index,
            four_tuple=pending.four_tuple,
            peer_mac=pending.peer_mac,
            local_mac=self.local_mac,
            iss=(pending.iss + 1) & 0xFFFFFFFF,
            irs=pending.irs,
            context_id=ctx.context_id,
            opaque=token,
            rx_buffer=rx_buffer.as_triple(),
            tx_buffer=tx_buffer.as_triple(),
            remote_win=pending.remote_win << WINDOW_SCALE,
        )
        flow = self.cc.new_flow()
        if self.policy.rate_limit_bps is not None:
            flow.rate_bps = min(flow.rate_bps, self.policy.rate_limit_bps)
        self.directory.add(index, record, flow)
        self._program_rate(index, flow)
        if self.recovery is not None:
            self.recovery.track(
                index,
                record,
                snd_iss=(pending.iss + 1) & 0xFFFFFFFF,
                rcv_irs=pending.irs,
            )
        info = EstablishedInfo(index, pending.four_tuple, rx_buffer, tx_buffer, token=token)
        if pending.waiter is not None:
            pending.waiter.succeed(info)
        elif pending.listener is not None:
            pending.listener.deliver(info)

    def _program_rate(self, index, flow):
        if not self.cc_enabled:
            self.nic.set_flow_rate(index, 0)
            return
        self.nic.set_flow_rate(index, self.cc.scheduler_rate(flow))

    # -- timers ------------------------------------------------------------

    def _timer_loop(self):
        config = self.config
        while True:
            yield self.sim.timeout(config.timer_tick_ns)
            if self.recovery is not None and self.recovery.degraded:
                # The data path is down and being recovered: nothing to
                # retransmit into, and outage time must not count toward
                # abort thresholds.
                continue
            now = self.sim.now
            # Handshake retransmissions (and the half-open reaper).
            for pending in list(self.pending.values()):
                if (
                    pending.embryonic
                    and now - pending.created_at > config.half_open_timeout_ns
                ):
                    # Half-open reaper: a peer that SYNs and goes silent
                    # only holds an embryonic slot for the timeout, not
                    # for max_syn_retries worth of SYN-ACK RTOs.
                    self.pending.pop(pending.four_tuple, None)
                    self._note_pending_gone(pending)
                    self.embryonic_reaped += 1
                    continue
                if now - pending.last_sent_at < config.syn_rto_ns:
                    continue
                if pending.attempts >= config.max_syn_retries:
                    self.pending.pop(pending.four_tuple, None)
                    self._note_pending_gone(pending)
                    if pending.waiter is not None and not pending.waiter.triggered:
                        remote_ip, remote_port = pending.four_tuple[1], pending.four_tuple[3]
                        pending.waiter.fail(
                            HandshakeTimeoutError(
                                "handshake to {}:{} timed out after {} attempts".format(
                                    remote_ip, remote_port, pending.attempts
                                )
                            )
                        )
                    continue
                if pending.state == SYN_SENT:
                    self.syn_retransmits += 1
                    self._send_syn(pending)
                else:
                    self.syn_retransmits += 1
                    self._send_syn_ack(pending)
            # Data-path retransmission timeouts and zero-window probes.
            for entry in self.directory:
                proto = entry.record.proto
                base_rto = max(config.rto_ns, 4_000 * max(1, entry.record.post.rtt_est))
                rto = min(base_rto * entry.rto_multiplier, config.rto_max_ns)
                if proto.remote_win == 0 and (proto.tx_sent > 0 or proto.tx_avail > 0):
                    # Persist state: the peer (or its slow-path shim)
                    # closed the window. Classic TCP probes forever —
                    # zero-window probing never aborts a connection.
                    entry.retry_attempts = 0
                    if entry.stalled_since is None:
                        entry.stalled_since = now
                    elif now - entry.stalled_since > rto:
                        entry.stalled_since = now
                        entry.rto_multiplier = min(entry.rto_multiplier * 2, 64)
                        self.probes_posted += 1
                        self.nic.post_hc(
                            CONTROL_CONTEXT, HostControlDescriptor(HC_PROBE, entry.index)
                        )
                elif proto.tx_sent > 0:
                    snd_una = (proto.seq - proto.tx_sent) & 0xFFFFFFFF
                    if entry.last_snd_una != snd_una:
                        # Forward progress: restart the timer, reset the
                        # exponential backoff.
                        entry.last_snd_una = snd_una
                        entry.stalled_since = now
                        entry.reset_backoff()
                    elif entry.stalled_since is not None and now - entry.stalled_since > rto:
                        if entry.retry_attempts >= config.max_data_retries:
                            self._abort_connection(entry)
                            continue
                        entry.stalled_since = now
                        entry.retry_attempts += 1
                        entry.rto_multiplier = min(entry.rto_multiplier * 2, 64)
                        self.retransmits_posted += 1
                        self.nic.post_hc(
                            CONTROL_CONTEXT,
                            HostControlDescriptor(HC_RETRANSMIT, entry.index),
                        )
                else:
                    entry.stalled_since = None
                    entry.reset_backoff()
                # Teardown: remove once closed on both sides (or linger out).
                if entry.closing:
                    done = (
                        proto.fin_seq is None
                        and not proto.fin_pending
                        and proto.tx_sent == 0
                        and proto.rx_fin_seq is not None
                    )
                    lingered = now - entry.close_requested_at > config.linger_ns
                    if done or lingered:
                        self.directory.remove(entry.index)
                        self.nic.remove_connection(entry.index)
                        if self.recovery is not None:
                            self.recovery.forget(entry.index)

    # -- congestion control ---------------------------------------------------

    def _cc_loop(self):
        config = self.config
        while True:
            yield self.sim.timeout(config.cc_interval_ns)
            if not self.cc_enabled:
                continue
            if self.recovery is not None and self.recovery.degraded:
                continue
            for entry in self.directory:
                raw = self.nic.read_cc_stats(entry.index)
                if raw is None:
                    continue
                acked, ecnb, fretx, rtt = raw
                stats = CcStats(acked, ecnb, fretx, rtt)
                entry.cc_flow.last_rtt_us = rtt
                new_rate = self.cc.update(entry.cc_flow, stats)
                if self.policy.rate_limit_bps is not None:
                    new_rate = min(new_rate, self.policy.rate_limit_bps)
                if new_rate != entry.cc_flow.rate_bps:
                    entry.cc_flow.rate_bps = new_rate
                    self._program_rate(entry.index, entry.cc_flow)
