#!/usr/bin/env python
"""Connection splicing on the NIC (paper §3.3, Listing 1 / AccelTCP).

A proxy pattern: once the control plane installs a splice entry for a
connection pair, segments bounce off the SmartNIC's XDP stage — headers
rewritten, sequence numbers translated — without ever touching the host
or the TCP pipeline. This example pushes a burst through the spliced
path and reports the achieved packets-per-second on the NIC.

Run:  python examples/connection_splicing.py
"""

from repro.flextoe import FlexToeNic
from repro.flextoe.module import ModuleChain
from repro.net import Link, Port
from repro.proto import FLAG_ACK, make_tcp_frame, str_to_ip
from repro.sim import Simulator
from repro.xdp import XdpAdapter
from repro.xdp.builtins import SpliceEntry, SpliceProgram, splice_key


def main():
    sim = Simulator()
    splice = SpliceProgram()
    nic = FlexToeNic(sim, ingress_modules=ModuleChain([XdpAdapter(py_program=splice)]))

    wire = Port(sim, "wire")
    nic_port = Port(sim, "nic")
    Link(sim, wire, nic_port, rate_bps=40_000_000_000, prop_delay_ns=100)
    nic.attach_port(nic_port)

    returned = []
    last_arrival = {"t": 0}

    def on_return(frame):
        returned.append(frame)
        last_arrival["t"] = sim.now

    wire.receiver = on_return

    client_ip = str_to_ip("10.0.0.1")
    proxy_ip = str_to_ip("10.0.0.2")
    backend_ip = str_to_ip("10.0.0.3")

    # The control plane terminated both legs and configured the splice:
    # client->proxy segments are rewritten into proxy->backend segments.
    key = splice_key(client_ip, proxy_ip, 33000, 80)
    entry = SpliceEntry(
        remote_mac=0xBACCED,
        remote_ip=backend_ip,
        local_port=41000,
        remote_port=8080,
        seq_delta=555_000,
        ack_delta=777_000,
    )
    splice.install(key, entry)
    print("installed splice: client:33000 -> proxy:80  ==>  proxy:41000 -> backend:8080")

    n = 500
    for i in range(n):
        frame = make_tcp_frame(
            0xC11E27, 0xBB, client_ip, proxy_ip, 33000, 80,
            seq=1000 + i * 100, ack=2000, flags=FLAG_ACK, payload=b"x" * 100,
        )
        wire.send(frame)
    sim.run(until=10_000_000)

    sample = returned[0]
    print("spliced %d/%d segments in %.1f us of simulated time" % (
        len(returned), n, last_arrival["t"] / 1e3))
    print("first rewritten segment: dst_ip=%s ports=%d->%d seq=%d" % (
        "10.0.0.3" if sample.ip.dst == backend_ip else "??",
        sample.tcp.sport, sample.tcp.dport, sample.tcp.seq))
    elapsed_s = max(1, last_arrival["t"]) / 1e9
    print("effective splice rate: %.2f Mpps (paper: 6.4 Mpps at line rate)" % (
        len(returned) / elapsed_s / 1e6))


if __name__ == "__main__":
    main()
