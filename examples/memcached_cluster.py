#!/usr/bin/env python
"""Memcached over FlexTOE vs the Linux baseline, side by side.

The paper's headline application (§2.1/§5.1): a key-value server under
closed-loop memtier load. This example runs the same workload against a
FlexTOE-offloaded server and a Linux-stack server and prints throughput,
latency, and the host-CPU cycle breakdown for each — Table 1 in
miniature.

Run:  python examples/memcached_cluster.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from common import MemcachedBench  # noqa: E402  (benchmark helper reuse)


def run(stack):
    bench = MemcachedBench(stack, server_cores=2, clients_per_core=12)
    result = bench.run(window_ns=1_000_000)
    acct = bench.server.machine.aggregate_accounting()
    per_request = {
        category: cycles / max(1, result["completed"])
        for category, cycles in acct.cycles.items()
    }
    return result, per_request


def main():
    for stack in ("flextoe", "linux"):
        result, per_request = run(stack)
        hist = result["latency"]
        print("== %s ==" % stack)
        print("  throughput:  %.2f M ops/s" % (result["ops_per_sec"] / 1e6))
        print("  latency p50: %.1f us   p99: %.1f us" % (
            hist.percentile(50) / 1e3, hist.percentile(99) / 1e3))
        print("  host cycles/request by category:")
        for category in ("driver", "tcp", "sockets", "app", "other"):
            print("    %-8s %8.0f" % (category, per_request.get(category, 0)))
        print()


if __name__ == "__main__":
    main()
