#!/usr/bin/env python
"""Dynamic data-path extension: an eBPF firewall loaded into FlexTOE.

Demonstrates the flexibility story of §3.3: an eBPF program (assembled
from text, verified, and interpreted by the VM) is loaded at the
ingress hook; the "control plane" then blocks an IP by updating the
program's BPF hash map while traffic flows — no reboot, no pipeline
restart.

Run:  python examples/xdp_firewall.py
"""

from repro.flextoe import FlexToeNic
from repro.flextoe.module import ModuleChain
from repro.net import Link, Port
from repro.proto import FLAG_ACK, make_tcp_frame, str_to_ip
from repro.sim import Simulator
from repro.xdp import XdpAdapter
from repro.xdp.builtins import firewall_asm_program
from repro.xdp.builtins.firewall import BLACKLIST_FD, FIREWALL_ASM, block_ip


def main():
    print("eBPF firewall program:")
    print(FIREWALL_ASM)

    sim = Simulator()
    program, maps = firewall_asm_program()
    adapter = XdpAdapter(program=program, maps=maps, name="fw")
    nic = FlexToeNic(sim, ingress_modules=ModuleChain([adapter]))

    wire = Port(sim, "wire")
    nic_port = Port(sim, "nic")
    Link(sim, wire, nic_port, rate_bps=40_000_000_000, prop_delay_ns=100)
    nic.attach_port(nic_port)
    wire.receiver = lambda frame: None

    attacker = str_to_ip("10.0.0.66")
    victim = str_to_ip("10.0.0.2")

    def traffic(src_label, src_ip, count=5):
        for i in range(count):
            frame = make_tcp_frame(0xA, 0xB, src_ip, victim, 1000 + i, 80, flags=FLAG_ACK)
            wire.send(frame)

    traffic("attacker", attacker)
    sim.run(until=1_000_000)
    print("before blocking: dropped=%d passed=%d" % (
        adapter.results[0], adapter.results[1]))

    # Control plane updates the BPF map; the data-path reacts instantly.
    block_ip(maps[BLACKLIST_FD], attacker)
    print("\n[control-plane] blocked 10.0.0.66 via BPF map update")

    traffic("attacker", attacker)
    sim.run(until=2_000_000)
    print("after blocking:  dropped=%d passed=%d" % (
        adapter.results[0], adapter.results[1]))
    print("VM instructions executed across %d runs: %d" % (
        adapter.vm.runs, adapter.vm.total_instructions))


if __name__ == "__main__":
    main()
