#!/usr/bin/env python
"""Quickstart: two FlexTOE hosts, one echo RPC, end to end.

Builds the simulated testbed (switch + two machines with FlexTOE NICs),
establishes a TCP connection through the control plane, sends a request
through the offloaded data-path, and prints what happened inside the
NIC pipeline along the way.

Run:  python examples/quickstart.py
"""

from repro.harness import Testbed


def main():
    bed = Testbed(seed=42)
    server = bed.add_flextoe_host("server")
    client = bed.add_flextoe_host("client")
    bed.seed_all_arp()  # skip ARP round-trips for brevity
    sim = bed.sim

    server_ctx = server.new_context()
    client_ctx = client.new_context()

    def server_app():
        listener = server_ctx.listen(7000)
        sock = yield from server_ctx.accept(listener)
        print("[server] accepted connection %s" % (sock.four_tuple,))
        request = yield from server_ctx.recv(sock, 4096)
        print("[server] got %r at t=%.1f us" % (request, sim.now / 1e3))
        yield from server_ctx.send(sock, request.upper())
        yield from server_ctx.close(sock)

    def client_app():
        sock = yield from client_ctx.connect(server.ip, 7000)
        print("[client] connected at t=%.1f us" % (sim.now / 1e3))
        yield from client_ctx.send(sock, b"hello, flextoe!")
        reply = yield from client_ctx.recv(sock, 4096)
        print("[client] reply %r at t=%.1f us" % (reply, sim.now / 1e3))
        yield from client_ctx.close(sock)

    sim.process(server_app(), name="server-app")
    sim.process(client_app(), name="client-app")
    sim.run(until=50_000_000)

    dp = server.nic.datapath
    print("\n-- server NIC data-path counters --")
    print("frames received by MAC:      %d" % dp.rx_frames_seen)
    print("protocol-stage RX segments:  %d" % sum(s.processed["rx"] for s in dp.protocol_stages))
    print("protocol-stage TX segments:  %d" % sum(s.processed["tx"] for s in dp.protocol_stages))
    print("ACKs built by post stages:   %d" % sum(s.acks_built for s in dp.post_stages))
    print("frames out the NBI:          %d" % dp.nbi_stage.transmitted)
    print("PCIe DMA operations:         %d" % server.nic.chip.dma.ops)
    print("host CPU cycles (total):     %d" % server.machine.aggregate_accounting().total())


if __name__ == "__main__":
    main()
