#!/usr/bin/env python
"""Loss robustness across stacks (paper §5.3 / Figure 15, condensed).

Random packet drops are injected at the switch while small-RPC echo
traffic flows; the script prints throughput retained at each loss rate
for FlexTOE vs TAS vs Chelsio — showing FlexTOE's NIC-side ACK
processing recovering fastest and Chelsio's hardwired RTO-only recovery
collapsing.

Run:  python examples/loss_robustness.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from common import EchoBench  # noqa: E402
from repro.net import LossInjector  # noqa: E402


def measure(stack, loss_rate):
    bench = EchoBench(
        stack,
        n_connections=16,
        request_size=64,
        pipeline=8,
        server_cores=2,
        loss=lambda rng: LossInjector(rng, probability=loss_rate),
    )
    result = bench.run(warmup_ns=2_000_000, window_ns=10_000_000)
    return result["ops_per_sec"]


def main():
    rates = (0.0, 0.005, 0.02)
    print("%-8s " % "stack" + "".join("%12s" % ("%.1f%% loss" % (r * 100)) for r in rates))
    for stack in ("flextoe", "tas", "chelsio"):
        row = [measure(stack, r) for r in rates]
        cells = "".join("%12.0f" % v for v in row)
        retained = row[-1] / row[0] * 100 if row[0] else 0
        print("%-8s %s   (%.0f%% retained at 2%%)" % (stack, cells, retained))


if __name__ == "__main__":
    main()
