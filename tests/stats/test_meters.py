"""ThroughputMeter / IntervalSeries edge cases."""

import pytest

from repro.sim import Simulator
from repro.stats import IntervalSeries, ThroughputMeter


def _advance(sim, ns):
    def waiter():
        yield sim.timeout(ns)

    sim.process(waiter())
    sim.run()


def test_meter_elapsed_never_zero():
    # A meter read at its own start time must not divide by zero.
    meter = ThroughputMeter(Simulator())
    assert meter.elapsed_ns == 1
    assert meter.ops_per_sec == 0
    assert meter.bits_per_sec == 0


def test_meter_reset_restarts_window():
    sim = Simulator()
    meter = ThroughputMeter(sim)
    _advance(sim, 500)
    meter.record(100)
    meter.reset()
    assert meter.started_at == 500
    assert meter.events == 0
    assert meter.bytes == 0
    _advance(sim, 250)
    meter.record(125)
    assert meter.elapsed_ns == 250
    assert meter.ops_per_sec == pytest.approx(1e9 / 250)
    assert meter.bits_per_sec == pytest.approx(125 * 8 * 1e9 / 250)


def test_meter_rejects_unknown_attributes():
    # __slots__ guard: typos must fail loudly, not create dict entries.
    meter = ThroughputMeter(Simulator())
    with pytest.raises(AttributeError):
        meter.eventz = 1


def test_empty_series_is_safe():
    series = IntervalSeries()
    assert len(series) == 0
    assert series.percentile(50) == 0
    assert series.median == 0
    assert series.mean == 0


def test_series_percentile_clamps_to_range():
    series = IntervalSeries()
    for value in [10, 20, 30]:
        series.add(value)
    assert series.percentile(0) == 10
    assert series.percentile(100) == 30
    assert series.mean == 20
