"""ThroughputMeter / IntervalSeries edge cases."""

import pytest

from repro.sim import Simulator
from repro.stats import IntervalSeries, ThroughputMeter


def _advance(sim, ns):
    def waiter():
        yield sim.timeout(ns)

    sim.process(waiter())
    sim.run()


def test_meter_elapsed_never_zero():
    # A meter read at its own start time must not divide by zero.
    meter = ThroughputMeter(Simulator())
    assert meter.elapsed_ns == 1
    assert meter.ops_per_sec == 0
    assert meter.bits_per_sec == 0


def test_meter_reset_restarts_window():
    sim = Simulator()
    meter = ThroughputMeter(sim)
    _advance(sim, 500)
    meter.record(100)
    meter.reset()
    assert meter.started_at == 500
    assert meter.events == 0
    assert meter.bytes == 0
    _advance(sim, 250)
    meter.record(125)
    assert meter.elapsed_ns == 250
    assert meter.ops_per_sec == pytest.approx(1e9 / 250)
    assert meter.bits_per_sec == pytest.approx(125 * 8 * 1e9 / 250)


def test_meter_rejects_unknown_attributes():
    # __slots__ guard: typos must fail loudly, not create dict entries.
    meter = ThroughputMeter(Simulator())
    with pytest.raises(AttributeError):
        meter.eventz = 1


def test_empty_series_is_safe():
    series = IntervalSeries()
    assert len(series) == 0
    assert series.percentile(50) == 0
    assert series.median == 0
    assert series.mean == 0


def test_series_percentile_clamps_to_range():
    series = IntervalSeries()
    for value in [10, 20, 30]:
        series.add(value)
    assert series.percentile(0) == 10
    assert series.percentile(100) == 30
    assert series.mean == 20


# -- GoodputMeter: benign-only accounting under mixed load ----------------


def test_goodput_counts_only_benign_bytes():
    from repro.stats import GoodputMeter

    sim = Simulator()
    meter = GoodputMeter(sim)
    _advance(sim, 1_000)
    meter.record(1000, benign=True)
    meter.record(4000, benign=False)  # attack bytes that got through
    meter.record(500, benign=True)
    assert meter.benign_bytes == 1500
    assert meter.attack_bytes == 4000
    assert meter.benign_ops == 2
    assert meter.attack_ops == 1
    # The headline number is benign-only: hostile delivery never
    # inflates goodput, no matter the mix ratio.
    assert meter.goodput_bps == pytest.approx(1500 * 8 * 1e9 / 1_000)
    assert meter.offered_bytes == 5500


def test_goodput_elapsed_never_zero():
    from repro.stats import GoodputMeter

    meter = GoodputMeter(Simulator())
    assert meter.goodput_bps == 0
