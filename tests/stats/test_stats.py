"""Statistics utilities: histogram accuracy vs numpy, JFI, meters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.stats import IntervalSeries, LatencyHistogram, ThroughputMeter, jains_fairness_index


def test_histogram_basic_percentiles():
    hist = LatencyHistogram()
    for v in range(1, 101):
        hist.record(v * 1000)
    assert hist.count == 100
    assert hist.min_value == 1000
    assert hist.max_value == 100000
    # Log buckets: relative error bounded by 1/32.
    assert abs(hist.percentile(50) - 50000) / 50000 < 0.05
    assert abs(hist.percentile(99) - 99000) / 99000 < 0.05


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(min_value=1, max_value=10**9), min_size=10, max_size=2000),
    st.sampled_from([50, 90, 99, 99.9]),
)
def test_histogram_matches_numpy_within_bucket_error(values, pct):
    hist = LatencyHistogram()
    for v in values:
        hist.record(v)
    ours = hist.percentile(pct)
    ref = float(np.percentile(values, pct, method="inverted_cdf"))
    # Bounded relative error from the log bucketing.
    assert ours <= ref * (1 + 1 / 16) + 1
    assert ours >= ref * (1 - 1 / 16) - 1


def test_histogram_merge():
    a = LatencyHistogram()
    b = LatencyHistogram()
    for v in [10, 20, 30]:
        a.record(v)
    for v in [40, 50]:
        b.record(v)
    a.merge(b)
    assert a.count == 5
    assert a.min_value == 10
    assert a.max_value == 50


def test_histogram_rejects_negative():
    hist = LatencyHistogram()
    with pytest.raises(ValueError):
        hist.record(-1)


def test_histogram_empty_percentile():
    assert LatencyHistogram().percentile(99) == 0


def test_histogram_summary_shape():
    hist = LatencyHistogram()
    for v in [100, 200, 300]:
        hist.record(v)
    mn, p50, p99, p9999, mx = hist.summary()
    assert mn == 100 and mx == 300
    assert mn <= p50 <= p99 <= p9999 <= mx * (1 + 1 / 16)


def test_jfi_perfect_and_skewed():
    assert jains_fairness_index([5, 5, 5, 5]) == 1.0
    skewed = jains_fairness_index([100, 1, 1, 1])
    assert skewed < 0.3
    assert jains_fairness_index([]) == 1.0
    assert jains_fairness_index([0, 0]) == 1.0


@given(st.lists(st.floats(min_value=0.001, max_value=1e6), min_size=1, max_size=100))
def test_jfi_bounds(values):
    jfi = jains_fairness_index(values)
    assert 1.0 / len(values) - 1e-9 <= jfi <= 1.0 + 1e-9


def test_throughput_meter():
    sim = Simulator()
    meter = ThroughputMeter(sim)

    def gen(sim):
        for _ in range(10):
            yield sim.timeout(100)
            meter.record(nbytes=125)

    sim.process(gen(sim))
    sim.run()
    # 10 events, 1250 bytes over 1000 ns = 1e7 ops/s, 1e10 bps.
    assert meter.ops_per_sec == pytest.approx(1e7)
    assert meter.bits_per_sec == pytest.approx(1e10)
    meter.reset()
    assert meter.events == 0


def test_interval_series_percentiles():
    series = IntervalSeries()
    for v in [1, 2, 3, 4, 100]:
        series.add(v)
    assert series.median == 3
    assert series.percentile(1) == 1
    assert series.mean == 22
