"""Module API/chains and context-queue pair behavior."""

import pytest

from repro.flextoe.ctxq import ContextQueuePair
from repro.flextoe.descriptors import HC_TX_UPDATE, HostControlDescriptor, Notification, NOTIFY_RX
from repro.flextoe.module import (
    ACTION_DROP,
    ACTION_PASS,
    CountingModule,
    ModuleChain,
    NullModule,
    VlanStripModule,
)
from repro.proto import FLAG_ACK, make_tcp_frame
from repro.sim import Simulator


def frame(vlan=None):
    f = make_tcp_frame(1, 2, 3, 4, 5, 6, flags=FLAG_ACK)
    if vlan is not None:
        f.eth.vlan = vlan
    return f


def test_null_module_passes():
    assert NullModule().handle(frame(), None) == ACTION_PASS


def test_counting_module_counts_by_flags():
    counter = CountingModule()
    counter.handle(frame(), None)
    counter.handle(frame(), None)
    assert counter.counts[FLAG_ACK] == 2
    counter.reset()
    assert not counter.counts


def test_vlan_strip_module():
    strip = VlanStripModule()
    f = frame(vlan=7)
    strip.handle(f, None)
    assert f.eth.vlan is None
    assert strip.stripped == 1


def test_chain_cost_and_management():
    chain = ModuleChain([NullModule(), CountingModule()])
    assert chain.total_cost == NullModule.cost_cycles + CountingModule.cost_cycles
    assert len(chain) == 2
    chain.remove("null")
    assert len(chain) == 1
    chain.add(VlanStripModule())
    assert len(chain) == 2


def test_chain_short_circuits():
    class Dropper(NullModule):
        name = "drop"

        def handle(self, frame, meta):
            return ACTION_DROP

    counter = CountingModule()
    chain = ModuleChain([Dropper(), counter])
    assert chain.run(frame(), None) == ACTION_DROP
    assert not counter.counts


def test_ctxq_post_and_fetch():
    sim = Simulator()
    pair = ContextQueuePair(sim, context_id=1, capacity=4)
    for i in range(3):
        assert pair.post_hc(HostControlDescriptor(HC_TX_UPDATE, i, value=10))
    assert pair.hc_posted == 3
    batch = pair.nic_fetch_batch(max_batch=2)
    assert [d.conn_index for d in batch] == [0, 1]
    assert pair.has_outbound


def test_ctxq_capacity_overflow():
    sim = Simulator()
    pair = ContextQueuePair(sim, context_id=1, capacity=1)
    assert pair.post_hc(HostControlDescriptor(HC_TX_UPDATE, 0))
    assert not pair.post_hc(HostControlDescriptor(HC_TX_UPDATE, 1))


def test_ctxq_deliver_wakes_waiters():
    sim = Simulator()
    pair = ContextQueuePair(sim, context_id=1)
    woke = []

    def sleeper(sim, name):
        yield pair.wait()
        woke.append(name)

    sim.process(sleeper(sim, "a"))
    sim.process(sleeper(sim, "b"))
    sim.run()
    assert not woke
    pair.nic_deliver(Notification(NOTIFY_RX, 0, 0, length=10))
    sim.run()
    assert sorted(woke) == ["a", "b"]
    assert pair.interrupts == 1  # one MSI-X for the batch of sleepers


def test_ctxq_wait_with_pending_returns_immediately():
    sim = Simulator()
    pair = ContextQueuePair(sim, context_id=1)
    pair.nic_deliver(Notification(NOTIFY_RX, 0, 0, length=1))
    event = pair.wait()
    assert event.triggered
    assert pair.poll() is not None
    assert pair.poll() is None
