"""Teardown races inside the pipeline: a stage that drops work whose
connection vanished must release the work's NBI ordering ticket, or the
egress reorder buffer waits forever and every later frame on the NIC
wedges (seqr.py's skip() contract)."""

from repro.flextoe import FlexToeNic
from repro.flextoe.config import PipelineConfig
from repro.flextoe.descriptors import WORK_TX, ProtoSnapshot, SegWork
from repro.sim import Simulator


def drain(result):
    """Run a stage helper to completion whether or not it is a generator."""
    if not hasattr(result, "send"):
        return result
    try:
        while True:
            next(result)
    except StopIteration as stop:
        return stop.value


def make_dp():
    nic = FlexToeNic(Simulator(), config=PipelineConfig.with_intra_fpc_parallelism())
    return nic.datapath


def ticketed_work(dp, conn_index=7):
    """TX work the way the protocol stage hands it off: snapshot built,
    NBI egress ticket taken — but for a connection no longer installed."""
    work = SegWork(WORK_TX)
    work.conn_index = conn_index
    snapshot = ProtoSnapshot(WORK_TX)
    snapshot.nbi_seq = dp.nbi_seqr.assign(work)
    work.snapshot = snapshot
    return work


def test_post_stage_drop_releases_nbi_ticket():
    dp = make_dp()
    work = ticketed_work(dp)
    assert dp.conn_table.get(work.conn_index) is None
    emit = drain(dp.post_stages[0]._process(None, work))
    assert emit is False  # nothing forwarded to DMA
    # The ticket was skipped: the reorder buffer's expectation moved
    # past it, so the egress stream is not stalled.
    assert dp.nbi_gro.expected == dp.nbi_seqr.issued


def test_dma_stage_drop_releases_nbi_ticket():
    dp = make_dp()
    work = ticketed_work(dp)
    drain(dp.dma_stages[0]._process(None, work))
    assert dp.nbi_gro.expected == dp.nbi_seqr.issued


def test_later_egress_flows_after_mid_pipeline_drop():
    # The wedge regression in full: ticket 0 is dropped mid-pipeline,
    # ticket 1 belongs to a live frame — it must release immediately
    # rather than wait behind the orphan.
    dp = make_dp()
    dropped = ticketed_work(dp)
    drain(dp.post_stages[0]._process(None, dropped))

    live = SegWork(WORK_TX)
    live.conn_index = 3
    dp.nbi_seqr.assign(live)
    dp.nbi_gro.offer(live)
    assert dp.nbi_gro.released == 1
    assert dp.nbi_gro.buffered == 0
