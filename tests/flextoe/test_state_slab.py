"""Property-based tests of the slab storage layer.

The slab is the foundation under every connection's state (and the
host-side shadows), so its invariants are checked against a pure-Python
model under randomized alloc/free/write/read interleavings:

* no aliasing: writes through one live view never show through another;
* flyweight reads always equal the model (a dict per live slot);
* freed slots are fully zeroed — scalar columns via the raw
  ``column_view`` buffer, OBJ columns and overflow dicts by direct
  inspection — before any reuse can observe stale state.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flextoe.slab import FLAG, INT, OBJ, U8, U16, Slab, SlabView, attach_fields

FIELDS = (
    ("alpha", INT),
    ("beta", INT),
    ("gamma", FLAG),
    ("delta", OBJ),
    ("eps", U8),
    ("zeta", U16),
)
FIELD_NAMES = tuple(name for name, _ in FIELDS)

#: Values exercising every INT encoding path: inline ints, None
#: (sentinel), and spill values (non-int / out-of-64-bit-range).
INT_VALUES = st.one_of(
    st.integers(min_value=-(1 << 40), max_value=(1 << 40)),
    st.none(),
    st.integers(min_value=1 << 64, max_value=1 << 70),  # overflow spill
    st.binary(min_size=6, max_size=6),  # MAC-like spill
)
FLAG_VALUES = st.booleans()
OBJ_VALUES = st.one_of(st.none(), st.text(max_size=4), st.tuples(st.integers()))
U8_VALUES = st.integers(min_value=0, max_value=255)
U16_VALUES = st.integers(min_value=0, max_value=0xFFFF)


def make_slab_and_cls(initial=4):
    slab = Slab(fields=FIELDS, initial=initial, name="prop")

    class View(SlabView):
        __slots__ = ()
        SLAB_FIELDS = FIELD_NAMES

    attach_fields(View, slab, kinds=dict(FIELDS))
    return slab, View


def value_for(field, data):
    if field == "gamma":
        return data.draw(FLAG_VALUES)
    if field == "delta":
        return data.draw(OBJ_VALUES)
    if field == "eps":
        return data.draw(U8_VALUES)
    if field == "zeta":
        return data.draw(U16_VALUES)
    return data.draw(INT_VALUES)


def normalize(field, value):
    """What a read should produce after writing ``value``."""
    if field == "gamma":
        return bool(value)
    return value


@settings(max_examples=120, deadline=None)
@given(st.data())
def test_random_alloc_free_matches_model(data):
    """Interleaved alloc/free/write with a dict-per-slot model oracle."""
    slab, View = make_slab_and_cls()
    live = {}  # handle -> (view, model dict)
    next_handle = 0
    for _ in range(data.draw(st.integers(min_value=1, max_value=60))):
        ops = ["alloc"]
        if live:
            ops += ["write", "free", "check"]
        op = data.draw(st.sampled_from(ops))
        if op == "alloc":
            view = View()
            view._bind()
            # Model of a fresh slot: scalar columns zero, FLAG False,
            # OBJ None.
            live[next_handle] = (
                view,
                {name: (False if kind == FLAG else (None if kind == OBJ else 0)) for name, kind in FIELDS},
            )
            next_handle += 1
        elif op == "write":
            handle = data.draw(st.sampled_from(sorted(live)))
            view, model = live[handle]
            field = data.draw(st.sampled_from(FIELD_NAMES))
            value = value_for(field, data)
            setattr(view, field, value)
            model[field] = normalize(field, value)
        elif op == "free":
            handle = data.draw(st.sampled_from(sorted(live)))
            view, _ = live.pop(handle)
            slab.free(view.slab_slot)
            view._own = False  # slot returned; defuse the destructor
        else:  # check every live view against its model
            for view, model in live.values():
                for field in FIELD_NAMES:
                    assert getattr(view, field) == model[field]
        # Aliasing invariant: distinct live handles sit on distinct slots.
        slots = [view.slab_slot for view, _ in live.values()]
        assert len(slots) == len(set(slots))
    for view, model in live.values():
        for field in FIELD_NAMES:
            assert getattr(view, field) == model[field]
    assert slab.live == len(live)


@settings(max_examples=80, deadline=None)
@given(st.data())
def test_writes_never_alias_across_live_slots(data):
    """Writing one slot leaves every other live slot's fields intact."""
    slab, View = make_slab_and_cls()
    views = []
    for i in range(data.draw(st.integers(min_value=2, max_value=10))):
        view = View()
        view._bind()
        view.alpha = 1000 + i
        view.beta = -i
        view.gamma = bool(i % 2)
        view.delta = ("slot", i)
        views.append(view)
    victim = data.draw(st.integers(min_value=0, max_value=len(views) - 1))
    view = views[victim]
    view.alpha = data.draw(st.integers())
    view.gamma = data.draw(st.booleans())
    view.delta = "overwritten"
    for i, other in enumerate(views):
        if i == victim:
            continue
        assert other.alpha == 1000 + i
        assert other.beta == -i
        assert other.gamma == bool(i % 2)
        assert other.delta == ("slot", i)


@settings(max_examples=80, deadline=None)
@given(st.data())
def test_freed_slots_are_fully_zeroed(data):
    """After free(), the slot's scalar cells read 0 through the raw
    column buffer, OBJ cells are None, and no overflow entry remains."""
    slab, View = make_slab_and_cls()
    views = []
    for _ in range(data.draw(st.integers(min_value=1, max_value=8))):
        view = View()
        view._bind()
        for field in FIELD_NAMES:
            setattr(view, field, value_for(field, data))
        views.append(view)
    freed_slots = []
    for view in views:
        freed_slots.append(view.slab_slot)
        slab.free(view.slab_slot)
        view._own = False
    for slot in freed_slots:
        for name, kind in FIELDS:
            if kind == OBJ:
                assert slab.columns[name][slot] is None
            else:
                assert slab.column_view(name)[slot] == 0
            assert slot not in slab.overflow.get(name, {})
    # Reuse starts from the zeroed state: a fresh view on a recycled
    # slot observes defaults, not the prior tenant's values.
    fresh = View()
    fresh._bind()
    assert fresh.slab_slot in freed_slots  # LIFO free list recycles
    assert fresh.alpha == 0 and fresh.beta == 0
    assert fresh.gamma is False and fresh.delta is None


def test_slab_rejects_bad_declarations():
    import pytest

    with pytest.raises(ValueError):
        Slab(fields=[("x", INT), ("x", FLAG)])
    with pytest.raises(ValueError):
        Slab(fields=[("x", "float")])
    slab = Slab(fields=[("x", INT), ("o", OBJ)])
    with pytest.raises(TypeError):
        slab.column_view("o")


def test_linear_growth_and_stats():
    slab, View = make_slab_and_cls(initial=2)
    views = []
    for _ in range(5):  # force growth past the initial capacity
        view = View()
        view._bind()
        views.append(view)
    stats = slab.stats()
    assert stats["live"] == 5
    assert stats["high_water"] == 5
    # INT + INT + FLAG + OBJ + U8 + U16 = 8 + 8 + 1 + 8 + 1 + 2.
    assert stats["bytes_per_slot"] == 28
    assert slab.capacity >= 5


def test_narrow_columns_enforce_their_range():
    import pytest

    slab, View = make_slab_and_cls()
    view = View()
    view._bind()
    view.eps = 255
    view.zeta = 0xFFFF
    assert view.eps == 255 and view.zeta == 0xFFFF
    with pytest.raises(OverflowError, match="eps"):
        view.eps = 256
    with pytest.raises(OverflowError, match="zeta"):
        view.zeta = -1
    with pytest.raises(TypeError, match="eps"):
        view.eps = None
    # Failed writes leave the cell unchanged.
    assert view.eps == 255 and view.zeta == 0xFFFF


def test_connection_state_uses_narrow_columns():
    from repro.flextoe.state import CONN_SLAB

    kinds = dict(CONN_SLAB.fields)
    assert kinds["local_port"] == U16 and kinds["remote_port"] == U16
    assert kinds["dupack_cnt"] == U8 and kinds["cnt_fretx"] == U8
    assert kinds["fin_pending"] == FLAG
    # 27 INT + 4 FLAG + 3 U16 + 2 U8 + 3 OBJ columns. The narrow
    # columns shave 60 B off the uniform-8B row (312 -> 252) toward the
    # paper's 108 B/conn (remaining gap: 64-bit INT columns for fields
    # Table 5 stores as 4 B).
    assert CONN_SLAB.bytes_per_slot() == 252
    assert CONN_SLAB.bytes_per_slot() < 8 * len(CONN_SLAB.fields)
