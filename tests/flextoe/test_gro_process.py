"""GRO/seqr delivery as real sim processes (ISSUE 2 satellite).

The ROADMAP flagged that reorder-buffer releases ran inline inside the
offering stage's process, so GRO work was invisible to the ownership
sanitizer. The pipelined datapath now spawns
:meth:`ReorderBuffer.delivery_program` under ``gro``/``seqr`` tokens;
these tests pin the process-delivery semantics and the sanitizer
visibility.
"""

import pytest

from repro.analysis import sanitizer
from repro.flextoe import ReorderBuffer, Sequencer
from repro.flextoe.config import PipelineConfig
from repro.flextoe.descriptors import SegWork, WORK_RX
from repro.flextoe.state import ProtocolState
from repro.sim import Simulator


def make_work(seqr):
    work = SegWork(WORK_RX)
    seqr.assign(work)
    return work


def test_process_delivery_defers_to_the_delivery_process():
    sim = Simulator()
    out = []
    rob = ReorderBuffer(sim, output_fn=out.append)
    rob.use_process_delivery()
    sim.process(rob.delivery_program(), name="gro-deliver")
    seqr = Sequencer()
    works = [make_work(seqr) for _ in range(4)]
    rob.offer(works[1])
    rob.offer(works[0])
    assert out == [], "delivery must not happen inline in the offering context"
    sim.run(until=1)
    assert [w.pipeline_seq for w in out] == [0, 1]
    rob.offer(works[2])
    rob.skip(works[3].pipeline_seq)
    sim.run(until=2)
    assert [w.pipeline_seq for w in out] == [0, 1, 2]
    assert rob.released == 3


def test_process_delivery_preserves_permutation_order():
    sim = Simulator()
    out = []
    rob = ReorderBuffer(sim, output_fn=out.append)
    rob.use_process_delivery()
    sim.process(rob.delivery_program(), name="gro-deliver")
    seqr = Sequencer()
    works = [make_work(seqr) for _ in range(8)]
    for index in (3, 0, 5, 1, 2, 7, 4, 6):
        rob.offer(works[index])
    sim.run(until=1)
    assert [w.pipeline_seq for w in out] == list(range(8))


def test_pipelined_datapath_uses_process_delivery_rtc_does_not():
    from repro.harness import Testbed

    bed = Testbed(seed=1)
    host = bed.add_flextoe_host("full")
    dp = host.nic.datapath
    assert dp.rx_gro._process_delivery, "pipelined rx GRO must deliver via its own process"
    assert dp.nbi_gro._process_delivery, "pipelined NBI seqr must deliver via its own process"

    rtc = Testbed(seed=1).add_flextoe_host(
        "rtc", pipeline_config=PipelineConfig.baseline_run_to_completion()
    )
    rtc_dp = rtc.nic.datapath
    assert not rtc_dp.rx_gro._process_delivery, (
        "run-to-completion polls synchronously; inline delivery required"
    )


def test_gro_delivery_runs_under_gro_sanitizer_token():
    sanitizer.install()
    try:
        sim = Simulator()
        state = ProtocolState()
        sanitizer.register(state, flow_group=0)
        seen = {}

        def deliver(work):
            seen["owner"] = sanitizer.current_owner()
            # GRO only forwards the work; touching protocol state from
            # the delivery process must trip the ownership sanitizer.
            with pytest.raises(sanitizer.SanitizerError, match="only the atomic protocol stage"):
                state.ack = 1

        rob = ReorderBuffer(sim, output_fn=deliver)
        rob.use_process_delivery()
        sim.process(
            sanitizer.guard_process(rob.delivery_program(), "gro"), name="gro-deliver"
        )
        seqr = Sequencer()
        rob.offer(make_work(seqr))
        sim.run(until=1)
        assert seen["owner"] is not None
        assert seen["owner"][0] == "gro"
    finally:
        sanitizer.uninstall()


def test_sanitized_end_to_end_transfer_with_process_gro():
    """A full sanitized echo over the pipelined datapath: the spawned
    gro/seqr processes must not trip ownership checks."""
    sanitizer.install()
    try:
        from repro.apps import EchoServer
        from repro.apps.rpc import ClosedLoopClient
        from repro.harness import Testbed

        bed = Testbed(seed=3)
        server = bed.add_flextoe_host("server")
        client = bed.add_flextoe_host("client")
        bed.seed_all_arp()
        echo = EchoServer(server.new_context(), 7000, request_size=256)
        bed.sim.process(echo.run(), name="echo")
        rpc = ClosedLoopClient(client.new_context(), server.ip, 7000, 256, 256, warmup=1)
        proc = bed.sim.process(rpc.run(5), name="rpc")
        bed.sim.run(until=proc)
        assert rpc.histogram.count >= 4
        assert server.nic.datapath.rx_gro.released > 0
    finally:
        sanitizer.uninstall()
